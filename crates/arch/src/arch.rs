//! Complete accelerator description: the three tiers plus computing mode.

use crate::{ArchError, ChipTier, ComputingMode, CoreTier, CostModel, CrossbarTier, Result};

/// A complete `Abs-arch` + `Abs-com` description of a CIM accelerator
/// (paper §3.2).
///
/// Combines the three tier abstractions with the computing mode the
/// accelerator's programming interface exposes. This is the single
/// hardware-description object every other CIM-MLC component consumes:
/// the multi-level scheduler reads the tiers it is allowed to see for the
/// given mode, and the simulators derive their cost model from it.
///
/// ```
/// use cim_arch::{CimArchitecture, ChipTier, CoreTier, CrossbarTier,
///                CellType, ComputingMode, XbShape};
///
/// # fn main() -> Result<(), cim_arch::ArchError> {
/// let arch = CimArchitecture::builder("toy")
///     .chip(ChipTier::with_core_count(2)?)
///     .core(CoreTier::with_xb_count(2)?)
///     .crossbar(CrossbarTier::new(
///         XbShape::new(32, 128)?, 16, 1, 8, CellType::Sram, 2)?)
///     .mode(ComputingMode::Wlm)
///     .build()?;
/// assert_eq!(arch.total_crossbars(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CimArchitecture {
    name: String,
    chip: ChipTier,
    core: CoreTier,
    crossbar: CrossbarTier,
    mode: ComputingMode,
    cost: CostModel,
}

impl CimArchitecture {
    /// Starts building an architecture named `name`.
    pub fn builder(name: impl Into<String>) -> CimArchitectureBuilder {
        CimArchitectureBuilder::new(name)
    }

    /// Human-readable accelerator name (e.g. `"ISAAC-like baseline"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Chip-tier parameters.
    #[must_use]
    pub fn chip(&self) -> &ChipTier {
        &self.chip
    }

    /// Core-tier parameters.
    #[must_use]
    pub fn core(&self) -> &CoreTier {
        &self.core
    }

    /// Crossbar-tier parameters.
    #[must_use]
    pub fn crossbar(&self) -> &CrossbarTier {
        &self.crossbar
    }

    /// Computing mode exposed by the programming interface.
    #[must_use]
    pub fn mode(&self) -> ComputingMode {
        self.mode
    }

    /// Cost model used for latency/energy estimation.
    #[must_use]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Total crossbars across the whole chip.
    #[must_use]
    pub fn total_crossbars(&self) -> u64 {
        u64::from(self.chip.core_count()) * u64::from(self.core.xb_count())
    }

    /// Total weight-storage capacity of the chip in bits.
    #[must_use]
    pub fn weight_capacity_bits(&self) -> u64 {
        self.total_crossbars()
            * self.crossbar.shape().cells()
            * u64::from(self.crossbar.cell_bits())
    }

    /// Returns a copy with a different computing mode.
    ///
    /// Useful for ablations: the same physical parameters driven at a
    /// coarser or finer interface.
    #[must_use]
    pub fn with_mode(&self, mode: ComputingMode) -> Self {
        let mut out = self.clone();
        out.mode = mode;
        out
    }

    /// Returns a copy with a different core count (sensitivity sweeps,
    /// Figure 22a).
    ///
    /// # Errors
    /// Propagates tier validation errors.
    pub fn with_core_count(&self, core_number: u32) -> Result<Self> {
        let mut chip = ChipTier::with_core_count(core_number)?
            .with_noc(self.chip.noc(), self.chip.noc_cost().clone());
        if let Some(b) = self.chip.l0_size_bits() {
            chip = chip.with_l0_size_bits(b);
        }
        if let Some(b) = self.chip.l0_bw_bits_per_cycle() {
            chip = chip.with_l0_bw(b);
        }
        if let Some(b) = self.chip.alu_ops_per_cycle() {
            chip = chip.with_alu_ops(b);
        }
        let mut out = self.clone();
        out.chip = chip;
        Ok(out)
    }

    /// Carves a spatial partition out of this chip: a copy owning
    /// `cores` of the chip's cores (and therefore `cores × xb_count`
    /// crossbars), with every other tier parameter unchanged. This is
    /// the slice of hardware a co-resident tenant owns in a
    /// multi-tenant deployment, so compiling a model against the
    /// partition prices exactly what that slice can do.
    ///
    /// # Errors
    /// Rejects `cores == 0` and `cores` beyond the chip's core count.
    pub fn partition(&self, cores: u32) -> Result<Self> {
        let available = self.chip.core_count();
        if cores == 0 || cores > available {
            return Err(ArchError::invalid(
                "partition_cores",
                format!("partition must own 1..={available} core(s), got {cores}"),
            ));
        }
        let mut out = self.with_core_count(cores)?;
        out.name = format!("{}[{cores}/{available} cores]", self.name);
        Ok(out)
    }

    /// Returns a copy with a different per-core crossbar count
    /// (Figure 22b).
    ///
    /// # Errors
    /// Propagates tier validation errors.
    pub fn with_xb_count(&self, xb_number: u32) -> Result<Self> {
        let mut core = CoreTier::with_xb_count(xb_number)?
            .with_noc(self.core.noc(), self.core.noc_cost().clone())
            .with_analog_partial_sum(self.core.analog_partial_sum());
        if let Some(b) = self.core.l1_size_bits() {
            core = core.with_l1_size_bits(b);
        }
        if let Some(b) = self.core.l1_bw_bits_per_cycle() {
            core = core.with_l1_bw(b);
        }
        if let Some(b) = self.core.alu_ops_per_cycle() {
            core = core.with_alu_ops(b);
        }
        let mut out = self.clone();
        out.core = core;
        Ok(out)
    }

    /// Returns a copy with a different crossbar tier (Figure 22c/d sweeps).
    #[must_use]
    pub fn with_crossbar(&self, crossbar: CrossbarTier) -> Self {
        let mut out = self.clone();
        out.crossbar = crossbar;
        out
    }

    /// Reconstructs a builder seeded with this architecture's tiers and
    /// computing mode — the starting point for design-space mutations
    /// that go beyond the single-parameter `with_*` helpers.
    ///
    /// The cost model is *not* carried over: [`CimArchitectureBuilder::build`]
    /// re-derives it from the (possibly mutated) crossbar tier, which is
    /// what an exploration wants. Call
    /// [`CimArchitectureBuilder::cost`] explicitly to pin a custom model.
    #[must_use]
    pub fn to_builder(&self) -> CimArchitectureBuilder {
        CimArchitectureBuilder::new(self.name.clone())
            .chip(self.chip.clone())
            .core(self.core.clone())
            .crossbar(self.crossbar.clone())
            .mode(self.mode)
    }

    /// The named numeric design axes of this architecture, in a stable
    /// order — the introspection surface design-space tools (`cim-dse`)
    /// and sweep UIs enumerate instead of hard-coding accessor lists.
    ///
    /// Axis names match the paper's `Abs-arch` vocabulary where one
    /// exists (`core_number`, `xb_number`, `parallel_row`, …).
    #[must_use]
    pub fn axis_values(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("core_number", u64::from(self.chip.core_count())),
            ("xb_number", u64::from(self.core.xb_count())),
            ("xb_rows", u64::from(self.crossbar.shape().rows)),
            ("xb_cols", u64::from(self.crossbar.shape().cols)),
            ("parallel_row", u64::from(self.crossbar.parallel_row())),
            ("dac_bits", u64::from(self.crossbar.dac_bits())),
            ("adc_bits", u64::from(self.crossbar.adc_bits())),
            ("cell_bits", u64::from(self.crossbar.cell_bits())),
        ]
    }

    /// Looks up one named axis from [`CimArchitecture::axis_values`].
    #[must_use]
    pub fn axis(&self, name: &str) -> Option<u64> {
        self.axis_values()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }

    /// Renders the abstraction in the paper's description format
    /// (Figures 17–19): one block per tier plus the computing mode.
    #[must_use]
    pub fn describe(&self) -> String {
        fn opt(v: Option<u64>, unit: &str) -> String {
            match v {
                Some(x) => format!("{x} {unit}"),
                None => "\\".to_owned(),
            }
        }
        let mut s = String::new();
        s.push_str(&format!("# {}\n", self.name));
        s.push_str("Chip_tier = {\n");
        s.push_str(&format!(
            "  \"core_number\": {}\n  \"ALU\": {}\n  \"core_noc\": \"{}\"\n  \"L0 size\": {}\n  \"L0 BW\": {}\n}}\n",
            self.chip.core_count(),
            opt(self.chip.alu_ops_per_cycle(), "ops/cycle"),
            self.chip.noc(),
            opt(self.chip.l0_size_bits(), "b"),
            opt(self.chip.l0_bw_bits_per_cycle(), "b/cycle"),
        ));
        s.push_str("Core_tier = {\n");
        s.push_str(&format!(
            "  \"xb_number\": {}\n  \"ALU\": {}\n  \"xb_noc\": \"{}\"\n  \"L1 size\": {}\n  \"L1 BW\": {}\n}}\n",
            self.core.xb_count(),
            opt(self.core.alu_ops_per_cycle(), "ops/cycle"),
            self.core.noc(),
            opt(self.core.l1_size_bits(), "b"),
            opt(self.core.l1_bw_bits_per_cycle(), "b/cycle"),
        ));
        s.push_str("XB_tier = {\n");
        s.push_str(&format!(
            "  \"xb_size\": {}\n  \"parallel row\": {}\n  \"DAC\": {}-bit\n  \"ADC\": {}-bit\n  \"Type\": \"{}\"\n  \"Precision\": {}-bit\n}}\n",
            self.crossbar.shape(),
            self.crossbar.parallel_row(),
            self.crossbar.dac_bits(),
            self.crossbar.adc_bits(),
            self.crossbar.cell_type(),
            self.crossbar.cell_bits(),
        ));
        s.push_str(&format!("Computing_Mode = '{}'\n", self.mode));
        s
    }
}

/// Builder for [`CimArchitecture`] (non-consuming terminal per the Rust API
/// guidelines would not help here since tiers are owned; this is a
/// consuming builder).
#[derive(Debug, Clone)]
pub struct CimArchitectureBuilder {
    name: String,
    chip: Option<ChipTier>,
    core: Option<CoreTier>,
    crossbar: Option<CrossbarTier>,
    mode: Option<ComputingMode>,
    cost: Option<CostModel>,
}

impl CimArchitectureBuilder {
    fn new(name: impl Into<String>) -> Self {
        CimArchitectureBuilder {
            name: name.into(),
            chip: None,
            core: None,
            crossbar: None,
            mode: None,
            cost: None,
        }
    }

    /// Sets the chip tier.
    #[must_use]
    pub fn chip(mut self, chip: ChipTier) -> Self {
        self.chip = Some(chip);
        self
    }

    /// Sets the core tier.
    #[must_use]
    pub fn core(mut self, core: CoreTier) -> Self {
        self.core = Some(core);
        self
    }

    /// Sets the crossbar tier.
    #[must_use]
    pub fn crossbar(mut self, crossbar: CrossbarTier) -> Self {
        self.crossbar = Some(crossbar);
        self
    }

    /// Sets the computing mode.
    #[must_use]
    pub fn mode(mut self, mode: ComputingMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Overrides the default cost model derived from the tiers.
    #[must_use]
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Finalizes the architecture.
    ///
    /// # Errors
    /// Returns [`ArchError`] if any tier is missing or the combination is
    /// inconsistent (e.g. WLM mode on a crossbar whose `parallel_row`
    /// equals its row count is legal but CM on a missing chip tier is not).
    pub fn build(self) -> Result<CimArchitecture> {
        let chip = self
            .chip
            .ok_or_else(|| ArchError::inconsistent("chip tier is required"))?;
        let core = self
            .core
            .ok_or_else(|| ArchError::inconsistent("core tier is required"))?;
        let crossbar = self
            .crossbar
            .ok_or_else(|| ArchError::inconsistent("crossbar tier is required"))?;
        let mode = self
            .mode
            .ok_or_else(|| ArchError::inconsistent("computing mode is required"))?;
        if mode == ComputingMode::Wlm && crossbar.full_parallel() && crossbar.shape().rows > 1 {
            // Legal, but WLM offers nothing over XBM here; keep it allowed —
            // designs like Jia expose CM despite full-parallel crossbars.
        }
        let cost = self.cost.unwrap_or_else(|| CostModel::derived(&crossbar));
        Ok(CimArchitecture {
            name: self.name,
            chip,
            core,
            crossbar,
            mode,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellType, XbShape};

    fn toy() -> CimArchitecture {
        CimArchitecture::builder("toy")
            .chip(ChipTier::with_core_count(2).unwrap())
            .core(CoreTier::with_xb_count(2).unwrap())
            .crossbar(
                CrossbarTier::new(XbShape::new(32, 128).unwrap(), 16, 1, 8, CellType::Sram, 2)
                    .unwrap(),
            )
            .mode(ComputingMode::Wlm)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_all_tiers() {
        let err = CimArchitecture::builder("x").build().unwrap_err();
        assert!(err.to_string().contains("chip tier"));
        let err = CimArchitecture::builder("x")
            .chip(ChipTier::with_core_count(1).unwrap())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("core tier"));
    }

    #[test]
    fn totals() {
        let arch = toy();
        assert_eq!(arch.total_crossbars(), 4);
        // 4 crossbars * 32*128 cells * 2 bits
        assert_eq!(arch.weight_capacity_bits(), 4 * 32 * 128 * 2);
    }

    #[test]
    fn with_mode_preserves_tiers() {
        let arch = toy();
        let coarse = arch.with_mode(ComputingMode::Cm);
        assert_eq!(coarse.mode(), ComputingMode::Cm);
        assert_eq!(coarse.chip(), arch.chip());
        assert_eq!(coarse.crossbar(), arch.crossbar());
    }

    #[test]
    fn with_core_count_sweeps() {
        let arch = toy();
        let bigger = arch.with_core_count(16).unwrap();
        assert_eq!(bigger.chip().core_count(), 16);
        assert_eq!(bigger.core(), arch.core());
        assert!(arch.with_core_count(0).is_err());
    }

    #[test]
    fn with_xb_count_sweeps() {
        let arch = toy();
        let bigger = arch.with_xb_count(8).unwrap();
        assert_eq!(bigger.core().xb_count(), 8);
        assert_eq!(bigger.chip(), arch.chip());
    }

    #[test]
    fn to_builder_round_trips_tiers_and_mode() {
        let arch = toy();
        let back = arch.to_builder().build().unwrap();
        assert_eq!(back, arch);
        // Mutating through the rebuilt builder keeps the other tiers.
        let wider = arch
            .to_builder()
            .crossbar(arch.crossbar().with_adc_bits(4).unwrap())
            .build()
            .unwrap();
        assert_eq!(wider.crossbar().adc_bits(), 4);
        assert_eq!(wider.chip(), arch.chip());
        assert_eq!(wider.mode(), arch.mode());
    }

    #[test]
    fn axis_values_enumerate_the_design_axes() {
        let arch = toy();
        let axes = arch.axis_values();
        assert_eq!(axes.len(), 8);
        assert_eq!(arch.axis("core_number"), Some(2));
        assert_eq!(arch.axis("xb_rows"), Some(32));
        assert_eq!(arch.axis("xb_cols"), Some(128));
        assert_eq!(arch.axis("cell_bits"), Some(2));
        assert_eq!(arch.axis("nope"), None);
        // Every advertised axis resolves through the lookup.
        for (name, value) in axes {
            assert_eq!(arch.axis(name), Some(value), "{name}");
        }
    }

    #[test]
    fn crossbar_mutation_helpers_revalidate() {
        let xb = toy().crossbar().clone();
        // Shrinking the shape clamps parallel_row (16) to the new height.
        let small = xb.with_shape(XbShape::new(8, 64).unwrap()).unwrap();
        assert_eq!(small.parallel_row(), 8);
        assert_eq!(small.cell_bits(), xb.cell_bits());
        assert!(xb.with_adc_bits(0).is_err());
        assert!(xb.with_dac_bits(0).is_err());
        assert!(xb.with_cell_bits(0).is_err());
        assert!(xb.with_parallel_row(xb.shape().rows + 1).is_err());
        assert_eq!(
            xb.with_cell_type(CellType::Reram).unwrap().cell_type(),
            CellType::Reram
        );
        assert_eq!(xb.with_cell_bits(4).unwrap().cell_bits(), 4);
    }

    #[test]
    fn describe_contains_every_tier_parameter() {
        let d = toy().describe();
        assert!(d.contains("core_number"));
        assert!(d.contains("xb_number"));
        assert!(d.contains("parallel row"));
        assert!(d.contains("SRAM"));
        assert!(d.contains("Computing_Mode = 'WLM'"));
        // Ideal parameters are rendered as the paper's backslash.
        assert!(d.contains('\\'));
    }
}
