//! Parametric latency/energy cost model.
//!
//! The paper evaluates with simulators extended from PUMA-sim, NeuroSim and
//! NVSim (§4.1). Those tools are circuit-level and closed to us, so this
//! module substitutes a parametric model whose *relative* behaviour matches
//! the published breakdown: for the PUMA configuration, peak power is split
//! roughly 10 % ADC/DAC, 83 % crossbar activation, 7 % data movement
//! (paper §4.2, Work 2). All evaluation claims we reproduce are relative
//! (speedups, normalized peak power), which this calibration preserves.

use crate::tier::CrossbarTier;
use serde::{Deserialize, Serialize};

/// Energy attributed to each hardware component over some window
/// (arbitrary consistent units).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Crossbar (wordline/bitline) activation energy.
    pub crossbar: f64,
    /// Analog-to-digital conversion energy.
    pub adc: f64,
    /// Digital-to-analog conversion energy.
    pub dac: f64,
    /// On-chip data-movement energy (NoC + buffers).
    pub movement: f64,
    /// Digital ALU energy (ReLU, pooling, shift-accumulate, …).
    pub alu: f64,
}

impl EnergyBreakdown {
    /// Total energy across all components.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.crossbar + self.adc + self.dac + self.movement + self.alu
    }

    /// Fraction of the total attributed to converters (ADC + DAC).
    /// Returns 0 for an empty breakdown.
    #[must_use]
    pub fn converter_share(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (self.adc + self.dac) / t
        }
    }

    /// Element-wise sum.
    #[must_use]
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            crossbar: self.crossbar + other.crossbar,
            adc: self.adc + other.adc,
            dac: self.dac + other.dac,
            movement: self.movement + other.movement,
            alu: self.alu + other.alu,
        }
    }

    /// Element-wise scale.
    #[must_use]
    pub fn scale(&self, k: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            crossbar: self.crossbar * k,
            adc: self.adc * k,
            dac: self.dac * k,
            movement: self.movement * k,
            alu: self.alu * k,
        }
    }
}

/// A peak-power estimate with its per-component decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerEstimate {
    /// Peak instantaneous power over the schedule (units: energy/cycle).
    pub peak: f64,
    /// Component breakdown *at the peak cycle*.
    pub at_peak: EnergyBreakdown,
    /// Number of crossbars simultaneously active at the peak cycle.
    pub peak_active_crossbars: u64,
}

/// Latency and energy constants for one accelerator.
///
/// Derived from the crossbar tier via [`CostModel::derived`], which
/// calibrates per-event energies so a fully-active 128×128 ReRAM crossbar
/// with 8-bit ADCs reproduces the paper's PUMA power shares. Custom models
/// can be supplied through
/// [`CimArchitectureBuilder::cost`](crate::CimArchitectureBuilder::cost).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cycles for one crossbar activation (one `parallel_row` group read,
    /// including ADC sampling).
    pub xb_read_cycles: u64,
    /// Cycles to program one crossbar row (device-dependent).
    pub xb_write_cycles_per_row: u64,
    /// Energy per activated memory cell per activation.
    pub e_cell: f64,
    /// Energy per ADC conversion (one column readout).
    pub e_adc_per_conversion: f64,
    /// Energy per DAC conversion (one row drive).
    pub e_dac_per_conversion: f64,
    /// Energy per bit moved through buffers / NoC.
    pub e_mov_per_bit: f64,
    /// Energy per digital ALU operation.
    pub e_alu_per_op: f64,
    /// Energy per cell per programmed write.
    pub e_write_per_cell: f64,
}

impl CostModel {
    /// Reference crossbar dimension the calibration constants assume.
    const CAL_DIM: f64 = 128.0;

    /// Builds the default model for a crossbar tier.
    ///
    /// Calibration targets (PUMA-like 128×128, full-row activation, 8-bit
    /// I/O): crossbar activation 83, ADC+DAC 10, movement 7 energy units
    /// per fully-parallel MVM step — matching the §4.2 breakdown.
    #[must_use]
    pub fn derived(xb: &CrossbarTier) -> Self {
        // Crossbar: 83 units for a full 128x128 activation.
        let e_cell = 83.0 / (Self::CAL_DIM * Self::CAL_DIM);
        // Converters: 10 units split 4:1 between ADC and DAC for 128 columns
        // and 128 rows (ADCs dominate converter power in CIM macros).
        let e_adc = 8.0 / Self::CAL_DIM;
        let e_dac = 2.0 / Self::CAL_DIM;
        // Movement: 7 units for streaming one 128-byte input vector and one
        // 128-byte output vector (2 * 1024 bits).
        let e_mov = 7.0 / (2.0 * Self::CAL_DIM * 8.0);
        let write_ratio = xb.cell_type().write_read_latency_ratio();
        CostModel {
            xb_read_cycles: 1,
            xb_write_cycles_per_row: write_ratio,
            e_cell,
            e_adc_per_conversion: e_adc,
            e_dac_per_conversion: e_dac,
            e_mov_per_bit: e_mov,
            e_alu_per_op: 0.01,
            e_write_per_cell: e_cell * write_ratio as f64,
        }
    }

    /// Energy of one crossbar activation engaging `active_rows` wordlines
    /// and `active_cols` bitlines, including converter energy.
    #[must_use]
    pub fn activation_energy(&self, active_rows: u32, active_cols: u32) -> EnergyBreakdown {
        EnergyBreakdown {
            crossbar: self.e_cell * f64::from(active_rows) * f64::from(active_cols),
            adc: self.e_adc_per_conversion * f64::from(active_cols),
            dac: self.e_dac_per_conversion * f64::from(active_rows),
            movement: 0.0,
            alu: 0.0,
        }
    }

    /// Energy of moving `bits` through the on-chip hierarchy.
    #[must_use]
    pub fn movement_energy(&self, bits: u64) -> EnergyBreakdown {
        EnergyBreakdown {
            movement: self.e_mov_per_bit * bits as f64,
            ..EnergyBreakdown::default()
        }
    }

    /// Energy of `ops` digital ALU operations.
    #[must_use]
    pub fn alu_energy(&self, ops: u64) -> EnergyBreakdown {
        EnergyBreakdown {
            alu: self.e_alu_per_op * ops as f64,
            ..EnergyBreakdown::default()
        }
    }

    /// Energy of programming `rows × cols` cells of a crossbar.
    #[must_use]
    pub fn write_energy(&self, rows: u32, cols: u32) -> EnergyBreakdown {
        EnergyBreakdown {
            crossbar: self.e_write_per_cell * f64::from(rows) * f64::from(cols),
            ..EnergyBreakdown::default()
        }
    }

    /// Cycles to program `rows` rows of a crossbar.
    #[must_use]
    pub fn write_cycles(&self, rows: u32) -> u64 {
        self.xb_write_cycles_per_row * u64::from(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellType, XbShape};

    fn puma_xb() -> CrossbarTier {
        CrossbarTier::new(
            XbShape::new(128, 128).unwrap(),
            128,
            8,
            1,
            CellType::Reram,
            2,
        )
        .unwrap()
    }

    #[test]
    fn calibration_matches_puma_breakdown() {
        let m = CostModel::derived(&puma_xb());
        let act = m.activation_energy(128, 128);
        let mov = m.movement_energy(2 * 128 * 8);
        let total = act.total() + mov.total();
        let xb_share = act.crossbar / total;
        let conv_share = (act.adc + act.dac) / total;
        let mov_share = mov.movement / total;
        assert!((xb_share - 0.83).abs() < 0.01, "xb share {xb_share}");
        assert!((conv_share - 0.10).abs() < 0.01, "conv share {conv_share}");
        assert!((mov_share - 0.07).abs() < 0.01, "mov share {mov_share}");
    }

    #[test]
    fn activation_energy_scales_with_active_rows() {
        let m = CostModel::derived(&puma_xb());
        let full = m.activation_energy(128, 128);
        let partial = m.activation_energy(8, 128);
        assert!(partial.crossbar < full.crossbar);
        assert!((partial.crossbar * 16.0 - full.crossbar).abs() < 1e-9);
        // ADC energy depends on columns only.
        assert_eq!(partial.adc, full.adc);
        // DAC energy follows rows.
        assert!((partial.dac * 16.0 - full.dac).abs() < 1e-9);
    }

    #[test]
    fn write_costs_track_device() {
        let sram = CrossbarTier::new(
            XbShape::new(128, 128).unwrap(),
            128,
            1,
            8,
            CellType::Sram,
            1,
        )
        .unwrap();
        let m_sram = CostModel::derived(&sram);
        let m_reram = CostModel::derived(&puma_xb());
        assert!(m_reram.xb_write_cycles_per_row > m_sram.xb_write_cycles_per_row);
        assert!(m_reram.write_cycles(128) > m_sram.write_cycles(128));
        assert!(m_reram.write_energy(4, 4).crossbar > m_sram.write_energy(4, 4).crossbar);
    }

    #[test]
    fn breakdown_arithmetic() {
        let a = EnergyBreakdown {
            crossbar: 1.0,
            adc: 2.0,
            dac: 3.0,
            movement: 4.0,
            alu: 5.0,
        };
        let b = a.add(&a);
        assert_eq!(b.total(), 30.0);
        let half = a.scale(0.5);
        assert_eq!(half.total(), 7.5);
        assert!((a.converter_share() - 5.0 / 15.0).abs() < 1e-12);
        assert_eq!(EnergyBreakdown::default().converter_share(), 0.0);
    }
}
