//! Error type for architecture construction and validation.

use std::error::Error;
use std::fmt;

/// Error produced when a CIM architecture description is invalid.
///
/// Returned by [`crate::CimArchitectureBuilder::build`] and the validation
/// methods on the tier types. The contained message names the offending
/// parameter in the vocabulary of the paper's abstraction (Figures 5, 6, 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// A tier parameter is zero or otherwise outside its legal range.
    InvalidParameter {
        /// Abstraction parameter name, e.g. `"parallel_row"`.
        parameter: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// Two parameters are individually legal but mutually inconsistent.
    Inconsistent {
        /// Description of the inconsistency.
        message: String,
    },
}

impl ArchError {
    /// Creates an [`ArchError::InvalidParameter`].
    pub fn invalid(parameter: &'static str, message: impl Into<String>) -> Self {
        ArchError::InvalidParameter {
            parameter,
            message: message.into(),
        }
    }

    /// Creates an [`ArchError::Inconsistent`].
    pub fn inconsistent(message: impl Into<String>) -> Self {
        ArchError::Inconsistent {
            message: message.into(),
        }
    }
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidParameter { parameter, message } => {
                write!(f, "invalid architecture parameter `{parameter}`: {message}")
            }
            ArchError::Inconsistent { message } => {
                write!(f, "inconsistent architecture description: {message}")
            }
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parameter() {
        let err = ArchError::invalid("parallel_row", "must not exceed crossbar rows");
        let text = err.to_string();
        assert!(text.contains("parallel_row"));
        assert!(text.contains("must not exceed"));
    }

    #[test]
    fn inconsistent_display() {
        let err = ArchError::inconsistent("mode WLM requires parallel_row");
        assert!(err.to_string().contains("inconsistent"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }
}
