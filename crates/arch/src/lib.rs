//! # cim-arch — CIM hardware abstraction (Abs-arch + Abs-com)
//!
//! This crate implements the hardware abstraction layer of the CIM-MLC
//! compilation stack (ASPLOS'24, §3.2): a three-tier parameterization of
//! computing-in-memory accelerators together with the *computing mode*
//! abstraction that tells the compiler which scheduling granularity the
//! accelerator's programming interface exposes.
//!
//! The three architecture tiers are:
//!
//! * **Chip tier** ([`ChipTier`]) — cores, chip-level NoC, global (L0)
//!   buffer, digital ALU. Exposed to the compiler in *core mode* (CM).
//! * **Core tier** ([`CoreTier`]) — crossbars inside one core, core-level
//!   NoC, local (L1) buffer, digital ALU. Exposed in *crossbar mode* (XBM).
//! * **Crossbar tier** ([`CrossbarTier`]) — the memory crossbar itself:
//!   shape, number of simultaneously-activatable wordlines
//!   (`parallel_row`), DAC/ADC precision, memory-cell type and precision.
//!   Exposed in *wordline mode* (WLM).
//!
//! A complete accelerator description is a [`CimArchitecture`], built either
//! directly, through [`CimArchitectureBuilder`], or from one of the paper's
//! [`presets`].
//!
//! ```
//! use cim_arch::{presets, ComputingMode};
//!
//! let arch = presets::isaac_baseline();
//! assert_eq!(arch.mode(), ComputingMode::Xbm);
//! assert_eq!(arch.chip().core_count(), 768);
//! assert_eq!(arch.crossbar().shape().rows, 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod cost;
mod error;
mod mode;
pub mod presets;
mod serde_io;
mod tier;

pub use arch::{CimArchitecture, CimArchitectureBuilder};
pub use cost::{CostModel, EnergyBreakdown, PowerEstimate};
pub use error::ArchError;
pub use mode::ComputingMode;
pub use serde_io::{from_json, to_json};
pub use tier::{CellType, ChipTier, CoreTier, CrossbarTier, NocCost, NocKind, XbShape};

// Architectures are shared by reference across the `cim-bench` sweep
// pool's worker threads; pin thread-safety down at compile time.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<CimArchitecture>();
    assert_send_sync::<CostModel>();
    assert_send_sync::<ArchError>();
};

/// Convenient result alias for fallible architecture operations.
pub type Result<T> = std::result::Result<T, ArchError>;
