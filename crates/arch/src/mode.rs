//! Computing-mode abstraction (Abs-com).

use std::fmt;

/// The computing-mode abstraction of a CIM accelerator (paper §3.2,
/// Figure 4 d–f).
///
/// The computing mode records the *minimum scheduling granularity* the
/// accelerator's programming interface exposes to software, and therefore
/// which tiers of the architecture abstraction the compiler may see and
/// which meta-operator set code generation uses:
///
/// | Mode | Granularity | Visible tiers | Meta-operators |
/// |------|-------------|---------------|----------------|
/// | [`Cm`](ComputingMode::Cm)  | whole cores     | chip               | `cim.readcore` |
/// | [`Xbm`](ComputingMode::Xbm)| whole crossbars | chip + core        | `cim.readxb` / `cim.writexb` |
/// | [`Wlm`](ComputingMode::Wlm)| wordline groups | chip + core + xbar | `cim.readrow` / `cim.writerow` |
///
/// Modes are ordered from coarse to fine: `Cm < Xbm < Wlm`. A finer mode
/// subsumes the scheduling options of every coarser one, which is what the
/// multi-level scheduler exploits (CG-grained optimization always runs;
/// MVM-grained runs for `Xbm` and `Wlm`; VVM-grained only for `Wlm`).
///
/// ```
/// use cim_arch::ComputingMode;
///
/// assert!(ComputingMode::Wlm.supports(ComputingMode::Xbm));
/// assert!(!ComputingMode::Cm.supports(ComputingMode::Wlm));
/// assert_eq!(ComputingMode::Xbm.to_string(), "XBM");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComputingMode {
    /// Core mode: the interface activates one or more cores to run a whole
    /// DNN operator (e.g. a convolution). Example: Jia et al., ISSCC'21.
    Cm,
    /// Crossbar mode: the interface activates physical crossbars to run one
    /// matrix-vector multiplication. Example: PUMA, ISAAC.
    Xbm,
    /// Wordline mode: the interface activates groups of rows
    /// (`parallel_row` at a time) inside a crossbar, enabling vector-vector
    /// granularity. Example: Jain et al., JSSC'21.
    Wlm,
}

impl ComputingMode {
    /// All modes, coarse to fine.
    pub const ALL: [ComputingMode; 3] = [ComputingMode::Cm, ComputingMode::Xbm, ComputingMode::Wlm];

    /// Returns `true` if an accelerator exposing `self` can also be driven
    /// at the (coarser or equal) granularity `other`.
    ///
    /// A finer programming interface can always emulate a coarser one
    /// (activating every row group of every crossbar of a core reproduces a
    /// core-level activation), but not vice versa.
    #[must_use]
    pub fn supports(self, other: ComputingMode) -> bool {
        self >= other
    }

    /// The scheduling levels of the multi-level scheduler that apply to this
    /// mode, coarse to fine: 1 for CM (CG only), 2 for XBM (CG+MVM),
    /// 3 for WLM (CG+MVM+VVM).
    #[must_use]
    pub fn scheduling_levels(self) -> u8 {
        match self {
            ComputingMode::Cm => 1,
            ComputingMode::Xbm => 2,
            ComputingMode::Wlm => 3,
        }
    }

    /// Short name used in diagnostics and generated-code headers.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ComputingMode::Cm => "CM",
            ComputingMode::Xbm => "XBM",
            ComputingMode::Wlm => "WLM",
        }
    }
}

impl fmt::Display for ComputingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_coarse_to_fine() {
        assert!(ComputingMode::Cm < ComputingMode::Xbm);
        assert!(ComputingMode::Xbm < ComputingMode::Wlm);
    }

    #[test]
    fn supports_is_reflexive_and_downward() {
        for mode in ComputingMode::ALL {
            assert!(mode.supports(mode));
        }
        assert!(ComputingMode::Wlm.supports(ComputingMode::Cm));
        assert!(ComputingMode::Wlm.supports(ComputingMode::Xbm));
        assert!(ComputingMode::Xbm.supports(ComputingMode::Cm));
        assert!(!ComputingMode::Cm.supports(ComputingMode::Xbm));
        assert!(!ComputingMode::Xbm.supports(ComputingMode::Wlm));
    }

    #[test]
    fn scheduling_levels_match_paper_workflow() {
        assert_eq!(ComputingMode::Cm.scheduling_levels(), 1);
        assert_eq!(ComputingMode::Xbm.scheduling_levels(), 2);
        assert_eq!(ComputingMode::Wlm.scheduling_levels(), 3);
    }

    #[test]
    fn display_matches_paper_names() {
        let names: Vec<String> = ComputingMode::ALL.iter().map(|m| m.to_string()).collect();
        assert_eq!(names, ["CM", "XBM", "WLM"]);
    }
}
