//! Architecture presets used in the paper's evaluation (§4.1–§4.2).
//!
//! Each function reproduces one published `Abs-arch` description:
//!
//! * [`isaac_baseline`] — Table 3, the ISAAC-like baseline every Figure
//!   20d/21/22 experiment runs on.
//! * [`jia_isscc21`] — Figure 17, Jia et al.'s ISSCC'21 SRAM accelerator
//!   exposing core mode (CM).
//! * [`puma`] — Figure 18, the PUMA programmable ReRAM accelerator
//!   exposing crossbar mode (XBM).
//! * [`jain_sram`] — Figure 19, Jain et al.'s JSSC'21 SRAM macro exposing
//!   wordline mode (WLM) with at most 32 parallel rows.
//! * [`table2_example`] — the didactic 2-core × 2-crossbar machine used for
//!   the Figure 16 Conv-ReLU walkthrough.

use crate::{
    CellType, ChipTier, CimArchitecture, ComputingMode, CoreTier, CrossbarTier, NocCost, NocKind,
    XbShape,
};

/// The ISAAC-like CIM architecture baseline of Table 3.
///
/// 768 cores × 16 crossbars × (128 × 128) 2-bit ReRAM cells,
/// `parallel_row` 8, 1-bit DAC / 8-bit ADC, 1024-op/cycle ALUs at both
/// chip and core tier, L0 bandwidth 384 b/cycle, L1 bandwidth
/// 8192 b/cycle. Exposed in XBM (ISAAC schedules whole-crossbar MVMs);
/// sweeps that need WLM/VVM scheduling call
/// [`CimArchitecture::with_mode`].
#[must_use]
pub fn isaac_baseline() -> CimArchitecture {
    CimArchitecture::builder("ISAAC-like baseline (Table 3)")
        .chip(
            ChipTier::with_core_count(768)
                .expect("non-zero core count")
                .with_noc(NocKind::Mesh, NocCost::UniformPerBit(1.0 / 384.0))
                .with_l0_bw(384)
                .with_alu_ops(1024),
        )
        .core(
            CoreTier::with_xb_count(16)
                .expect("non-zero crossbar count")
                .with_noc(NocKind::HTree, NocCost::UniformPerBit(1.0 / 8192.0))
                .with_l1_bw(8192)
                .with_alu_ops(1024),
        )
        .crossbar(
            CrossbarTier::new(
                XbShape::new(128, 128).expect("valid shape"),
                8,
                1,
                8,
                CellType::Reram,
                2,
            )
            .expect("valid crossbar tier"),
        )
        .mode(ComputingMode::Xbm)
        .build()
        .expect("preset is valid")
}

/// Variant of [`isaac_baseline`] exposed in wordline mode, used wherever the
/// paper applies VVM-grained optimization to the baseline
/// (Figures 20d, 21c/d, 22).
#[must_use]
pub fn isaac_baseline_wlm() -> CimArchitecture {
    isaac_baseline().with_mode(ComputingMode::Wlm)
}

/// Jia et al.'s programmable SRAM inference accelerator (ISSCC'21),
/// abstracted in Figure 17.
///
/// 16 CIMUs ("cores"), each a single 1152 × 256 SRAM array with all 1152
/// rows activating in parallel, 1-bit cells, 1-bit DAC / 8-bit ADC, a
/// disjoint-buffer-switch chip NoC. Computing mode: CM.
#[must_use]
pub fn jia_isscc21() -> CimArchitecture {
    CimArchitecture::builder("Jia et al. ISSCC'21 (Figure 17)")
        .chip(
            ChipTier::with_core_count(16)
                .expect("non-zero core count")
                .with_noc(NocKind::DisjointBufferSwitch, NocCost::Ideal),
        )
        .core(CoreTier::with_xb_count(1).expect("non-zero crossbar count"))
        .crossbar(
            CrossbarTier::new(
                XbShape::new(1152, 256).expect("valid shape"),
                1152,
                1,
                8,
                CellType::Sram,
                1,
            )
            .expect("valid crossbar tier"),
        )
        .mode(ComputingMode::Cm)
        .build()
        .expect("preset is valid")
}

/// PUMA, the programmable ReRAM ML accelerator, abstracted in Figure 18.
///
/// 138 cores over a mesh NoC, 96 KB L0 at 384 b/cycle, 2 crossbars per
/// core with 1 KB L1, 128 × 128 2-bit ReRAM cells with full-row
/// activation, 8-bit DAC / 1-bit ADC *as printed in Figure 18* (the paper
/// swaps the usual roles; we reproduce the figure). Computing mode: XBM.
#[must_use]
pub fn puma() -> CimArchitecture {
    CimArchitecture::builder("PUMA (Figure 18)")
        .chip(
            ChipTier::with_core_count(138)
                .expect("non-zero core count")
                .with_noc(NocKind::Mesh, NocCost::UniformPerBit(1.0 / 384.0))
                .with_l0_size_bits(96 * 1024 * 8)
                .with_l0_bw(384),
        )
        .core(
            CoreTier::with_xb_count(2)
                .expect("non-zero crossbar count")
                .with_l1_size_bits(1024 * 8),
        )
        .crossbar(
            CrossbarTier::new(
                XbShape::new(128, 128).expect("valid shape"),
                128,
                8,
                1,
                CellType::Reram,
                2,
            )
            .expect("valid crossbar tier"),
        )
        .mode(ComputingMode::Xbm)
        .build()
        .expect("preset is valid")
}

/// Jain et al.'s ±CIM SRAM macro (JSSC'21), abstracted in Figure 19.
///
/// 4 cores × 2 crossbars × (256 × 64) 1-bit SRAM cells; only 32 of the
/// 256 rows may activate simultaneously (variation control), 1-bit DAC /
/// 6-bit ADC. Computing mode: WLM.
#[must_use]
pub fn jain_sram() -> CimArchitecture {
    CimArchitecture::builder("Jain et al. JSSC'21 (Figure 19)")
        .chip(ChipTier::with_core_count(4).expect("non-zero core count"))
        .core(
            CoreTier::with_xb_count(2)
                .expect("non-zero crossbar count")
                .with_analog_partial_sum(false),
        )
        .crossbar(
            CrossbarTier::new(
                XbShape::new(256, 64).expect("valid shape"),
                32,
                1,
                6,
                CellType::Sram,
                1,
            )
            .expect("valid crossbar tier"),
        )
        .mode(ComputingMode::Wlm)
        .build()
        .expect("preset is valid")
}

/// The didactic architecture of Table 2 / §3.4: 2 cores × 2 crossbars ×
/// (32 × 128) 2-bit cells, `parallel_row` 16, shared-buffer NoC, ample
/// bandwidth, all digital operators supported.
///
/// The walkthrough drives it at each computing mode in turn; the returned
/// architecture defaults to WLM (the finest interface it offers).
#[must_use]
pub fn table2_example() -> CimArchitecture {
    CimArchitecture::builder("Table 2 walkthrough example")
        .chip(
            ChipTier::new(2, 1)
                .expect("non-zero core count")
                .with_noc(NocKind::SharedBuffer, NocCost::Ideal),
        )
        .core(
            CoreTier::new(2, 1)
                .expect("non-zero crossbar count")
                .with_analog_partial_sum(false),
        )
        .crossbar(
            CrossbarTier::new(
                XbShape::new(32, 128).expect("valid shape"),
                16,
                1,
                8,
                CellType::Sram,
                2,
            )
            .expect("valid crossbar tier"),
        )
        .mode(ComputingMode::Wlm)
        .build()
        .expect("preset is valid")
}

/// The Figure 22 sensitivity-study baseline: Table 3 parameters with a
/// 128 × 256 crossbar (§4.4), exposed in WLM so all three scheduling
/// levels can run.
#[must_use]
pub fn sensitivity_baseline() -> CimArchitecture {
    let base = isaac_baseline_wlm();
    base.with_crossbar(
        CrossbarTier::new(
            XbShape::new(128, 256).expect("valid shape"),
            8,
            1,
            8,
            CellType::Reram,
            2,
        )
        .expect("valid crossbar tier"),
    )
}

/// Canonical preset keys, in [`all`] order. These are the identifiers
/// [`by_name`] accepts and the vocabulary sweep specifications
/// (`cim-bench`) and the `cimc` CLI validate against.
pub const NAMES: [&str; 7] = [
    "isaac",
    "isaac-wlm",
    "jia",
    "puma",
    "jain",
    "table2",
    "sensitivity",
];

/// Builds the preset with the canonical key `name` (one of [`NAMES`],
/// plus the aliases `baseline`/`table3` for `isaac`, `baseline-wlm` for
/// `isaac-wlm` and `walkthrough` for `table2`). Returns `None` for
/// unknown keys.
#[must_use]
pub fn by_name(name: &str) -> Option<CimArchitecture> {
    match name {
        "isaac" | "baseline" | "table3" => Some(isaac_baseline()),
        "isaac-wlm" | "baseline-wlm" => Some(isaac_baseline_wlm()),
        "jia" => Some(jia_isscc21()),
        "puma" => Some(puma()),
        "jain" => Some(jain_sram()),
        "table2" | "walkthrough" => Some(table2_example()),
        "sensitivity" => Some(sensitivity_baseline()),
        _ => None,
    }
}

/// Every preset paired with its name, for exhaustive iteration in tests
/// and the generality matrix (Table 1).
#[must_use]
pub fn all() -> Vec<CimArchitecture> {
    vec![
        isaac_baseline(),
        isaac_baseline_wlm(),
        jia_isscc21(),
        puma(),
        jain_sram(),
        table2_example(),
        sensitivity_baseline(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_enumerate_all_in_order() {
        let all = all();
        assert_eq!(NAMES.len(), all.len());
        for (key, preset) in NAMES.iter().zip(&all) {
            let by = by_name(key).unwrap_or_else(|| panic!("by_name({key})"));
            assert_eq!(&by, preset, "{key}");
        }
        assert_eq!(by_name("table3"), by_name("isaac"));
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn table3_parameters() {
        let a = isaac_baseline();
        assert_eq!(a.chip().core_count(), 768);
        assert_eq!(a.core().xb_count(), 16);
        assert_eq!(a.crossbar().shape(), XbShape::new(128, 128).unwrap());
        assert_eq!(a.crossbar().parallel_row(), 8);
        assert_eq!(a.crossbar().dac_bits(), 1);
        assert_eq!(a.crossbar().adc_bits(), 8);
        assert_eq!(a.crossbar().cell_type(), CellType::Reram);
        assert_eq!(a.crossbar().cell_bits(), 2);
        assert_eq!(a.chip().l0_bw_bits_per_cycle(), Some(384));
        assert_eq!(a.core().l1_bw_bits_per_cycle(), Some(8192));
        assert_eq!(a.chip().alu_ops_per_cycle(), Some(1024));
    }

    #[test]
    fn figure17_jia() {
        let a = jia_isscc21();
        assert_eq!(a.mode(), ComputingMode::Cm);
        assert_eq!(a.chip().core_count(), 16);
        assert_eq!(a.core().xb_count(), 1);
        assert_eq!(a.crossbar().shape(), XbShape::new(1152, 256).unwrap());
        assert!(a.crossbar().full_parallel());
        assert_eq!(a.crossbar().cell_type(), CellType::Sram);
        assert_eq!(a.chip().noc(), NocKind::DisjointBufferSwitch);
    }

    #[test]
    fn figure18_puma() {
        let a = puma();
        assert_eq!(a.mode(), ComputingMode::Xbm);
        assert_eq!(a.chip().core_count(), 138);
        assert_eq!(a.core().xb_count(), 2);
        assert_eq!(a.chip().l0_size_bits(), Some(96 * 1024 * 8));
        assert_eq!(a.core().l1_size_bits(), Some(1024 * 8));
        assert_eq!(a.crossbar().cell_bits(), 2);
    }

    #[test]
    fn figure19_jain() {
        let a = jain_sram();
        assert_eq!(a.mode(), ComputingMode::Wlm);
        assert_eq!(a.chip().core_count(), 4);
        assert_eq!(a.core().xb_count(), 2);
        assert_eq!(a.crossbar().shape(), XbShape::new(256, 64).unwrap());
        assert_eq!(a.crossbar().parallel_row(), 32);
        assert_eq!(a.crossbar().adc_bits(), 6);
        assert!(!a.crossbar().full_parallel());
    }

    #[test]
    fn table2_example_matches_walkthrough() {
        let a = table2_example();
        assert_eq!(a.chip().core_count(), 2);
        assert_eq!(a.core().xb_count(), 2);
        assert_eq!(a.crossbar().shape(), XbShape::new(32, 128).unwrap());
        assert_eq!(a.crossbar().parallel_row(), 16);
        assert_eq!(a.crossbar().cell_bits(), 2);
    }

    #[test]
    fn sensitivity_baseline_has_wide_crossbars() {
        let a = sensitivity_baseline();
        assert_eq!(a.crossbar().shape(), XbShape::new(128, 256).unwrap());
        assert_eq!(a.mode(), ComputingMode::Wlm);
        assert_eq!(a.chip().core_count(), 768);
    }

    #[test]
    fn all_presets_describe_without_panicking() {
        for arch in all() {
            let d = arch.describe();
            assert!(d.contains("Computing_Mode"));
        }
    }

    #[test]
    fn presets_cover_every_mode_and_multiple_devices() {
        let archs = all();
        for mode in ComputingMode::ALL {
            assert!(
                archs.iter().any(|a| a.mode() == mode),
                "no preset exposes {mode}"
            );
        }
        assert!(archs
            .iter()
            .any(|a| a.crossbar().cell_type() == CellType::Sram));
        assert!(archs
            .iter()
            .any(|a| a.crossbar().cell_type() == CellType::Reram));
    }
}
