//! JSON exchange format for `Abs-arch` descriptions.
//!
//! Mirrors the paper's description blocks (Figures 17–19): one object per
//! tier plus the computing mode. Deserialization rebuilds the architecture
//! through the validated constructors, so a document with, say,
//! `parallel_row > xb_size.rows` is rejected with the same [`ArchError`]
//! the builder would raise.
//!
//! ```
//! use cim_arch::{presets, from_json, to_json};
//!
//! let arch = presets::jain_sram();
//! let round_tripped = from_json(&to_json(&arch)).unwrap();
//! assert_eq!(round_tripped, arch);
//! ```

use crate::{
    ArchError, CellType, ChipTier, CimArchitecture, ComputingMode, CoreTier, CrossbarTier, NocCost,
    NocKind, Result, XbShape,
};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
enum NocKindDoc {
    Mesh,
    HTree,
    SharedBuffer,
    DisjointBufferSwitch,
    Ideal,
}

impl From<NocKind> for NocKindDoc {
    fn from(k: NocKind) -> Self {
        match k {
            NocKind::Mesh => NocKindDoc::Mesh,
            NocKind::HTree => NocKindDoc::HTree,
            NocKind::SharedBuffer => NocKindDoc::SharedBuffer,
            NocKind::DisjointBufferSwitch => NocKindDoc::DisjointBufferSwitch,
            _ => NocKindDoc::Ideal,
        }
    }
}

impl From<NocKindDoc> for NocKind {
    fn from(k: NocKindDoc) -> Self {
        match k {
            NocKindDoc::Mesh => NocKind::Mesh,
            NocKindDoc::HTree => NocKind::HTree,
            NocKindDoc::SharedBuffer => NocKind::SharedBuffer,
            NocKindDoc::DisjointBufferSwitch => NocKind::DisjointBufferSwitch,
            NocKindDoc::Ideal => NocKind::Ideal,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
enum NocCostDoc {
    Ideal,
    UniformPerBit(f64),
    Matrix(Vec<Vec<f64>>),
}

impl From<&NocCost> for NocCostDoc {
    fn from(c: &NocCost) -> Self {
        match c {
            NocCost::UniformPerBit(x) => NocCostDoc::UniformPerBit(*x),
            NocCost::Matrix(m) => NocCostDoc::Matrix(m.clone()),
            _ => NocCostDoc::Ideal,
        }
    }
}

impl From<NocCostDoc> for NocCost {
    fn from(c: NocCostDoc) -> Self {
        match c {
            NocCostDoc::Ideal => NocCost::Ideal,
            NocCostDoc::UniformPerBit(x) => NocCost::UniformPerBit(x),
            NocCostDoc::Matrix(m) => NocCost::Matrix(m),
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "SCREAMING-KEBAB-CASE")]
enum CellTypeDoc {
    Sram,
    Reram,
    Flash,
    Pcm,
    SttMram,
}

impl From<CellType> for CellTypeDoc {
    fn from(c: CellType) -> Self {
        match c {
            CellType::Sram => CellTypeDoc::Sram,
            CellType::Reram => CellTypeDoc::Reram,
            CellType::Flash => CellTypeDoc::Flash,
            CellType::Pcm => CellTypeDoc::Pcm,
            _ => CellTypeDoc::SttMram,
        }
    }
}

impl From<CellTypeDoc> for CellType {
    fn from(c: CellTypeDoc) -> Self {
        match c {
            CellTypeDoc::Sram => CellType::Sram,
            CellTypeDoc::Reram => CellType::Reram,
            CellTypeDoc::Flash => CellType::Flash,
            CellTypeDoc::Pcm => CellType::Pcm,
            CellTypeDoc::SttMram => CellType::SttMram,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ChipDoc {
    core_number: [u32; 2],
    #[serde(default)]
    core_noc: Option<NocKindDoc>,
    #[serde(default)]
    core_noc_cost: Option<NocCostDoc>,
    #[serde(default)]
    l0_size_bits: Option<u64>,
    #[serde(default)]
    l0_bw_bits_per_cycle: Option<u64>,
    #[serde(default)]
    alu_ops_per_cycle: Option<u64>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct CoreDoc {
    xb_number: [u32; 2],
    #[serde(default)]
    xb_noc: Option<NocKindDoc>,
    #[serde(default)]
    xb_noc_cost: Option<NocCostDoc>,
    #[serde(default)]
    l1_size_bits: Option<u64>,
    #[serde(default)]
    l1_bw_bits_per_cycle: Option<u64>,
    #[serde(default)]
    alu_ops_per_cycle: Option<u64>,
    #[serde(default = "default_true")]
    analog_partial_sum: bool,
}

fn default_true() -> bool {
    true
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct XbDoc {
    xb_size: [u32; 2],
    parallel_row: u32,
    dac_bits: u32,
    adc_bits: u32,
    cell_type: CellTypeDoc,
    cell_bits: u32,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ArchDoc {
    name: String,
    chip: ChipDoc,
    core: CoreDoc,
    crossbar: XbDoc,
    computing_mode: ComputingModeDoc,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[serde(rename_all = "UPPERCASE")]
enum ComputingModeDoc {
    Cm,
    Xbm,
    Wlm,
}

impl From<ComputingMode> for ComputingModeDoc {
    fn from(m: ComputingMode) -> Self {
        match m {
            ComputingMode::Cm => ComputingModeDoc::Cm,
            ComputingMode::Xbm => ComputingModeDoc::Xbm,
            ComputingMode::Wlm => ComputingModeDoc::Wlm,
        }
    }
}

impl From<ComputingModeDoc> for ComputingMode {
    fn from(m: ComputingModeDoc) -> Self {
        match m {
            ComputingModeDoc::Cm => ComputingMode::Cm,
            ComputingModeDoc::Xbm => ComputingMode::Xbm,
            ComputingModeDoc::Wlm => ComputingMode::Wlm,
        }
    }
}

/// Serializes an architecture description to JSON.
#[must_use]
pub fn to_json(arch: &CimArchitecture) -> String {
    let chip = arch.chip();
    let core = arch.core();
    let xb = arch.crossbar();
    let doc = ArchDoc {
        name: arch.name().to_owned(),
        chip: ChipDoc {
            core_number: [chip.core_grid().0, chip.core_grid().1],
            core_noc: Some(chip.noc().into()),
            core_noc_cost: Some(chip.noc_cost().into()),
            l0_size_bits: chip.l0_size_bits(),
            l0_bw_bits_per_cycle: chip.l0_bw_bits_per_cycle(),
            alu_ops_per_cycle: chip.alu_ops_per_cycle(),
        },
        core: CoreDoc {
            xb_number: [core.xb_grid().0, core.xb_grid().1],
            xb_noc: Some(core.noc().into()),
            xb_noc_cost: Some(core.noc_cost().into()),
            l1_size_bits: core.l1_size_bits(),
            l1_bw_bits_per_cycle: core.l1_bw_bits_per_cycle(),
            alu_ops_per_cycle: core.alu_ops_per_cycle(),
            analog_partial_sum: core.analog_partial_sum(),
        },
        crossbar: XbDoc {
            xb_size: [xb.shape().rows, xb.shape().cols],
            parallel_row: xb.parallel_row(),
            dac_bits: xb.dac_bits(),
            adc_bits: xb.adc_bits(),
            cell_type: xb.cell_type().into(),
            cell_bits: xb.cell_bits(),
        },
        computing_mode: arch.mode().into(),
    };
    serde_json::to_string_pretty(&doc).expect("architecture documents always serialize")
}

/// Parses an architecture description from JSON, re-validating every
/// parameter through the tier constructors.
///
/// # Errors
/// Returns [`ArchError`] when the document is not valid JSON or any tier
/// parameter is out of range.
pub fn from_json(json: &str) -> Result<CimArchitecture> {
    let doc: ArchDoc = serde_json::from_str(json)
        .map_err(|e| ArchError::inconsistent(format!("JSON parse error: {e}")))?;
    let mut chip = ChipTier::new(doc.chip.core_number[0], doc.chip.core_number[1])?;
    chip = chip.with_noc(
        doc.chip
            .core_noc
            .map(NocKind::from)
            .unwrap_or(NocKind::Ideal),
        doc.chip
            .core_noc_cost
            .map(NocCost::from)
            .unwrap_or(NocCost::Ideal),
    );
    if let Some(b) = doc.chip.l0_size_bits {
        chip = chip.with_l0_size_bits(b);
    }
    if let Some(b) = doc.chip.l0_bw_bits_per_cycle {
        chip = chip.with_l0_bw(b);
    }
    if let Some(b) = doc.chip.alu_ops_per_cycle {
        chip = chip.with_alu_ops(b);
    }
    let mut core = CoreTier::new(doc.core.xb_number[0], doc.core.xb_number[1])?;
    core = core
        .with_noc(
            doc.core.xb_noc.map(NocKind::from).unwrap_or(NocKind::Ideal),
            doc.core
                .xb_noc_cost
                .map(NocCost::from)
                .unwrap_or(NocCost::Ideal),
        )
        .with_analog_partial_sum(doc.core.analog_partial_sum);
    if let Some(b) = doc.core.l1_size_bits {
        core = core.with_l1_size_bits(b);
    }
    if let Some(b) = doc.core.l1_bw_bits_per_cycle {
        core = core.with_l1_bw(b);
    }
    if let Some(b) = doc.core.alu_ops_per_cycle {
        core = core.with_alu_ops(b);
    }
    let crossbar = CrossbarTier::new(
        XbShape::new(doc.crossbar.xb_size[0], doc.crossbar.xb_size[1])?,
        doc.crossbar.parallel_row,
        doc.crossbar.dac_bits,
        doc.crossbar.adc_bits,
        doc.crossbar.cell_type.into(),
        doc.crossbar.cell_bits,
    )?;
    CimArchitecture::builder(doc.name)
        .chip(chip)
        .core(core)
        .crossbar(crossbar)
        .mode(doc.computing_mode.into())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn every_preset_round_trips() {
        for arch in presets::all() {
            let json = to_json(&arch);
            let back = from_json(&json).unwrap_or_else(|e| panic!("{}: {e}", arch.name()));
            assert_eq!(back, arch, "{}", arch.name());
        }
    }

    #[test]
    fn invalid_parallel_row_rejected_on_load() {
        let mut json = to_json(&presets::jain_sram());
        json = json.replace("\"parallel_row\": 32", "\"parallel_row\": 9999");
        let err = from_json(&json).unwrap_err();
        assert!(err.to_string().contains("parallel_row"));
    }

    #[test]
    fn parse_error_reported() {
        assert!(from_json("{nope").is_err());
    }

    #[test]
    fn minimal_document_defaults_to_ideal() {
        let json = r#"{
            "name": "minimal",
            "chip": { "core_number": [1, 4] },
            "core": { "xb_number": [1, 2] },
            "crossbar": {
                "xb_size": [64, 64], "parallel_row": 8,
                "dac_bits": 1, "adc_bits": 8,
                "cell_type": "SRAM", "cell_bits": 1
            },
            "computing_mode": "WLM"
        }"#;
        let arch = from_json(json).unwrap();
        assert_eq!(arch.chip().core_count(), 4);
        assert_eq!(arch.mode(), ComputingMode::Wlm);
        assert!(arch.chip().noc_cost().is_ideal());
        assert!(arch.core().analog_partial_sum());
    }
}
