//! The three architecture-abstraction tiers (paper §3.2.1–§3.2.3).
//!
//! Each tier owns exactly the parameters the paper lists for it
//! (Figures 5, 6 and 8). Parameters the paper marks `\` ("considered
//! ideal, their influence disregarded") are modelled as `Option::None`.

use crate::ArchError;

/// Memory-cell technology of a crossbar (Figure 8, parameter `Type`).
///
/// The device type drives the scheduling policy: technologies with costly
/// writes (ReRAM, Flash, PCM) keep weights frozen in the crossbars during
/// inference, whereas SRAM-based CIMs may rewrite crossbar contents between
/// operators (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CellType {
    /// Static RAM cell — fast symmetric read/write.
    Sram,
    /// Resistive RAM cell — fast read, slow and endurance-limited write.
    Reram,
    /// NOR-Flash cell — very slow write, high density.
    Flash,
    /// Phase-change memory cell.
    Pcm,
    /// Spin-transfer-torque MRAM cell.
    SttMram,
}

impl CellType {
    /// Whether in-inference weight rewriting is considered affordable for
    /// this technology. SRAM (and STT-MRAM) support flexible updates; the
    /// resistive/floating-gate technologies "ford write operations during
    /// computation" (paper §2.1).
    #[must_use]
    pub fn writes_are_cheap(self) -> bool {
        matches!(self, CellType::Sram | CellType::SttMram)
    }

    /// Crossbar write latency relative to a read, used by the cost model.
    /// Reads are comparable across technologies; writes differ by orders of
    /// magnitude (paper §1 challenge 1, citing its reference \[3\]).
    #[must_use]
    pub fn write_read_latency_ratio(self) -> u64 {
        match self {
            CellType::Sram => 1,
            CellType::SttMram => 4,
            CellType::Pcm => 32,
            CellType::Reram => 64,
            CellType::Flash => 512,
        }
    }

    /// Canonical name as written in an `Abs-arch` description
    /// (e.g. `"ReRAM"`, `"SRAM"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CellType::Sram => "SRAM",
            CellType::Reram => "ReRAM",
            CellType::Flash => "FLASH",
            CellType::Pcm => "PCM",
            CellType::SttMram => "STT-MRAM",
        }
    }
}

impl std::fmt::Display for CellType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Network-on-chip topology (Figures 5 and 6, parameters `core_noc` /
/// `xb_noc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum NocKind {
    /// 2-D mesh (e.g. PUMA's tile interconnect).
    Mesh,
    /// H-tree (e.g. ISAAC's intra-tile network).
    HTree,
    /// Communication through a shared buffer (Table 2 example).
    SharedBuffer,
    /// Disjoint buffer switch (Jia et al., Figure 17).
    DisjointBufferSwitch,
    /// Ideal interconnect: transfers are free. Used for parameters the
    /// paper marks `\`.
    Ideal,
}

impl NocKind {
    /// Name as it appears in `Abs-arch` descriptions.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NocKind::Mesh => "mesh",
            NocKind::HTree => "H-tree",
            NocKind::SharedBuffer => "shared buffer",
            NocKind::DisjointBufferSwitch => "disjoint buffer switch",
            NocKind::Ideal => "ideal",
        }
    }
}

impl std::fmt::Display for NocKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Data-transfer cost of a NoC (parameters `core_noc_cost` / `xb_noc_cost`).
///
/// The paper abstracts this as a matrix recording the transfer cost between
/// each pair of units; in practice most designs are regular enough for a
/// uniform per-hop cost, so both forms are supported.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NocCost {
    /// Transfers are free (ideal `\` parameter).
    Ideal,
    /// Constant cost in cycles per transferred bit, regardless of endpoints.
    UniformPerBit(f64),
    /// Full endpoint-to-endpoint cost matrix, cycles per bit;
    /// `matrix[src][dst]`.
    Matrix(Vec<Vec<f64>>),
}

impl NocCost {
    /// Cycles per bit to move data from unit `src` to unit `dst`.
    ///
    /// For [`NocCost::Matrix`], out-of-range indices cost the maximum entry
    /// of the matrix (conservative), or 0.0 for an empty matrix.
    #[must_use]
    pub fn cycles_per_bit(&self, src: usize, dst: usize) -> f64 {
        match self {
            NocCost::Ideal => 0.0,
            NocCost::UniformPerBit(c) => {
                if src == dst {
                    0.0
                } else {
                    *c
                }
            }
            NocCost::Matrix(m) => m
                .get(src)
                .and_then(|row| row.get(dst))
                .copied()
                .unwrap_or_else(|| m.iter().flat_map(|r| r.iter().copied()).fold(0.0, f64::max)),
        }
    }

    /// The worst-case (maximum) per-bit cost over all endpoint pairs.
    #[must_use]
    pub fn worst_case_cycles_per_bit(&self) -> f64 {
        match self {
            NocCost::Ideal => 0.0,
            NocCost::UniformPerBit(c) => *c,
            NocCost::Matrix(m) => m.iter().flat_map(|r| r.iter().copied()).fold(0.0, f64::max),
        }
    }

    /// Returns `true` if every transfer is free.
    #[must_use]
    pub fn is_ideal(&self) -> bool {
        self.worst_case_cycles_per_bit() == 0.0
    }
}

/// Shape of a memory crossbar: `[rows × cols]` memory cells
/// (Figure 8, parameter `xb_size`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct XbShape {
    /// Number of wordlines (matrix-row dimension binding target XBR).
    pub rows: u32,
    /// Number of bitlines (matrix-column dimension binding target XBC).
    pub cols: u32,
}

impl XbShape {
    /// Creates a shape; both dimensions must be non-zero.
    ///
    /// # Errors
    /// Returns [`ArchError::InvalidParameter`] if either dimension is zero.
    pub fn new(rows: u32, cols: u32) -> crate::Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(ArchError::invalid(
                "xb_size",
                format!("crossbar dimensions must be non-zero, got [{rows}, {cols}]"),
            ));
        }
        Ok(XbShape { rows, cols })
    }

    /// Total number of memory cells in the crossbar.
    #[must_use]
    pub fn cells(self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols)
    }
}

impl std::fmt::Display for XbShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.rows, self.cols)
    }
}

/// Chip-tier architecture abstraction (paper §3.2.1, Figure 5).
///
/// Describes everything the compiler can see of the whole chip in core mode:
/// how many cores exist, how they talk to each other, how big and fast the
/// global (L0) buffer is, and how fast the chip-level digital ALU is.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipTier {
    core_rows: u32,
    core_cols: u32,
    core_noc: NocKind,
    core_noc_cost: NocCost,
    l0_size_bits: Option<u64>,
    l0_bw_bits_per_cycle: Option<u64>,
    alu_ops_per_cycle: Option<u64>,
}

impl ChipTier {
    /// Creates a chip tier with `core_rows * core_cols` cores and every
    /// other parameter ideal (`\` in the paper's notation).
    ///
    /// # Errors
    /// Returns [`ArchError::InvalidParameter`] if either grid dimension is 0.
    pub fn new(core_rows: u32, core_cols: u32) -> crate::Result<Self> {
        if core_rows == 0 || core_cols == 0 {
            return Err(ArchError::invalid(
                "core_number",
                format!("core grid must be non-empty, got [{core_rows} * {core_cols}]"),
            ));
        }
        Ok(ChipTier {
            core_rows,
            core_cols,
            core_noc: NocKind::Ideal,
            core_noc_cost: NocCost::Ideal,
            l0_size_bits: None,
            l0_bw_bits_per_cycle: None,
            alu_ops_per_cycle: None,
        })
    }

    /// Creates a chip tier from a flat core count (single-row grid).
    ///
    /// # Errors
    /// Returns [`ArchError::InvalidParameter`] if `core_number` is 0.
    pub fn with_core_count(core_number: u32) -> crate::Result<Self> {
        ChipTier::new(1, core_number)
    }

    /// Sets the NoC topology and cost.
    #[must_use]
    pub fn with_noc(mut self, kind: NocKind, cost: NocCost) -> Self {
        self.core_noc = kind;
        self.core_noc_cost = cost;
        self
    }

    /// Sets the global-buffer capacity in bits (`L0 size`).
    #[must_use]
    pub fn with_l0_size_bits(mut self, bits: u64) -> Self {
        self.l0_size_bits = Some(bits);
        self
    }

    /// Sets the global-buffer bandwidth in bits per cycle (`L0 BW`).
    #[must_use]
    pub fn with_l0_bw(mut self, bits_per_cycle: u64) -> Self {
        self.l0_bw_bits_per_cycle = Some(bits_per_cycle);
        self
    }

    /// Sets the chip-level digital ALU throughput (`ALU`, operations per
    /// cycle). This bounds CIM-unsupported operators such as ReLU/pooling.
    #[must_use]
    pub fn with_alu_ops(mut self, ops_per_cycle: u64) -> Self {
        self.alu_ops_per_cycle = Some(ops_per_cycle);
        self
    }

    /// Total number of cores in the chip (`core_number`).
    #[must_use]
    pub fn core_count(&self) -> u32 {
        self.core_rows * self.core_cols
    }

    /// Core grid dimensions `[rows, cols]`.
    #[must_use]
    pub fn core_grid(&self) -> (u32, u32) {
        (self.core_rows, self.core_cols)
    }

    /// NoC topology between cores.
    #[must_use]
    pub fn noc(&self) -> NocKind {
        self.core_noc
    }

    /// NoC transfer-cost model between cores.
    #[must_use]
    pub fn noc_cost(&self) -> &NocCost {
        &self.core_noc_cost
    }

    /// Global-buffer capacity in bits; `None` means ideal/unbounded.
    #[must_use]
    pub fn l0_size_bits(&self) -> Option<u64> {
        self.l0_size_bits
    }

    /// Global-buffer bandwidth in bits/cycle; `None` means ideal.
    #[must_use]
    pub fn l0_bw_bits_per_cycle(&self) -> Option<u64> {
        self.l0_bw_bits_per_cycle
    }

    /// Digital-ALU throughput in ops/cycle; `None` means ideal.
    #[must_use]
    pub fn alu_ops_per_cycle(&self) -> Option<u64> {
        self.alu_ops_per_cycle
    }
}

/// Core-tier architecture abstraction (paper §3.2.2, Figure 6).
///
/// Describes the inside of one core: its crossbars, the NoC connecting
/// them, the local (L1) buffer, and the core-level digital ALU.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreTier {
    xb_rows: u32,
    xb_cols: u32,
    xb_noc: NocKind,
    xb_noc_cost: NocCost,
    l1_size_bits: Option<u64>,
    l1_bw_bits_per_cycle: Option<u64>,
    alu_ops_per_cycle: Option<u64>,
    analog_partial_sum: bool,
}

impl CoreTier {
    /// Creates a core tier with `xb_rows * xb_cols` crossbars per core and
    /// every other parameter ideal.
    ///
    /// # Errors
    /// Returns [`ArchError::InvalidParameter`] if either grid dimension is 0.
    pub fn new(xb_rows: u32, xb_cols: u32) -> crate::Result<Self> {
        if xb_rows == 0 || xb_cols == 0 {
            return Err(ArchError::invalid(
                "xb_number",
                format!("crossbar grid must be non-empty, got [{xb_rows} * {xb_cols}]"),
            ));
        }
        Ok(CoreTier {
            xb_rows,
            xb_cols,
            xb_noc: NocKind::Ideal,
            xb_noc_cost: NocCost::Ideal,
            l1_size_bits: None,
            l1_bw_bits_per_cycle: None,
            alu_ops_per_cycle: None,
            analog_partial_sum: true,
        })
    }

    /// Creates a core tier from a flat crossbar count (single-row grid).
    ///
    /// # Errors
    /// Returns [`ArchError::InvalidParameter`] if `xb_number` is 0.
    pub fn with_xb_count(xb_number: u32) -> crate::Result<Self> {
        CoreTier::new(1, xb_number)
    }

    /// Sets the intra-core NoC topology and cost.
    #[must_use]
    pub fn with_noc(mut self, kind: NocKind, cost: NocCost) -> Self {
        self.xb_noc = kind;
        self.xb_noc_cost = cost;
        self
    }

    /// Sets the local-buffer capacity in bits (`L1 size`).
    #[must_use]
    pub fn with_l1_size_bits(mut self, bits: u64) -> Self {
        self.l1_size_bits = Some(bits);
        self
    }

    /// Sets the local-buffer bandwidth in bits per cycle (`L1 BW`).
    #[must_use]
    pub fn with_l1_bw(mut self, bits_per_cycle: u64) -> Self {
        self.l1_bw_bits_per_cycle = Some(bits_per_cycle);
        self
    }

    /// Sets the core-level digital ALU throughput in ops/cycle.
    #[must_use]
    pub fn with_alu_ops(mut self, ops_per_cycle: u64) -> Self {
        self.alu_ops_per_cycle = Some(ops_per_cycle);
        self
    }

    /// Declares whether the core has an analog shift-and-accumulate tree
    /// merging the partial sums of vertically-stacked crossbars in
    /// parallel (ISAAC/PUMA-style S&A, Figure 2's `S&A` block).
    ///
    /// Macro-style designs without it (e.g. Jain et al.'s ±CIM macro, the
    /// Table 2 walkthrough machine) must read out and accumulate vertical
    /// partial sums serially through the shared converter chain — unless
    /// VVM-grained scheduling remaps the rows and merges partials on the
    /// digital ALU, which is exactly the paper's "converting serial
    /// computations into parallel computations" (§4.2, Work 3).
    #[must_use]
    pub fn with_analog_partial_sum(mut self, has: bool) -> Self {
        self.analog_partial_sum = has;
        self
    }

    /// Whether vertically-stacked crossbars accumulate in parallel through
    /// analog S&A hardware. See [`CoreTier::with_analog_partial_sum`].
    #[must_use]
    pub fn analog_partial_sum(&self) -> bool {
        self.analog_partial_sum
    }

    /// Number of crossbars per core (`xb_number`).
    #[must_use]
    pub fn xb_count(&self) -> u32 {
        self.xb_rows * self.xb_cols
    }

    /// Crossbar grid dimensions `[rows, cols]`.
    #[must_use]
    pub fn xb_grid(&self) -> (u32, u32) {
        (self.xb_rows, self.xb_cols)
    }

    /// Intra-core NoC topology.
    #[must_use]
    pub fn noc(&self) -> NocKind {
        self.xb_noc
    }

    /// Intra-core NoC transfer-cost model.
    #[must_use]
    pub fn noc_cost(&self) -> &NocCost {
        &self.xb_noc_cost
    }

    /// Local-buffer capacity in bits; `None` means ideal/unbounded.
    #[must_use]
    pub fn l1_size_bits(&self) -> Option<u64> {
        self.l1_size_bits
    }

    /// Local-buffer bandwidth in bits/cycle; `None` means ideal.
    #[must_use]
    pub fn l1_bw_bits_per_cycle(&self) -> Option<u64> {
        self.l1_bw_bits_per_cycle
    }

    /// Core-level ALU throughput in ops/cycle; `None` means ideal.
    #[must_use]
    pub fn alu_ops_per_cycle(&self) -> Option<u64> {
        self.alu_ops_per_cycle
    }
}

/// Crossbar-tier architecture abstraction (paper §3.2.3, Figure 8).
///
/// The fundamental computational unit: the crossbar array with its
/// peripheral circuits (wordline drivers, DAC on the input side, ADC /
/// sense amplifiers on the output side) and its memory-cell technology.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarTier {
    shape: XbShape,
    parallel_row: u32,
    dac_bits: u32,
    adc_bits: u32,
    cell_type: CellType,
    cell_bits: u32,
}

impl CrossbarTier {
    /// Creates a crossbar tier.
    ///
    /// * `shape` — crossbar dimensions (`xb_size`).
    /// * `parallel_row` — max number of wordlines activated at once.
    /// * `dac_bits` / `adc_bits` — converter precisions.
    /// * `cell_type` / `cell_bits` — memory-cell technology and bits stored
    ///   per cell (`Type` / `Precision`).
    ///
    /// # Errors
    /// Returns [`ArchError`] if `parallel_row` is 0 or exceeds `shape.rows`,
    /// or if any precision is 0.
    pub fn new(
        shape: XbShape,
        parallel_row: u32,
        dac_bits: u32,
        adc_bits: u32,
        cell_type: CellType,
        cell_bits: u32,
    ) -> crate::Result<Self> {
        if parallel_row == 0 {
            return Err(ArchError::invalid("parallel_row", "must be at least 1"));
        }
        if parallel_row > shape.rows {
            return Err(ArchError::invalid(
                "parallel_row",
                format!(
                    "cannot activate {parallel_row} rows in a crossbar with {} rows",
                    shape.rows
                ),
            ));
        }
        if dac_bits == 0 {
            return Err(ArchError::invalid(
                "DAC",
                "precision must be at least 1 bit",
            ));
        }
        if adc_bits == 0 {
            return Err(ArchError::invalid(
                "ADC",
                "precision must be at least 1 bit",
            ));
        }
        if cell_bits == 0 {
            return Err(ArchError::invalid(
                "Precision",
                "cell precision must be at least 1 bit",
            ));
        }
        Ok(CrossbarTier {
            shape,
            parallel_row,
            dac_bits,
            adc_bits,
            cell_type,
            cell_bits,
        })
    }

    /// Crossbar dimensions (`xb_size`).
    #[must_use]
    pub fn shape(&self) -> XbShape {
        self.shape
    }

    /// Maximum number of simultaneously activated wordlines
    /// (`parallel row`).
    #[must_use]
    pub fn parallel_row(&self) -> u32 {
        self.parallel_row
    }

    /// DAC precision in bits.
    #[must_use]
    pub fn dac_bits(&self) -> u32 {
        self.dac_bits
    }

    /// ADC precision in bits.
    #[must_use]
    pub fn adc_bits(&self) -> u32 {
        self.adc_bits
    }

    /// Memory-cell technology (`Type`).
    #[must_use]
    pub fn cell_type(&self) -> CellType {
        self.cell_type
    }

    /// Bits stored per memory cell (`Precision`).
    #[must_use]
    pub fn cell_bits(&self) -> u32 {
        self.cell_bits
    }

    /// Number of cell columns needed to hold one `weight_bits`-bit weight
    /// (bit slicing across adjacent columns, Figure 7's B→XBC binding).
    #[must_use]
    pub fn columns_per_weight(&self, weight_bits: u32) -> u32 {
        weight_bits.div_ceil(self.cell_bits)
    }

    /// Number of row-group activations required to engage `used_rows`
    /// wordlines of one crossbar (WLM cost of a full-depth MVM).
    #[must_use]
    pub fn activations_for_rows(&self, used_rows: u32) -> u32 {
        used_rows.min(self.shape.rows).div_ceil(self.parallel_row)
    }

    /// Number of input bit-slices needed to feed an `activation_bits`-bit
    /// input vector through the DAC (bit-serial input streaming).
    #[must_use]
    pub fn input_slices(&self, activation_bits: u32) -> u32 {
        activation_bits.div_ceil(self.dac_bits)
    }

    /// True when the whole crossbar can be engaged in a single activation
    /// (`parallel_row == rows`), i.e. XBM-style operation has no row
    /// serialization penalty.
    #[must_use]
    pub fn full_parallel(&self) -> bool {
        self.parallel_row == self.shape.rows
    }

    /// Returns a copy with a different crossbar shape, clamping
    /// `parallel_row` to the new row count so a previously full-parallel
    /// (or wide-parallel) tier stays valid when the crossbar shrinks.
    ///
    /// This is the design-space-exploration mutation for the `xb_size`
    /// axis: every other peripheral parameter is preserved.
    ///
    /// # Errors
    /// Propagates [`CrossbarTier::new`] validation errors.
    pub fn with_shape(&self, shape: XbShape) -> crate::Result<Self> {
        CrossbarTier::new(
            shape,
            self.parallel_row.min(shape.rows),
            self.dac_bits,
            self.adc_bits,
            self.cell_type,
            self.cell_bits,
        )
    }

    /// Returns a copy with a different `parallel_row` (word-line
    /// parallelism sweep, Figure 22d).
    ///
    /// # Errors
    /// Propagates [`CrossbarTier::new`] validation errors (0 or more rows
    /// than the crossbar has).
    pub fn with_parallel_row(&self, parallel_row: u32) -> crate::Result<Self> {
        CrossbarTier::new(
            self.shape,
            parallel_row,
            self.dac_bits,
            self.adc_bits,
            self.cell_type,
            self.cell_bits,
        )
    }

    /// Returns a copy with a different ADC precision (converter-resolution
    /// sweep axis).
    ///
    /// # Errors
    /// Propagates [`CrossbarTier::new`] validation errors (zero bits).
    pub fn with_adc_bits(&self, adc_bits: u32) -> crate::Result<Self> {
        CrossbarTier::new(
            self.shape,
            self.parallel_row,
            self.dac_bits,
            adc_bits,
            self.cell_type,
            self.cell_bits,
        )
    }

    /// Returns a copy with a different DAC precision.
    ///
    /// # Errors
    /// Propagates [`CrossbarTier::new`] validation errors (zero bits).
    pub fn with_dac_bits(&self, dac_bits: u32) -> crate::Result<Self> {
        CrossbarTier::new(
            self.shape,
            self.parallel_row,
            dac_bits,
            self.adc_bits,
            self.cell_type,
            self.cell_bits,
        )
    }

    /// Returns a copy with a different per-cell precision (device
    /// bit-width sweep axis).
    ///
    /// # Errors
    /// Propagates [`CrossbarTier::new`] validation errors (zero bits).
    pub fn with_cell_bits(&self, cell_bits: u32) -> crate::Result<Self> {
        CrossbarTier::new(
            self.shape,
            self.parallel_row,
            self.dac_bits,
            self.adc_bits,
            self.cell_type,
            cell_bits,
        )
    }

    /// Returns a copy with a different memory-cell technology.
    ///
    /// # Errors
    /// Propagates [`CrossbarTier::new`] validation errors.
    pub fn with_cell_type(&self, cell_type: CellType) -> crate::Result<Self> {
        CrossbarTier::new(
            self.shape,
            self.parallel_row,
            self.dac_bits,
            self.adc_bits,
            cell_type,
            self.cell_bits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xb() -> CrossbarTier {
        CrossbarTier::new(XbShape::new(128, 128).unwrap(), 8, 1, 8, CellType::Reram, 2).unwrap()
    }

    #[test]
    fn xb_shape_rejects_zero() {
        assert!(XbShape::new(0, 128).is_err());
        assert!(XbShape::new(128, 0).is_err());
        assert_eq!(XbShape::new(32, 128).unwrap().cells(), 32 * 128);
    }

    #[test]
    fn chip_tier_counts_cores() {
        let chip = ChipTier::new(24, 32).unwrap();
        assert_eq!(chip.core_count(), 768);
        assert_eq!(chip.core_grid(), (24, 32));
        assert!(ChipTier::new(0, 4).is_err());
    }

    #[test]
    fn chip_tier_defaults_are_ideal() {
        let chip = ChipTier::with_core_count(4).unwrap();
        assert_eq!(chip.noc(), NocKind::Ideal);
        assert!(chip.noc_cost().is_ideal());
        assert_eq!(chip.l0_size_bits(), None);
        assert_eq!(chip.alu_ops_per_cycle(), None);
    }

    #[test]
    fn core_tier_builder_chain() {
        let core = CoreTier::with_xb_count(16)
            .unwrap()
            .with_noc(NocKind::HTree, NocCost::UniformPerBit(0.25))
            .with_l1_size_bits(8 * 1024)
            .with_l1_bw(8192)
            .with_alu_ops(1024);
        assert_eq!(core.xb_count(), 16);
        assert_eq!(core.noc(), NocKind::HTree);
        assert_eq!(core.l1_bw_bits_per_cycle(), Some(8192));
        assert_eq!(core.alu_ops_per_cycle(), Some(1024));
    }

    #[test]
    fn crossbar_tier_validation() {
        let shape = XbShape::new(128, 128).unwrap();
        assert!(CrossbarTier::new(shape, 0, 1, 8, CellType::Sram, 1).is_err());
        assert!(CrossbarTier::new(shape, 129, 1, 8, CellType::Sram, 1).is_err());
        assert!(CrossbarTier::new(shape, 8, 0, 8, CellType::Sram, 1).is_err());
        assert!(CrossbarTier::new(shape, 8, 1, 0, CellType::Sram, 1).is_err());
        assert!(CrossbarTier::new(shape, 8, 1, 8, CellType::Sram, 0).is_err());
        assert!(CrossbarTier::new(shape, 128, 1, 8, CellType::Sram, 1)
            .unwrap()
            .full_parallel());
    }

    #[test]
    fn columns_per_weight_bit_slices() {
        // 8-bit weights on 2-bit cells -> 4 adjacent columns per weight.
        assert_eq!(xb().columns_per_weight(8), 4);
        // 8-bit weights on 1-bit cells -> 8 columns.
        let b =
            CrossbarTier::new(XbShape::new(256, 64).unwrap(), 32, 1, 6, CellType::Sram, 1).unwrap();
        assert_eq!(b.columns_per_weight(8), 8);
        // exact fit
        assert_eq!(xb().columns_per_weight(2), 1);
    }

    #[test]
    fn activations_for_rows_groups_wordlines() {
        // 128-row crossbar, parallel_row = 8 -> 16 activations for full use.
        assert_eq!(xb().activations_for_rows(128), 16);
        assert_eq!(xb().activations_for_rows(1), 1);
        assert_eq!(xb().activations_for_rows(9), 2);
        // requesting more rows than exist clamps to the crossbar height
        assert_eq!(xb().activations_for_rows(10_000), 16);
    }

    #[test]
    fn input_slices_bit_serial() {
        // 8-bit activations through a 1-bit DAC -> 8 slices.
        assert_eq!(xb().input_slices(8), 8);
        let wide_dac = CrossbarTier::new(
            XbShape::new(128, 128).unwrap(),
            128,
            8,
            8,
            CellType::Sram,
            1,
        )
        .unwrap();
        assert_eq!(wide_dac.input_slices(8), 1);
    }

    #[test]
    fn noc_cost_lookup() {
        let ideal = NocCost::Ideal;
        assert_eq!(ideal.cycles_per_bit(0, 5), 0.0);
        let uniform = NocCost::UniformPerBit(0.5);
        assert_eq!(uniform.cycles_per_bit(1, 1), 0.0);
        assert_eq!(uniform.cycles_per_bit(0, 1), 0.5);
        let m = NocCost::Matrix(vec![vec![0.0, 1.0], vec![2.0, 0.0]]);
        assert_eq!(m.cycles_per_bit(1, 0), 2.0);
        // out-of-range is conservative (max entry)
        assert_eq!(m.cycles_per_bit(5, 0), 2.0);
        assert_eq!(m.worst_case_cycles_per_bit(), 2.0);
    }

    #[test]
    fn cell_type_write_policy() {
        assert!(CellType::Sram.writes_are_cheap());
        assert!(!CellType::Reram.writes_are_cheap());
        assert!(!CellType::Flash.writes_are_cheap());
        assert!(
            CellType::Flash.write_read_latency_ratio() > CellType::Reram.write_read_latency_ratio()
        );
    }
}
