//! Property tests on the hardware abstraction: arbitrary valid tier
//! parameters build, describe, serialize and cost-model consistently.

use cim_arch::{
    from_json, to_json, CellType, ChipTier, CimArchitecture, ComputingMode, CoreTier, CostModel,
    CrossbarTier, NocCost, NocKind, XbShape,
};
use proptest::prelude::*;

fn cells() -> impl Strategy<Value = CellType> {
    prop_oneof![
        Just(CellType::Sram),
        Just(CellType::Reram),
        Just(CellType::Flash),
        Just(CellType::Pcm),
        Just(CellType::SttMram),
    ]
}

fn nocs() -> impl Strategy<Value = NocKind> {
    prop_oneof![
        Just(NocKind::Mesh),
        Just(NocKind::HTree),
        Just(NocKind::SharedBuffer),
        Just(NocKind::DisjointBufferSwitch),
        Just(NocKind::Ideal),
    ]
}

fn arches() -> impl Strategy<Value = CimArchitecture> {
    (
        (1u32..64, 1u32..64),
        1u32..32,
        (1u32..512, 1u32..512),
        1u32..16,
        1u32..16,
        cells(),
        1u32..8,
        nocs(),
        proptest::option::of(0.0f64..2.0),
        prop_oneof![
            Just(ComputingMode::Cm),
            Just(ComputingMode::Xbm),
            Just(ComputingMode::Wlm)
        ],
        any::<bool>(),
    )
        .prop_map(
            |(grid, xbs, (rows, cols), dac, adc, cell, bits, noc, noc_cost, mode, aps)| {
                let shape = XbShape::new(rows, cols).expect("non-zero");
                let pr = (rows / 2).max(1);
                let cost = noc_cost
                    .map(NocCost::UniformPerBit)
                    .unwrap_or(NocCost::Ideal);
                CimArchitecture::builder("prop")
                    .chip(
                        ChipTier::new(grid.0, grid.1)
                            .expect("valid")
                            .with_noc(noc, cost),
                    )
                    .core(
                        CoreTier::with_xb_count(xbs)
                            .expect("valid")
                            .with_analog_partial_sum(aps),
                    )
                    .crossbar(CrossbarTier::new(shape, pr, dac, adc, cell, bits).expect("valid"))
                    .mode(mode)
                    .build()
                    .expect("valid architecture")
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn describe_contains_every_headline_parameter(arch in arches()) {
        let d = arch.describe();
        let has_cores = d.contains(&format!("\"core_number\": {}", arch.chip().core_count()));
        let has_xbs = d.contains(&format!("\"xb_number\": {}", arch.core().xb_count()));
        let has_pr = d.contains(&format!("\"parallel row\": {}", arch.crossbar().parallel_row()));
        prop_assert!(has_cores && has_xbs && has_pr, "describe() missing parameters:\n{d}");
        prop_assert!(d.contains(arch.crossbar().cell_type().name()));
        prop_assert!(d.contains(arch.mode().name()));
    }

    #[test]
    fn json_round_trip_is_identity(arch in arches()) {
        let back = from_json(&to_json(&arch)).unwrap();
        prop_assert_eq!(back, arch);
    }

    #[test]
    fn capacity_arithmetic_is_consistent(arch in arches()) {
        let total = arch.total_crossbars();
        prop_assert_eq!(
            total,
            u64::from(arch.chip().core_count()) * u64::from(arch.core().xb_count())
        );
        prop_assert_eq!(
            arch.weight_capacity_bits(),
            total * arch.crossbar().shape().cells() * u64::from(arch.crossbar().cell_bits())
        );
    }

    #[test]
    fn cost_model_write_at_least_as_costly_as_read(arch in arches()) {
        let cost = arch.cost();
        prop_assert!(cost.xb_write_cycles_per_row >= cost.xb_read_cycles);
        // Write energy per cell is never below activation energy per cell.
        prop_assert!(cost.e_write_per_cell >= cost.e_cell - 1e-12);
        // Activation energy grows with engaged rows.
        let small = cost.activation_energy(1, arch.crossbar().shape().cols);
        let large = cost.activation_energy(arch.crossbar().parallel_row(), arch.crossbar().shape().cols);
        prop_assert!(large.total() >= small.total());
    }

    #[test]
    fn mode_sweeps_preserve_physical_tiers(arch in arches()) {
        for mode in ComputingMode::ALL {
            let swept = arch.with_mode(mode);
            prop_assert_eq!(swept.chip(), arch.chip());
            prop_assert_eq!(swept.core(), arch.core());
            prop_assert_eq!(swept.crossbar(), arch.crossbar());
            prop_assert_eq!(swept.mode(), mode);
        }
    }

    #[test]
    fn crossbar_helpers_are_exact(arch in arches(), weight_bits in 1u32..16, act_bits in 1u32..16) {
        let xb = arch.crossbar();
        let cpw = xb.columns_per_weight(weight_bits);
        prop_assert!(cpw * xb.cell_bits() >= weight_bits);
        prop_assert!((cpw - 1) * xb.cell_bits() < weight_bits);
        let slices = xb.input_slices(act_bits);
        prop_assert!(slices * xb.dac_bits() >= act_bits);
        let groups = xb.activations_for_rows(xb.shape().rows);
        prop_assert!(groups * xb.parallel_row() >= xb.shape().rows);
    }
}

#[test]
fn derived_cost_model_matches_manual() {
    let xb =
        CrossbarTier::new(XbShape::new(128, 128).unwrap(), 8, 1, 8, CellType::Reram, 2).unwrap();
    let derived = CostModel::derived(&xb);
    assert_eq!(
        derived.xb_write_cycles_per_row,
        CellType::Reram.write_read_latency_ratio()
    );
}
