//! # cim-baselines — comparator schedulers
//!
//! The paper's evaluation (§4.2) compares CIM-MLC against four baselines.
//! Each is reimplemented here **on the same mapping and latency model** as
//! the CIM-MLC scheduler (`cim-compiler`), so every comparison is
//! apples-to-apples — exactly the role the original authors' extended
//! simulator plays:
//!
//! * [`no_opt`] — the unoptimized schedule: operators run serially, one
//!   replica each ("w/o optimization" in Figure 20d).
//! * [`poly_schedule`] — Poly-Schedule \[22\]: graph-level operator
//!   duplication with a *greedy proportional* core allocation and a batch
//!   (inter-image) pipeline. The batch pipeline improves throughput but
//!   not single-image latency, which is what the paper measures, so its
//!   latency benefit comes from duplication alone; it also has no notion
//!   of the finer MVM/VVM scheduling space.
//! * [`jia_schedule`] — Jia et al.'s own deployment \[29\]: sequential
//!   layer-by-layer execution on the CM accelerator (Figure 20a's 1×
//!   bar).
//! * [`puma_schedule`] — PUMA's compiler \[4\]: graph partitioning with
//!   replication and an inter-layer pipeline, but *lockstep* crossbar
//!   activation (no staggering), which sets the Figure 20b peak-power
//!   reference.
//! * [`jain_schedule`] — Jain et al.'s conservative macro driving \[27\]
//!   (Figure 20c's 1× bar).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cim_arch::CimArchitecture;
use cim_compiler::cg::{CgOptions, CgSchedule};
use cim_compiler::mapping::OpMapping;
use cim_compiler::perf::PerfReport;
use cim_compiler::{CompileOptions, Compiler, OptLevel, Result};
use cim_graph::Graph;

/// Runs the shared mapping/latency model's CG level through the staged
/// pipeline, stopping there: the substrate every baseline builds on.
fn cg_schedule(graph: &Graph, arch: &CimArchitecture, cg: CgOptions) -> Result<CgSchedule> {
    let options = CompileOptions {
        cg,
        level: OptLevel::Cg,
        ..CompileOptions::default()
    };
    Ok(Compiler::with_options(options).compile(graph, arch)?.cg)
}

/// The unoptimized schedule: serial execution, one replica per operator.
///
/// # Errors
/// Propagates scheduling errors from the underlying model.
pub fn no_opt(graph: &Graph, arch: &CimArchitecture) -> Result<PerfReport> {
    let mut report = cg_schedule(graph, arch, CgOptions::none())?.report;
    report.level = "no-opt";
    Ok(report)
}

/// Jia et al.'s vendor schedule: the accelerator runs each operator to
/// completion before the next (their deployment flow has no inter-layer
/// pipeline or duplication).
///
/// # Errors
/// Propagates scheduling errors.
pub fn jia_schedule(graph: &Graph, arch: &CimArchitecture) -> Result<PerfReport> {
    let mut report = cg_schedule(graph, arch, CgOptions::none())?.report;
    report.level = "jia-et-al";
    Ok(report)
}

/// Jain et al.'s vendor schedule: conservative serial macro driving.
///
/// # Errors
/// Propagates scheduling errors.
pub fn jain_schedule(graph: &Graph, arch: &CimArchitecture) -> Result<PerfReport> {
    let mut report = cg_schedule(graph, arch, CgOptions::none())?.report;
    report.level = "jain-et-al";
    Ok(report)
}

/// PUMA's compiler schedule: duplication + inter-layer pipeline (their
/// graph partitioner replicates aggressively) with lockstep VXB
/// activation — every crossbar of an operator's replicas fires
/// simultaneously, which is what CIM-MLC's staggered MVM pipeline
/// improves on (Figure 20b).
///
/// # Errors
/// Propagates scheduling errors.
pub fn puma_schedule(graph: &Graph, arch: &CimArchitecture) -> Result<CgSchedule> {
    let mut sched = cg_schedule(graph, arch, CgOptions::full())?;
    sched.report.level = "puma";
    Ok(sched)
}

/// Poly-Schedule: greedy proportional duplication + batch pipeline.
///
/// The greedy strategy splits the spare cores proportionally to each
/// operator's share of total compute — reasonable, but blind to the
/// marginal-gain structure the CIM-MLC allocator exploits, and to every
/// scheduling opportunity below the graph level.
///
/// # Errors
/// Propagates scheduling errors.
pub fn poly_schedule(graph: &Graph, arch: &CimArchitecture) -> Result<PerfReport> {
    // Start from the serial schedule to inherit segmentation/folding
    // behaviour, then re-derive per-stage latencies with the greedy
    // duplication numbers.
    let base = cg_schedule(graph, arch, CgOptions::none())?;
    let core_count = u64::from(arch.chip().core_count());

    let mut total_latency = 0.0;
    let mut peak_power = 0.0_f64;
    let mut peak_active = 0u64;
    let mut peak_breakdown = Default::default();
    for seg in &base.segments {
        // Proportional shares within the segment.
        let seg_stages: Vec<_> = seg.plans.iter().map(|p| &base.stages[p.stage]).collect();
        let weights: Vec<f64> = seg_stages
            .iter()
            .map(|s| s.mapping.mvm_count as f64 * s.mapping.cycles_per_mvm(arch, 8) as f64)
            .collect();
        let total_work: f64 = weights.iter().sum();
        let mut seg_latency = 0.0;
        let mut seg_active = 0u64;
        let mut used: u64 = 0;
        for (plan, (stage, work)) in seg.plans.iter().zip(seg_stages.iter().zip(&weights)) {
            let cores_per_replica = u64::from(stage.mapping.cores_per_replica(arch));
            let fair_cores = (core_count as f64 * work / total_work.max(1.0)).floor() as u64;
            let mut dup = (fair_cores / cores_per_replica.max(1)).max(1) as u32;
            // Clamp to remaining budget.
            while u64::from(dup) * cores_per_replica + used > core_count && dup > 1 {
                dup -= 1;
            }
            used += u64::from(dup) * cores_per_replica;
            let dup = dup.min(stage.mapping.mvm_count.max(1) as u32);
            let cpm = stage.mapping.cycles_per_mvm(arch, 8);
            let compute = stage.mapping.mvm_count as f64 * cpm as f64 / f64::from(dup)
                * f64::from(plan.folds);
            let mov = cim_compiler::stage::movement_cycles(stage, arch, 8);
            let alu = stage.alu_cycles(
                arch.chip().alu_ops_per_cycle(),
                (dup * stage.mapping.cores_per_replica(arch)).min(arch.chip().core_count()),
            );
            seg_latency += compute.max(mov).max(alu);
            seg_active = seg_active.max(u64::from(dup) * u64::from(stage.mapping.vxb_size()));
        }
        let (power, breakdown) =
            cim_compiler::perf::phase_power(arch, seg_active, seg.streaming_bits_per_cycle);
        if power > peak_power {
            peak_power = power;
            peak_active = seg_active;
            peak_breakdown = breakdown;
        }
        total_latency += seg_latency;
    }

    Ok(PerfReport {
        level: "poly-schedule",
        latency_cycles: total_latency + base.report.reprogram_cycles,
        peak_active_crossbars: peak_active,
        peak_power,
        peak_breakdown,
        energy: base.report.energy,
        segments: base.report.segments,
        reprogram_cycles: base.report.reprogram_cycles,
    })
}

/// Sanity helper used by benches/tests: crossbars one replica of every CIM
/// operator needs.
#[must_use]
pub fn model_footprint_crossbars(graph: &Graph, arch: &CimArchitecture) -> u64 {
    graph
        .cim_nodes()
        .into_iter()
        .filter_map(|id| OpMapping::of(graph, id, arch, 8))
        .map(|m| u64::from(m.vxb_size()))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::presets;
    use cim_compiler::mvm::{schedule_mvm, MvmOptions};
    use cim_graph::zoo;

    #[test]
    fn ordering_no_opt_poly_cimmlc() {
        // Figure 20d: no-opt > Poly-Schedule > CIM-MLC.
        let arch = presets::isaac_baseline();
        let g = zoo::vgg16();
        let none = no_opt(&g, &arch).unwrap();
        let poly = poly_schedule(&g, &arch).unwrap();
        let cg = cg_schedule(&g, &arch, CgOptions::full()).unwrap();
        let ours = schedule_mvm(&cg, &arch, MvmOptions::full(), 8).report;
        assert!(
            poly.latency_cycles < none.latency_cycles,
            "poly {} >= none {}",
            poly.latency_cycles,
            none.latency_cycles
        );
        assert!(
            ours.latency_cycles < poly.latency_cycles,
            "ours {} >= poly {}",
            ours.latency_cycles,
            poly.latency_cycles
        );
        // CIM-MLC wins by a factor in the paper's ballpark (3.2x).
        let factor = poly.latency_cycles / ours.latency_cycles;
        assert!(factor > 1.5, "only {factor}x over Poly-Schedule");
    }

    #[test]
    fn poly_respects_core_budget_implicitly() {
        // Latency must be at least total work / total cores.
        let arch = presets::isaac_baseline();
        let g = zoo::resnet18();
        let poly = poly_schedule(&g, &arch).unwrap();
        let none = no_opt(&g, &arch).unwrap();
        let max_speedup = f64::from(arch.chip().core_count());
        assert!(none.latency_cycles / poly.latency_cycles <= max_speedup);
    }

    #[test]
    fn puma_schedule_has_lockstep_peak() {
        let arch = presets::puma();
        let g = zoo::vgg16();
        let vendor = puma_schedule(&g, &arch).unwrap();
        let ours = schedule_mvm(&vendor, &arch, MvmOptions::full(), 8);
        // CIM-MLC's staggered activation cuts peak power substantially
        // (Figure 20b reports 75%).
        let reduction = 1.0 - ours.report.peak_power / vendor.report.peak_power;
        assert!(reduction > 0.4, "only {:.0}% reduction", reduction * 100.0);
    }

    #[test]
    fn vendor_schedules_are_serial() {
        let g = zoo::vgg7();
        let jia = jia_schedule(&g, &presets::jia_isscc21()).unwrap();
        let jain = jain_schedule(&g, &presets::jain_sram()).unwrap();
        assert_eq!(jia.level, "jia-et-al");
        assert_eq!(jain.level, "jain-et-al");
        assert!(jia.latency_cycles > 0.0 && jain.latency_cycles > 0.0);
    }

    #[test]
    fn footprint_matches_mapping() {
        let g = zoo::lenet5();
        let arch = presets::isaac_baseline();
        assert!(model_footprint_crossbars(&g, &arch) >= g.cim_nodes().len() as u64);
    }
}
