//! Criterion benches over the ablation studies (see
//! `cim_bench::ablations`): each bench regenerates one ablation series and
//! prints it once.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

macro_rules! ablation_bench {
    ($fn_name:ident, $series:ident) => {
        fn $fn_name(c: &mut Criterion) {
            static ONCE: Once = Once::new();
            let series = cim_bench::ablations::$series();
            ONCE.call_once(|| println!("\n{}", series.render()));
            c.bench_function(concat!("ablation_", stringify!($series)), |b| {
                b.iter(|| black_box(cim_bench::ablations::$series()))
            });
        }
    };
}

ablation_bench!(bench_binding, ablation_binding);
ablation_bench!(bench_allocator, ablation_allocator);
ablation_bench!(bench_residency, ablation_residency);
ablation_bench!(bench_stagger, ablation_stagger);

fn configure() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = ablations;
    config = configure();
    targets = bench_binding, bench_allocator, bench_residency, bench_stagger
}
criterion_main!(ablations);
