//! Criterion benches for cold-compile wall-clock time — the workloads
//! the `compile-perf` CI gate budgets (`cim_bench::GATE_ENTRIES`), each
//! at `jobs = 1` and `jobs = 4`.
//!
//! These are the tracking companion to the gate: `cimc compile-perf`
//! enforces the absolute median budgets in CI, while `cargo bench
//! --bench compile_time` gives the full Criterion distribution (and
//! history under `target/criterion/`) when chasing a regression or
//! validating an optimization.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cold_compiles(c: &mut Criterion) {
    for entry in cim_bench::GATE_ENTRIES {
        let graph = cim_graph::zoo::by_name(entry.model).expect("gate models exist");
        let arch = cim_arch::presets::by_name(entry.arch).expect("gate archs exist");
        for jobs in [1usize, 4] {
            let compiler = cim_compiler::Compiler::with_options(cim_compiler::CompileOptions {
                jobs,
                ..cim_compiler::CompileOptions::default()
            });
            c.bench_function(
                &format!("cold_compile_{}_{}_j{}", entry.model, entry.arch, jobs),
                |b| b.iter(|| black_box(compiler.compile(&graph, &arch).unwrap())),
            );
        }
    }
}

criterion_group!(benches, bench_cold_compiles);
criterion_main!(benches);
