//! Criterion benches: one benchmark per evaluation figure plus compiler /
//! simulator micro-benchmarks.
//!
//! Each figure bench measures the end-to-end regeneration of that
//! figure's series (scheduling every configuration it sweeps) and prints
//! the series once, so `cargo bench` both times the stack and reproduces
//! the paper's rows.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

fn print_once(once: &'static Once, series: &cim_bench::Series) {
    once.call_once(|| println!("\n{}", series.render()));
}

macro_rules! figure_bench {
    ($fn_name:ident, $figure:ident) => {
        fn $fn_name(c: &mut Criterion) {
            static ONCE: Once = Once::new();
            let series = cim_bench::$figure();
            print_once(&ONCE, &series);
            c.bench_function(concat!("figure_", stringify!($figure)), |b| {
                b.iter(|| black_box(cim_bench::$figure()))
            });
        }
    };
}

figure_bench!(bench_fig20a, fig20a);
figure_bench!(bench_fig20b, fig20b);
figure_bench!(bench_fig20c, fig20c);
figure_bench!(bench_fig20d, fig20d);
figure_bench!(bench_fig21a, fig21a);
figure_bench!(bench_fig21b, fig21b);
figure_bench!(bench_fig21c, fig21c);
figure_bench!(bench_fig21d, fig21d);
figure_bench!(bench_fig22a, fig22a);
figure_bench!(bench_fig22b, fig22b);
figure_bench!(bench_fig22c, fig22c);
figure_bench!(bench_fig22d, fig22d);

/// Compiler micro-benchmarks: scheduling throughput per model/arch.
fn bench_compiler(c: &mut Criterion) {
    let arch = cim_arch::presets::isaac_baseline();
    let wlm = cim_arch::presets::isaac_baseline_wlm();
    let resnet50 = cim_graph::zoo::resnet50();
    let vit = cim_graph::zoo::vit_base();
    let compiler = cim_compiler::Compiler::new();
    c.bench_function("compile_resnet50_xbm", |b| {
        b.iter(|| black_box(compiler.compile(&resnet50, &arch).unwrap()))
    });
    c.bench_function("compile_vit_wlm", |b| {
        b.iter(|| black_box(compiler.compile(&vit, &wlm).unwrap()))
    });
}

/// Functional-simulator micro-benchmark: execute LeNet-5's generated flow.
fn bench_functional_sim(c: &mut Criterion) {
    let arch = cim_arch::presets::isaac_baseline();
    let graph = cim_graph::zoo::lenet5();
    let compiled = cim_compiler::Compiler::new()
        .compile(&graph, &arch)
        .unwrap();
    let (flow, layout) = cim_compiler::codegen::generate_flow(&compiled, &graph, &arch).unwrap();
    let store = cim_sim::WeightStore::for_flow(&flow);
    c.bench_function("functional_sim_lenet5", |b| {
        b.iter(|| {
            let mut machine = cim_sim::Machine::new(&arch);
            machine.load_inputs(&graph, &layout);
            machine.execute(&flow, &store).unwrap();
            black_box(machine)
        })
    });
}

fn configure() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = figures;
    config = configure();
    targets = bench_fig20a, bench_fig20b, bench_fig20c, bench_fig20d,
              bench_fig21a, bench_fig21b, bench_fig21c, bench_fig21d,
              bench_fig22a, bench_fig22b, bench_fig22c, bench_fig22d
}
criterion_group! {
    name = micro;
    config = configure();
    targets = bench_compiler, bench_functional_sim
}
criterion_main!(figures, micro);
