//! Ablation studies of the design choices DESIGN.md calls out, beyond the
//! paper's own figures:
//!
//! * [`ablation_binding`] — Figure 7's two weight-bit bindings
//!   (`B → XBC` adjacent-column slicing vs `B → XB` bit-plane crossbars):
//!   crossbar footprint per replica across the benchmark models.
//! * [`ablation_allocator`] — the CIM-MLC duplication allocator
//!   (optimal bottleneck/marginal allocation) vs Poly-Schedule's greedy
//!   proportional shares, at equal hardware and equal pipeline model.
//! * [`ablation_residency`] — the whole-model-residency policy for
//!   frozen-weight devices: the same geometry with ReRAM (resident) vs
//!   SRAM cells (free to re-segment).
//! * [`ablation_stagger`] — peak power with and without the staggered
//!   MVM activation pipeline at fixed duplication.

use crate::{Row, Series};
use cim_arch::{
    presets, CellType, ChipTier, CimArchitecture, ComputingMode, CoreTier, CrossbarTier, XbShape,
};
use cim_compiler::cg::{schedule_cg, CgOptions};
use cim_compiler::mapping::{DimBinding, OpMapping};
use cim_compiler::mvm::{schedule_mvm, MvmOptions};
use cim_graph::zoo;

/// Crossbar footprint of one replica of every CIM operator, under both
/// weight-bit bindings.
#[must_use]
pub fn ablation_binding() -> Series {
    let arch = presets::isaac_baseline();
    let mut rows = Vec::new();
    for g in [zoo::vgg7(), zoo::resnet18(), zoo::vit_base()] {
        for binding in [DimBinding::BitsToColumns, DimBinding::BitsToCrossbars] {
            let total: u64 = g
                .cim_nodes()
                .into_iter()
                .filter_map(|id| OpMapping::with_binding(&g, id, &arch, 8, binding))
                .map(|m| u64::from(m.vxb_size()))
                .sum();
            rows.push(Row {
                label: format!("{} {binding:?}", g.name()),
                value: total as f64,
                unit: "xbs",
                paper: None,
            });
        }
    }
    Series {
        id: "A1",
        title: "Dimension binding B→XBC vs B→XB: crossbars per replica set".into(),
        rows,
    }
}

/// CIM-MLC's allocator vs Poly-Schedule's proportional greedy, same chip.
#[must_use]
pub fn ablation_allocator() -> Series {
    let arch = presets::isaac_baseline();
    let mut rows = Vec::new();
    for g in [zoo::vgg16(), zoo::resnet50()] {
        let none = cim_baselines::no_opt(&g, &arch).expect("schedules");
        let poly = cim_baselines::poly_schedule(&g, &arch).expect("schedules");
        let ours = schedule_cg(
            &g,
            &arch,
            CgOptions {
                pipeline: false,
                duplication: true,
            },
            8,
            8,
        )
        .expect("schedules");
        rows.push(Row {
            label: format!("{} greedy-proportional", g.name()),
            value: none.latency_cycles / poly.latency_cycles,
            unit: "x",
            paper: None,
        });
        rows.push(Row {
            label: format!("{} marginal-optimal", g.name()),
            value: none.latency_cycles / ours.report.latency_cycles,
            unit: "x",
            paper: None,
        });
    }
    Series {
        id: "A2",
        title: "Duplication allocator: greedy proportional vs optimal marginal".into(),
        rows,
    }
}

fn geometry(cell: CellType) -> CimArchitecture {
    CimArchitecture::builder(format!("{cell}-512c"))
        .chip(
            ChipTier::with_core_count(512)
                .expect("valid")
                .with_alu_ops(1024),
        )
        .core(CoreTier::with_xb_count(8).expect("valid"))
        .crossbar(
            CrossbarTier::new(XbShape::new(128, 128).expect("valid"), 8, 1, 8, cell, 2)
                .expect("valid"),
        )
        .mode(ComputingMode::Xbm)
        .build()
        .expect("valid")
}

/// Residency policy: a fitting model on frozen-weight ReRAM stays resident
/// (duplication limited to leftovers); the same geometry with SRAM cells
/// may re-segment and duplicate freely.
#[must_use]
pub fn ablation_residency() -> Series {
    let g = zoo::vgg7(); // ~52M cells; fits the 512-core, 67M-cell chip
    let mut rows = Vec::new();
    for cell in [CellType::Reram, CellType::Sram] {
        let arch = geometry(cell);
        let sched = schedule_cg(&g, &arch, CgOptions::full(), 8, 8).expect("schedules");
        rows.push(Row {
            label: format!("{cell}: segments"),
            value: sched.report.segments as f64,
            unit: "",
            paper: None,
        });
        rows.push(Row {
            label: format!("{cell}: latency"),
            value: sched.report.latency_cycles,
            unit: "cycles",
            paper: None,
        });
    }
    Series {
        id: "A3",
        title: "Whole-model residency on frozen-weight devices vs SRAM re-segmentation".into(),
        rows,
    }
}

/// Peak power with and without staggered activation, at identical
/// duplication decisions.
#[must_use]
pub fn ablation_stagger() -> Series {
    let arch = presets::isaac_baseline();
    let mut rows = Vec::new();
    for g in [zoo::vgg16(), zoo::resnet50(), zoo::vit_base()] {
        let cg = schedule_cg(&g, &arch, CgOptions::full(), 8, 8).expect("schedules");
        let lockstep = schedule_mvm(
            &cg,
            &arch,
            MvmOptions {
                duplication: true,
                pipeline: false,
            },
            8,
        );
        let staggered = schedule_mvm(&cg, &arch, MvmOptions::full(), 8);
        rows.push(Row {
            label: g.name().to_owned(),
            value: staggered.report.peak_power / lockstep.report.peak_power,
            unit: "norm",
            paper: None,
        });
    }
    Series {
        id: "A4",
        title: "Staggered vs lockstep activation: normalized peak power".into(),
        rows,
    }
}

/// Every ablation series.
#[must_use]
pub fn all_ablations() -> Vec<Series> {
    vec![
        ablation_binding(),
        ablation_allocator(),
        ablation_residency(),
        ablation_stagger(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_ablation_shows_footprint_difference() {
        let s = ablation_binding();
        // The bindings coincide when every column extent divides the
        // crossbar width (ViT's power-of-two matrices) and fragment
        // differently otherwise (narrow early conv layers): at least one
        // model must differ, and B->XB never needs *fewer* crossbars than
        // B->XBC under whole-weight packing.
        let mut any_differ = false;
        for pair in s.rows.chunks(2) {
            assert!(
                pair[1].value >= pair[0].value,
                "{}: planes {} < columns {}",
                pair[1].label,
                pair[1].value,
                pair[0].value
            );
            any_differ |= pair[0].value != pair[1].value;
        }
        assert!(any_differ);
    }

    #[test]
    fn optimal_allocator_beats_greedy() {
        let s = ablation_allocator();
        for pair in s.rows.chunks(2) {
            assert!(
                pair[1].value >= pair[0].value * 0.999,
                "{}: optimal {} < greedy {}",
                pair[1].label,
                pair[1].value,
                pair[0].value
            );
        }
    }

    #[test]
    fn residency_keeps_reram_in_one_segment() {
        let s = ablation_residency();
        let reram_segments = s
            .rows
            .iter()
            .find(|r| r.label == "ReRAM: segments")
            .unwrap()
            .value;
        assert_eq!(reram_segments, 1.0);
    }

    #[test]
    fn stagger_always_reduces_peak() {
        let s = ablation_stagger();
        for row in &s.rows {
            assert!(row.value < 1.0, "{}: {}", row.label, row.value);
        }
    }
}
