//! `figures` — regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! figures                 # print every figure
//! figures --fig 20a       # one figure
//! figures --fig hw        # the hardware abstractions (Figs 17-19, Table 3)
//! figures --experiments   # emit the EXPERIMENTS.md body to stdout
//! ```

use cim_bench::{all_figures, hardware_abstractions, Series};

fn experiments_markdown(figures: &[Series]) -> String {
    let mut s = String::new();
    s.push_str("| Figure | Row | Paper | Measured | Unit |\n");
    s.push_str("|--------|-----|-------|----------|------|\n");
    for fig in figures {
        for row in &fig.rows {
            let paper = row
                .paper
                .map(|p| format!("{p:.2}"))
                .unwrap_or_else(|| "—".to_owned());
            s.push_str(&format!(
                "| {} | {} | {} | {:.3} | {} |\n",
                fig.id, row.label, paper, row.value, row.unit
            ));
        }
    }
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fig_filter: Option<String> = None;
    let mut experiments = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                fig_filter = args.get(i + 1).cloned();
                i += 2;
            }
            "--experiments" => {
                experiments = true;
                i += 1;
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--fig <id>|hw|all] [--experiments]\n\
                     ids: 20a 20b 20c 20d 21a 21b 21c 21d 22a 22b 22c 22d hw ablations table1"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    if matches!(fig_filter.as_deref(), Some("hw")) {
        print!("{}", hardware_abstractions());
        return;
    }
    if matches!(fig_filter.as_deref(), Some("table1")) {
        print!("{}", cim_bench::table1());
        return;
    }
    if matches!(fig_filter.as_deref(), Some("ablations")) {
        for s in cim_bench::ablations::all_ablations() {
            println!("{}", s.render());
        }
        return;
    }

    let figures: Vec<Series> = match fig_filter.as_deref() {
        None | Some("all") => all_figures(),
        Some(id) => {
            let figs = all_figures();
            let found: Vec<Series> = figs.into_iter().filter(|f| f.id == id).collect();
            if found.is_empty() {
                eprintln!("unknown figure id `{id}`");
                std::process::exit(2);
            }
            found
        }
    };

    if experiments {
        print!("{}", experiments_markdown(&figures));
        return;
    }
    for fig in &figures {
        println!("{}", fig.render());
    }
}
