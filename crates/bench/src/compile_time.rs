//! Cold-compile wall-clock measurement and the compile-perf gate data.
//!
//! The arena-graph + memoized-segmentation refactor is held to a
//! *measured* compile-time bar, not just metric byte-identity: CI's
//! `compile-perf` job re-measures the [`GATE_ENTRIES`] medians on every
//! push and fails when one exceeds its [`CompileTimeBudget::budget_ms`]
//! ceiling (half the pre-refactor median — the "≥ 2x cold-compile
//! speedup" acceptance bar, frozen as an absolute budget) or drifts
//! beyond tolerance from the committed baseline's `compile_time`
//! section.
//!
//! Medians, not means: a cold compile is sub-hundred-milliseconds, so a
//! single scheduler hiccup would dominate a mean. Each entry compiles
//! `samples` times and reports the median; the CLI gate re-measures up
//! to 3 attempts before failing, mirroring the cache-consistency gate's
//! retry discipline for wall clocks.

use crate::sweep::SweepError;
use cim_compiler::{CompileOptions, Compiler};
use serde::{Deserialize, Serialize};

/// One model/arch/jobs combination the compile-perf gate measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileTimeBudget {
    /// Zoo model key.
    pub model: &'static str,
    /// Architecture preset key.
    pub arch: &'static str,
    /// `CompileOptions::jobs` for the measured compiles.
    pub jobs: usize,
    /// Hard ceiling on the median cold-compile time, in milliseconds:
    /// half the pre-refactor median (measured at 9 release samples on
    /// the reference machine), so staying under it *is* the ≥ 2x
    /// speedup guarantee.
    pub budget_ms: f64,
}

/// The gate's reference workloads: the heaviest DP-segmentation compile
/// in the zoo (ViT-Base on ISAAC drives the O(n²) candidate-segment
/// evaluation hardest) and a segmentation-heavy small-chip compile
/// (ResNet-50 on PUMA).
///
/// Pre-refactor medians: vit_base@isaac 19.69 ms, resnet50@puma
/// 1.008 ms (release, 9 samples). The budgets below are half that.
pub const GATE_ENTRIES: &[CompileTimeBudget] = &[
    CompileTimeBudget {
        model: "vit_base",
        arch: "isaac",
        jobs: 4,
        budget_ms: 9.8,
    },
    CompileTimeBudget {
        model: "resnet50",
        arch: "puma",
        jobs: 4,
        budget_ms: 0.5,
    },
];

/// A measured compile-time median — the unit of the bench report's
/// `compile_time` section (schema v3).
///
/// Wall clocks are machine-specific, so the section is *reference
/// data*: plain sweeps carry `None` (keeping cold/warm `comparable()`
/// reports byte-identical), and `scripts/refresh-baseline.sh` attaches
/// freshly measured medians for the drift gate to compare against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompileTimeRecord {
    /// Zoo model key.
    pub model: String,
    /// Architecture preset key.
    pub arch: String,
    /// `CompileOptions::jobs` used for the measured compiles.
    pub jobs: usize,
    /// Number of cold compiles the median was taken over.
    pub samples: usize,
    /// Median cold-compile wall-clock time in milliseconds.
    pub median_ms: f64,
}

impl CompileTimeRecord {
    /// The stable `model@arch*jobs` key records are matched on.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}@{}*j{}", self.model, self.arch, self.jobs)
    }
}

/// Median cold-compile time of one gate entry over `samples` compiles.
///
/// Every sample is a full cold compile (fresh session, no cache); the
/// only state shared across samples is the parsed graph and
/// architecture, which a warm process would share too.
///
/// # Errors
/// Returns [`SweepError`] when the model or arch key is unknown.
pub fn measure_entry(
    entry: &CompileTimeBudget,
    samples: usize,
) -> Result<CompileTimeRecord, SweepError> {
    let graph = cim_graph::zoo::by_name(entry.model)
        .ok_or_else(|| SweepError::UnknownModels(vec![entry.model.to_owned()]))?;
    let arch = cim_arch::presets::by_name(entry.arch)
        .ok_or_else(|| SweepError::UnknownArchs(vec![entry.arch.to_owned()]))?;
    let options = CompileOptions {
        jobs: entry.jobs,
        ..CompileOptions::default()
    };
    let samples = samples.max(1);
    let mut times_ms: Vec<f64> = (0..samples)
        .map(|_| {
            let start = cim_obs::stopwatch();
            let compiled = Compiler::with_options(options)
                .session(&graph, &arch)
                .finish()
                .expect("gate entries compile on their presets");
            std::hint::black_box(&compiled);
            start.elapsed_ms()
        })
        .collect();
    times_ms.sort_by(f64::total_cmp);
    Ok(CompileTimeRecord {
        model: entry.model.to_owned(),
        arch: entry.arch.to_owned(),
        jobs: entry.jobs,
        samples,
        median_ms: times_ms[samples / 2],
    })
}

/// Measures every [`GATE_ENTRIES`] combination — the `compile_time`
/// section `scripts/refresh-baseline.sh` attaches to the committed
/// baseline, and the vector `cimc compile-perf` gates.
///
/// # Errors
/// Returns [`SweepError`] when a gate entry names an unknown model or
/// arch (a bug in [`GATE_ENTRIES`], caught by tests).
pub fn measure_gate_entries(samples: usize) -> Result<Vec<CompileTimeRecord>, SweepError> {
    GATE_ENTRIES
        .iter()
        .map(|entry| measure_entry(entry, samples))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_entries_name_real_models_and_archs() {
        for entry in GATE_ENTRIES {
            assert!(
                cim_graph::zoo::by_name(entry.model).is_some(),
                "unknown gate model {}",
                entry.model
            );
            assert!(
                cim_arch::presets::by_name(entry.arch).is_some(),
                "unknown gate arch {}",
                entry.arch
            );
            assert!(entry.budget_ms > 0.0);
            assert!(entry.jobs >= 1);
        }
    }

    #[test]
    fn measure_reports_the_median_of_the_requested_samples() {
        let record = measure_entry(&GATE_ENTRIES[1], 3).unwrap();
        assert_eq!(record.model, "resnet50");
        assert_eq!(record.arch, "puma");
        assert_eq!(record.jobs, 4);
        assert_eq!(record.samples, 3);
        assert!(record.median_ms > 0.0);
        assert_eq!(record.key(), "resnet50@puma*j4");
    }

    #[test]
    fn records_round_trip_through_json() {
        let record = CompileTimeRecord {
            model: "vit_base".to_owned(),
            arch: "isaac".to_owned(),
            jobs: 4,
            samples: 9,
            median_ms: 3.25,
        };
        let json = serde_json::to_string(&record).unwrap();
        let back: CompileTimeRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }
}
