//! # cim-bench — figure and table regeneration harness
//!
//! One function per evaluation figure of the paper (§4.2–§4.4). Each
//! returns a [`Series`] of labelled values that the `figures` binary
//! prints, the Criterion benches regenerate, and the integration tests
//! assert shape properties on (who wins, direction of trends, rough
//! factors).
//!
//! Absolute cycle counts differ from the paper's (their simulator is
//! calibrated to circuit models we do not have); every series therefore
//! reports *relative* quantities exactly as the paper's figures do
//! (speedups over a named baseline, normalized peak power, percentage
//! latency reductions). EXPERIMENTS.md records paper-vs-measured for each
//! row.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod compile_time;
pub mod loadtest;
pub mod pool;
pub mod report;
pub mod stats;
pub mod sweep;

pub use compile_time::{
    measure_entry, measure_gate_entries, CompileTimeBudget, CompileTimeRecord, GATE_ENTRIES,
};
pub use loadtest::{
    LoadSample, LoadtestEntry, LoadtestReport, SampleClass, LOADTEST_MIN_SCHEMA_VERSION,
    LOADTEST_SCHEMA_VERSION,
};
pub use report::{compare, BenchReport, RegressionReport, ReportError, Tolerances};
pub use stats::{percentile, LatencySummary};
pub use sweep::{run_sweep, run_sweep_cached, ScheduleMode, SweepError, SweepSpec};

use cim_arch::{presets, CellType, CimArchitecture, CrossbarTier, XbShape};
use cim_compiler::cg::{schedule_cg, CgOptions};
use cim_compiler::mvm::{schedule_mvm, MvmOptions};
use cim_compiler::vvm::schedule_vvm;
use cim_graph::{zoo, Graph};

/// One labelled measurement of a figure series.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Bar/point label as it appears in the paper's figure.
    pub label: String,
    /// Measured value.
    pub value: f64,
    /// Unit (`"x"` for speedups, `"norm"` for normalized power, `"%"`,
    /// `"cycles"`).
    pub unit: &'static str,
    /// The paper's reported value for this row, where it states one.
    pub paper: Option<f64>,
}

impl Row {
    fn new(label: impl Into<String>, value: f64, unit: &'static str, paper: Option<f64>) -> Self {
        Row {
            label: label.into(),
            value,
            unit,
            paper,
        }
    }
}

/// A regenerated figure: id, caption and rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Figure id, e.g. `"20a"`.
    pub id: &'static str,
    /// Human-readable caption.
    pub title: String,
    /// The measurements.
    pub rows: Vec<Row>,
}

impl Series {
    /// Renders the series as an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = format!("Figure {} — {}\n", self.id, self.title);
        let width = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(10)
            .max(10);
        for row in &self.rows {
            let paper = match row.paper {
                Some(p) => format!("   (paper: {p:.2})"),
                None => String::new(),
            };
            s.push_str(&format!(
                "  {:width$}  {:>12.3} {}{}\n",
                row.label, row.value, row.unit, paper
            ));
        }
        s
    }
}

fn cg_latency(g: &Graph, arch: &CimArchitecture, opts: CgOptions) -> f64 {
    schedule_cg(g, arch, opts, 8, 8)
        .expect("benchmark models always schedule")
        .report
        .latency_cycles
}

/// Latency of the full CIM-MLC stack on `arch` (levels per computing
/// mode).
fn cimmlc_latency(g: &Graph, arch: &CimArchitecture) -> f64 {
    cim_compiler::Compiler::new()
        .compile(g, arch)
        .expect("benchmark models always compile")
        .report()
        .latency_cycles
}

/// Figure 20a — speedup over Jia et al.'s schedule on their CM
/// accelerator (VGG16).
#[must_use]
pub fn fig20a() -> Series {
    let arch = presets::jia_isscc21();
    let g = zoo::vgg16();
    let vendor = cim_baselines::jia_schedule(&g, &arch)
        .expect("vgg16 schedules on jia")
        .latency_cycles;
    let pipe = cg_latency(
        &g,
        &arch,
        CgOptions {
            pipeline: true,
            duplication: false,
        },
    );
    let pd = cg_latency(&g, &arch, CgOptions::full());
    Series {
        id: "20a",
        title: "VGG16 on Jia et al. (CM): speedup over the vendor schedule".into(),
        rows: vec![
            Row::new("Jia et al. [29]", 1.0, "x", Some(1.0)),
            Row::new("CG-grained w/ Pipeline", vendor / pipe, "x", Some(1.2)),
            Row::new("CG-grained w/ P&D", vendor / pd, "x", Some(3.7)),
        ],
    }
}

/// Figure 20b — normalized peak power on PUMA (VGG16): CIM-MLC's
/// staggered CG+MVM schedule vs PUMA's lockstep compiler schedule.
#[must_use]
pub fn fig20b() -> Series {
    let arch = presets::puma();
    let g = zoo::vgg16();
    let vendor = cim_baselines::puma_schedule(&g, &arch).expect("vgg16 schedules on puma");
    let ours = schedule_mvm(&vendor, &arch, MvmOptions::full(), 8);
    let normalized = ours.report.peak_power / vendor.report.peak_power;
    Series {
        id: "20b",
        title: "VGG16 on PUMA (XBM): normalized peak power".into(),
        rows: vec![
            Row::new("PUMA [2,4]", 1.0, "norm", Some(1.0)),
            Row::new("CG+MVM-grained", normalized, "norm", Some(0.25)),
        ],
    }
}

/// Figure 20c — speedup over Jain et al.'s schedule on their WLM SRAM
/// macro (VGG7).
#[must_use]
pub fn fig20c() -> Series {
    let arch = presets::jain_sram();
    let g = zoo::vgg7();
    let vendor = cim_baselines::jain_schedule(&g, &arch)
        .expect("vgg7 schedules on jain")
        .latency_cycles;
    let cg = schedule_cg(&g, &arch, CgOptions::full(), 8, 8).expect("schedules");
    let mvm = schedule_mvm(&cg, &arch, MvmOptions::full(), 8);
    let vvm = schedule_vvm(&cg, &mvm, &arch, 8);
    Series {
        id: "20c",
        title: "VGG7 on Jain et al. (WLM): speedup over the vendor schedule".into(),
        rows: vec![
            Row::new("Jain et al. [27]", 1.0, "x", Some(1.0)),
            Row::new(
                "CG-grained",
                vendor / cg.report.latency_cycles,
                "x",
                Some(1.2),
            ),
            Row::new(
                "CG+MVM-grained",
                vendor / mvm.report.latency_cycles,
                "x",
                Some(1.2),
            ),
            Row::new(
                "CG+MVM+VVM-grained",
                vendor / vvm.report.latency_cycles,
                "x",
                Some(2.3),
            ),
        ],
    }
}

/// Figure 20d — latency (cycle-reduction) comparison with Poly-Schedule
/// on the Table 3 baseline (VGG16).
#[must_use]
pub fn fig20d() -> Series {
    let arch = presets::isaac_baseline();
    let g = zoo::vgg16();
    let none = cim_baselines::no_opt(&g, &arch)
        .expect("schedules")
        .latency_cycles;
    let poly = cim_baselines::poly_schedule(&g, &arch)
        .expect("schedules")
        .latency_cycles;
    let ours = cimmlc_latency(&g, &arch);
    Series {
        id: "20d",
        title: "VGG16 on the Table 3 baseline: cycle reduction vs no optimization".into(),
        rows: vec![
            Row::new("w/o optimization", 0.0, "%", Some(0.0)),
            Row::new(
                "Poly-Schedule [22]",
                100.0 * (1.0 - poly / none),
                "%",
                Some(84.0),
            ),
            Row::new("CIM-MLC", 100.0 * (1.0 - ours / none), "%", Some(95.0)),
            Row::new(
                "CIM-MLC speedup over Poly-Schedule",
                poly / ours,
                "x",
                Some(3.2),
            ),
        ],
    }
}

fn resnets() -> Vec<Graph> {
    vec![
        zoo::resnet18(),
        zoo::resnet34(),
        zoo::resnet50(),
        zoo::resnet101(),
    ]
}

/// Figure 21a — CG-grained ablations on the ResNet series (speedup over
/// no optimization).
#[must_use]
pub fn fig21a() -> Series {
    let arch = presets::isaac_baseline();
    let mut rows = Vec::new();
    let paper_pipe = [2.3, 3.0, 3.8, 4.7];
    let paper_dup = [25.4, 12.0, 8.0, 3.1];
    for (i, g) in resnets().iter().enumerate() {
        let none = cg_latency(g, &arch, CgOptions::none());
        let pipe = cg_latency(
            g,
            &arch,
            CgOptions {
                pipeline: true,
                duplication: false,
            },
        );
        let dup = cg_latency(
            g,
            &arch,
            CgOptions {
                pipeline: false,
                duplication: true,
            },
        );
        let pd = cg_latency(g, &arch, CgOptions::full());
        rows.push(Row::new(
            format!("{} CG-Pipeline", g.name()),
            none / pipe,
            "x",
            Some(paper_pipe[i]),
        ));
        rows.push(Row::new(
            format!("{} CG-Duplication", g.name()),
            none / dup,
            "x",
            Some(paper_dup[i]),
        ));
        rows.push(Row::new(
            format!("{} CG-P&D", g.name()),
            none / pd,
            "x",
            None,
        ));
    }
    Series {
        id: "21a",
        title: "ResNet series: CG-grained optimization speedups".into(),
        rows,
    }
}

/// Figure 21b — CG+MVM duplication speedup over CG-P&D.
#[must_use]
pub fn fig21b() -> Series {
    let arch = presets::isaac_baseline();
    let paper = [1.0, 1.1, 1.8, 1.4];
    let rows = resnets()
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let cg = schedule_cg(g, &arch, CgOptions::full(), 8, 8).expect("schedules");
            let mvm = schedule_mvm(&cg, &arch, MvmOptions::full(), 8);
            Row::new(
                g.name().to_owned(),
                cg.report.latency_cycles / mvm.report.latency_cycles,
                "x",
                Some(paper[i]),
            )
        })
        .collect();
    Series {
        id: "21b",
        title: "ResNet series: CG+MVM-Duplication speedup over CG-P&D".into(),
        rows,
    }
}

/// Figure 21c — CG+MVM+VVM remapping speedup over CG+MVM (WLM baseline).
#[must_use]
pub fn fig21c() -> Series {
    let arch = presets::isaac_baseline_wlm();
    let paper = [1.02, 1.04, 1.10, 1.05];
    let rows = resnets()
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let cg = schedule_cg(g, &arch, CgOptions::full(), 8, 8).expect("schedules");
            let mvm = schedule_mvm(&cg, &arch, MvmOptions::full(), 8);
            let vvm = schedule_vvm(&cg, &mvm, &arch, 8);
            Row::new(
                g.name().to_owned(),
                mvm.report.latency_cycles / vvm.report.latency_cycles,
                "x",
                Some(paper[i]),
            )
        })
        .collect();
    Series {
        id: "21c",
        title: "ResNet series: CG+MVM+VVM-Remap speedup over CG+MVM".into(),
        rows,
    }
}

/// Figure 21d — normalized peak power across optimization levels.
#[must_use]
pub fn fig21d() -> Series {
    let arch = presets::isaac_baseline();
    let mut rows = Vec::new();
    for g in &resnets() {
        let none = schedule_cg(g, &arch, CgOptions::none(), 8, 8).expect("schedules");
        let cg = schedule_cg(g, &arch, CgOptions::full(), 8, 8).expect("schedules");
        let lockstep = schedule_mvm(
            &cg,
            &arch,
            MvmOptions {
                duplication: true,
                pipeline: false,
            },
            8,
        );
        let staggered = schedule_mvm(&cg, &arch, MvmOptions::full(), 8);
        let base = none.report.peak_power;
        rows.push(Row::new(
            format!("{} CG (vs no-opt)", g.name()),
            cg.report.peak_power / base,
            "norm",
            None,
        ));
        rows.push(Row::new(
            format!("{} CG+MVM-Dup lockstep", g.name()),
            lockstep.report.peak_power / base,
            "norm",
            None,
        ));
        rows.push(Row::new(
            format!("{} CG+MVM staggered", g.name()),
            staggered.report.peak_power / base,
            "norm",
            None,
        ));
        rows.push(Row::new(
            format!("{} MVM peak-power reduction", g.name()),
            100.0 * (1.0 - staggered.report.peak_power / cg.report.peak_power),
            "%",
            Some(if g.name() == "resnet101" { 85.0 } else { 75.0 }),
        ));
    }
    Series {
        id: "21d",
        title: "ResNet series: normalized peak power across levels".into(),
        rows,
    }
}

/// Shared harness for the Figure 22 sensitivity sweeps: speedups of the
/// three optimization levels over no optimization on a modified
/// architecture.
fn sweep_rows(label: &str, arch: &CimArchitecture, g: &Graph, rows: &mut Vec<Row>) {
    let none = cg_latency(g, arch, CgOptions::none());
    let cg = schedule_cg(g, arch, CgOptions::full(), 8, 8).expect("schedules");
    let mvm = schedule_mvm(&cg, arch, MvmOptions::full(), 8);
    let vvm = schedule_vvm(&cg, &mvm, arch, 8);
    rows.push(Row::new(
        format!("{label} CG"),
        none / cg.report.latency_cycles,
        "x",
        None,
    ));
    rows.push(Row::new(
        format!("{label} CG+MVM"),
        none / mvm.report.latency_cycles,
        "x",
        None,
    ));
    rows.push(Row::new(
        format!("{label} CG+MVM+VVM"),
        none / vvm.report.latency_cycles,
        "x",
        None,
    ));
}

/// Figure 22a — ViT speedups as the chip's core count sweeps 256→1024.
#[must_use]
pub fn fig22a() -> Series {
    let base = presets::sensitivity_baseline();
    let g = zoo::vit_base();
    let mut rows = Vec::new();
    for cores in [256u32, 512, 768, 1024] {
        let arch = base.with_core_count(cores).expect("valid core count");
        sweep_rows(&format!("cores={cores}"), &arch, &g, &mut rows);
    }
    Series {
        id: "22a",
        title: "ViT: sensitivity to the chip's core count".into(),
        rows,
    }
}

/// Figure 22b — ViT speedups as the per-core crossbar count sweeps 8→20.
#[must_use]
pub fn fig22b() -> Series {
    let base = presets::sensitivity_baseline();
    let g = zoo::vit_base();
    let mut rows = Vec::new();
    for xbs in [8u32, 12, 16, 20] {
        let arch = base.with_xb_count(xbs).expect("valid crossbar count");
        sweep_rows(&format!("xb_number={xbs}"), &arch, &g, &mut rows);
    }
    Series {
        id: "22b",
        title: "ViT: sensitivity to the per-core crossbar count".into(),
        rows,
    }
}

/// Figure 22c — ViT speedups as the crossbar shape sweeps 64×512→512×64.
#[must_use]
pub fn fig22c() -> Series {
    let base = presets::sensitivity_baseline();
    let g = zoo::vit_base();
    let mut rows = Vec::new();
    for (r, c) in [(64u32, 512u32), (128, 256), (256, 128), (512, 64)] {
        let xb = CrossbarTier::new(
            XbShape::new(r, c).expect("valid shape"),
            8.min(r),
            1,
            8,
            CellType::Reram,
            2,
        )
        .expect("valid crossbar");
        let arch = base.with_crossbar(xb);
        sweep_rows(&format!("xb_size={r}x{c}"), &arch, &g, &mut rows);
    }
    Series {
        id: "22c",
        title: "ViT: sensitivity to the crossbar shape".into(),
        rows,
    }
}

/// Figure 22d — ViT speedups as `parallel_row` sweeps 64→8.
#[must_use]
pub fn fig22d() -> Series {
    let base = presets::sensitivity_baseline();
    let g = zoo::vit_base();
    let mut rows = Vec::new();
    for pr in [64u32, 32, 16, 8] {
        let xb = CrossbarTier::new(
            XbShape::new(128, 256).expect("valid shape"),
            pr,
            1,
            8,
            CellType::Reram,
            2,
        )
        .expect("valid crossbar");
        let arch = base.with_crossbar(xb);
        sweep_rows(&format!("parallel_row={pr}"), &arch, &g, &mut rows);
    }
    Series {
        id: "22d",
        title: "ViT: sensitivity to the number of parallel rows".into(),
        rows,
    }
}

/// Every figure series, in paper order.
#[must_use]
pub fn all_figures() -> Vec<Series> {
    vec![
        fig20a(),
        fig20b(),
        fig20c(),
        fig20d(),
        fig21a(),
        fig21b(),
        fig21c(),
        fig21d(),
        fig22a(),
        fig22b(),
        fig22c(),
        fig22d(),
    ]
}

/// Table 1 — the generality matrix. Rows for prior work restate the
/// paper's literature survey; the `Ours` row is *measured*: each ✓ is
/// backed by actually compiling a model under that device type /
/// programming interface (the same coverage `tests/generality.rs`
/// asserts).
#[must_use]
pub fn table1() -> String {
    use cim_arch::{CellType, ChipTier, CoreTier};
    // Measure our own row.
    let supports = |cell: CellType, mode: cim_arch::ComputingMode| -> bool {
        let arch = cim_arch::CimArchitecture::builder("probe")
            .chip(ChipTier::with_core_count(64).expect("valid"))
            .core(CoreTier::with_xb_count(8).expect("valid"))
            .crossbar(
                CrossbarTier::new(XbShape::new(128, 128).expect("valid"), 16, 1, 8, cell, 2)
                    .expect("valid"),
            )
            .mode(mode)
            .build()
            .expect("valid");
        cim_compiler::Compiler::new()
            .compile(&zoo::lenet5(), &arch)
            .is_ok()
    };
    use cim_arch::ComputingMode as M;
    let sram = supports(CellType::Sram, M::Xbm);
    let reram = supports(CellType::Reram, M::Xbm);
    let misc = supports(CellType::Pcm, M::Xbm) && supports(CellType::Flash, M::Xbm);
    let vvm = supports(CellType::Sram, M::Wlm);
    let mvm = supports(CellType::Reram, M::Xbm);
    let dnn_op = supports(CellType::Sram, M::Cm);
    let mark = |b: bool| if b { "yes" } else { "NO " };
    format!(
        "Table 1 — generality comparison (prior-work rows as surveyed by the paper;\n\
         the `Ours` row measured by compilation probes)\n\n\
         {:<22} {:>5} {:>6} {:>5} | {:>4} {:>4} {:>7} | optimization\n\
         {}\n\
         {:<22} {:>5} {:>6} {:>5} | {:>4} {:>4} {:>7} | MVM\n\
         {:<22} {:>5} {:>6} {:>5} | {:>4} {:>4} {:>7} | MVM\n\
         {:<22} {:>5} {:>6} {:>5} | {:>4} {:>4} {:>7} | MVM\n\
         {:<22} {:>5} {:>6} {:>5} | {:>4} {:>4} {:>7} | MVM, MM, Conv\n\
         {:<22} {:>5} {:>6} {:>5} | {:>4} {:>4} {:>7} | (ISA level)\n\
         {:<22} {:>5} {:>6} {:>5} | {:>4} {:>4} {:>7} | VVM, MVM, DNN operators\n",
        "work",
        "SRAM",
        "ReRAM",
        "misc",
        "VVM",
        "MVM",
        "DNN-op",
        "-".repeat(86),
        "PUMA [2,4]",
        "no",
        "yes",
        "no",
        "no",
        "yes",
        "no",
        "IMDP [19]",
        "no",
        "yes",
        "no",
        "yes",
        "yes",
        "no",
        "TC-CIM [17]",
        "no",
        "yes",
        "no",
        "no",
        "yes",
        "no",
        "Polyhedral [22]",
        "no",
        "yes",
        "no",
        "no",
        "yes",
        "yes",
        "OCC [40]",
        "yes",
        "yes",
        "no",
        "yes",
        "yes",
        "no",
        "Ours (measured)",
        mark(sram),
        mark(reram),
        mark(misc),
        mark(vvm),
        mark(mvm),
        mark(dnn_op),
    )
}

/// The hardware-abstraction dumps of Figures 17–19 and Table 3.
#[must_use]
pub fn hardware_abstractions() -> String {
    let mut s = String::new();
    for arch in [
        presets::isaac_baseline(),
        presets::jia_isscc21(),
        presets::puma(),
        presets::jain_sram(),
    ] {
        s.push_str(&arch.describe());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig20a_vendor_row_is_unit() {
        let s = fig20a();
        assert_eq!(s.rows[0].value, 1.0);
        assert!(
            s.rows[2].value > s.rows[1].value,
            "P&D must beat pipeline-only"
        );
        assert!(s.rows[1].value >= 1.0);
    }

    #[test]
    fn fig20d_ordering() {
        let s = fig20d();
        // Poly reduces less than CIM-MLC.
        assert!(s.rows[1].value < s.rows[2].value);
        // CIM-MLC wins by >1.5x.
        assert!(s.rows[3].value > 1.5);
    }

    #[test]
    fn render_includes_paper_values() {
        let s = fig20a();
        let text = s.render();
        assert!(text.contains("paper"));
        assert!(text.contains("Figure 20a"));
    }

    #[test]
    fn fig22d_vvm_advantage_does_not_shrink_with_narrower_rows() {
        let s = fig22d();
        let get = |label: &str| s.rows.iter().find(|r| r.label == label).unwrap().value;
        let adv_wide = get("parallel_row=64 CG+MVM+VVM") / get("parallel_row=64 CG+MVM");
        let adv_narrow = get("parallel_row=8 CG+MVM+VVM") / get("parallel_row=8 CG+MVM");
        assert!(
            adv_narrow >= adv_wide * 0.99,
            "VVM advantage should not shrink as rows narrow: {adv_wide} vs {adv_narrow}"
        );
    }
}
