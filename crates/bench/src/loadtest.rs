//! Versioned, machine-readable load-test reports for `cimc serve`.
//!
//! A [`LoadtestReport`] is the JSON artifact `cimc loadtest --out`
//! emits after replaying a scripted request mix against a running
//! server: outcome counts (ok / error / overloaded / deadline-exceeded /
//! protocol errors), end-to-end latency percentiles, throughput,
//! warm-cache hit rates, and a per-request-key table ranked by median
//! latency — the cbp-experiments style of reporting, adapted to compile
//! service traffic.
//!
//! The driver that produces the samples lives in the facade
//! (`cim_mlc::loadtest`); this module owns the schema so the report
//! format is versioned next to [`crate::report`]'s, with the same
//! [`LOADTEST_MIN_SCHEMA_VERSION`] forwards-compat contract.

use crate::stats::percentile;
use serde::{Deserialize, Serialize};

/// Version of the load-test report layout. Bump on any
/// backwards-incompatible field change; [`LoadtestReport::from_json`]
/// rejects documents outside
/// [`LOADTEST_MIN_SCHEMA_VERSION`]`..=`[`LOADTEST_SCHEMA_VERSION`].
///
/// # History
///
/// * **1** — initial layout.
pub const LOADTEST_SCHEMA_VERSION: u32 = 1;

/// Oldest load-test report layout [`LoadtestReport::from_json`] still
/// reads.
pub const LOADTEST_MIN_SCHEMA_VERSION: u32 = 1;

/// How one replayed request concluded, as classified by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SampleClass {
    /// The server returned the request's success outcome.
    Ok,
    /// The server returned a structured error response.
    Error,
    /// The server rejected the request at admission (queue full).
    Overloaded,
    /// The request's deadline elapsed before (or while) it ran.
    DeadlineExceeded,
    /// The response could not be parsed, carried the wrong id, or the
    /// connection failed mid-request — a protocol violation, never
    /// acceptable in a healthy run.
    Protocol,
}

/// One replayed request's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSample {
    /// Stable grouping key for the scripted request (e.g.
    /// `compile lenet5@isaac`).
    pub key: String,
    /// How the request concluded.
    pub class: SampleClass,
    /// End-to-end latency observed by the client, in milliseconds.
    pub latency_ms: f64,
    /// For cache-eligible successes: whether every cacheable pass was
    /// served from the shared cache (`Some(true)` = fully warm).
    /// `None` when the request type carries no cache evidence.
    pub warm: Option<bool>,
}

/// Aggregated latency row for one request key, ranked into
/// [`LoadtestReport::entries`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadtestEntry {
    /// The request grouping key.
    pub key: String,
    /// Requests replayed under this key.
    pub count: usize,
    /// Successful responses under this key.
    pub ok: usize,
    /// Median end-to-end latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, ms.
    pub p99_ms: f64,
    /// Worst end-to-end latency, ms.
    pub max_ms: f64,
    /// Mean end-to-end latency, ms.
    pub mean_ms: f64,
}

/// The schema-versioned load-test report document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadtestReport {
    /// Layout version ([`LOADTEST_SCHEMA_VERSION`] when written by this
    /// toolchain).
    pub schema_version: u32,
    /// The toolchain that produced the report.
    pub toolchain: String,
    /// Requests replayed.
    pub requests: usize,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Wall-clock duration of the whole replay, ms.
    pub total_ms: f64,
    /// Completed requests per second over the whole replay.
    pub throughput_rps: f64,
    /// Successful responses.
    pub ok: usize,
    /// Structured error responses.
    pub errors: usize,
    /// Admission-control rejections.
    pub overloaded: usize,
    /// Deadline-exceeded responses.
    pub deadline_exceeded: usize,
    /// Protocol violations (unparseable/mismatched responses).
    pub protocol_errors: usize,
    /// Successes that carried cache evidence.
    pub warm_eligible: usize,
    /// Of those, how many ran fully warm (every cacheable pass hit).
    pub warm_hits: usize,
    /// `warm_hits / warm_eligible` (0 when nothing was eligible).
    pub warm_hit_rate: f64,
    /// Median latency across all samples, ms.
    pub p50_ms: f64,
    /// 99th-percentile latency across all samples, ms.
    pub p99_ms: f64,
    /// Worst latency across all samples, ms.
    pub max_ms: f64,
    /// Per-key rows, ranked by median latency (fastest first).
    pub entries: Vec<LoadtestEntry>,
}

impl LoadtestReport {
    /// Aggregates raw driver samples into a report, stamping the schema
    /// version and toolchain. `total_ms` is the replay's wall clock.
    #[must_use]
    pub fn from_samples(samples: &[LoadSample], concurrency: usize, total_ms: f64) -> Self {
        let mut all_ms: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
        all_ms.sort_by(f64::total_cmp);

        let count_class = |class: SampleClass| samples.iter().filter(|s| s.class == class).count();
        let ok = count_class(SampleClass::Ok);
        let warm_eligible = samples.iter().filter(|s| s.warm.is_some()).count();
        let warm_hits = samples.iter().filter(|s| s.warm == Some(true)).count();

        // Group by key in first-seen order, then rank by median latency.
        let mut keys: Vec<&str> = Vec::new();
        for s in samples {
            if !keys.contains(&s.key.as_str()) {
                keys.push(&s.key);
            }
        }
        let mut entries: Vec<LoadtestEntry> = keys
            .into_iter()
            .map(|key| {
                let mut ms: Vec<f64> = samples
                    .iter()
                    .filter(|s| s.key == key)
                    .map(|s| s.latency_ms)
                    .collect();
                ms.sort_by(f64::total_cmp);
                let mean = ms.iter().sum::<f64>() / ms.len() as f64;
                LoadtestEntry {
                    key: key.to_owned(),
                    count: ms.len(),
                    ok: samples
                        .iter()
                        .filter(|s| s.key == key && s.class == SampleClass::Ok)
                        .count(),
                    p50_ms: percentile(&ms, 0.50),
                    p99_ms: percentile(&ms, 0.99),
                    max_ms: ms.last().copied().unwrap_or(0.0),
                    mean_ms: mean,
                }
            })
            .collect();
        entries.sort_by(|a, b| a.p50_ms.total_cmp(&b.p50_ms));

        LoadtestReport {
            schema_version: LOADTEST_SCHEMA_VERSION,
            toolchain: concat!("cim-bench ", env!("CARGO_PKG_VERSION")).to_owned(),
            requests: samples.len(),
            concurrency,
            total_ms,
            throughput_rps: if total_ms > 0.0 {
                samples.len() as f64 / (total_ms / 1000.0)
            } else {
                0.0
            },
            ok,
            errors: count_class(SampleClass::Error),
            overloaded: count_class(SampleClass::Overloaded),
            deadline_exceeded: count_class(SampleClass::DeadlineExceeded),
            protocol_errors: count_class(SampleClass::Protocol),
            warm_eligible,
            warm_hits,
            warm_hit_rate: if warm_eligible > 0 {
                warm_hits as f64 / warm_eligible as f64
            } else {
                0.0
            },
            p50_ms: percentile(&all_ms, 0.50),
            p99_ms: percentile(&all_ms, 0.99),
            max_ms: all_ms.last().copied().unwrap_or(0.0),
            entries,
        }
    }

    /// Serializes the report as pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("load-test reports always serialize")
    }

    /// Parses a report, enforcing the schema-version window.
    ///
    /// # Errors
    /// Returns [`crate::ReportError`] on malformed JSON or a
    /// schema-version mismatch.
    pub fn from_json(json: &str) -> Result<Self, crate::ReportError> {
        let report: LoadtestReport =
            serde_json::from_str(json).map_err(|e| crate::ReportError::Parse(e.to_string()))?;
        if !(LOADTEST_MIN_SCHEMA_VERSION..=LOADTEST_SCHEMA_VERSION).contains(&report.schema_version)
        {
            return Err(crate::ReportError::SchemaVersion {
                found: report.schema_version,
                expected: LOADTEST_SCHEMA_VERSION,
            });
        }
        Ok(report)
    }

    /// Renders the report as the aligned text summary `cimc loadtest`
    /// prints: totals, outcome counts, warm-cache rate, overall latency
    /// percentiles and the ranked per-key table.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "loadtest: {} request(s) at concurrency {} in {:.0} ms ({:.1} req/s)",
            self.requests, self.concurrency, self.total_ms, self.throughput_rps
        );
        let _ = writeln!(
            out,
            "outcomes: {} ok, {} error(s), {} overloaded, {} deadline-exceeded, \
             {} protocol error(s)",
            self.ok, self.errors, self.overloaded, self.deadline_exceeded, self.protocol_errors
        );
        let _ = writeln!(
            out,
            "warm: {}/{} cache-eligible request(s) fully warm ({:.1}%)",
            self.warm_hits,
            self.warm_eligible,
            self.warm_hit_rate * 100.0
        );
        let _ = writeln!(
            out,
            "latency: p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
            self.p50_ms, self.p99_ms, self.max_ms
        );
        let _ = writeln!(
            out,
            "{:<28} {:>6} {:>6} {:>9} {:>9} {:>9}",
            "key", "count", "ok", "p50(ms)", "p99(ms)", "max(ms)"
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{:<28} {:>6} {:>6} {:>9.2} {:>9.2} {:>9.2}",
                e.key, e.count, e.ok, e.p50_ms, e.p99_ms, e.max_ms
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(key: &str, class: SampleClass, latency_ms: f64, warm: Option<bool>) -> LoadSample {
        LoadSample {
            key: key.to_owned(),
            class,
            latency_ms,
            warm,
        }
    }

    #[test]
    fn aggregation_counts_classes_and_ranks_keys_by_median() {
        let samples = vec![
            sample("slow", SampleClass::Ok, 20.0, Some(true)),
            sample("slow", SampleClass::Ok, 30.0, Some(false)),
            sample("fast", SampleClass::Ok, 1.0, Some(true)),
            sample("fast", SampleClass::Ok, 2.0, Some(true)),
            sample("fast", SampleClass::Overloaded, 0.5, None),
            sample("slow", SampleClass::DeadlineExceeded, 5.0, None),
            sample("slow", SampleClass::Error, 4.0, None),
            sample("slow", SampleClass::Protocol, 3.0, None),
        ];
        let report = LoadtestReport::from_samples(&samples, 4, 2000.0);
        assert_eq!(report.requests, 8);
        assert_eq!(
            (
                report.ok,
                report.errors,
                report.overloaded,
                report.deadline_exceeded,
                report.protocol_errors
            ),
            (4, 1, 1, 1, 1)
        );
        assert_eq!((report.warm_eligible, report.warm_hits), (4, 3));
        assert!((report.warm_hit_rate - 0.75).abs() < 1e-12);
        assert!((report.throughput_rps - 4.0).abs() < 1e-12);
        // Ranked fastest-median first.
        assert_eq!(report.entries[0].key, "fast");
        assert_eq!(report.entries[1].key, "slow");
        assert_eq!(report.entries[0].count, 3);
        assert_eq!(report.entries[0].ok, 2);
        assert_eq!(report.entries[1].max_ms, 30.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let samples = vec![
            sample("compile lenet5@isaac", SampleClass::Ok, 3.25, Some(true)),
            sample("ping", SampleClass::Ok, 0.125, None),
        ];
        let report = LoadtestReport::from_samples(&samples, 2, 100.0);
        let back = LoadtestReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn future_schema_versions_are_rejected() {
        let samples = [sample("ping", SampleClass::Ok, 1.0, None)];
        let mut report = LoadtestReport::from_samples(&samples, 1, 10.0);
        report.schema_version = LOADTEST_SCHEMA_VERSION + 1;
        let err = LoadtestReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
    }

    #[test]
    fn render_mentions_every_headline_number() {
        let samples = vec![
            sample("compile lenet5@isaac", SampleClass::Ok, 3.0, Some(true)),
            sample("compile lenet5@isaac", SampleClass::Overloaded, 0.5, None),
        ];
        let text = LoadtestReport::from_samples(&samples, 2, 50.0).render();
        assert!(text.contains("2 request(s) at concurrency 2"), "{text}");
        assert!(text.contains("1 ok"), "{text}");
        assert!(text.contains("1 overloaded"), "{text}");
        assert!(text.contains("0 protocol error(s)"), "{text}");
        assert!(text.contains("1/1 cache-eligible"), "{text}");
        assert!(text.contains("compile lenet5@isaac"), "{text}");
    }
}
