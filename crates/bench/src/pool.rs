//! A deterministic work-queue thread pool for batch evaluation.
//!
//! The implementation lives in [`cim_compiler::pool`] since the compiler
//! itself fans intra-graph scheduling out onto it; this module re-exports
//! it for the sweep driver ([`crate::run_sweep_cached`]), the design-space
//! explorer (`cim-dse`) and historical callers of `cim_bench::pool`.

pub use cim_compiler::pool::{run_ordered, Pool, PoolFull};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|n| n * n).collect();
        for threads in [1, 2, 4, 16, 200] {
            assert_eq!(run_ordered(&items, threads, |n| n * n), expect);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = run_ordered(&[] as &[u32], 4, |n| *n);
        assert!(out.is_empty());
    }

    #[test]
    fn work_queue_balances_uneven_items() {
        // A deliberately skewed workload: one heavy item plus many light
        // ones. Correctness (order) must hold; this is primarily a
        // does-not-deadlock/does-not-partition-statically check.
        let items: Vec<u64> = (0..32).collect();
        let out = run_ordered(&items, 4, |n| {
            if *n == 0 {
                (0..10_000u64).fold(0, |a, b| a ^ b.wrapping_mul(*n + 1))
            } else {
                *n
            }
        });
        assert_eq!(out[5], 5);
        assert_eq!(out.len(), 32);
    }
}
