//! A deterministic work-queue thread pool for batch evaluation.
//!
//! [`run_ordered`] is the scheduling core shared by the sweep driver
//! ([`crate::run_sweep_cached`]) and the design-space explorer
//! (`cim-dse`): workers pull item indices off a shared atomic counter —
//! so a slow item never blocks the rest of the batch behind a static
//! partition — and write results back *by index*, so the output order
//! equals the input order regardless of worker count or interleaving.
//! Anything built on top of it therefore produces thread-count-invariant
//! results as long as the per-item function is pure.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on `threads` worker threads (clamped to
/// `1..=items.len()`), returning the results in input order.
///
/// `f` must be pure with respect to the output (it may hit shared
/// caches): the contract every caller relies on is that the returned
/// vector is identical for any `threads` value.
///
/// # Panics
/// Panics if a worker thread panics (a bug in `f`, not an input error).
pub fn run_ordered<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = f(item);
                *slots[i].lock().expect("pool worker poisoned a slot") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("pool worker poisoned a slot")
                .expect("every item index was claimed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|n| n * n).collect();
        for threads in [1, 2, 4, 16, 200] {
            assert_eq!(run_ordered(&items, threads, |n| n * n), expect);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = run_ordered(&[] as &[u32], 4, |n| *n);
        assert!(out.is_empty());
    }

    #[test]
    fn work_queue_balances_uneven_items() {
        // A deliberately skewed workload: one heavy item plus many light
        // ones. Correctness (order) must hold; this is primarily a
        // does-not-deadlock/does-not-partition-statically check.
        let items: Vec<u64> = (0..32).collect();
        let out = run_ordered(&items, 4, |n| {
            if *n == 0 {
                (0..10_000u64).fold(0, |a, b| a ^ b.wrapping_mul(*n + 1))
            } else {
                *n
            }
        });
        assert_eq!(out[5], 5);
        assert_eq!(out.len(), 32);
    }
}
