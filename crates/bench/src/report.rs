//! Versioned, machine-readable bench reports and regression comparison.
//!
//! A [`BenchReport`] is the JSON artifact a sweep run emits (`cimc bench
//! --out report.json`): schema version, toolchain, the [`SweepSpec`] that
//! produced it, one [`JobRecord`] per successful compilation and one
//! [`JobFailure`] per compile error, plus a wall-clock [`SweepTiming`]
//! section. Everything outside the timing section and the per-job
//! `compile_ms` field is deterministic, so [`BenchReport::comparable`]
//! yields byte-identical JSON across worker counts and machines.
//!
//! [`compare`] diffs two reports job-by-job and flags metric deltas
//! beyond configurable [`Tolerances`] — the CI regression gate.

use crate::sweep::{ScheduleMode, SweepSpec};
use cim_compiler::{CacheStats, CompileMetrics};
use serde::{Deserialize, Serialize};

/// Version of the report document layout. Bump on any
/// backwards-incompatible field change; [`BenchReport::from_json`] rejects documents
/// outside [`MIN_SCHEMA_VERSION`]`..=`[`SCHEMA_VERSION`] instead of
/// misreading them.
///
/// # History
///
/// * **3** — adds the optional `compile_time` section: median
///   cold-compile wall clocks of the [`crate::compile_time::GATE_ENTRIES`]
///   workloads, attached by `scripts/refresh-baseline.sh` and consumed
///   by the `cimc compile-perf` drift gate. Version-1/2 documents remain
///   readable: the section defaults to absent, and nothing else changed.
/// * **2** — adds the optional `cache_stats` block (compile-cache
///   hit/miss/store counters of the sweep that produced the report).
///   Version-1 documents remain readable: `cache_stats` defaults to
///   absent, and nothing else changed. Regenerate committed baselines
///   with `scripts/refresh-baseline.sh` at leisure; v1 baselines keep
///   gating correctly in the meantime.
/// * **1** — initial layout.
pub const SCHEMA_VERSION: u32 = 3;

/// Oldest report layout [`BenchReport::from_json`] still reads (see
/// [`SCHEMA_VERSION`] for the migration history).
pub const MIN_SCHEMA_VERSION: u32 = 1;

/// The stable job identifier (`model@arch#mode`) shared by job specs,
/// records and failures — the unit [`compare`] matches baseline and
/// current reports on.
#[must_use]
pub fn job_key(model: &str, arch: &str, mode: ScheduleMode) -> String {
    format!("{model}@{arch}#{mode}")
}

/// Deterministic per-job metrics (flattened [`CompileMetrics`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Deepest scheduling level that ran.
    pub level: String,
    /// End-to-end single-image inference latency in cycles.
    pub latency_cycles: f64,
    /// Steady-state initiation interval for batch processing.
    pub steady_state_interval: f64,
    /// Peak instantaneous power (energy units per cycle).
    pub peak_power: f64,
    /// Maximum number of crossbars simultaneously active.
    pub peak_active_crossbars: u64,
    /// Total energy of one inference.
    pub energy_total: f64,
    /// Crossbar-activation component of the energy.
    pub energy_crossbar: f64,
    /// ADC component of the energy.
    pub energy_adc: f64,
    /// DAC component of the energy.
    pub energy_dac: f64,
    /// Data-movement component of the energy.
    pub energy_movement: f64,
    /// Digital-ALU component of the energy.
    pub energy_alu: f64,
    /// Number of compute-graph segments.
    pub segments: usize,
    /// Cycles spent reprogramming crossbars between segments/folds.
    pub reprogram_cycles: f64,
    /// Number of pipeline stages scheduled.
    pub stages: usize,
    /// MVM macro-operations issued per inference.
    pub mvm_ops: u64,
    /// Crossbar allocations summed over the final plans.
    pub crossbars_allocated: u64,
    /// Peak fraction of the chip's crossbars simultaneously active.
    pub utilization: f64,
}

impl From<&CompileMetrics> for JobMetrics {
    fn from(m: &CompileMetrics) -> Self {
        JobMetrics {
            level: m.level.to_owned(),
            latency_cycles: m.latency_cycles,
            steady_state_interval: m.steady_state_interval,
            peak_power: m.peak_power,
            peak_active_crossbars: m.peak_active_crossbars,
            energy_total: m.energy.total(),
            energy_crossbar: m.energy.crossbar,
            energy_adc: m.energy.adc,
            energy_dac: m.energy.dac,
            energy_movement: m.energy.movement,
            energy_alu: m.energy.alu,
            segments: m.segments,
            reprogram_cycles: m.reprogram_cycles,
            stages: m.stages,
            mvm_ops: m.mvm_ops,
            crossbars_allocated: m.crossbars_allocated,
            utilization: m.utilization,
        }
    }
}

/// One successful sweep job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Zoo model key.
    pub model: String,
    /// Architecture preset key.
    pub arch: String,
    /// Scheduling mode.
    pub mode: ScheduleMode,
    /// Deterministic metrics.
    pub metrics: JobMetrics,
    /// Wall-clock compile time in milliseconds — the only
    /// non-deterministic per-job field; zeroed by
    /// [`BenchReport::comparable`].
    pub compile_ms: f64,
}

impl JobRecord {
    /// This record's [`job_key`].
    #[must_use]
    pub fn key(&self) -> String {
        job_key(&self.model, &self.arch, self.mode)
    }
}

/// One failed sweep job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobFailure {
    /// Zoo model key.
    pub model: String,
    /// Architecture preset key.
    pub arch: String,
    /// Scheduling mode.
    pub mode: ScheduleMode,
    /// The compile error, verbatim.
    pub error: String,
}

impl JobFailure {
    /// This failure's [`job_key`].
    #[must_use]
    pub fn key(&self) -> String {
        job_key(&self.model, &self.arch, self.mode)
    }
}

/// Wall-clock summary of a sweep run. Excluded from comparison: two runs
/// of the same spec differ here and nowhere else.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepTiming {
    /// Total sweep wall-clock time in milliseconds.
    pub total_ms: f64,
    /// Worker threads used.
    pub threads: usize,
}

/// The machine-readable artifact of one sweep run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Document layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The toolchain that produced the report.
    pub toolchain: String,
    /// The spec that was swept.
    pub spec: SweepSpec,
    /// Successful jobs, in matrix order.
    pub jobs: Vec<JobRecord>,
    /// Failed jobs, in matrix order.
    pub failures: Vec<JobFailure>,
    /// Wall-clock section (excluded from comparison).
    pub timing: SweepTiming,
    /// Compile-cache counters of the sweep that produced this report
    /// (`None` when the sweep ran uncached, or for schema-v1 documents).
    /// Run-specific like `timing`, and excluded from comparison: a cold
    /// and a warm sweep of the same spec differ here and nowhere else.
    #[serde(default)]
    pub cache_stats: Option<CacheStats>,
    /// Median cold-compile wall clocks of the compile-perf gate
    /// workloads ([`crate::compile_time::GATE_ENTRIES`]). Ordinary sweep
    /// runs carry `None`; `scripts/refresh-baseline.sh` attaches freshly
    /// measured medians so `cimc compile-perf --baseline` can gate
    /// drift. Unlike `timing`/`cache_stats` this section *survives*
    /// [`BenchReport::comparable`]: it is reference data deliberately
    /// baked into the committed baseline, not a by-product of the run —
    /// and since plain sweeps never populate it, cold/warm comparable
    /// byte-identity is unaffected.
    #[serde(default)]
    pub compile_time: Option<Vec<crate::compile_time::CompileTimeRecord>>,
}

/// Why a report document was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// The document is not valid JSON or does not match the schema.
    Parse(String),
    /// The document's `schema_version` is outside
    /// [`MIN_SCHEMA_VERSION`]`..=`[`SCHEMA_VERSION`].
    SchemaVersion {
        /// Version found in the document.
        found: u32,
        /// Newest version this toolchain reads and writes.
        expected: u32,
    },
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::Parse(e) => write!(f, "invalid bench report: {e}"),
            ReportError::SchemaVersion { found, expected } => write!(
                f,
                "bench report schema_version {found} is outside the supported range \
                 {MIN_SCHEMA_VERSION}..={expected} \
                 (regenerate the baseline with scripts/refresh-baseline.sh)"
            ),
        }
    }
}

impl std::error::Error for ReportError {}

impl BenchReport {
    /// Assembles a report, stamping the schema version and toolchain.
    #[must_use]
    pub fn new(
        spec: SweepSpec,
        jobs: Vec<JobRecord>,
        failures: Vec<JobFailure>,
        timing: SweepTiming,
    ) -> Self {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            toolchain: concat!("cim-bench ", env!("CARGO_PKG_VERSION")).to_owned(),
            spec,
            jobs,
            failures,
            timing,
            cache_stats: None,
            compile_time: None,
        }
    }

    /// Serializes the report as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench reports always serialize")
    }

    /// Parses and validates a report document.
    ///
    /// # Errors
    /// Returns [`ReportError`] on malformed JSON or a schema-version
    /// mismatch.
    pub fn from_json(json: &str) -> Result<Self, ReportError> {
        let report: BenchReport =
            serde_json::from_str(json).map_err(|e| ReportError::Parse(e.to_string()))?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&report.schema_version) {
            return Err(ReportError::SchemaVersion {
                found: report.schema_version,
                expected: SCHEMA_VERSION,
            });
        }
        Ok(report)
    }

    /// A copy with every run-specific field stripped — wall clocks
    /// zeroed and `cache_stats` dropped: the comparison section. Two
    /// sweeps of the same spec on the same toolchain serialize this copy
    /// to byte-identical JSON regardless of worker count or cache state
    /// (cold, warm, or uncached). The `compile_time` section is kept:
    /// it is deliberately attached reference data (absent from plain
    /// sweep runs), not a run by-product.
    #[must_use]
    pub fn comparable(&self) -> Self {
        let mut report = self.clone();
        report.timing = SweepTiming {
            total_ms: 0.0,
            threads: 0,
        };
        for job in &mut report.jobs {
            job.compile_ms = 0.0;
        }
        report.cache_stats = None;
        report
    }
}

/// Relative tolerances for [`compare`], as fractions (0.005 = 0.5%).
/// Sweep metrics are deterministic simulated quantities, so the defaults
/// are tight: any delta beyond them reflects a real change in compiler
/// behaviour, not measurement noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Allowed relative latency increase.
    pub latency: f64,
    /// Allowed relative energy increase.
    pub energy: f64,
    /// Allowed relative peak-power increase.
    pub peak_power: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            latency: 0.005,
            energy: 0.005,
            peak_power: 0.005,
        }
    }
}

impl Tolerances {
    /// Uniform tolerances of `fraction` on every metric.
    #[must_use]
    pub fn uniform(fraction: f64) -> Self {
        Tolerances {
            latency: fraction,
            energy: fraction,
            peak_power: fraction,
        }
    }
}

/// One metric that moved beyond tolerance between baseline and current.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Job key (`model@arch#mode`).
    pub job: String,
    /// Metric name.
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative change, `(current - baseline) / baseline`.
    pub delta: f64,
}

impl std::fmt::Display for MetricDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} {:.4} -> {:.4} ({:+.2}%)",
            self.job,
            self.metric,
            self.baseline,
            self.current,
            self.delta * 100.0
        )
    }
}

/// The outcome of diffing a current report against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegressionReport {
    /// Metrics that got worse beyond tolerance — these fail the gate.
    pub regressions: Vec<MetricDelta>,
    /// Metrics that improved beyond tolerance (informational; refresh
    /// the baseline to lock them in).
    pub improvements: Vec<MetricDelta>,
    /// Jobs that compiled in the baseline but fail now — these fail the
    /// gate.
    pub newly_failing: Vec<String>,
    /// Jobs that failed in the baseline but compile now (informational).
    pub fixed: Vec<String>,
    /// Baseline job keys absent from the current report (e.g. a quick
    /// run compared against the full baseline; informational).
    pub missing: Vec<String>,
    /// Current job keys absent from the baseline (informational).
    pub added: Vec<String>,
}

impl RegressionReport {
    /// `true` when the gate passes: no regressions and no newly failing
    /// jobs.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.regressions.is_empty() && self.newly_failing.is_empty()
    }

    /// Renders a human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.passes() {
            out.push_str("regression gate: PASS\n");
        } else {
            out.push_str("regression gate: FAIL\n");
        }
        for d in &self.regressions {
            out.push_str(&format!("  regression  {d}\n"));
        }
        for key in &self.newly_failing {
            out.push_str(&format!("  newly failing  {key}\n"));
        }
        for d in &self.improvements {
            out.push_str(&format!("  improvement {d}\n"));
        }
        for key in &self.fixed {
            out.push_str(&format!("  fixed  {key}\n"));
        }
        if !self.missing.is_empty() {
            out.push_str(&format!(
                "  ({} baseline job(s) not exercised by this run)\n",
                self.missing.len()
            ));
        }
        if !self.added.is_empty() {
            out.push_str(&format!(
                "  ({} job(s) have no baseline entry yet)\n",
                self.added.len()
            ));
        }
        out
    }
}

fn relative_delta(baseline: f64, current: f64) -> f64 {
    if baseline == 0.0 {
        if current == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (current - baseline) / baseline
    }
}

/// Diffs `current` against `baseline` job-by-job.
///
/// Jobs are matched on their `model@arch#mode` key; latency, total
/// energy and peak power deltas beyond `tol` are classified as
/// regressions (worse) or improvements (better). A failing job is
/// `newly_failing` — and fails the gate — unless the baseline already
/// records the same job as failing; that covers both jobs that compiled
/// in the baseline and jobs added to the spec in a broken state.
/// Successful jobs present on only one side are reported but do not fail
/// the gate, so a `--quick` run can be compared against the full
/// committed baseline.
#[must_use]
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    tol: &Tolerances,
) -> RegressionReport {
    let mut report = RegressionReport::default();
    let base_jobs: Vec<(String, &JobRecord)> = baseline.jobs.iter().map(|j| (j.key(), j)).collect();
    let base_failures: Vec<String> = baseline.failures.iter().map(JobFailure::key).collect();
    let find_base = |key: &str| base_jobs.iter().find(|(k, _)| k == key).map(|(_, j)| *j);

    let mut current_keys: Vec<String> = Vec::new();
    for job in &current.jobs {
        let key = job.key();
        current_keys.push(key.clone());
        let Some(base) = find_base(&key) else {
            if base_failures.contains(&key) {
                report.fixed.push(key);
            } else {
                report.added.push(key);
            }
            continue;
        };
        let checks: [(&'static str, f64, f64, f64); 3] = [
            (
                "latency_cycles",
                base.metrics.latency_cycles,
                job.metrics.latency_cycles,
                tol.latency,
            ),
            (
                "energy_total",
                base.metrics.energy_total,
                job.metrics.energy_total,
                tol.energy,
            ),
            (
                "peak_power",
                base.metrics.peak_power,
                job.metrics.peak_power,
                tol.peak_power,
            ),
        ];
        for (metric, base_value, current_value, tolerance) in checks {
            let delta = relative_delta(base_value, current_value);
            let entry = MetricDelta {
                job: key.clone(),
                metric,
                baseline: base_value,
                current: current_value,
                delta,
            };
            if delta > tolerance {
                report.regressions.push(entry);
            } else if delta < -tolerance {
                report.improvements.push(entry);
            }
        }
    }
    for failure in &current.failures {
        let key = failure.key();
        current_keys.push(key.clone());
        // Anything failing now that the baseline does not already record
        // as failing fails the gate — including jobs the baseline has
        // never seen, so a job added to the spec in a broken state cannot
        // slip through as merely "added".
        if !base_failures.contains(&key) {
            report.newly_failing.push(key);
        }
    }
    for (key, _) in &base_jobs {
        if !current_keys.contains(key) {
            report.missing.push(key.clone());
        }
    }
    for key in &base_failures {
        if !current_keys.contains(key) {
            report.missing.push(key.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::ScheduleMode;

    fn metrics(latency: f64) -> JobMetrics {
        JobMetrics {
            level: "cg".to_owned(),
            latency_cycles: latency,
            steady_state_interval: latency,
            peak_power: 10.0,
            peak_active_crossbars: 64,
            energy_total: 100.0,
            energy_crossbar: 80.0,
            energy_adc: 5.0,
            energy_dac: 5.0,
            energy_movement: 5.0,
            energy_alu: 5.0,
            segments: 1,
            reprogram_cycles: 0.0,
            stages: 3,
            mvm_ops: 1000,
            crossbars_allocated: 128,
            utilization: 0.5,
        }
    }

    fn record(model: &str, latency: f64) -> JobRecord {
        JobRecord {
            model: model.to_owned(),
            arch: "isaac".to_owned(),
            mode: ScheduleMode::Auto,
            metrics: metrics(latency),
            compile_ms: 1.25,
        }
    }

    fn report(records: Vec<JobRecord>, failures: Vec<JobFailure>) -> BenchReport {
        BenchReport::new(
            SweepSpec::quick(),
            records,
            failures,
            SweepTiming {
                total_ms: 12.0,
                threads: 2,
            },
        )
    }

    #[test]
    fn json_round_trips() {
        let r = report(
            vec![record("lenet5", 1000.0)],
            vec![JobFailure {
                model: "vgg16".to_owned(),
                arch: "table2".to_owned(),
                mode: ScheduleMode::Cg,
                error: "operator too large".to_owned(),
            }],
        );
        let back = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn schema_version_mismatch_rejected() {
        let mut r = report(vec![record("lenet5", 1000.0)], vec![]);
        r.schema_version = SCHEMA_VERSION + 1;
        let err = BenchReport::from_json(&r.to_json()).unwrap_err();
        assert!(matches!(err, ReportError::SchemaVersion { .. }), "{err}");
        assert!(BenchReport::from_json("{nope").is_err());
    }

    #[test]
    fn comparable_strips_only_run_specific_fields() {
        let mut r = report(vec![record("lenet5", 1000.0)], vec![]);
        r.cache_stats = Some(CacheStats {
            hits: 7,
            misses: 2,
            stores: 2,
        });
        r.compile_time = Some(vec![crate::compile_time::CompileTimeRecord {
            model: "vit_base".to_owned(),
            arch: "isaac".to_owned(),
            jobs: 4,
            samples: 9,
            median_ms: 3.3,
        }]);
        let c = r.comparable();
        assert_eq!(c.jobs[0].compile_ms, 0.0);
        assert_eq!(c.timing.total_ms, 0.0);
        assert_eq!(c.cache_stats, None);
        assert_eq!(
            c.compile_time, r.compile_time,
            "compile_time is reference data and survives comparable()"
        );
        assert_eq!(c.jobs[0].metrics, r.jobs[0].metrics);
        assert_eq!(c.spec, r.spec);
    }

    /// Rewrites a current report as an older document: `schema_version`
    /// forced to `version`, every field in `absent` removed entirely
    /// (older writers never emitted them).
    fn downgraded_json(r: &BenchReport, version: u64, absent: &[&str]) -> String {
        use serde::{Serialize, Value};
        let Value::Map(entries) = r.to_value() else {
            panic!("reports serialize to objects")
        };
        let old_entries: Vec<(String, Value)> = entries
            .into_iter()
            .map(|(k, v)| {
                if k == "schema_version" {
                    (k, Value::U64(version))
                } else {
                    (k, v)
                }
            })
            .filter(|(k, _)| !absent.contains(&k.as_str()))
            .collect();
        serde_json::to_string(&Value::Map(old_entries)).unwrap()
    }

    #[test]
    fn schema_v1_documents_remain_readable() {
        let mut r = report(vec![record("lenet5", 1000.0)], vec![]);
        r.cache_stats = Some(CacheStats {
            hits: 1,
            misses: 2,
            stores: 3,
        });
        let v1_json = downgraded_json(&r, 1, &["cache_stats", "compile_time"]);
        let back = BenchReport::from_json(&v1_json).unwrap();
        assert_eq!(back.schema_version, 1);
        assert_eq!(back.cache_stats, None, "v1 has no cache stats");
        assert_eq!(back.compile_time, None, "v1 has no compile-time section");
        assert_eq!(back.jobs, r.jobs);
        // The v1 baseline still gates against a current report.
        assert!(compare(&back, &r, &Tolerances::default()).passes());
    }

    #[test]
    fn schema_v2_documents_remain_readable() {
        // v2 documents have `cache_stats` but no `compile_time` section.
        let mut r = report(vec![record("lenet5", 1000.0)], vec![]);
        r.cache_stats = Some(CacheStats {
            hits: 1,
            misses: 2,
            stores: 3,
        });
        let v2_json = downgraded_json(&r, 2, &["compile_time"]);
        let back = BenchReport::from_json(&v2_json).unwrap();
        assert_eq!(back.schema_version, 2);
        assert_eq!(back.cache_stats, r.cache_stats, "v2 keeps cache stats");
        assert_eq!(back.compile_time, None, "v2 has no compile-time section");
        assert_eq!(back.jobs, r.jobs);
        // The v2 baseline still gates against a v3 current report.
        assert!(compare(&back, &r, &Tolerances::default()).passes());
    }

    #[test]
    fn latency_regression_beyond_tolerance_fails_the_gate() {
        let base = report(vec![record("lenet5", 1000.0)], vec![]);
        let current = report(vec![record("lenet5", 1100.0)], vec![]);
        let diff = compare(&base, &current, &Tolerances::default());
        assert!(!diff.passes());
        assert_eq!(diff.regressions.len(), 1);
        assert_eq!(diff.regressions[0].metric, "latency_cycles");
        assert!((diff.regressions[0].delta - 0.1).abs() < 1e-12);
        assert!(diff.render().contains("FAIL"));

        // The same delta passes under a generous tolerance.
        let diff = compare(&base, &current, &Tolerances::uniform(0.2));
        assert!(diff.passes());
    }

    #[test]
    fn improvements_do_not_fail_the_gate() {
        let base = report(vec![record("lenet5", 1000.0)], vec![]);
        let current = report(vec![record("lenet5", 800.0)], vec![]);
        let diff = compare(&base, &current, &Tolerances::default());
        assert!(diff.passes());
        assert_eq!(diff.improvements.len(), 1);
        assert!(diff.render().contains("PASS"));
    }

    #[test]
    fn newly_failing_job_fails_the_gate() {
        let base = report(vec![record("lenet5", 1000.0)], vec![]);
        let current = report(
            vec![],
            vec![JobFailure {
                model: "lenet5".to_owned(),
                arch: "isaac".to_owned(),
                mode: ScheduleMode::Auto,
                error: "boom".to_owned(),
            }],
        );
        let diff = compare(&base, &current, &Tolerances::default());
        assert!(!diff.passes());
        assert_eq!(diff.newly_failing, vec!["lenet5@isaac#auto".to_owned()]);
    }

    #[test]
    fn failure_without_baseline_entry_still_fails_the_gate() {
        // A job added to the spec in a broken state has no baseline
        // entry; it must surface as newly failing, not vanish.
        let failure = JobFailure {
            model: "vgg16".to_owned(),
            arch: "isaac".to_owned(),
            mode: ScheduleMode::Auto,
            error: "boom".to_owned(),
        };
        let base = report(vec![record("lenet5", 1000.0)], vec![]);
        let current = report(vec![record("lenet5", 1000.0)], vec![failure.clone()]);
        let diff = compare(&base, &current, &Tolerances::default());
        assert!(!diff.passes());
        assert_eq!(diff.newly_failing, vec!["vgg16@isaac#auto".to_owned()]);

        // Once the baseline records the same failure, it is expected.
        let base = report(vec![record("lenet5", 1000.0)], vec![failure]);
        assert!(compare(&base, &current, &Tolerances::default()).passes());
    }

    #[test]
    fn spec_subsets_compare_cleanly() {
        // Quick run against a fuller baseline: extra baseline jobs are
        // `missing`, not failures; extra current jobs are `added`.
        let base = report(
            vec![record("lenet5", 1000.0), record("vgg16", 9000.0)],
            vec![],
        );
        let current = report(vec![record("lenet5", 1000.0), record("mlp", 50.0)], vec![]);
        let diff = compare(&base, &current, &Tolerances::default());
        assert!(diff.passes());
        assert_eq!(diff.missing, vec!["vgg16@isaac#auto".to_owned()]);
        assert_eq!(diff.added, vec!["mlp@isaac#auto".to_owned()]);
    }
}
