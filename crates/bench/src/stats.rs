//! Shared latency statistics: nearest-rank percentiles and the
//! p50/p99/max/mean summary every report in the stack quotes.
//!
//! Both the serve-layer load tester ([`crate::loadtest`]) and the
//! traffic simulator (`cim-traffic`) reduce a bag of per-request
//! latencies to the same four headline numbers. This module owns that
//! math in one place so "p99" means the same thing in every report:
//! the **nearest-rank** percentile of the ascending-sorted samples
//! (exact order statistic, no interpolation), which is deterministic,
//! unit-agnostic, and well-defined down to a single sample.

use serde::{Deserialize, Serialize};

/// Nearest-rank percentile of an ascending-sorted slice (`q` in
/// `0..=1`). Empty input yields 0.
///
/// The nearest-rank definition returns an element of the input (never
/// an interpolated midpoint): the `ceil(q·n)`-th smallest sample,
/// clamped to the first for `q = 0`.
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The four-number latency summary (plus count and mean) shared by
/// load-test and traffic reports. Unit-agnostic: the caller decides
/// whether samples are milliseconds or cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: u64,
    /// Median ([`percentile`] at 0.50).
    pub p50: f64,
    /// 99th percentile ([`percentile`] at 0.99).
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencySummary {
    /// The all-zero summary of an empty sample set.
    #[must_use]
    pub fn empty() -> Self {
        LatencySummary {
            count: 0,
            p50: 0.0,
            p99: 0.0,
            max: 0.0,
            mean: 0.0,
        }
    }

    /// Summarizes `samples` in any order (they are copied and sorted
    /// with [`f64::total_cmp`], so NaN-free inputs are totally ordered
    /// and the result is independent of input order).
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Self::of_sorted(&sorted)
    }

    /// Summarizes an already ascending-sorted sample slice without
    /// copying it.
    #[must_use]
    pub fn of_sorted(sorted: &[f64]) -> Self {
        if sorted.is_empty() {
            return Self::empty();
        }
        LatencySummary {
            count: sorted.len() as u64,
            p50: percentile(sorted, 0.50),
            p99: percentile(sorted, 0.99),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank_on_known_distributions() {
        // 1..=100: the q-th percentile is exactly the q-th element.
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);

        // 10 samples: p50 is the 5th, p99 the 10th (ceil(9.9) = 10).
        let v: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), 5.0);
        assert_eq!(percentile(&v, 0.99), 10.0);

        assert_eq!(percentile(&[7.5], 0.99), 7.5);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn summary_is_order_independent_and_pins_headline_numbers() {
        let asc: Vec<f64> = (1..=100).map(f64::from).collect();
        let mut desc = asc.clone();
        desc.reverse();
        let a = LatencySummary::of(&asc);
        let b = LatencySummary::of(&desc);
        assert_eq!(a, b);
        assert_eq!(a.count, 100);
        assert_eq!(a.p50, 50.0);
        assert_eq!(a.p99, 99.0);
        assert_eq!(a.max, 100.0);
        assert!((a.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        assert_eq!(LatencySummary::of(&[]), LatencySummary::empty());
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = LatencySummary::of(&[3.0, 1.0, 2.0]);
        let json = serde_json::to_string(&s).unwrap();
        let back: LatencySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
