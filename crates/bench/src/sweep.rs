//! Parallel full-stack sweeps: every selected zoo model compiled against
//! every selected architecture preset under every selected scheduling
//! mode (the paper's Figures 20–22 evaluation matrix, batched).
//!
//! A [`SweepSpec`] names the three axes; [`run_sweep`] expands them into
//! a job matrix and executes it on a work-queue pool of `std::thread`
//! workers. Results land in a [`BenchReport`]
//! in matrix order regardless of worker count, so reports are
//! byte-identical across `--jobs` settings once wall-clock fields are
//! stripped (see [`BenchReport::comparable`](crate::report::BenchReport::comparable)).
//!
//! The worker pool shares one [`CompileCache`]: across the matrix most
//! pipeline work is common (every arch stages the same graph the same
//! way; `auto` and `cg` diverge only below the CG level), so jobs that
//! share a pass-chain prefix reuse each other's artifacts. [`run_sweep`]
//! memoizes in-process by default; [`run_sweep_cached`] accepts any
//! cache (a [`DiskCache`](cim_compiler::DiskCache) makes warm reruns
//! serve every pass from disk) or `None` to disable caching entirely.
//! Cached artifacts are bit-identical to recomputed ones (the
//! [`Pass`](cim_compiler::Pass) purity contract), so caching never
//! changes a report's comparison section.

use crate::pool::run_ordered;
use crate::report::{BenchReport, JobFailure, JobMetrics, JobRecord, SweepTiming};
use cim_arch::presets;
use cim_compiler::{CompileCache, CompileOptions, Compiler, MemoryCache, OptLevel};
use cim_graph::zoo;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Scheduling-depth axis of a sweep: the [`OptLevel`]s a job matrix can
/// request, with stable serialized names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ScheduleMode {
    /// Let the target's computing mode decide (the paper's workflow).
    Auto,
    /// Stop after CG-grained optimization.
    Cg,
    /// Stop after MVM-grained optimization.
    CgMvm,
    /// Run all three levels.
    CgMvmVvm,
}

impl ScheduleMode {
    /// Every mode, in scheduling-depth order.
    pub const ALL: [ScheduleMode; 4] = [
        ScheduleMode::Auto,
        ScheduleMode::Cg,
        ScheduleMode::CgMvm,
        ScheduleMode::CgMvmVvm,
    ];

    /// The compiler option this mode maps to.
    #[must_use]
    pub fn opt_level(self) -> OptLevel {
        match self {
            ScheduleMode::Auto => OptLevel::Auto,
            ScheduleMode::Cg => OptLevel::Cg,
            ScheduleMode::CgMvm => OptLevel::CgMvm,
            ScheduleMode::CgMvmVvm => OptLevel::CgMvmVvm,
        }
    }

    /// Stable name used in job keys, reports and the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScheduleMode::Auto => "auto",
            ScheduleMode::Cg => "cg",
            ScheduleMode::CgMvm => "cg_mvm",
            ScheduleMode::CgMvmVvm => "cg_mvm_vvm",
        }
    }

    /// Parses a CLI/report name produced by [`ScheduleMode::name`].
    #[must_use]
    pub fn parse(name: &str) -> Option<ScheduleMode> {
        ScheduleMode::ALL.into_iter().find(|m| m.name() == name)
    }
}

impl std::fmt::Display for ScheduleMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad` (not `write_str`) so table columns can width-format modes.
        f.pad(self.name())
    }
}

/// The three axes of a sweep. Expansion order is model-major, then
/// architecture, then mode — stable, so job indices (and therefore report
/// ordering) never depend on thread scheduling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Zoo model keys ([`zoo::NAMES`]).
    pub models: Vec<String>,
    /// Architecture preset keys ([`presets::NAMES`]).
    pub archs: Vec<String>,
    /// Scheduling modes.
    pub modes: Vec<ScheduleMode>,
}

/// One cell of the expanded job matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Zoo model key.
    pub model: String,
    /// Architecture preset key.
    pub arch: String,
    /// Scheduling mode.
    pub mode: ScheduleMode,
}

impl JobSpec {
    /// This job's [`crate::report::job_key`].
    #[must_use]
    pub fn key(&self) -> String {
        crate::report::job_key(&self.model, &self.arch, self.mode)
    }
}

/// Why a sweep could not start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The spec names models that are not in the zoo.
    UnknownModels(Vec<String>),
    /// The spec names architecture presets that do not exist.
    UnknownArchs(Vec<String>),
    /// One of the three axes is empty.
    EmptyAxis(&'static str),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::UnknownModels(names) => {
                write!(
                    f,
                    "unknown model(s) `{}` (known: {})",
                    names.join("`, `"),
                    zoo::NAMES.join(", ")
                )
            }
            SweepError::UnknownArchs(names) => {
                write!(
                    f,
                    "unknown arch preset(s) `{}` (known: {})",
                    names.join("`, `"),
                    presets::NAMES.join(", ")
                )
            }
            SweepError::EmptyAxis(axis) => write!(f, "sweep spec has no {axis}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl SweepSpec {
    /// The full evaluation matrix: ten zoo models across the five
    /// published accelerator presets under automatic and CG-only
    /// scheduling — the committed `bench/baseline.json` anchor.
    #[must_use]
    pub fn full() -> Self {
        SweepSpec {
            models: [
                "lenet5",
                "mlp",
                "vgg7",
                "vgg11",
                "vgg16",
                "resnet18",
                "resnet34",
                "resnet50",
                "vit_small",
                "vit_base",
            ]
            .map(str::to_owned)
            .to_vec(),
            archs: ["isaac", "isaac-wlm", "jia", "puma", "jain"]
                .map(str::to_owned)
                .to_vec(),
            modes: vec![ScheduleMode::Auto, ScheduleMode::Cg],
        }
    }

    /// A reduced matrix for CI gating: a strict subset of [`SweepSpec::full`]'s
    /// keys, so a quick run can be compared against the full baseline.
    #[must_use]
    pub fn quick() -> Self {
        SweepSpec {
            models: ["lenet5", "mlp", "vgg7"].map(str::to_owned).to_vec(),
            archs: ["isaac", "jia", "jain"].map(str::to_owned).to_vec(),
            modes: vec![ScheduleMode::Auto, ScheduleMode::Cg],
        }
    }

    /// Checks that every axis is non-empty and every name resolves.
    ///
    /// # Errors
    /// Returns the first failing [`SweepError`], listing every offending
    /// name of that axis.
    pub fn validate(&self) -> Result<(), SweepError> {
        if self.models.is_empty() {
            return Err(SweepError::EmptyAxis("models"));
        }
        if self.archs.is_empty() {
            return Err(SweepError::EmptyAxis("archs"));
        }
        if self.modes.is_empty() {
            return Err(SweepError::EmptyAxis("modes"));
        }
        let bad_models: Vec<String> = self
            .models
            .iter()
            .filter(|m| zoo::by_name(m).is_none())
            .cloned()
            .collect();
        if !bad_models.is_empty() {
            return Err(SweepError::UnknownModels(bad_models));
        }
        let bad_archs: Vec<String> = self
            .archs
            .iter()
            .filter(|a| presets::by_name(a).is_none())
            .cloned()
            .collect();
        if !bad_archs.is_empty() {
            return Err(SweepError::UnknownArchs(bad_archs));
        }
        Ok(())
    }

    /// Expands the axes into the job matrix, model-major.
    #[must_use]
    pub fn expand(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.models.len() * self.archs.len() * self.modes.len());
        for model in &self.models {
            for arch in &self.archs {
                for &mode in &self.modes {
                    jobs.push(JobSpec {
                        model: model.clone(),
                        arch: arch.clone(),
                        mode,
                    });
                }
            }
        }
        jobs
    }
}

enum JobOutcome {
    Ok(Box<JobRecord>),
    Failed(JobFailure),
}

fn run_job(job: &JobSpec, cache: Option<&Arc<dyn CompileCache>>) -> JobOutcome {
    let graph = zoo::by_name(&job.model).expect("spec validated");
    let arch = presets::by_name(&job.arch).expect("spec validated");
    let options = CompileOptions {
        level: job.mode.opt_level(),
        ..CompileOptions::default()
    };
    let started = cim_obs::stopwatch();
    // Drive the staged pipeline explicitly (equivalent to the one-shot
    // `Compiler::compile` wrapper); `compile_ms` covers every pass,
    // including cache lookups.
    let mut session = Compiler::with_options(options).session(&graph, &arch);
    if let Some(cache) = cache {
        session = session.with_cache(Arc::clone(cache));
    }
    match session.finish() {
        Ok(compiled) => {
            let compile_ms = started.elapsed_ms();
            JobOutcome::Ok(Box::new(JobRecord {
                model: job.model.clone(),
                arch: job.arch.clone(),
                mode: job.mode,
                metrics: JobMetrics::from(&compiled.metrics(&arch)),
                compile_ms,
            }))
        }
        Err(e) => JobOutcome::Failed(JobFailure {
            model: job.model.clone(),
            arch: job.arch.clone(),
            mode: job.mode,
            error: e.to_string(),
        }),
    }
}

/// Runs `spec`'s job matrix on `threads` worker threads (clamped to at
/// least 1) and collects a [`BenchReport`], memoizing shared pipeline
/// work across jobs in a fresh in-process [`MemoryCache`].
///
/// This is [`run_sweep_cached`] with a per-call cache; use that entry
/// point to share a cache across sweeps (warm reruns), point it at a
/// [`DiskCache`](cim_compiler::DiskCache), or disable caching.
///
/// # Errors
/// Returns a [`SweepError`] when the spec fails [`SweepSpec::validate`];
/// per-job compile errors do *not* abort the sweep — they are recorded in
/// the report's `failures` section.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Result<BenchReport, SweepError> {
    run_sweep_cached(spec, threads, Some(Arc::new(MemoryCache::new())))
}

/// Runs `spec`'s job matrix on `threads` worker threads sharing `cache`
/// (or compiling everything from scratch when `None`).
///
/// Workers pull jobs off a shared queue, so a slow job (a deep ResNet)
/// never blocks the rest of the matrix behind it; results are written
/// back by matrix index, keeping report order independent of worker
/// count and interleaving. When a cache is supplied, its aggregate
/// counters land in the report's
/// [`cache_stats`](crate::report::BenchReport::cache_stats) block.
///
/// # Errors
/// Returns a [`SweepError`] when the spec fails [`SweepSpec::validate`];
/// per-job compile errors do *not* abort the sweep — they are recorded in
/// the report's `failures` section.
///
/// # Panics
/// Panics if a worker thread panics (a bug in the compiler stack, not an
/// input error).
pub fn run_sweep_cached(
    spec: &SweepSpec,
    threads: usize,
    cache: Option<Arc<dyn CompileCache>>,
) -> Result<BenchReport, SweepError> {
    spec.validate()?;
    let jobs = spec.expand();
    let threads = threads.max(1).min(jobs.len().max(1));
    // Snapshot so a long-lived cache reports only *this* sweep's
    // activity in the report's cache_stats block.
    let stats_before = cache.as_ref().map(|c| c.stats());
    let started = cim_obs::stopwatch();
    let outcomes = run_ordered(&jobs, threads, |job| run_job(job, cache.as_ref()));
    let total_ms = started.elapsed_ms();
    let mut records = Vec::new();
    let mut failures = Vec::new();
    for outcome in outcomes {
        match outcome {
            JobOutcome::Ok(record) => records.push(*record),
            JobOutcome::Failed(failure) => failures.push(failure),
        }
    }
    let mut report = BenchReport::new(
        spec.clone(),
        records,
        failures,
        SweepTiming { total_ms, threads },
    );
    report.cache_stats = cache
        .zip(stats_before)
        .map(|(c, before)| c.stats().since(&before));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_spec_is_subset_of_full() {
        let full = SweepSpec::full();
        let quick = SweepSpec::quick();
        for m in &quick.models {
            assert!(full.models.contains(m), "{m} not in full spec");
        }
        for a in &quick.archs {
            assert!(full.archs.contains(a), "{a} not in full spec");
        }
        for mode in &quick.modes {
            assert!(full.modes.contains(mode), "{mode} not in full spec");
        }
    }

    #[test]
    fn full_spec_meets_matrix_floor() {
        let full = SweepSpec::full();
        full.validate().unwrap();
        assert!(full.models.len() >= 8);
        assert!(full.archs.len() >= 3);
        assert!(full.modes.len() >= 2);
    }

    #[test]
    fn expansion_is_model_major_and_stable() {
        let spec = SweepSpec {
            models: vec!["lenet5".into(), "mlp".into()],
            archs: vec!["isaac".into(), "jain".into()],
            modes: vec![ScheduleMode::Auto, ScheduleMode::Cg],
        };
        let keys: Vec<String> = spec.expand().iter().map(JobSpec::key).collect();
        assert_eq!(keys[0], "lenet5@isaac#auto");
        assert_eq!(keys[1], "lenet5@isaac#cg");
        assert_eq!(keys[2], "lenet5@jain#auto");
        assert_eq!(keys[4], "mlp@isaac#auto");
        assert_eq!(keys.len(), 8);
    }

    #[test]
    fn validation_names_every_offender() {
        let spec = SweepSpec {
            models: vec!["lenet5".into(), "nope".into(), "also_nope".into()],
            archs: vec!["isaac".into()],
            modes: vec![ScheduleMode::Auto],
        };
        let err = spec.validate().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("nope") && msg.contains("also_nope"), "{msg}");

        let empty = SweepSpec {
            models: vec![],
            archs: vec![],
            modes: vec![],
        };
        assert_eq!(empty.validate(), Err(SweepError::EmptyAxis("models")));
    }

    #[test]
    fn schedule_mode_names_round_trip() {
        for mode in ScheduleMode::ALL {
            assert_eq!(ScheduleMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(ScheduleMode::parse("bogus"), None);
    }
}
