//! Integration tests of sweep-level caching: determinism (memoized,
//! disk-cached, and uncached sweeps all emit byte-identical comparison
//! sections) and the headline speedup — a warm full-matrix sweep over a
//! shared disk cache must run at least 1.5x faster than the cold run
//! that populated it, with a byte-identical `comparable()` report. The
//! CI `cache-consistency` job asserts the same two properties end-to-end
//! through the `cimc` binary.

use cim_bench::{run_sweep, run_sweep_cached, SweepSpec};
use cim_compiler::{CompileCache, DiskCache};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cim_bench_cache_{tag}_{}", std::process::id()))
}

#[test]
fn memoized_and_uncached_sweeps_are_byte_identical() {
    let spec = SweepSpec::quick();
    let uncached = run_sweep_cached(&spec, 2, None).unwrap();
    let memoized = run_sweep(&spec, 2).unwrap();
    assert!(uncached.cache_stats.is_none());
    let stats = memoized.cache_stats.expect("default sweep memoizes");
    assert!(stats.hits > 0, "quick matrix shares pipeline prefixes");
    assert_eq!(
        uncached.comparable().to_json(),
        memoized.comparable().to_json()
    );
}

#[test]
fn disk_cached_sweeps_share_across_instances() {
    let dir = tmp_dir("share");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = SweepSpec::quick();
    let cold_cache: Arc<dyn CompileCache> = Arc::new(DiskCache::open(&dir).unwrap());
    let cold = run_sweep_cached(&spec, 2, Some(cold_cache)).unwrap();
    let warm_cache: Arc<dyn CompileCache> = Arc::new(DiskCache::open(&dir).unwrap());
    let warm = run_sweep_cached(&spec, 2, Some(warm_cache)).unwrap();
    let warm_stats = warm.cache_stats.expect("cache attached");
    assert_eq!(warm_stats.misses, 0, "warm run must be all hits");
    assert!(warm_stats.hits > 0);
    assert_eq!(cold.comparable().to_json(), warm.comparable().to_json());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The acceptance bar of the cache subsystem: on the committed 100-job
/// full matrix, a warm sweep over the disk cache a cold sweep populated
/// is ≥ 1.5x faster and emits a byte-identical comparison section.
///
/// The bar was 3x when a cold compile cost tens of milliseconds; the
/// memoized segmentation DP and allocator early-exit cut cold compiles
/// by ~3-6x, so the cache's relative advantage shrank (its absolute
/// lookup cost is unchanged). 1.5x still proves warm runs skip the
/// compile work without over-fitting to the current compile speed.
///
/// Wall-clock assertions are noise-prone on loaded CI machines, so the
/// cold/warm pair is re-measured (up to 3 attempts) and only the
/// speedup — not absolute times — is asserted. Byte-identity must hold
/// on every attempt.
#[test]
fn warm_full_sweep_is_faster_and_byte_identical() {
    let spec = SweepSpec::full();
    assert_eq!(spec.expand().len(), 100, "the committed 100-job matrix");
    let mut best = 0.0f64;
    for attempt in 0..3 {
        let dir = tmp_dir(&format!("speed{attempt}"));
        let _ = std::fs::remove_dir_all(&dir);
        let cold_cache: Arc<dyn CompileCache> = Arc::new(DiskCache::open(&dir).unwrap());
        let cold = run_sweep_cached(&spec, 4, Some(cold_cache)).unwrap();
        let warm_cache: Arc<dyn CompileCache> = Arc::new(DiskCache::open(&dir).unwrap());
        let warm = run_sweep_cached(&spec, 4, Some(warm_cache)).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();

        assert!(cold.failures.is_empty() && warm.failures.is_empty());
        assert_eq!(
            cold.comparable().to_json(),
            warm.comparable().to_json(),
            "cold and warm comparison sections must be byte-identical"
        );
        let warm_stats = warm.cache_stats.expect("cache attached");
        assert_eq!(warm_stats.misses, 0, "warm full sweep must be all hits");

        let speedup = cold.timing.total_ms / warm.timing.total_ms.max(1e-9);
        best = best.max(speedup);
        if best >= 1.5 {
            return;
        }
    }
    panic!("warm sweep speedup {best:.2}x < 1.5x over three attempts");
}
