//! Integration tests for the parallel sweep driver: determinism across
//! worker counts, report serde round-trips (including a property test),
//! and the end-to-end regression gate.

use cim_bench::report::{BenchReport, JobFailure, JobMetrics, JobRecord, SweepTiming};
use cim_bench::sweep::{run_sweep, JobSpec, ScheduleMode, SweepSpec};
use cim_bench::{compare, Tolerances};
use proptest::prelude::*;

fn small_spec() -> SweepSpec {
    SweepSpec {
        models: vec!["lenet5".into(), "mlp".into()],
        archs: vec!["isaac".into(), "jain".into()],
        modes: vec![ScheduleMode::Auto, ScheduleMode::Cg],
    }
}

#[test]
fn jobs1_and_jobs4_reports_are_byte_identical_modulo_timing() {
    let spec = small_spec();
    let serial = run_sweep(&spec, 1).unwrap();
    let parallel = run_sweep(&spec, 4).unwrap();
    assert_eq!(serial.jobs.len(), 8);
    assert_eq!(serial.failures.len(), 0);
    // The comparison sections carry no wall-clock fields and must match
    // byte for byte, independent of worker count.
    assert_eq!(
        serial.comparable().to_json(),
        parallel.comparable().to_json()
    );
    // The timing sections are real (non-zero) in the raw reports.
    assert!(serial.timing.total_ms > 0.0);
    assert_eq!(serial.timing.threads, 1);
    assert_eq!(parallel.timing.threads, 4);
}

#[test]
fn report_order_follows_matrix_order_under_parallelism() {
    let spec = small_spec();
    let report = run_sweep(&spec, 4).unwrap();
    let expected: Vec<String> = spec.expand().iter().map(JobSpec::key).collect();
    let got: Vec<String> = report.jobs.iter().map(JobRecord::key).collect();
    assert_eq!(got, expected);
}

#[test]
fn sweep_report_round_trips_through_json() {
    let report = run_sweep(&SweepSpec::quick(), 2).unwrap();
    let back = BenchReport::from_json(&report.to_json()).unwrap();
    assert_eq!(back, report);
}

#[test]
fn doctored_latency_trips_the_regression_gate() {
    let baseline = run_sweep(&small_spec(), 2).unwrap();
    let mut current = baseline.clone();
    current.jobs[3].metrics.latency_cycles *= 1.25;
    let diff = compare(&baseline, &current, &Tolerances::default());
    assert!(!diff.passes());
    assert_eq!(diff.regressions.len(), 1);
    assert_eq!(diff.regressions[0].job, baseline.jobs[3].key());

    // An unmodified run passes against its own baseline.
    assert!(compare(&baseline, &baseline, &Tolerances::default()).passes());
}

fn arbitrary_metrics() -> impl Strategy<Value = JobMetrics> {
    (
        (0.0f64..1e12, 0.0f64..1e12, 0.0f64..1e9, 0u64..1 << 40),
        (0.0f64..1e12, 0.0f64..1e11, 0.0f64..1e10, 0.0f64..1e9),
        (1usize..9, 0.0f64..1e8, 1usize..200, 0u64..1 << 50),
        (0u64..1 << 30, 0.0f64..1.0),
    )
        .prop_map(
            |(
                (latency, energy_total, peak_power, peak_active),
                (interval, crossbar, movement, alu),
                (segments, reprogram, stages, mvm_ops),
                (allocated, utilization),
            )| {
                JobMetrics {
                    level: "cg+mvm".to_owned(),
                    latency_cycles: latency,
                    steady_state_interval: interval,
                    peak_power,
                    peak_active_crossbars: peak_active,
                    energy_total,
                    energy_crossbar: crossbar,
                    energy_adc: crossbar / 3.0,
                    energy_dac: crossbar / 7.0,
                    energy_movement: movement,
                    energy_alu: alu,
                    segments,
                    reprogram_cycles: reprogram,
                    stages,
                    mvm_ops,
                    crossbars_allocated: allocated,
                    utilization,
                }
            },
        )
}

fn arbitrary_report() -> impl Strategy<Value = BenchReport> {
    (
        proptest::collection::vec(
            (
                (0usize..15, 0usize..7, 0usize..4),
                arbitrary_metrics(),
                0.0f64..1e4,
            ),
            0..6,
        ),
        proptest::collection::vec((0usize..15, 0usize..7, 0usize..4), 0..3),
        (0.0f64..1e6, 1usize..16),
    )
        .prop_map(|(jobs, failures, (total_ms, threads))| {
            let model = |i: usize| cim_graph::zoo::NAMES[i].to_owned();
            let arch = |i: usize| cim_arch::presets::NAMES[i].to_owned();
            let mode = |i: usize| ScheduleMode::ALL[i];
            let jobs = jobs
                .into_iter()
                .map(|((m, a, s), metrics, compile_ms)| JobRecord {
                    model: model(m),
                    arch: arch(a),
                    mode: mode(s),
                    metrics,
                    compile_ms,
                })
                .collect();
            let failures = failures
                .into_iter()
                .map(|(m, a, s)| JobFailure {
                    model: model(m),
                    arch: arch(a),
                    mode: mode(s),
                    error: "operator too large: needs 3 folds".to_owned(),
                })
                .collect();
            BenchReport::new(
                SweepSpec::full(),
                jobs,
                failures,
                SweepTiming { total_ms, threads },
            )
        })
}

proptest! {
    /// Any structurally valid report survives a JSON round-trip exactly —
    /// including the f64 metric fields, whose shortest-representation
    /// rendering is lossless.
    #[test]
    fn bench_report_serde_round_trips(report in arbitrary_report()) {
        let json = report.to_json();
        let back = BenchReport::from_json(&json).unwrap();
        prop_assert_eq!(back, report);
    }
}
