//! Duplication-allocation solvers.
//!
//! CG-grained optimization assigns each operator a *duplication number*
//! under the total `core_number` budget (paper §3.3.2). Two objectives
//! arise:
//!
//! * **pipelined** schedules care about the bottleneck stage —
//!   [`minimize_bottleneck`] minimizes `max_i latency_i / D_i`;
//! * **non-pipelined** schedules care about the serial sum —
//!   [`minimize_total`] minimizes `Σ_i latency_i / D_i`.
//!
//! The paper solves the allocation with dynamic programming; because both
//! objectives are separable and convex in the integer duplication numbers,
//! the optimal allocation is also reachable by parametric search
//! (bottleneck) and by optimal marginal allocation (sum — Fox's algorithm
//! for convex separable resource allocation). Those run in
//! `O(n log n + B log B)` instead of the DP's `O(n·B·D)` and return the
//! same optima, which our tests cross-check against a reference DP on
//! small instances.

/// One operator from the allocator's perspective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocItem {
    /// Cores consumed per replica.
    pub cost: u32,
    /// Latency of the operator with a single replica (cycles).
    pub latency: f64,
    /// Upper bound on the duplication number (resource-independent caps:
    /// MVM count, bandwidth, ALU — computed by the caller).
    pub max_dup: u32,
}

/// Minimizes `max_i latency_i / D_i` subject to `Σ D_i·cost_i ≤ budget`
/// and `1 ≤ D_i ≤ max_dup_i`.
///
/// Returns the duplication vector; all-ones if even the base allocation
/// exceeds the budget (the caller is responsible for segmentation).
#[must_use]
pub fn minimize_bottleneck(items: &[AllocItem], budget: u64) -> Vec<u32> {
    let mut dup = Vec::new();
    minimize_bottleneck_into(items, budget, &mut dup);
    dup
}

/// [`minimize_bottleneck`] writing into a caller-supplied buffer, so hot
/// callers (the segmentation DP evaluates thousands of candidate
/// segments) can reuse one scratch allocation.
pub fn minimize_bottleneck_into(items: &[AllocItem], budget: u64, dup: &mut Vec<u32>) {
    dup.clear();
    dup.resize(items.len(), 1);
    if items.is_empty() || !base_fits(items, budget) {
        return;
    }
    // D_i(λ) = clamp(ceil(latency_i / λ), 1, cap_i); feasibility is
    // monotone in λ, so bisect λ over [tiny, max latency].
    let hi_start = items.iter().map(|i| i.latency).fold(1.0_f64, f64::max);
    let mut lo = hi_start
        / items
            .iter()
            .map(|i| f64::from(i.max_dup.max(1)))
            .fold(1.0, f64::max)
        / 2.0;
    let mut hi = hi_start;
    let feasible = |lambda: f64| -> bool {
        let mut used: u64 = 0;
        for item in items {
            let want = (item.latency / lambda).ceil().max(1.0);
            let d = (want as u64).min(u64::from(item.max_dup.max(1)));
            used = used.saturating_add(d * u64::from(item.cost.max(1)));
            if used > budget {
                return false;
            }
        }
        true
    };
    if !feasible(hi) {
        return; // caps alone exceed budget even at D_i = 1? base fits, so hi is feasible; defensive.
    }
    // Only the *quantized* duplication vector `clamp(ceil(latency/λ))`
    // matters, and it is componentwise monotone in λ — so once both ends
    // of the bracket quantize identically, every λ the remaining
    // iterations could land on quantizes to that same vector. Stopping
    // there is bit-equal to running all 64 halvings and, on ViT-scale
    // segment evaluations, cuts the dominant cost of the O(n²)
    // segmentation DP by ~3x.
    let quantized_equal = |lo: f64, hi: f64| -> bool {
        items.iter().all(|item| {
            let cap = u64::from(item.max_dup.max(1));
            let at_lo = ((item.latency / lo).ceil().max(1.0) as u64).min(cap);
            let at_hi = ((item.latency / hi).ceil().max(1.0) as u64).min(cap);
            at_lo == at_hi
        })
    };
    for iter in 0..64 {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
        if iter >= 8 && quantized_equal(lo, hi) {
            break;
        }
    }
    let mut used: u64 = 0;
    for (i, item) in items.iter().enumerate() {
        let want = (item.latency / hi).ceil().max(1.0);
        dup[i] = (want as u64).min(u64::from(item.max_dup.max(1))) as u32;
        used += u64::from(dup[i]) * u64::from(item.cost.max(1));
    }
    // Spend any leftover budget on the current bottleneck stages.
    spend_leftover_on_bottleneck(items, dup, budget, &mut used);
}

/// Greedily grants one replica at a time to the current bottleneck stage
/// until the budget (or every cap) is exhausted.
///
/// A max-heap on `(latency/D_i, lowest index)` replaces the former
/// rescan-everything loop: each grant is `O(log n)` instead of `O(n)`,
/// which is the difference between milliseconds and tens of milliseconds
/// on ViT-scale segment evaluations. The grant *sequence* is identical to
/// the scan's — the scan picked the max latency with ties to the lowest
/// index (strict `>` on a forward pass), skipped `latency == 0` stages
/// (never above its 0.0 sentinel), and re-skipped unaffordable stages
/// forever (`used` only grows, so affordability is monotone) — so the
/// resulting duplication vectors are bit-equal.
fn spend_leftover_on_bottleneck(items: &[AllocItem], dup: &mut [u32], budget: u64, used: &mut u64) {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Cand {
        lat: f64,
        idx: usize,
    }
    impl PartialEq for Cand {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for Cand {}
    impl PartialOrd for Cand {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Cand {
        fn cmp(&self, other: &Self) -> Ordering {
            // Max latency first; on ties the lower index wins the pop.
            self.lat
                .partial_cmp(&other.lat)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.idx.cmp(&self.idx))
        }
    }

    let mut heap: BinaryHeap<Cand> = items
        .iter()
        .enumerate()
        .filter(|(i, item)| dup[*i] < item.max_dup.max(1) && item.latency > 0.0)
        .map(|(idx, item)| Cand {
            lat: item.latency / f64::from(dup[idx]),
            idx,
        })
        .collect();
    while let Some(c) = heap.pop() {
        let item = &items[c.idx];
        let cost = u64::from(item.cost.max(1));
        if *used + cost > budget {
            continue; // unaffordable now means unaffordable forever: drop it
        }
        dup[c.idx] += 1;
        *used += cost;
        if dup[c.idx] < item.max_dup.max(1) {
            heap.push(Cand {
                lat: item.latency / f64::from(dup[c.idx]),
                idx: c.idx,
            });
        }
    }
}

/// Minimizes `Σ_i latency_i / D_i` subject to `Σ D_i·cost_i ≤ budget` and
/// `1 ≤ D_i ≤ max_dup_i`, via optimal marginal allocation (the objective
/// is separable convex, so granting each increment to the best marginal
/// gain per core is optimal).
///
/// Returns all-ones if the base allocation exceeds the budget.
#[must_use]
pub fn minimize_total(items: &[AllocItem], budget: u64) -> Vec<u32> {
    let mut dup = Vec::new();
    minimize_total_into(items, budget, &mut dup);
    dup
}

/// [`minimize_total`] writing into a caller-supplied buffer, so hot
/// callers can reuse one scratch allocation.
pub fn minimize_total_into(items: &[AllocItem], budget: u64, dup: &mut Vec<u32>) {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Cand {
        gain_per_core: f64,
        idx: usize,
    }
    impl Eq for Cand {}
    impl PartialOrd for Cand {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Cand {
        fn cmp(&self, other: &Self) -> Ordering {
            self.gain_per_core
                .partial_cmp(&other.gain_per_core)
                .unwrap_or(Ordering::Equal)
        }
    }

    dup.clear();
    dup.resize(items.len(), 1);
    if items.is_empty() || !base_fits(items, budget) {
        return;
    }
    let mut used: u64 = items.iter().map(|i| u64::from(i.cost.max(1))).sum();
    let gain = |item: &AllocItem, d: u32| -> f64 {
        (item.latency / f64::from(d) - item.latency / f64::from(d + 1))
            / f64::from(item.cost.max(1))
    };
    let mut heap: BinaryHeap<Cand> = items
        .iter()
        .enumerate()
        .filter(|(_, it)| it.max_dup > 1)
        .map(|(idx, it)| Cand {
            gain_per_core: gain(it, 1),
            idx,
        })
        .collect();
    while let Some(c) = heap.pop() {
        let item = &items[c.idx];
        let cost = u64::from(item.cost.max(1));
        if used + cost > budget {
            continue; // cannot afford this one; cheaper ones may still fit
        }
        dup[c.idx] += 1;
        used += cost;
        if dup[c.idx] < item.max_dup {
            heap.push(Cand {
                gain_per_core: gain(item, dup[c.idx]),
                idx: c.idx,
            });
        }
    }
}

/// Whether the all-ones allocation fits the budget.
#[must_use]
pub fn base_fits(items: &[AllocItem], budget: u64) -> bool {
    let base: u64 = items.iter().map(|i| u64::from(i.cost.max(1))).sum();
    base <= budget
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(spec: &[(u32, f64, u32)]) -> Vec<AllocItem> {
        spec.iter()
            .map(|&(cost, latency, max_dup)| AllocItem {
                cost,
                latency,
                max_dup,
            })
            .collect()
    }

    fn bottleneck(items: &[AllocItem], dup: &[u32]) -> f64 {
        items
            .iter()
            .zip(dup)
            .map(|(i, &d)| i.latency / f64::from(d))
            .fold(0.0, f64::max)
    }

    fn total(items: &[AllocItem], dup: &[u32]) -> f64 {
        items
            .iter()
            .zip(dup)
            .map(|(i, &d)| i.latency / f64::from(d))
            .sum()
    }

    fn used(items: &[AllocItem], dup: &[u32]) -> u64 {
        items
            .iter()
            .zip(dup)
            .map(|(i, &d)| u64::from(i.cost) * u64::from(d))
            .sum()
    }

    /// Exhaustive reference optimum for tiny instances.
    fn brute_force(items: &[AllocItem], budget: u64, max_obj: bool) -> f64 {
        fn rec(
            items: &[AllocItem],
            budget: u64,
            idx: usize,
            dup: &mut Vec<u32>,
            best: &mut f64,
            max_obj: bool,
        ) {
            if idx == items.len() {
                let obj = if max_obj {
                    items
                        .iter()
                        .zip(dup.iter())
                        .map(|(i, &d)| i.latency / f64::from(d))
                        .fold(0.0, f64::max)
                } else {
                    items
                        .iter()
                        .zip(dup.iter())
                        .map(|(i, &d)| i.latency / f64::from(d))
                        .sum()
                };
                if obj < *best {
                    *best = obj;
                }
                return;
            }
            for d in 1..=items[idx].max_dup {
                let cost: u64 = items
                    .iter()
                    .zip(dup.iter())
                    .take(idx)
                    .map(|(i, &x)| u64::from(i.cost) * u64::from(x))
                    .sum::<u64>()
                    + u64::from(items[idx].cost) * u64::from(d)
                    + items[idx + 1..]
                        .iter()
                        .map(|i| u64::from(i.cost))
                        .sum::<u64>();
                if cost > budget {
                    break;
                }
                dup.push(d);
                rec(items, budget, idx + 1, dup, best, max_obj);
                dup.pop();
            }
        }
        let mut best = f64::INFINITY;
        rec(items, budget, 0, &mut Vec::new(), &mut best, max_obj);
        best
    }

    #[test]
    fn bottleneck_matches_brute_force() {
        let cases = vec![
            items(&[(1, 100.0, 10), (2, 50.0, 10), (1, 10.0, 10)]),
            items(&[(3, 90.0, 4), (1, 80.0, 8), (2, 70.0, 8)]),
            items(&[(1, 5.0, 2), (1, 5.0, 2), (1, 5.0, 2)]),
        ];
        for its in cases {
            for budget in [6u64, 10, 20] {
                if !base_fits(&its, budget) {
                    continue;
                }
                let dup = minimize_bottleneck(&its, budget);
                assert!(used(&its, &dup) <= budget);
                let got = bottleneck(&its, &dup);
                let opt = brute_force(&its, budget, true);
                assert!(
                    got <= opt * 1.0 + 1e-9,
                    "budget {budget}: got {got}, optimal {opt}"
                );
            }
        }
    }

    #[test]
    fn total_matches_brute_force() {
        let cases = vec![
            items(&[(1, 100.0, 10), (2, 50.0, 10), (1, 10.0, 10)]),
            items(&[(3, 90.0, 4), (1, 80.0, 8), (2, 70.0, 8)]),
        ];
        for its in cases {
            for budget in [6u64, 12, 24] {
                if !base_fits(&its, budget) {
                    continue;
                }
                let dup = minimize_total(&its, budget);
                assert!(used(&its, &dup) <= budget);
                let got = total(&its, &dup);
                let opt = brute_force(&its, budget, false);
                assert!(
                    got <= opt + 1e-9,
                    "budget {budget}: got {got}, optimal {opt}"
                );
            }
        }
    }

    #[test]
    fn respects_caps_and_budget() {
        let its = items(&[(1, 1000.0, 3), (1, 1.0, 100)]);
        let dup = minimize_bottleneck(&its, 1000);
        assert_eq!(dup[0], 3); // capped despite huge latency
        assert!(used(&its, &dup) <= 1000);
        let dup2 = minimize_total(&its, 1000);
        assert_eq!(dup2[0], 3);
    }

    #[test]
    fn infeasible_base_returns_ones() {
        let its = items(&[(100, 10.0, 5), (100, 10.0, 5)]);
        assert_eq!(minimize_bottleneck(&its, 50), vec![1, 1]);
        assert_eq!(minimize_total(&its, 50), vec![1, 1]);
        assert!(!base_fits(&its, 50));
    }

    #[test]
    fn empty_items() {
        assert!(minimize_bottleneck(&[], 10).is_empty());
        assert!(minimize_total(&[], 10).is_empty());
    }

    #[test]
    fn big_instance_runs_fast_and_improves() {
        // 100 ops, heavy head — the shape of a ResNet on the baseline.
        let its: Vec<AllocItem> = (0..100)
            .map(|i| AllocItem {
                cost: 1 + (i % 7),
                latency: 1000.0 / f64::from(i + 1),
                max_dup: 64,
            })
            .collect();
        let dup = minimize_bottleneck(&its, 768);
        assert!(used(&its, &dup) <= 768);
        let base = bottleneck(&its, &vec![1; 100]);
        assert!(bottleneck(&its, &dup) < base / 4.0);
        let dup2 = minimize_total(&its, 768);
        assert!(total(&its, &dup2) < total(&its, &vec![1; 100]) / 2.0);
    }
}
