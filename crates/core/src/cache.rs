//! Content-addressed caching of pipeline artifacts.
//!
//! Across a bench sweep most compilation work is shared: the same zoo
//! graph is staged identically for every architecture preset, and `auto`
//! vs `cg` scheduling diverge only below the CG level. This module
//! memoizes the staged pipeline per pass:
//!
//! * a [`Fingerprint`] is a stable 128-bit structural hash (two-lane
//!   FNV-1a, in-tree — no external hasher crates) of everything a pass
//!   reads: the graph, the architecture, the option fields *that pass
//!   consumes*, chained onto the fingerprint of the pass sequence that
//!   produced its input ([`Pass::fingerprint`](crate::Pass::fingerprint));
//! * a [`CompileCache`] maps fingerprints to [`Artifact`]s, with an
//!   in-process [`MemoryCache`] and an on-disk, content-addressed
//!   [`DiskCache`] (one checksummed entry file per fingerprint);
//! * a [`Session`](crate::Session) given a cache via
//!   [`Session::with_cache`](crate::Session::with_cache) consults it
//!   before running each pass and records hit/miss/store outcomes in its
//!   [`PassTimeline`](crate::PassTimeline).
//!
//! Because option fields are fingerprinted per pass rather than
//! wholesale, jobs that share a pipeline *prefix* share cache entries:
//! `auto` and `cg` runs of the same (graph, arch) reuse each other's
//! `stages` and `cg` artifacts even though their
//! [`CompileOptions::level`](crate::CompileOptions::level) differ.
//!
//! # Invalidation rules
//!
//! A cached artifact is keyed purely by content, so there is no TTL and
//! no explicit invalidation: change any input — graph structure, any
//! architecture tier parameter, the computing mode, a consumed option
//! field, or the pass sequence — and the key changes. Stale entries are
//! simply never looked up again (prune a [`DiskCache`] directory by
//! deleting it). Three things opt a pass *out* of caching instead:
//!
//! * custom passes, unless they override
//!   [`Pass::fingerprint`](crate::Pass::fingerprint) (default `None`);
//! * [`Session::skip_next`](crate::Session::skip_next),
//!   [`Session::artifact_mut`](crate::Session::artifact_mut) and
//!   [`Session::replace_artifact`](crate::Session::replace_artifact),
//!   which hand the artifact to the caller and therefore stop the
//!   fingerprint chain for the rest of the session;
//! * code generation ([`CodegenPass`](crate::CodegenPass)): flows can
//!   reach [`CompileOptions::max_flow_ops`](crate::CompileOptions::max_flow_ops)
//!   meta-operators, far too large to bank.
//!
//! # On-disk layout
//!
//! `<dir>/<hh>/<fingerprint>.bin` where `hh` is the first hex byte of
//! the fingerprint (256-way sharding). Each entry is
//! `magic · format version · key · payload length · payload · checksum`,
//! written atomically (temp file + rename) so concurrent sweep workers
//! and interrupted runs can never leave a torn entry under a valid name.
//! [`DiskCache::load`] re-derives the checksum and validates the stored
//! key; a corrupted or truncated entry is treated as a miss, deleted
//! best-effort, and recompiled — never trusted.

use crate::cg::{CgOptions, CgSchedule, Segment, StagePlan};
use crate::mapping::OpMapping;
use crate::mvm::MvmSchedule;
use crate::perf::{intern_level, PerfReport};
use crate::pipeline::{Artifact, CgScheduled, MvmScheduled, Staged, VvmScheduled};
use crate::stage::Stage;
use crate::vvm::VvmSchedule;
use cim_arch::{CimArchitecture, EnergyBreakdown};
use cim_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Fingerprints.

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_OFFSET_LO: u64 = 0xcbf2_9ce4_8422_2325;
// Second lane: FNV-1a over tweaked bytes from a distinct offset basis, so
// the two 64-bit lanes fail independently.
const FNV_OFFSET_HI: u64 = 0x6c62_272e_07bb_0142;

/// A stable 128-bit structural hash identifying one pipeline-stage input.
///
/// Equal compilation inputs always produce equal fingerprints (across
/// processes and hosts); distinct inputs produce distinct fingerprints up
/// to the collision resistance of two independent FNV-1a lanes —
/// comfortably beyond sweep-scale working sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    hi: u64,
    lo: u64,
}

impl Fingerprint {
    /// Renders the fingerprint as 32 lowercase hex digits (the entry
    /// file name of a [`DiskCache`]).
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Chains this fingerprint with the next pass's, producing the cache
    /// key of that pass's output: `key_i = H(key_{i-1}, pass_i)`.
    #[must_use]
    pub fn chain(self, next: Fingerprint) -> Fingerprint {
        FingerprintBuilder::new("cim-mlc/chain/v1")
            .fingerprint(self)
            .fingerprint(next)
            .finish()
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Incremental [`Fingerprint`] construction over typed inputs.
///
/// Every write is tagged and length-delimited, so field boundaries are
/// unambiguous: `str("ab").str("c")` and `str("a").str("bc")` hash
/// differently.
#[derive(Debug, Clone)]
pub struct FingerprintBuilder {
    hi: u64,
    lo: u64,
}

impl FingerprintBuilder {
    /// Starts a fingerprint in `domain` (a namespace string; distinct
    /// domains never collide by construction).
    #[must_use]
    pub fn new(domain: &str) -> Self {
        FingerprintBuilder {
            hi: FNV_OFFSET_HI,
            lo: FNV_OFFSET_LO,
        }
        .str(domain)
    }

    fn raw(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.lo = (self.lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.hi = (self.hi ^ u64::from(b ^ 0xa5)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    fn tag(self, t: u8) -> Self {
        self.raw(&[t])
    }

    /// Hashes a length-prefixed byte string.
    #[must_use]
    pub fn bytes(self, bytes: &[u8]) -> Self {
        self.tag(1)
            .raw(&(bytes.len() as u64).to_le_bytes())
            .raw(bytes)
    }

    /// Hashes a length-prefixed UTF-8 string.
    #[must_use]
    pub fn str(self, s: &str) -> Self {
        self.tag(2)
            .raw(&(s.len() as u64).to_le_bytes())
            .raw(s.as_bytes())
    }

    /// Hashes an unsigned integer.
    #[must_use]
    pub fn u64(self, n: u64) -> Self {
        self.tag(3).raw(&n.to_le_bytes())
    }

    /// Hashes a float by its exact bit pattern.
    #[must_use]
    pub fn f64(self, x: f64) -> Self {
        self.tag(4).raw(&x.to_bits().to_le_bytes())
    }

    /// Hashes a boolean.
    #[must_use]
    pub fn bool(self, b: bool) -> Self {
        self.tag(5).raw(&[u8::from(b)])
    }

    /// Hashes another fingerprint (for chaining).
    #[must_use]
    pub fn fingerprint(self, fp: Fingerprint) -> Self {
        self.tag(6)
            .raw(&fp.hi.to_le_bytes())
            .raw(&fp.lo.to_le_bytes())
    }

    /// Finalizes the fingerprint.
    #[must_use]
    pub fn finish(self) -> Fingerprint {
        Fingerprint {
            hi: self.hi,
            lo: self.lo,
        }
    }
}

/// Structural fingerprint of a computation graph (name, nodes, operator
/// parameters, shapes, edges), via its canonical JSON serialization.
#[must_use]
pub fn fingerprint_graph(graph: &Graph) -> Fingerprint {
    FingerprintBuilder::new("cim-mlc/graph/v1")
        .str(&cim_graph::to_json(graph))
        .finish()
}

/// Structural fingerprint of an architecture (all three tiers, the
/// computing mode, and the cost model — including a cost model overridden
/// away from the tier-derived default).
#[must_use]
pub fn fingerprint_arch(arch: &CimArchitecture) -> Fingerprint {
    FingerprintBuilder::new("cim-mlc/arch/v1")
        .str(&cim_arch::to_json(arch))
        // The serialized document derives the cost model from the tiers;
        // hash the active model too so a builder-overridden cost never
        // aliases the default.
        .str(&format!("{:?}", arch.cost()))
        .finish()
}

/// The fingerprint a cached [`Session`](crate::Session) starts its pass
/// chain from: graph ⊕ architecture. Option fields are *not* included
/// here — each pass hashes the fields it consumes into its own link, so
/// jobs differing only in unconsumed options share entries.
#[must_use]
pub fn source_fingerprint(graph: &Graph, arch: &CimArchitecture) -> Fingerprint {
    FingerprintBuilder::new("cim-mlc/session/v1")
        .fingerprint(fingerprint_graph(graph))
        .fingerprint(fingerprint_arch(arch))
        .finish()
}

/// Content fingerprint of one pipeline region (a single [`Stage`]) — the
/// key under which a [`RegionMemo`](crate::RegionMemo) interns stages for
/// incremental recompilation.
///
/// # Region-key derivation
///
/// The key hashes exactly what the CG/MVM/VVM schedulers read from a
/// stage: its crossbar mapping (rows, columns, bit-slicing factors,
/// crossbar counts, MVM unroll), the attached digital ALU work, streamed
/// element counts, the pipeline-fill fraction, and the dynamic-weights
/// flag. It deliberately *excludes* identity — [`Stage::node`],
/// [`Stage::name`] and the attached digital [`NodeId`]s — so a stage keeps
/// its key when a [`GraphDelta`](cim_graph::GraphDelta) edits an unrelated
/// part of the graph and renumbers nodes. Two stages with equal keys are
/// scheduled identically (for a fixed architecture and session options),
/// which is what lets [`Session::recompile`](crate::Session::recompile)
/// splice cached per-region schedules into the new artifact.
#[must_use]
pub fn region_fingerprint(stage: &Stage) -> Fingerprint {
    // Hot path: recomputed for every stage by every scheduling pass of
    // every (re)compile, so this hashes whole 64-bit words per FNV step
    // instead of going through the byte-serial [`FingerprintBuilder`]
    // (~10× fewer multiplies for the same 128-bit equality key; the
    // second lane sees each word rotated so high input bits reach low
    // output bits). Region keys live only inside one session's
    // [`RegionMemo`](crate::RegionMemo) — never on disk — so the mixing
    // is free to differ from the cache fingerprints.
    let m = &stage.mapping;
    let words: [u64; 15] = [
        REGION_DOMAIN,
        u64::from(m.rows),
        u64::from(m.cols),
        u64::from(m.cols_per_weight),
        u64::from(m.bit_planes),
        u64::from(m.v_xbs),
        u64::from(m.h_xbs),
        m.mvm_count,
        u64::from(m.last_rows),
        u64::from(m.last_cols),
        stage.alu_ops,
        stage.in_elements,
        stage.out_elements,
        stage.fill_fraction.to_bits(),
        u64::from(stage.dynamic_weights),
    ];
    let mut lo = FNV_OFFSET_LO;
    let mut hi = FNV_OFFSET_HI;
    for w in words {
        lo = (lo ^ w).wrapping_mul(FNV_PRIME);
        hi = (hi ^ w.rotate_left(31)).wrapping_mul(FNV_PRIME);
    }
    Fingerprint { hi, lo }
}

/// Domain constant separating region keys from every
/// [`FingerprintBuilder`] domain (which always starts from the FNV
/// offsets followed by a tagged string, never a bare word).
const REGION_DOMAIN: u64 = 0x6369_6d2d_6d6c_6331; // "cim-mlc1"

// ---------------------------------------------------------------------------
// The cache abstraction.

/// Aggregate hit/miss/store counters of one [`CompileCache`] instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing usable (including corrupt entries).
    pub misses: u64,
    /// Artifacts written into the cache.
    pub stores: u64,
}

impl CacheStats {
    /// Total lookups (hits + misses).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0 when none).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.hits == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Counter-wise difference `self - earlier` (saturating): the
    /// activity between two [`CompileCache::stats`] snapshots of the
    /// same instance — e.g. one sweep's share of a long-lived cache.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            stores: self.stores.saturating_sub(earlier.stores),
        }
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{} hit(s), {} miss(es), {} store(s), hit rate {:.1}%",
            self.hits,
            self.misses,
            self.stores,
            self.hit_rate() * 100.0
        )
    }
}

/// A content-addressed store of pipeline artifacts.
///
/// Implementations are shared across sweep worker threads behind an
/// `Arc`, so they must be internally synchronized. `load`/`store` are
/// best-effort: a cache may decline to store (returning `false`) and
/// must answer `None` rather than guess when an entry cannot be
/// validated.
pub trait CompileCache: Send + Sync {
    /// Looks up the artifact stored under `key`.
    fn load(&self, key: &Fingerprint) -> Option<Artifact>;

    /// Stores `artifact` under `key`. Returns whether the artifact was
    /// actually banked (codegen artifacts and I/O failures are not).
    fn store(&self, key: &Fingerprint, artifact: &Artifact) -> bool;

    /// Counters accumulated since this instance was created.
    fn stats(&self) -> CacheStats;
}

fn cacheable(artifact: &Artifact) -> bool {
    matches!(
        artifact,
        Artifact::Staged(_)
            | Artifact::CgScheduled(_)
            | Artifact::MvmScheduled(_)
            | Artifact::VvmScheduled(_)
    )
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }
}

/// An in-process [`CompileCache`]: a mutex-guarded map of shared
/// artifacts. This is what a sweep's worker pool shares by default.
///
/// Entries are held behind `Arc` so the lock only ever guards a pointer
/// clone; the deep artifact copies happen outside it, and concurrent
/// workers never serialize on each other's clone time.
#[derive(Debug, Default)]
pub struct MemoryCache {
    entries: Mutex<HashMap<Fingerprint, Arc<Artifact>>>,
    counters: Counters,
}

impl MemoryCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        MemoryCache::default()
    }

    /// Number of artifacts currently banked.
    ///
    /// # Panics
    /// Panics if a previous user of the cache panicked mid-operation.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock poisoned").len()
    }

    /// Whether the cache holds no artifacts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CompileCache for MemoryCache {
    fn load(&self, key: &Fingerprint) -> Option<Artifact> {
        let found = self
            .entries
            .lock()
            .expect("cache lock poisoned")
            .get(key)
            .cloned();
        match found {
            Some(artifact) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                // Deep copy outside the lock.
                Some((*artifact).clone())
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: &Fingerprint, artifact: &Artifact) -> bool {
        if !cacheable(artifact) {
            return false;
        }
        // Deep copy outside the lock; only the Arc moves under it.
        let entry = Arc::new(artifact.clone());
        self.entries
            .lock()
            .expect("cache lock poisoned")
            .insert(*key, entry);
        self.counters.stores.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn stats(&self) -> CacheStats {
        self.counters.snapshot()
    }
}

/// An on-disk, content-addressed [`CompileCache`] surviving across
/// processes — this is what `cimc --cache-dir` opens, and what makes a
/// warm CI sweep serve every pass from disk.
///
/// See the [module docs](self) for the directory layout, atomicity and
/// corruption handling.
#[derive(Debug)]
pub struct DiskCache {
    root: PathBuf,
    counters: Counters,
}

impl DiskCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    /// Propagates the I/O error when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let root = dir.into();
        std::fs::create_dir_all(&root)?;
        Ok(DiskCache {
            root,
            counters: Counters::default(),
        })
    }

    /// The cache's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The entry file an artifact with fingerprint `key` lives at.
    #[must_use]
    pub fn entry_path(&self, key: &Fingerprint) -> PathBuf {
        let hex = key.to_hex();
        self.root.join(&hex[..2]).join(format!("{hex}.bin"))
    }
}

impl CompileCache for DiskCache {
    fn load(&self, key: &Fingerprint) -> Option<Artifact> {
        let path = self.entry_path(key);
        let decoded = std::fs::read(&path)
            .ok()
            .map(|bytes| decode_entry(key, &bytes));
        match decoded {
            Some(Ok(artifact)) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(artifact)
            }
            Some(Err(_)) => {
                // Corrupt or foreign entry: never trust it. Drop the file
                // (best effort) so the recompiled artifact replaces it.
                let _ = std::fs::remove_file(&path);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: &Fingerprint, artifact: &Artifact) -> bool {
        let Some(bytes) = encode_entry(key, artifact) else {
            return false;
        };
        let path = self.entry_path(key);
        let Some(shard) = path.parent() else {
            return false;
        };
        if std::fs::create_dir_all(shard).is_err() {
            return false;
        }
        if write_atomic(&path, &bytes).is_err() {
            return false;
        }
        self.counters.stores.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn stats(&self) -> CacheStats {
        self.counters.snapshot()
    }
}

/// A two-level [`CompileCache`]: a [`MemoryCache`] front backed by a
/// [`DiskCache`]. This is what a long-running `cimc serve` process
/// shares across every request when given a cache directory — repeat
/// requests hit the in-process map without touching the filesystem,
/// while a restart still finds its artifacts on disk.
///
/// `load` consults memory first and, on a disk hit, promotes the entry
/// into memory so the next lookup is RAM-speed. `store` banks in both
/// levels. [`stats`](CompileCache::stats) counts each *logical* lookup
/// once: hits are memory hits plus disk hits (promotions are not
/// double-counted), misses are lookups both levels missed, and stores
/// are the disk level's (the durable one).
#[derive(Debug)]
pub struct TieredCache {
    memory: MemoryCache,
    disk: DiskCache,
}

impl TieredCache {
    /// Opens (creating if needed) a tiered cache whose disk level is
    /// rooted at `dir`, with an empty memory level.
    ///
    /// # Errors
    /// Propagates the I/O error when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Ok(TieredCache {
            memory: MemoryCache::new(),
            disk: DiskCache::open(dir)?,
        })
    }

    /// The disk level's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        self.disk.root()
    }

    /// Number of artifacts currently promoted into the memory level.
    #[must_use]
    pub fn memory_len(&self) -> usize {
        self.memory.len()
    }
}

impl CompileCache for TieredCache {
    fn load(&self, key: &Fingerprint) -> Option<Artifact> {
        if let Some(artifact) = self.memory.load(key) {
            return Some(artifact);
        }
        let artifact = self.disk.load(key)?;
        // Promote so the next lookup stays in RAM. The promotion store
        // bumps the memory level's store counter, which `stats` ignores
        // (only durable disk stores are reported).
        self.memory.store(key, &artifact);
        Some(artifact)
    }

    fn store(&self, key: &Fingerprint, artifact: &Artifact) -> bool {
        let banked_in_memory = self.memory.store(key, artifact);
        self.disk.store(key, artifact) || banked_in_memory
    }

    fn stats(&self) -> CacheStats {
        let memory = self.memory.stats();
        let disk = self.disk.stats();
        CacheStats {
            hits: memory.hits + disk.hits,
            // A memory miss that the disk served is a hit, not a miss;
            // only lookups both levels missed count.
            misses: disk.misses,
            stores: disk.stores,
        }
    }
}

/// Writes `contents` to `path` atomically: the bytes land in a hidden
/// sibling temp file first and are renamed into place, so readers (and
/// CI artifact uploads) can never observe a truncated file, even if the
/// writer is killed mid-write. Used by the [`DiskCache`] and by
/// `cimc bench --out`.
///
/// # Errors
/// Propagates I/O errors; on a failed rename the temp file is removed.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("`{}` has no file name to replace", path.display()),
        )
    })?;
    // Unique per process *and* per call: concurrent sweep workers
    // storing the same key must not share a temp file, or one writer's
    // rename could publish the other's half-written bytes.
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

// ---------------------------------------------------------------------------
// The entry codec: a compact, checksummed binary encoding of cacheable
// artifacts. Floats are stored by bit pattern, so a round-trip is exact
// and a warm sweep's report is byte-identical to the cold run's.

const ENTRY_MAGIC: &[u8; 4] = b"CIMC";
/// Version of the on-disk entry encoding. Bump on any layout change:
/// old entries then fail validation and are transparently recompiled.
pub const ENTRY_FORMAT_VERSION: u32 = 1;

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, b: u8) {
        self.buf.push(b);
    }
    fn u32(&mut self, n: u32) {
        self.buf.extend_from_slice(&n.to_le_bytes());
    }
    fn u64(&mut self, n: u64) {
        self.buf.extend_from_slice(&n.to_le_bytes());
    }
    fn f64(&mut self, x: f64) {
        self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    fn bool(&mut self, b: bool) {
        self.buf.push(u8::from(b));
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DecResult<T> = Result<T, String>;

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated entry: wanted {n} byte(s) at {}", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> DecResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> DecResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn usize(&mut self) -> DecResult<usize> {
        usize::try_from(self.u64()?).map_err(|_| "length out of range".to_owned())
    }

    fn f64(&mut self) -> DecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> DecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("invalid bool byte {other}")),
        }
    }

    fn str(&mut self) -> DecResult<String> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid UTF-8 string: {e}"))
    }

    fn done(&self) -> DecResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing byte(s) after artifact",
                self.buf.len() - self.pos
            ))
        }
    }
}

const TAG_STAGED: u8 = 1;
const TAG_CG: u8 = 2;
const TAG_MVM: u8 = 3;
const TAG_VVM: u8 = 4;

fn enc_node(e: &mut Enc, id: NodeId) {
    e.u64(id.index() as u64);
}

fn dec_node(d: &mut Dec<'_>) -> DecResult<NodeId> {
    // Validate the dense-id range here rather than letting
    // `NodeId::from_index` panic: even a checksum-valid entry (anyone
    // can compute the FNV checksum) must decode-fail into a cache miss,
    // never abort the process.
    let index = d.usize()?;
    if u32::try_from(index).is_err() {
        return Err(format!("node index {index} outside the dense-id range"));
    }
    Ok(NodeId::from_index(index))
}

fn enc_mapping(e: &mut Enc, m: &OpMapping) {
    enc_node(e, m.node);
    e.u32(m.rows);
    e.u32(m.cols);
    e.u32(m.cols_per_weight);
    e.u32(m.bit_planes);
    e.u32(m.v_xbs);
    e.u32(m.h_xbs);
    e.u64(m.mvm_count);
    e.u32(m.last_rows);
    e.u32(m.last_cols);
}

fn dec_mapping(d: &mut Dec<'_>) -> DecResult<OpMapping> {
    Ok(OpMapping {
        node: dec_node(d)?,
        rows: d.u32()?,
        cols: d.u32()?,
        cols_per_weight: d.u32()?,
        bit_planes: d.u32()?,
        v_xbs: d.u32()?,
        h_xbs: d.u32()?,
        mvm_count: d.u64()?,
        last_rows: d.u32()?,
        last_cols: d.u32()?,
    })
}

fn enc_stage(e: &mut Enc, s: &Stage) {
    enc_node(e, s.node);
    e.str(&s.name);
    enc_mapping(e, &s.mapping);
    e.u64(s.digital.len() as u64);
    for &id in &s.digital {
        enc_node(e, id);
    }
    e.u64(s.alu_ops);
    e.u64(s.in_elements);
    e.u64(s.out_elements);
    e.f64(s.fill_fraction);
    e.bool(s.dynamic_weights);
}

fn dec_stage(d: &mut Dec<'_>) -> DecResult<Stage> {
    let node = dec_node(d)?;
    let name = d.str()?;
    let mapping = dec_mapping(d)?;
    let digital_len = d.usize()?;
    let mut digital = Vec::with_capacity(digital_len.min(1 << 16));
    for _ in 0..digital_len {
        digital.push(dec_node(d)?);
    }
    Ok(Stage {
        node,
        name,
        mapping,
        digital,
        alu_ops: d.u64()?,
        in_elements: d.u64()?,
        out_elements: d.u64()?,
        fill_fraction: d.f64()?,
        dynamic_weights: d.bool()?,
    })
}

fn enc_stages(e: &mut Enc, stages: &[Stage]) {
    e.u64(stages.len() as u64);
    for s in stages {
        enc_stage(e, s);
    }
}

fn dec_stages(d: &mut Dec<'_>) -> DecResult<Vec<Stage>> {
    let len = d.usize()?;
    let mut stages = Vec::with_capacity(len.min(1 << 16));
    for _ in 0..len {
        stages.push(dec_stage(d)?);
    }
    Ok(stages)
}

fn enc_breakdown(e: &mut Enc, b: &EnergyBreakdown) {
    e.f64(b.crossbar);
    e.f64(b.adc);
    e.f64(b.dac);
    e.f64(b.movement);
    e.f64(b.alu);
}

fn dec_breakdown(d: &mut Dec<'_>) -> DecResult<EnergyBreakdown> {
    Ok(EnergyBreakdown {
        crossbar: d.f64()?,
        adc: d.f64()?,
        dac: d.f64()?,
        movement: d.f64()?,
        alu: d.f64()?,
    })
}

fn enc_report(e: &mut Enc, r: &PerfReport) {
    e.str(r.level);
    e.f64(r.latency_cycles);
    e.u64(r.peak_active_crossbars);
    e.f64(r.peak_power);
    enc_breakdown(e, &r.peak_breakdown);
    enc_breakdown(e, &r.energy);
    e.u64(r.segments as u64);
    e.f64(r.reprogram_cycles);
}

fn dec_report(d: &mut Dec<'_>) -> DecResult<PerfReport> {
    let level = d.str()?;
    let level =
        intern_level(&level).ok_or_else(|| format!("unknown scheduling level `{level}`"))?;
    Ok(PerfReport {
        level,
        latency_cycles: d.f64()?,
        peak_active_crossbars: d.u64()?,
        peak_power: d.f64()?,
        peak_breakdown: dec_breakdown(d)?,
        energy: dec_breakdown(d)?,
        segments: d.usize()?,
        reprogram_cycles: d.f64()?,
    })
}

fn enc_segments(e: &mut Enc, segments: &[Segment]) {
    e.u64(segments.len() as u64);
    for seg in segments {
        e.u64(seg.plans.len() as u64);
        for p in &seg.plans {
            e.u64(p.stage as u64);
            e.u32(p.duplication);
            e.u32(p.cores);
            e.u32(p.folds);
            e.f64(p.latency);
        }
        e.f64(seg.latency);
        e.u64(seg.active_crossbars);
        e.f64(seg.streaming_bits_per_cycle);
    }
}

fn dec_segments(d: &mut Dec<'_>) -> DecResult<Vec<Segment>> {
    let len = d.usize()?;
    let mut segments = Vec::with_capacity(len.min(1 << 16));
    for _ in 0..len {
        let plan_len = d.usize()?;
        let mut plans = Vec::with_capacity(plan_len.min(1 << 16));
        for _ in 0..plan_len {
            plans.push(StagePlan {
                stage: d.usize()?,
                duplication: d.u32()?,
                cores: d.u32()?,
                folds: d.u32()?,
                latency: d.f64()?,
            });
        }
        segments.push(Segment {
            plans,
            latency: d.f64()?,
            active_crossbars: d.u64()?,
            streaming_bits_per_cycle: d.f64()?,
        });
    }
    Ok(segments)
}

fn enc_cg(e: &mut Enc, cg: &CgSchedule) {
    enc_stages(e, &cg.stages);
    enc_segments(e, &cg.segments);
    e.f64(cg.reprogram_cycles);
    e.bool(cg.options.pipeline);
    e.bool(cg.options.duplication);
    enc_report(e, &cg.report);
}

fn dec_cg(d: &mut Dec<'_>) -> DecResult<CgSchedule> {
    Ok(CgSchedule {
        stages: dec_stages(d)?,
        segments: dec_segments(d)?,
        reprogram_cycles: d.f64()?,
        options: CgOptions {
            pipeline: d.bool()?,
            duplication: d.bool()?,
        },
        report: dec_report(d)?,
    })
}

fn enc_mvm(e: &mut Enc, mvm: &MvmSchedule) {
    enc_segments(e, &mvm.segments);
    e.bool(mvm.staggered);
    enc_report(e, &mvm.report);
}

fn dec_mvm(d: &mut Dec<'_>) -> DecResult<MvmSchedule> {
    Ok(MvmSchedule {
        segments: dec_segments(d)?,
        staggered: d.bool()?,
        report: dec_report(d)?,
    })
}

fn enc_vvm(e: &mut Enc, vvm: &VvmSchedule) {
    enc_segments(e, &vvm.segments);
    e.u64(vvm.spreads.len() as u64);
    for row in &vvm.spreads {
        e.u64(row.len() as u64);
        for &k in row {
            e.u32(k);
        }
    }
    enc_report(e, &vvm.report);
}

fn dec_vvm(d: &mut Dec<'_>) -> DecResult<VvmSchedule> {
    let segments = dec_segments(d)?;
    let rows = d.usize()?;
    let mut spreads = Vec::with_capacity(rows.min(1 << 16));
    for _ in 0..rows {
        let cols = d.usize()?;
        let mut row = Vec::with_capacity(cols.min(1 << 16));
        for _ in 0..cols {
            row.push(d.u32()?);
        }
        spreads.push(row);
    }
    Ok(VvmSchedule {
        segments,
        spreads,
        report: dec_report(d)?,
    })
}

fn encode_artifact(artifact: &Artifact) -> Option<Vec<u8>> {
    let mut e = Enc::default();
    match artifact {
        Artifact::Staged(s) => {
            e.u8(TAG_STAGED);
            enc_stages(&mut e, &s.stages);
        }
        Artifact::CgScheduled(a) => {
            e.u8(TAG_CG);
            enc_cg(&mut e, &a.cg);
        }
        Artifact::MvmScheduled(a) => {
            e.u8(TAG_MVM);
            enc_cg(&mut e, &a.cg);
            enc_mvm(&mut e, &a.mvm);
        }
        Artifact::VvmScheduled(a) => {
            e.u8(TAG_VVM);
            enc_cg(&mut e, &a.cg);
            enc_mvm(&mut e, &a.mvm);
            enc_vvm(&mut e, &a.vvm);
        }
        Artifact::Source | Artifact::Codegenned(_) => return None,
    }
    Some(e.buf)
}

fn decode_artifact(payload: &[u8]) -> DecResult<Artifact> {
    let mut d = Dec::new(payload);
    let artifact = match d.u8()? {
        TAG_STAGED => Artifact::Staged(Staged {
            stages: dec_stages(&mut d)?,
        }),
        TAG_CG => Artifact::CgScheduled(Box::new(CgScheduled {
            cg: dec_cg(&mut d)?,
        })),
        TAG_MVM => Artifact::MvmScheduled(Box::new(MvmScheduled {
            cg: dec_cg(&mut d)?,
            mvm: dec_mvm(&mut d)?,
        })),
        TAG_VVM => Artifact::VvmScheduled(Box::new(VvmScheduled {
            cg: dec_cg(&mut d)?,
            mvm: dec_mvm(&mut d)?,
            vvm: dec_vvm(&mut d)?,
        })),
        other => return Err(format!("unknown artifact tag {other}")),
    };
    d.done()?;
    Ok(artifact)
}

fn checksum(payload: &[u8]) -> Fingerprint {
    FingerprintBuilder::new("cim-mlc/entry/v1")
        .bytes(payload)
        .finish()
}

/// Encodes one disk-cache entry, or `None` for uncacheable artifacts.
fn encode_entry(key: &Fingerprint, artifact: &Artifact) -> Option<Vec<u8>> {
    let payload = encode_artifact(artifact)?;
    let mut e = Enc::default();
    e.buf.extend_from_slice(ENTRY_MAGIC);
    e.u32(ENTRY_FORMAT_VERSION);
    e.u64(key.hi);
    e.u64(key.lo);
    e.u64(payload.len() as u64);
    e.buf.extend_from_slice(&payload);
    let sum = checksum(&payload);
    e.u64(sum.hi);
    e.u64(sum.lo);
    Some(e.buf)
}

/// Decodes and validates one disk-cache entry against the key it was
/// looked up under: magic, format version, stored key, payload length
/// and checksum must all match before the artifact is trusted.
fn decode_entry(key: &Fingerprint, bytes: &[u8]) -> DecResult<Artifact> {
    let mut d = Dec::new(bytes);
    if d.take(4)? != ENTRY_MAGIC {
        return Err("bad entry magic".to_owned());
    }
    let version = d.u32()?;
    if version != ENTRY_FORMAT_VERSION {
        return Err(format!(
            "entry format version {version} is not {ENTRY_FORMAT_VERSION}"
        ));
    }
    let stored = Fingerprint {
        hi: d.u64()?,
        lo: d.u64()?,
    };
    if stored != *key {
        return Err(format!(
            "entry key {stored} does not match lookup key {key}"
        ));
    }
    let payload_len = d.usize()?;
    let payload = d.take(payload_len)?.to_vec();
    let sum = Fingerprint {
        hi: d.u64()?,
        lo: d.u64()?,
    };
    d.done()?;
    if sum != checksum(&payload) {
        return Err("entry checksum mismatch (corrupted payload)".to_owned());
    }
    decode_artifact(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileOptions, Compiler, OptLevel};
    use cim_arch::presets;
    use cim_graph::zoo;

    fn artifact_at(level: OptLevel, model: &Graph, arch: &CimArchitecture) -> Artifact {
        let options = CompileOptions {
            level,
            ..CompileOptions::default()
        };
        let mut session = Compiler::with_options(options).session(model, arch);
        session.run().unwrap();
        let (artifact, _) = session.into_parts();
        artifact
    }

    #[test]
    fn fingerprints_are_deterministic_and_input_sensitive() {
        let g = zoo::lenet5();
        let arch = presets::isaac_baseline();
        assert_eq!(fingerprint_graph(&g), fingerprint_graph(&zoo::lenet5()));
        assert_ne!(fingerprint_graph(&g), fingerprint_graph(&zoo::mlp()));
        assert_eq!(fingerprint_arch(&arch), fingerprint_arch(&arch));
        assert_ne!(
            fingerprint_arch(&arch),
            fingerprint_arch(&presets::jain_sram())
        );
        // Changing only the computing mode changes the fingerprint.
        assert_ne!(
            fingerprint_arch(&arch),
            fingerprint_arch(&arch.with_mode(cim_arch::ComputingMode::Cm))
        );
    }

    #[test]
    fn builder_writes_are_delimited() {
        let a = FingerprintBuilder::new("t").str("ab").str("c").finish();
        let b = FingerprintBuilder::new("t").str("a").str("bc").finish();
        assert_ne!(a, b);
        assert_ne!(
            FingerprintBuilder::new("t").u64(1).finish(),
            FingerprintBuilder::new("t").f64(f64::from_bits(1)).finish()
        );
        assert_eq!(
            FingerprintBuilder::new("t").bool(true).finish(),
            FingerprintBuilder::new("t").bool(true).finish()
        );
        let hex = a.to_hex();
        assert_eq!(hex.len(), 32);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn artifacts_round_trip_through_the_entry_codec() {
        let g = zoo::vgg7();
        for (arch, level) in [
            (presets::isaac_baseline(), OptLevel::Cg),
            (presets::isaac_baseline(), OptLevel::Auto),
            (presets::jain_sram(), OptLevel::Auto),
        ] {
            let artifact = artifact_at(level, &g, &arch);
            let key = source_fingerprint(&g, &arch);
            let bytes = encode_entry(&key, &artifact).expect("schedules are cacheable");
            let back = decode_entry(&key, &bytes).unwrap();
            match (&artifact, &back) {
                (Artifact::CgScheduled(a), Artifact::CgScheduled(b)) => assert_eq!(a, b),
                (Artifact::MvmScheduled(a), Artifact::MvmScheduled(b)) => assert_eq!(a, b),
                (Artifact::VvmScheduled(a), Artifact::VvmScheduled(b)) => assert_eq!(a, b),
                other => panic!("stage changed in round trip: {other:?}"),
            }
        }
    }

    #[test]
    fn staged_artifacts_round_trip() {
        let g = zoo::lenet5();
        let arch = presets::isaac_baseline();
        let stages = crate::stage::extract_stages(&g, &arch, 8);
        let artifact = Artifact::Staged(Staged {
            stages: stages.clone(),
        });
        let key = source_fingerprint(&g, &arch);
        let bytes = encode_entry(&key, &artifact).unwrap();
        match decode_entry(&key, &bytes).unwrap() {
            Artifact::Staged(s) => assert_eq!(s.stages, stages),
            other => panic!("wrong stage: {other:?}"),
        }
    }

    #[test]
    fn source_and_codegen_artifacts_are_not_cacheable() {
        assert!(encode_entry(&checksum(b""), &Artifact::Source).is_none());
        assert!(!cacheable(&Artifact::Source));
    }

    #[test]
    fn corrupted_entries_are_rejected() {
        let g = zoo::lenet5();
        let arch = presets::isaac_baseline();
        let artifact = artifact_at(OptLevel::Auto, &g, &arch);
        let key = source_fingerprint(&g, &arch);
        let good = encode_entry(&key, &artifact).unwrap();
        assert!(decode_entry(&key, &good).is_ok());

        // Truncation.
        assert!(decode_entry(&key, &good[..good.len() / 2]).is_err());
        // Bit flip in the payload breaks the checksum.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(decode_entry(&key, &flipped).is_err());
        // A different lookup key rejects the stored key.
        let other = checksum(b"other");
        assert!(decode_entry(&other, &good).is_err());
        // Wrong magic.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(decode_entry(&key, &bad_magic).is_err());
        // Future format version.
        let mut future = good;
        future[4] = future[4].wrapping_add(1);
        assert!(decode_entry(&key, &future).is_err());
    }

    #[test]
    fn out_of_range_node_indices_are_decode_errors_not_panics() {
        // A checksum-valid payload can still be hostile: a node index
        // beyond the dense-id range must surface as a miss-able decode
        // error, not a `NodeId::from_index` panic.
        let mut e = Enc::default();
        e.u8(TAG_STAGED);
        e.u64(1); // one stage…
        e.u64(u64::MAX); // …whose node index cannot exist
        let err = decode_artifact(&e.buf).unwrap_err();
        assert!(err.contains("node index"), "{err}");
    }

    #[test]
    fn memory_cache_counts_hits_misses_and_stores() {
        let g = zoo::lenet5();
        let arch = presets::isaac_baseline();
        let artifact = artifact_at(OptLevel::Auto, &g, &arch);
        let key = source_fingerprint(&g, &arch);
        let cache = MemoryCache::new();
        assert!(cache.load(&key).is_none());
        assert!(cache.store(&key, &artifact));
        assert!(cache.load(&key).is_some());
        assert!(!cache.store(&key, &Artifact::Source));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                stores: 1
            }
        );
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tiered_cache_promotes_disk_hits_and_counts_lookups_once() {
        let dir = std::env::temp_dir().join(format!("cim_cache_tiered_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = zoo::lenet5();
        let arch = presets::isaac_baseline();
        let artifact = artifact_at(OptLevel::Auto, &g, &arch);
        let key = source_fingerprint(&g, &arch);

        // Cold process: store banks in both levels.
        let cache = TieredCache::open(&dir).unwrap();
        assert!(cache.load(&key).is_none());
        assert!(cache.store(&key, &artifact));
        assert_eq!(cache.memory_len(), 1);
        assert!(cache.load(&key).is_some());
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                stores: 1
            }
        );

        // Fresh process over the same directory: the first load is a
        // disk hit that promotes into memory; the second stays in RAM.
        let warm = TieredCache::open(&dir).unwrap();
        assert_eq!(warm.memory_len(), 0);
        assert!(warm.load(&key).is_some());
        assert_eq!(warm.memory_len(), 1);
        assert!(warm.load(&key).is_some());
        let stats = warm.stats();
        assert_eq!((stats.hits, stats.misses), (2, 0), "{stats:?}");
        assert_eq!(warm.root(), dir.as_path());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_round_trips_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("cim_cache_rt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = zoo::vgg7();
        let arch = presets::jain_sram();
        let artifact = artifact_at(OptLevel::Auto, &g, &arch);
        let key = source_fingerprint(&g, &arch);
        {
            let cache = DiskCache::open(&dir).unwrap();
            assert!(cache.load(&key).is_none());
            assert!(cache.store(&key, &artifact));
            assert!(cache.entry_path(&key).is_file());
        }
        // A fresh instance over the same directory serves the entry.
        let cache = DiskCache::open(&dir).unwrap();
        let loaded = cache.load(&key).expect("entry persisted");
        assert_eq!(loaded.kind(), artifact.kind());
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 0,
                stores: 0
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_cache_treats_corruption_as_a_miss_and_removes_the_entry() {
        let dir = std::env::temp_dir().join(format!("cim_cache_bad_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = zoo::lenet5();
        let arch = presets::isaac_baseline();
        let artifact = artifact_at(OptLevel::Auto, &g, &arch);
        let key = source_fingerprint(&g, &arch);
        let cache = DiskCache::open(&dir).unwrap();
        assert!(cache.store(&key, &artifact));
        let path = cache.entry_path(&key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.load(&key).is_none(), "corrupt entry must not load");
        assert!(!path.exists(), "corrupt entry should be dropped");
        assert_eq!(cache.stats().misses, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("cim_atomic_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        write_atomic(&path, b"{\"ok\":true}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"ok\":true}");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "report.json")
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        // A missing parent fails without creating anything at the target.
        let bad = dir.join("no_such_dir").join("report.json");
        assert!(write_atomic(&bad, b"x").is_err());
        assert!(!bad.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
