//! CG-grained optimization (paper §3.3.2, Figure 9).
//!
//! Operating purely on the computation graph and the chip-tier abstraction,
//! this level decides:
//!
//! * **segmentation** — when the model's weights exceed the chip's CIM
//!   capacity, split the (topologically ordered) operator list into
//!   maximal segments that fit, executed serially with crossbar
//!   reprogramming in between;
//! * **duplication** — assign each operator a duplication number under the
//!   `core_number` budget (and bandwidth/MVM caps) via the resource
//!   allocator of [`crate::alloc`];
//! * **pipeline** — overlap adjacent operators at feature-map-row
//!   granularity; a stage starts once its producer has emitted the rows
//!   its first window needs.

use crate::alloc::{self, AllocItem};
use crate::perf::{phase_power, PerfReport};
use crate::region::RegionMemo;
use crate::scratch::ScratchArena;
use crate::stage::{extract_stages, movement_cycles, Stage};
use crate::{CompileError, Result};
use cim_arch::CimArchitecture;
use std::sync::Arc;

/// Feature toggles for CG-grained optimization (used standalone for the
/// Figure 21a ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CgOptions {
    /// Enable the inter-operator pipeline.
    pub pipeline: bool,
    /// Enable operator duplication.
    pub duplication: bool,
}

impl CgOptions {
    /// Pipeline + duplication (the paper's CG-P&D).
    #[must_use]
    pub fn full() -> Self {
        CgOptions {
            pipeline: true,
            duplication: true,
        }
    }

    /// Neither optimization: the sequential, single-replica schedule the
    /// paper calls "w/o optimization".
    #[must_use]
    pub fn none() -> Self {
        CgOptions {
            pipeline: false,
            duplication: false,
        }
    }
}

/// Scheduling decisions for one stage within a segment.
#[derive(Debug, Clone, PartialEq)]
pub struct StagePlan {
    /// Index into the global stage list.
    pub stage: usize,
    /// CG-grained duplication number (`D_i`).
    pub duplication: u32,
    /// Cores consumed (`D_i · cores_per_replica`, capped at the chip).
    pub cores: u32,
    /// Intra-operator folds: >1 when even one replica exceeds the chip and
    /// the operator must be processed in passes with reprogramming.
    pub folds: u32,
    /// Stage latency in cycles under this plan (compute ∥ movement ∥ ALU).
    pub latency: f64,
}

/// One compute-graph segment: a run of stages that fits on the chip
/// simultaneously.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Plans for the stages of this segment, in topological order.
    pub plans: Vec<StagePlan>,
    /// Segment latency (pipelined or serial, per the options).
    pub latency: f64,
    /// Crossbars simultaneously active in the segment's steady state.
    pub active_crossbars: u64,
    /// Bits per cycle streamed while the segment runs.
    pub streaming_bits_per_cycle: f64,
}

/// The CG-grained schedule of a whole model.
#[derive(Debug, Clone, PartialEq)]
pub struct CgSchedule {
    /// All pipeline stages of the model, in topological order.
    pub stages: Vec<Stage>,
    /// The segments, in execution order.
    pub segments: Vec<Segment>,
    /// Cycles to reprogram the chip's crossbars once (between segments or
    /// folds; all crossbars program in parallel, rows serially).
    pub reprogram_cycles: f64,
    /// Options used.
    pub options: CgOptions,
    /// Summary report.
    pub report: PerfReport,
}

/// Latency of one stage given its duplication, including movement overlap
/// and attached-ALU work. Movement and ALU run concurrently with compute;
/// the stage is as slow as its slowest resource (the paper's assumption
/// that transfers hide under compute when bandwidth suffices, §4.1).
pub(crate) fn stage_latency(
    stage: &Stage,
    arch: &CimArchitecture,
    act_bits: u32,
    dup: u32,
    cycles_per_mvm: u64,
    folds: u32,
) -> f64 {
    let compute = stage.mapping.mvm_count as f64 * cycles_per_mvm as f64 / f64::from(dup.max(1))
        * f64::from(folds.max(1));
    let mov = movement_cycles(stage, arch, act_bits);
    let cores = dup.max(1) * stage.mapping.cores_per_replica(arch);
    let alu = stage.alu_cycles(
        arch.chip().alu_ops_per_cycle(),
        cores.min(arch.chip().core_count()),
    );
    let mut latency = compute.max(mov).max(alu);
    if stage.dynamic_weights {
        // Dynamic MatMul: the crossbar contents must be rewritten each
        // inference before compute can start.
        latency += arch
            .cost()
            .write_cycles(stage.mapping.rows.min(arch.crossbar().shape().rows))
            as f64;
    }
    latency
}

/// Bandwidth-derived duplication cap: duplicating beyond the point where
/// compute time falls under movement time wastes cores.
fn bandwidth_cap(stage: &Stage, arch: &CimArchitecture, act_bits: u32, cycles_per_mvm: u64) -> u32 {
    let mov = movement_cycles(stage, arch, act_bits);
    if mov <= 0.0 {
        return u32::MAX;
    }
    let compute1 = stage.mapping.mvm_count as f64 * cycles_per_mvm as f64;
    ((compute1 / mov).ceil() as u64).clamp(1, u64::from(u32::MAX)) as u32
}

/// Full duplication cap for a stage.
pub(crate) fn duplication_cap(
    stage: &Stage,
    arch: &CimArchitecture,
    act_bits: u32,
    cycles_per_mvm: u64,
) -> u32 {
    let mvm_cap = stage.mapping.mvm_count.clamp(1, u64::from(u32::MAX)) as u32;
    mvm_cap.min(bandwidth_cap(stage, arch, act_bits, cycles_per_mvm))
}

/// Pipelined latency of a chain of stages with fill fractions.
///
/// Stage `i` starts once every predecessor has produced the fraction its
/// consumer needs: `start_i = Σ_{j<i} fill_j · L_j`; the chain completes
/// at `max_i (start_i + L_i)`. This is never worse than the serial sum
/// (`fill ≤ 1`), degrades gracefully to it when every stage blocks
/// (`fill = 1`), and is monotone in the per-stage latencies.
pub(crate) fn pipeline_latency(lat_fill: &[(f64, f64)]) -> f64 {
    let mut start = 0.0_f64;
    let mut completion = 0.0_f64;
    for &(latency, fill) in lat_fill {
        completion = completion.max(start + latency);
        start += latency * fill.clamp(0.0, 1.0);
    }
    completion
}

/// Runs CG-grained scheduling on a graph: stage extraction followed by
/// [`schedule_cg_stages`].
///
/// # Errors
/// Returns [`CompileError::NothingToMap`] for graphs without CIM operators
/// and [`CompileError::DynamicWeightsUnsupported`] when a dynamic `MatMul`
/// targets a write-expensive device.
pub fn schedule_cg(
    graph: &cim_graph::Graph,
    arch: &CimArchitecture,
    options: CgOptions,
    weight_bits: u32,
    act_bits: u32,
) -> Result<CgSchedule> {
    let stages = extract_stages(graph, arch, weight_bits);
    schedule_cg_stages(graph.name(), stages, arch, options, act_bits)
}

/// Runs CG-grained scheduling on pre-extracted stages — the pipeline
/// entry point, which lets a [`crate::Pass`] inspect or rewrite the stage
/// list between extraction and scheduling. `model` only labels errors.
///
/// # Errors
/// Returns [`CompileError::NothingToMap`] when `stages` is empty and
/// [`CompileError::DynamicWeightsUnsupported`] when a dynamic `MatMul`
/// targets a write-expensive device.
pub fn schedule_cg_stages(
    model: &str,
    stages: Vec<Stage>,
    arch: &CimArchitecture,
    options: CgOptions,
    act_bits: u32,
) -> Result<CgSchedule> {
    schedule_cg_stages_in(
        model,
        stages,
        arch,
        options,
        act_bits,
        1,
        &ScratchArena::new(),
    )
}

/// [`schedule_cg_stages`] with an explicit worker count and scratch arena
/// — the form the [`crate::CgPass`] calls with
/// [`CompileOptions::jobs`](crate::CompileOptions::jobs) and the
/// session's arena.
///
/// With `jobs > 1` the segmentation DP's candidate-segment evaluations
/// fan out onto [`crate::pool::run_ordered`] (one job per DP row) and the
/// chosen segments are scheduled concurrently. Every evaluation is a pure
/// function of the stage list, so the returned schedule is byte-identical
/// for every `jobs` value — the jobs=1-vs-jobs=4 equality is pinned by a
/// test and by CI's dse-smoke gate.
///
/// # Errors
/// As [`schedule_cg_stages`].
#[allow(clippy::too_many_arguments)]
pub fn schedule_cg_stages_in(
    model: &str,
    stages: Vec<Stage>,
    arch: &CimArchitecture,
    options: CgOptions,
    act_bits: u32,
    jobs: usize,
    scratch: &ScratchArena,
) -> Result<CgSchedule> {
    schedule_cg_stages_memo(
        model,
        stages,
        arch,
        options,
        act_bits,
        jobs,
        scratch,
        &RegionMemo::new(),
    )
}

/// [`schedule_cg_stages_in`] with an explicit per-session [`RegionMemo`]
/// — the incremental-recompilation entry point. Candidate-segment
/// latencies and chosen-segment schedules are keyed by the region-id
/// sequences they cover, so a memo retained across
/// [`Session::recompile`](crate::Session::recompile) calls answers
/// unchanged segments without rescheduling them.
///
/// # Errors
/// As [`schedule_cg_stages`].
#[allow(clippy::too_many_arguments)]
pub fn schedule_cg_stages_memo(
    model: &str,
    stages: Vec<Stage>,
    arch: &CimArchitecture,
    options: CgOptions,
    act_bits: u32,
    jobs: usize,
    scratch: &ScratchArena,
    memo: &RegionMemo,
) -> Result<CgSchedule> {
    if stages.is_empty() {
        return Err(CompileError::NothingToMap {
            model: model.to_owned(),
        });
    }
    for stage in &stages {
        if stage.dynamic_weights && !arch.crossbar().cell_type().writes_are_cheap() {
            // Permitted but costly — the paper's ReRAM designs "ford write
            // operations"; we allow it and charge the write latency, but
            // flag the combination when it would dominate: only reject if
            // writes are three orders slower than a read.
            if arch.crossbar().cell_type().write_read_latency_ratio() >= 512 {
                return Err(CompileError::DynamicWeightsUnsupported {
                    node: stage.name.clone(),
                    device: arch.crossbar().cell_type().name(),
                });
            }
        }
    }

    let core_count = u64::from(arch.chip().core_count());
    let xb_per_core = arch.core().xb_count();
    let reprogram_cycles = arch.cost().write_cycles(arch.crossbar().shape().rows) as f64;

    // ---- Resource-adaptive segmentation (Figure 9b).
    //
    // Whole-model residency: on write-expensive devices (ReRAM/Flash/PCM)
    // weights are frozen in the crossbars, so if the whole model fits it
    // occupies one segment and duplication uses only the leftover cores —
    // the paper's premise (§2.1) and the behaviour behind Figure 21a's
    // shrinking duplication speedups. On write-cheap devices (SRAM), and
    // whenever the model does not fit, segments are contiguous runs chosen
    // by dynamic programming over total latency including inter-segment
    // reprogramming: a maximal prefix is not always best (an exactly-full
    // segment leaves no cores for duplication — the paper pops trailing
    // nodes while the DP latency improves). Stages whose single replica
    // exceeds the chip fold across it and stand alone.
    let n = stages.len();
    // Candidate-segment memoization. DNNs repeat blocks, so many of the
    // DP's O(n²) contiguous ranges contain *identical* per-stage content
    // sequences (a ViT body repeats with period 6, a ResNet with its
    // block size) and therefore evaluate to bit-identical latencies.
    // Intern each stage's content fingerprint to a small region id; a
    // candidate segment is then keyed by its id slice, and equal keys
    // imply equal inputs — a hit returns exactly what the evaluation
    // would have computed. The same ids key the chosen segments below,
    // which is what lets a memo retained across recompiles splice cached
    // schedules for unedited regions.
    let ids: Vec<u32> = memo.intern_stages(&stages);
    // Per-stage scheduling stats, cached by region id: the DP below
    // evaluates O(n²) candidate segments, and every segment is a
    // contiguous stage range, so its allocator input is a slice of this
    // table. Repeated blocks (and every unedited stage of a recompile)
    // answer from the memo instead of re-deriving the crossbar math.
    let mut needs: Vec<u64> = Vec::with_capacity(n);
    let mut cpms: Vec<u64> = Vec::with_capacity(n);
    let mut items_all: Vec<AllocItem> = Vec::with_capacity(n);
    for (stage, &id) in stages.iter().zip(&ids) {
        let st = memo.stage_stats(id, || {
            let cpm = stage.mapping.cycles_per_mvm(arch, act_bits);
            let cost = stage.mapping.cores_per_replica(arch);
            crate::region::StageStats {
                need: u64::from(cost),
                cpm,
                item: AllocItem {
                    cost,
                    latency: stage.mapping.mvm_count as f64 * cpm as f64,
                    max_dup: duplication_cap(stage, arch, act_bits, cpm),
                },
            }
        });
        needs.push(st.need);
        cpms.push(st.cpm);
        items_all.push(st.item);
    }
    let whole_model_cores: u64 = needs.iter().sum();
    let prefer_resident =
        !arch.crossbar().cell_type().writes_are_cheap() && whole_model_cores <= core_count;

    // Latency of the candidate segment `start..=end` (all replica-fitting
    // stages): exactly `schedule_segment`'s latency, minus the plan /
    // power bookkeeping the DP never reads. `dup` and `lat_fill` are
    // caller-leased scratch so the O(n²) evaluations allocate nothing.
    let eval_latency =
        |start: usize, end: usize, dup: &mut Vec<u32>, lat_fill: &mut Vec<(f64, f64)>| -> f64 {
            let range_key = &ids[start..=end];
            if let Some(hit) = memo.cost(range_key) {
                return hit;
            }
            let items = &items_all[start..=end];
            if options.duplication {
                if options.pipeline {
                    alloc::minimize_bottleneck_into(items, core_count, dup);
                } else {
                    alloc::minimize_total_into(items, core_count, dup);
                }
            } else {
                dup.clear();
                dup.resize(items.len(), 1);
            }
            lat_fill.clear();
            for (k, i) in (start..=end).enumerate() {
                let stage = &stages[i];
                let latency = stage_latency(stage, arch, act_bits, dup[k], cpms[i], 1);
                lat_fill.push((latency, stage.fill_fraction));
            }
            let latency = if options.pipeline {
                pipeline_latency(lat_fill)
            } else {
                lat_fill.iter().map(|&(l, _)| l).sum()
            };
            memo.store_cost(range_key, latency);
            latency
        };

    let mut dp = scratch.f64s(n + 1);
    dp.resize(n + 1, f64::INFINITY);
    let mut cut = scratch.usizes(n + 1);
    cut.resize(n + 1, n + 1);
    dp[n] = 0.0;
    if prefer_resident {
        cut.iter_mut().take(n).for_each(|c| *c = n);
    } else {
        // Row `i` of the DP: latencies of every budget-feasible candidate
        // segment starting at stage `i` (`[i..=i]`, `[i..=i+1]`, … until
        // the core budget runs out). Rows are independent of the DP
        // recurrence — the break condition is the core budget, not
        // `dp` — so they fan out onto the worker pool; the recurrence
        // itself then runs sequentially over precomputed latencies, which
        // keeps the schedule byte-identical for every `jobs` value.
        let row = |i: &usize| -> Arc<[f64]> {
            let i = *i;
            // The row's budget window is content-determined (`needs` come
            // from stage content), so the whole row is keyed by the
            // region-id run it covers: on recompile, one memo probe
            // answers every candidate of a row outside the edit's window.
            let window_end = if needs[i] > core_count {
                i + 1
            } else {
                let mut cores: u64 = 0;
                let mut end = i;
                for &need in &needs[i..] {
                    if need > core_count || cores + need > core_count {
                        break;
                    }
                    cores += need;
                    end += 1;
                }
                end
            };
            let window = &ids[i..window_end];
            if let Some(hit) = memo.row(window) {
                return hit;
            }
            let mut row = Vec::with_capacity(window_end - i);
            if needs[i] > core_count {
                // Single over-weight stage: folds across the whole chip.
                let folds = needs[i].div_ceil(core_count) as u32;
                row.push(stage_latency(&stages[i], arch, act_bits, 1, cpms[i], folds));
            } else {
                let mut dup = scratch.u32s(8);
                let mut lat_fill = scratch.pairs(8);
                for k in i..window_end {
                    row.push(eval_latency(i, k, &mut dup, &mut lat_fill));
                }
            }
            let row: Arc<[f64]> = row.into();
            memo.store_row(window, row.clone());
            row
        };
        let indices: Vec<usize> = (0..n).collect();
        let rows: Vec<Arc<[f64]>> = if jobs > 1 {
            crate::pool::run_ordered(&indices, jobs, row)
        } else {
            indices.iter().map(row).collect()
        };
        for i in (0..n).rev() {
            if needs[i] > core_count {
                let boundary = if i + 1 < n { reprogram_cycles } else { 0.0 };
                dp[i] = rows[i][0] + boundary + dp[i + 1];
                cut[i] = i + 1;
                continue;
            }
            for (j, &lat) in rows[i].iter().enumerate() {
                let k = i + j;
                let boundary = if k + 1 < n { reprogram_cycles } else { 0.0 };
                let total = lat + boundary + dp[k + 1];
                if total < dp[i] {
                    dp[i] = total;
                    cut[i] = k + 1;
                }
            }
            debug_assert!(cut[i] > i, "segmentation made no progress at stage {i}");
        }
    }
    let mut seg_ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < n {
        let k = cut[i];
        seg_ranges.push((i, k));
        i = k;
    }

    // ---- Per-segment duplication + latency. Segments are independent,
    // so they schedule concurrently; the merge below folds them back in
    // execution order, keeping totals and peak selection byte-identical
    // to the sequential walk.
    let full_segment = |&(start, end): &(usize, usize)| -> Segment {
        let key = &ids[start..end];
        if let Some(seg) = memo.cg_segment(key, start) {
            return seg;
        }
        let idxs: Vec<usize> = (start..end).collect();
        let seg = schedule_segment(
            &stages,
            &idxs,
            arch,
            options,
            act_bits,
            core_count,
            xb_per_core,
        );
        memo.store_cg_segment(key, start, &seg);
        seg
    };
    let scheduled: Vec<Segment> = if jobs > 1 && seg_ranges.len() > 1 {
        crate::pool::run_ordered(&seg_ranges, jobs, full_segment)
    } else {
        seg_ranges.iter().map(full_segment).collect()
    };
    let mut segments = Vec::with_capacity(scheduled.len());
    let mut total_latency = 0.0;
    let mut total_reprogram = 0.0;
    let mut peak_power = 0.0;
    let mut peak_active = 0u64;
    let mut peak_breakdown = Default::default();
    let needs_initial_program = true;
    for (seg_no, seg) in scheduled.into_iter().enumerate() {
        // Reprogramming happens before every segment except that the very
        // first programming of a frozen-weight device is offline (weights
        // pre-loaded); segments after the first always pay.
        if seg_no > 0 || !needs_initial_program {
            total_reprogram += reprogram_cycles;
        }
        total_latency += seg.latency;
        let (power, breakdown) =
            phase_power(arch, seg.active_crossbars, seg.streaming_bits_per_cycle);
        if power > peak_power {
            peak_power = power;
            peak_active = seg.active_crossbars;
            peak_breakdown = breakdown;
        }
        segments.push(seg);
    }
    // Folds inside segments also pay reprogramming.
    for seg in &segments {
        for plan in &seg.plans {
            if plan.folds > 1 {
                total_reprogram += f64::from(plan.folds - 1) * reprogram_cycles;
            }
        }
    }

    let reprogram_events = if reprogram_cycles > 0.0 {
        (total_reprogram / reprogram_cycles).round() as u64
    } else {
        0
    };
    let report = PerfReport {
        level: match (options.pipeline, options.duplication) {
            (false, false) => "no-opt",
            (true, false) => "cg-pipeline",
            (false, true) => "cg-duplication",
            (true, true) => "cg",
        },
        latency_cycles: total_latency + total_reprogram,
        peak_active_crossbars: peak_active,
        peak_power,
        peak_breakdown,
        energy: crate::perf::model_energy(&stages, arch, act_bits, reprogram_events),
        segments: segments.len(),
        reprogram_cycles: total_reprogram,
    };
    Ok(CgSchedule {
        stages,
        segments,
        reprogram_cycles,
        options,
        report,
    })
}

#[allow(clippy::too_many_arguments)]
fn schedule_segment(
    stages: &[Stage],
    idxs: &[usize],
    arch: &CimArchitecture,
    options: CgOptions,
    act_bits: u32,
    core_count: u64,
    _xb_per_core: u32,
) -> Segment {
    // Folded single-stage segment?
    if idxs.len() == 1 {
        let stage = &stages[idxs[0]];
        let need = u64::from(stage.mapping.cores_per_replica(arch));
        if need > core_count {
            let folds = need.div_ceil(core_count) as u32;
            let cpm = stage.mapping.cycles_per_mvm(arch, act_bits);
            let latency = stage_latency(stage, arch, act_bits, 1, cpm, folds);
            let active = core_count * u64::from(arch.core().xb_count());
            return Segment {
                plans: vec![StagePlan {
                    stage: idxs[0],
                    duplication: 1,
                    cores: arch.chip().core_count(),
                    folds,
                    latency,
                }],
                latency,
                active_crossbars: active,
                streaming_bits_per_cycle: stream_rate(&[idxs[0]], stages, latency, act_bits),
            };
        }
    }

    let items: Vec<AllocItem> = idxs
        .iter()
        .map(|&i| {
            let stage = &stages[i];
            let cpm = stage.mapping.cycles_per_mvm(arch, act_bits);
            AllocItem {
                cost: stage.mapping.cores_per_replica(arch),
                latency: stage.mapping.mvm_count as f64 * cpm as f64,
                max_dup: duplication_cap(stage, arch, act_bits, cpm),
            }
        })
        .collect();
    let dup = if options.duplication {
        if options.pipeline {
            alloc::minimize_bottleneck(&items, core_count)
        } else {
            alloc::minimize_total(&items, core_count)
        }
    } else {
        vec![1; idxs.len()]
    };

    let mut plans = Vec::with_capacity(idxs.len());
    let mut lat_fill = Vec::with_capacity(idxs.len());
    for (k, &i) in idxs.iter().enumerate() {
        let stage = &stages[i];
        let cpm = stage.mapping.cycles_per_mvm(arch, act_bits);
        let latency = stage_latency(stage, arch, act_bits, dup[k], cpm, 1);
        plans.push(StagePlan {
            stage: i,
            duplication: dup[k],
            cores: dup[k] * stage.mapping.cores_per_replica(arch),
            folds: 1,
            latency,
        });
        lat_fill.push((latency, stage.fill_fraction));
    }
    let latency = if options.pipeline {
        pipeline_latency(&lat_fill)
    } else {
        lat_fill.iter().map(|&(l, _)| l).sum()
    };
    // Steady-state active crossbars: all stages concurrently when
    // pipelined; one stage (the widest) otherwise.
    let active: u64 = if options.pipeline {
        plans
            .iter()
            .map(|p| u64::from(p.duplication) * u64::from(stages[p.stage].mapping.vxb_size()))
            .sum()
    } else {
        plans
            .iter()
            .map(|p| u64::from(p.duplication) * u64::from(stages[p.stage].mapping.vxb_size()))
            .max()
            .unwrap_or(0)
    };
    Segment {
        streaming_bits_per_cycle: stream_rate(idxs, stages, latency.max(1.0), act_bits),
        plans,
        latency,
        active_crossbars: active,
    }
}

/// Average bits per cycle moved while a segment runs.
fn stream_rate(idxs: &[usize], stages: &[Stage], latency: f64, act_bits: u32) -> f64 {
    let bits: u64 = idxs
        .iter()
        .map(|&i| (stages[i].in_elements + stages[i].out_elements) * u64::from(act_bits))
        .sum();
    bits as f64 / latency.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::presets;
    use cim_graph::zoo;

    fn latency(g: &cim_graph::Graph, arch: &CimArchitecture, opts: CgOptions) -> f64 {
        schedule_cg(g, arch, opts, 8, 8)
            .unwrap()
            .report
            .latency_cycles
    }

    #[test]
    fn optimizations_never_hurt() {
        let arch = presets::isaac_baseline();
        for g in [zoo::vgg7(), zoo::resnet18()] {
            let none = latency(&g, &arch, CgOptions::none());
            let pipe = latency(
                &g,
                &arch,
                CgOptions {
                    pipeline: true,
                    duplication: false,
                },
            );
            let dup = latency(
                &g,
                &arch,
                CgOptions {
                    pipeline: false,
                    duplication: true,
                },
            );
            let full = latency(&g, &arch, CgOptions::full());
            assert!(pipe <= none, "{}: pipe {pipe} > none {none}", g.name());
            assert!(dup <= none, "{}: dup {dup} > none {none}", g.name());
            assert!(full <= pipe.min(dup) * 1.001, "{}", g.name());
        }
    }

    #[test]
    fn duplication_speedup_shrinks_with_depth() {
        // Figure 21a: CG-Duplication speedup decreases from ResNet18 to
        // ResNet101 as spare cores vanish.
        let arch = presets::isaac_baseline();
        let speedup = |g: &cim_graph::Graph| {
            latency(g, &arch, CgOptions::none())
                / latency(
                    g,
                    &arch,
                    CgOptions {
                        pipeline: false,
                        duplication: true,
                    },
                )
        };
        let s18 = speedup(&zoo::resnet18());
        let s101 = speedup(&zoo::resnet101());
        assert!(s18 > s101, "s18 {s18} <= s101 {s101}");
        assert!(s18 > 4.0, "s18 {s18}");
    }

    #[test]
    fn pipeline_speedup_grows_with_depth() {
        // Figure 21a: CG-Pipeline speedup increases with model depth.
        let arch = presets::isaac_baseline();
        let speedup = |g: &cim_graph::Graph| {
            latency(g, &arch, CgOptions::none())
                / latency(
                    g,
                    &arch,
                    CgOptions {
                        pipeline: true,
                        duplication: false,
                    },
                )
        };
        let s18 = speedup(&zoo::resnet18());
        let s101 = speedup(&zoo::resnet101());
        assert!(s101 > s18, "s101 {s101} <= s18 {s18}");
        assert!(s18 > 1.5, "s18 {s18}");
    }

    #[test]
    fn pipelining_raises_peak_power() {
        // Figure 21d: CG-grained optimization raises peak power because
        // many more crossbars are active simultaneously.
        let arch = presets::isaac_baseline();
        let g = zoo::resnet34();
        let none = schedule_cg(&g, &arch, CgOptions::none(), 8, 8).unwrap();
        let full = schedule_cg(&g, &arch, CgOptions::full(), 8, 8).unwrap();
        assert!(full.report.peak_power > 3.0 * none.report.peak_power);
    }

    #[test]
    fn segmentation_triggers_when_model_exceeds_chip() {
        // VGG16 on Jia's 16-core SRAM chip does not fit at once.
        let arch = presets::jia_isscc21();
        let sched = schedule_cg(&zoo::vgg16(), &arch, CgOptions::full(), 8, 8).unwrap();
        assert!(sched.report.segments > 1, "{}", sched.report.segments);
        assert!(sched.report.reprogram_cycles > 0.0);
    }

    #[test]
    fn small_model_single_segment() {
        let arch = presets::isaac_baseline();
        let sched = schedule_cg(&zoo::lenet5(), &arch, CgOptions::full(), 8, 8).unwrap();
        assert_eq!(sched.report.segments, 1);
        assert_eq!(sched.report.reprogram_cycles, 0.0);
    }

    #[test]
    fn empty_graph_rejected() {
        let mut g = cim_graph::Graph::new("digital-only");
        let x = g
            .add(
                "x",
                cim_graph::OpKind::Input {
                    shape: cim_graph::Shape::vec(8),
                },
                [],
            )
            .unwrap();
        let _ = g.add("r", cim_graph::OpKind::Relu, [x]).unwrap();
        let arch = presets::isaac_baseline();
        assert!(matches!(
            schedule_cg(&g, &arch, CgOptions::full(), 8, 8),
            Err(CompileError::NothingToMap { .. })
        ));
    }

    #[test]
    fn pipeline_latency_formula() {
        // Single stage: just its latency.
        assert_eq!(pipeline_latency(&[(100.0, 0.5)]), 100.0);
        // Two stages: the second starts after the first's fill (at 10)
        // and finishes at 90, but the first itself runs until 100.
        let l = pipeline_latency(&[(100.0, 0.1), (80.0, 1.0)]);
        assert!((l - 100.0).abs() < 1e-9, "{l}");
        // An early bottleneck is not double-counted: [10, 1] with a large
        // fill completes at 10 (stage 2 finishes within stage 1's span
        // plus epsilon), never above the serial sum.
        let l = pipeline_latency(&[(10.0, 0.9), (1.0, 1.0)]);
        assert!((l - 10.0).abs() < 1e-9, "{l}");
        // Blocking fills reproduce serial execution.
        let serial = pipeline_latency(&[(5.0, 1.0), (7.0, 1.0), (3.0, 1.0)]);
        assert!((serial - 15.0).abs() < 1e-9, "{serial}");
        assert_eq!(pipeline_latency(&[]), 0.0);
    }

    #[test]
    fn pipeline_never_exceeds_serial_sum() {
        let chains = [
            vec![(100.0, 0.1), (50.0, 0.3), (200.0, 1.0), (10.0, 0.5)],
            vec![(1.0, 0.9); 20],
            vec![(1000.0, 0.05), (1.0, 1.0)],
        ];
        for chain in chains {
            let serial: f64 = chain.iter().map(|&(l, _)| l).sum();
            let pipe = pipeline_latency(&chain);
            assert!(pipe <= serial + 1e-9, "pipe {pipe} > serial {serial}");
        }
    }

    #[test]
    fn duplication_respects_core_budget() {
        let arch = presets::isaac_baseline();
        let sched = schedule_cg(&zoo::resnet50(), &arch, CgOptions::full(), 8, 8).unwrap();
        for seg in &sched.segments {
            let used: u64 = seg.plans.iter().map(|p| u64::from(p.cores)).sum();
            assert!(
                used <= u64::from(arch.chip().core_count()),
                "segment uses {used} cores"
            );
        }
    }
}
