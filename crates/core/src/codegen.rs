//! Meta-operator flow generation (paper §3.4, Figure 16).
//!
//! Lowers a [`Compiled`] schedule into an executable [`MopFlow`] using the
//! meta-operator set of the target's computing mode:
//!
//! * **CM** — one `cim.readcore` per CIM operator;
//! * **XBM** — `cim.writexb` programming + per-MVM gather / `parallel
//!   { cim.readxb … }` / scatter;
//! * **WLM** — `cim.writerow` programming honoring the VVM remapping
//!   layout + wave-by-wave `parallel { cim.readrow … }` activations.
//!
//! Digital operators lower to DCOM meta-operators and data movement to
//! DMOV, exactly as in the paper's BNF (Figure 10). The generated flow is
//! *functionally executable*: the `cim-sim` functional simulator runs it
//! and must reproduce the reference executor's output bit-exactly, which
//! verifies the mapping (partial-sum splits, bit-slice column packing,
//! wordline remapping) rather than just printing it.
//!
//! Weight-matrix layout convention: a convolution's matrix row index is
//! `(c_in · k + ky) · k + kx` — the same convention the reference executor
//! and the functional simulator's weight synthesis use.

use crate::compile::Compiled;
use crate::mapping::OpMapping;
use crate::{CompileError, Result};
use cim_arch::{CimArchitecture, ComputingMode};
use cim_graph::{Graph, Node, NodeId, OpKind};
use cim_mop::{BufRef, CoreOp, DcomFunc, MatId, MetaOp, MopFlow, XbAddr};
use std::collections::HashMap;

/// Buffer layout of a generated flow: where each graph node's output
/// tensor lives in the global (L0) buffer.
#[derive(Debug, Clone, Default)]
pub struct FlowLayout {
    offsets: HashMap<NodeId, u64>,
    total: u64,
}

impl FlowLayout {
    /// L0 element offset of `node`'s output tensor.
    ///
    /// # Panics
    /// Panics if the node was not laid out (not part of the generated
    /// graph).
    #[must_use]
    pub fn offset(&self, node: NodeId) -> u64 {
        self.offsets[&node]
    }

    /// Total L0 elements the flow uses.
    #[must_use]
    pub fn total_elements(&self) -> u64 {
        self.total
    }
}

/// Where a stage's replicas live: a contiguous run of crossbar slots.
#[derive(Debug, Clone, Copy)]
struct Placement {
    base_core: u32,
    dup: u32,
    spread: u32,
}

/// Generates the executable meta-operator flow for a compiled model.
///
/// # Errors
/// * [`CompileError::FlowTooLarge`] when the estimated meta-operator count
///   exceeds [`crate::CompileOptions::max_flow_ops`];
/// * [`CompileError::Internal`] for schedules code generation does not
///   support (folded operators, dynamic `MatMul` weights).
pub fn generate_flow(
    compiled: &Compiled,
    graph: &Graph,
    arch: &CimArchitecture,
) -> Result<(MopFlow, FlowLayout)> {
    let mode = arch.mode();
    let weight_bits = compiled.options().weight_bits;

    // --- flow-size estimate (checked first: the budget error is the
    // actionable one for users pointing the generator at a large model) --
    let mut estimate: u64 = 0;
    for &id in &graph.cim_nodes() {
        let m = OpMapping::of(graph, id, arch, weight_bits).expect("cim node maps");
        let per_mvm = match mode {
            ComputingMode::Cm => 0,
            _ => {
                u64::from(m.vxb_size()) * u64::from(m.activation_groups(arch))
                    + u64::from(m.rows)
                    + u64::from(m.cols)
            }
        };
        let folds = u64::from(m.cores_per_replica(arch))
            .div_ceil(u64::from(arch.chip().core_count()))
            .max(1);
        estimate +=
            folds * (m.mvm_count * (per_mvm + 4) + u64::from(m.rows) * u64::from(m.h_xbs)) + 1;
    }
    if estimate > compiled.options().max_flow_ops {
        return Err(CompileError::FlowTooLarge {
            estimated: estimate,
            limit: compiled.options().max_flow_ops,
        });
    }

    // --- reject unsupported schedules -----------------------------------
    for node in graph.nodes() {
        if matches!(node.op(), OpKind::MatMul) {
            return Err(CompileError::Internal {
                message: format!(
                    "code generation requires static weights; `{}` is a dynamic matmul",
                    node.name()
                ),
            });
        }
    }

    // --- L0 layout -------------------------------------------------------
    let mut layout = FlowLayout::default();
    for node in graph.nodes() {
        layout.offsets.insert(node.id(), layout.total);
        layout.total += node.out_shape().elements();
    }

    // --- placements ------------------------------------------------------
    let spreads_by_stage: HashMap<usize, u32> = match &compiled.vvm {
        Some(v) => v
            .segments
            .iter()
            .zip(&v.spreads)
            .flat_map(|(seg, sp)| seg.plans.iter().zip(sp).map(|(p, &k)| (p.stage, k)))
            .collect(),
        None => HashMap::new(),
    };
    let mut placements: HashMap<NodeId, Placement> = HashMap::new();
    {
        let segments: Vec<Vec<&crate::cg::StagePlan>> = if let Some(v) = &compiled.vvm {
            v.segments
                .iter()
                .map(|s| s.plans.iter().collect())
                .collect()
        } else if let Some(m) = &compiled.mvm {
            m.segments
                .iter()
                .map(|s| s.plans.iter().collect())
                .collect()
        } else {
            compiled
                .cg
                .segments
                .iter()
                .map(|s| s.plans.iter().collect())
                .collect()
        };
        for seg in segments {
            let mut cursor: u32 = 0;
            for plan in seg {
                let stage = &compiled.cg.stages[plan.stage];
                let spread = spreads_by_stage.get(&plan.stage).copied().unwrap_or(1);
                // The schedule's duplication may exceed what the placement
                // region physically holds once spreading is layered on;
                // clamp for code generation.
                let slots = u64::from(plan.cores.max(stage.mapping.cores_per_replica(arch)))
                    * u64::from(arch.core().xb_count());
                let footprint = u64::from(spread) * u64::from(stage.mapping.vxb_size());
                let dup_fit = (slots / footprint.max(1)).max(1) as u32;
                placements.insert(
                    stage.node,
                    Placement {
                        base_core: cursor,
                        dup: plan.duplication.clamp(1, dup_fit),
                        spread,
                    },
                );
                cursor += plan.cores.max(stage.mapping.cores_per_replica(arch));
            }
        }
    }

    // --- emission ----------------------------------------------------------
    let mut gen = Generator {
        graph,
        arch,
        layout: &layout,
        flow: MopFlow::new(format!("{}@{}", graph.name(), arch.name())),
        mats: HashMap::new(),
    };
    // Declare every weight matrix up front.
    for &id in &graph.cim_nodes() {
        let mapping = OpMapping::of(graph, id, arch, weight_bits).expect("cim node maps");
        let mat = gen
            .flow
            .declare_mat(mapping.rows, mapping.cols, graph.node(id).name());
        gen.mats.insert(id, mat);
    }
    // Segments execute serially and *reuse* the chip's crossbars, so each
    // segment's programming (the paper's `Init:` block, Figure 16) must be
    // emitted immediately before that segment's compute — emitting all
    // writes up front would let a later segment clobber an earlier one's
    // weights.
    let segment_of: HashMap<NodeId, usize> = {
        let mut map = HashMap::new();
        for (si, seg) in compiled.cg.segments.iter().enumerate() {
            for plan in &seg.plans {
                map.insert(compiled.cg.stages[plan.stage].node, si);
            }
        }
        map
    };
    let stages_by_segment: Vec<Vec<NodeId>> = {
        let mut v: Vec<Vec<NodeId>> = vec![Vec::new(); compiled.cg.segments.len()];
        for (node, &si) in &segment_of {
            v[si].push(*node);
        }
        for seg in &mut v {
            seg.sort();
        }
        v
    };
    let mut opened = vec![false; stages_by_segment.len()];
    // Compute, in topological order, opening segments as they begin.
    for node in graph.nodes() {
        match node.op() {
            OpKind::Input { .. } => {}
            op if op.is_cim_supported() => {
                let si = segment_of[&node.id()];
                let folds_of = |id: NodeId| -> u32 {
                    let m = OpMapping::of(graph, id, arch, weight_bits).expect("cim node maps");
                    m.cores_per_replica(arch)
                        .div_ceil(arch.chip().core_count())
                        .max(1)
                };
                if !opened[si] {
                    opened[si] = true;
                    for &stage_node in &stages_by_segment[si] {
                        if folds_of(stage_node) > 1 {
                            continue; // folded stages program per fold, inline
                        }
                        let mapping = OpMapping::of(graph, stage_node, arch, weight_bits)
                            .expect("cim node maps");
                        let placement = placements[&stage_node];
                        let mat = gen.mats[&stage_node];
                        match mode {
                            ComputingMode::Cm => {}
                            ComputingMode::Xbm => gen.emit_xbm_writes(&mapping, placement, mat),
                            ComputingMode::Wlm => gen.emit_wlm_writes(&mapping, placement, mat),
                        }
                    }
                }
                let mapping =
                    OpMapping::of(graph, node.id(), arch, weight_bits).expect("cim node maps");
                let placement = placements[&node.id()];
                let mat = gen.mats[&node.id()];
                let folded = folds_of(node.id()) > 1;
                match mode {
                    ComputingMode::Cm => gen.emit_cm(node, &mapping, placement, mat),
                    ComputingMode::Xbm if folded => {
                        gen.emit_folded_compute(node, &mapping, mat, false)
                    }
                    ComputingMode::Wlm if folded => {
                        gen.emit_folded_compute(node, &mapping, mat, true)
                    }
                    ComputingMode::Xbm => {
                        gen.emit_crossbar_compute(node, &mapping, placement, false)
                    }
                    ComputingMode::Wlm => {
                        gen.emit_crossbar_compute(node, &mapping, placement, true)
                    }
                }
            }
            _ => gen.emit_digital(node),
        }
    }
    Ok((gen.flow, layout))
}

struct Generator<'a> {
    graph: &'a Graph,
    arch: &'a CimArchitecture,
    layout: &'a FlowLayout,
    flow: MopFlow,
    mats: HashMap<NodeId, MatId>,
}

impl Generator<'_> {
    fn xb_per_core(&self) -> u32 {
        self.arch.core().xb_count()
    }

    /// Crossbar address of slot `slot` within a stage placed at
    /// `base_core`.
    fn slot_addr(&self, base_core: u32, slot: u32) -> XbAddr {
        XbAddr::new(
            base_core + slot / self.xb_per_core(),
            slot % self.xb_per_core(),
        )
    }

    /// The `(row0, col0, rows, cols)` extents of VXB tile `(vi, hi)`.
    fn tile(&self, m: &OpMapping, vi: u32, hi: u32) -> (u32, u32, u32, u32) {
        let xb_rows = self.arch.crossbar().shape().rows;
        let lcp = m.logical_cols_per_xb(self.arch);
        let row0 = vi * xb_rows;
        let col0 = hi * lcp;
        let rr = (m.rows - row0).min(xb_rows);
        let cc = (m.cols - col0).min(lcp);
        (row0, col0, rr, cc)
    }

    // --- CM ---------------------------------------------------------------

    fn emit_cm(&mut self, node: Node<'_>, m: &OpMapping, placement: Placement, mat: MatId) {
        let in_id = node.inputs()[0];
        let src = BufRef::l0(self.layout.offset(in_id));
        let dst = BufRef::l0(self.layout.offset(node.id()));
        let op = match node.op() {
            OpKind::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
            } => {
                let (c, h, w) = self
                    .graph
                    .node(in_id)
                    .out_shape()
                    .as_chw()
                    .expect("conv input is [C,H,W]");
                CoreOp::Conv {
                    in_c: c as u32,
                    in_h: h as u32,
                    in_w: w as u32,
                    out_c: *out_channels as u32,
                    kernel: *kernel as u32,
                    stride: *stride as u32,
                    padding: *padding as u32,
                }
            }
            OpKind::Linear { out_features } => {
                let batch = (self.graph.mvm_count(node.id())).max(1) as u32;
                CoreOp::Linear {
                    in_f: m.rows,
                    out_f: *out_features as u32,
                    batch,
                }
            }
            _ => unreachable!("CM emission only covers static CIM ops"),
        };
        self.flow.push(MetaOp::ReadCore {
            op,
            weights: mat,
            core: placement.base_core,
            src,
            dst,
        });
    }

    // --- XBM programming ----------------------------------------------------

    fn emit_xbm_writes(&mut self, m: &OpMapping, placement: Placement, mat: MatId) {
        let vxb = m.vxb_size();
        for r in 0..placement.dup {
            let replica_base = r * placement.spread * vxb;
            for vi in 0..m.v_xbs {
                for hi in 0..m.h_xbs {
                    let (row0, col0, rr, cc) = self.tile(m, vi, hi);
                    let slot = replica_base + (vi * m.h_xbs + hi);
                    self.flow.push(MetaOp::WriteXb {
                        xb: self.slot_addr(placement.base_core, slot),
                        weights: mat,
                        src_row: row0,
                        src_col: col0,
                        dst_row: 0,
                        dst_col: 0,
                        rows: rr,
                        cols: cc,
                    });
                }
            }
        }
    }

    // --- WLM programming (honors the remapping layout) ----------------------

    /// Crossbar placement of original matrix row `rr` under spread `k`:
    /// group `g = (rr mod xb_rows) / parallel_row` goes to spread position
    /// `s = g mod k` at local wordline `(g / k)·parallel_row + offset`.
    fn wlm_row_home(&self, rr: u32, k: u32) -> (u32, u32, u32) {
        let xb_rows = self.arch.crossbar().shape().rows;
        let pr = self.arch.crossbar().parallel_row();
        let vi = rr / xb_rows;
        let lr = rr % xb_rows;
        let g = lr / pr;
        let s = g % k;
        let local_row = (g / k) * pr + (lr % pr);
        (vi, s, local_row)
    }

    fn emit_wlm_writes(&mut self, m: &OpMapping, placement: Placement, mat: MatId) {
        let k = placement.spread.max(1);
        for r in 0..placement.dup {
            let replica_base = r * k * m.vxb_size();
            for rr in 0..m.rows {
                let (vi, s, local_row) = self.wlm_row_home(rr, k);
                for hi in 0..m.h_xbs {
                    let (_, col0, _, cc) = self.tile(m, vi, hi);
                    let slot = replica_base + (vi * k + s) * m.h_xbs + hi;
                    self.flow.push(MetaOp::WriteRow {
                        xb: self.slot_addr(placement.base_core, slot),
                        row: local_row,
                        weights: mat,
                        src_row: rr,
                        src_col: col0,
                        dst_col: 0,
                        cols: cc,
                    });
                }
            }
        }
    }

    // --- compute ------------------------------------------------------------

    /// Emits the full MVM loop of one CIM operator (XBM or WLM reads).
    fn emit_crossbar_compute(
        &mut self,
        node: Node<'_>,
        m: &OpMapping,
        placement: Placement,
        wlm: bool,
    ) {
        let in_id = node.inputs()[0];
        let in_base = self.layout.offset(in_id);
        let out_base = self.layout.offset(node.id());
        for mvm in 0..m.mvm_count {
            let replica = (mvm % u64::from(placement.dup)) as u32;
            let first_core = placement.base_core
                + replica * placement.spread * m.vxb_size() / self.xb_per_core();
            let staging = BufRef::l1(first_core, 0);
            let out_reg = BufRef::l1(first_core, u64::from(m.rows));
            self.emit_gather(node, m, mvm, in_base, staging);
            if wlm {
                self.emit_wlm_reads(m, placement, replica, staging, out_reg);
            } else {
                self.emit_xbm_reads(m, placement, replica, staging, out_reg);
            }
            self.emit_scatter(node, m, mvm, out_base, out_reg);
        }
    }

    /// Time-multiplexed emission for an operator whose single replica
    /// exceeds the whole chip: the VXB tile grid is processed in chunks of
    /// `total_slots` crossbars. Each fold reprograms the chip, replays
    /// every MVM's gather, computes the chunk's partial products and
    /// accumulates them into the L0 output (`shiftacc`), so the final
    /// tensor is exact despite the folding.
    fn emit_folded_compute(&mut self, node: Node<'_>, m: &OpMapping, mat: MatId, wlm: bool) {
        let total_slots = self.arch.chip().core_count() * self.xb_per_core();
        let xb = self.arch.crossbar();
        let pr = xb.parallel_row();
        let in_id = node.inputs()[0];
        let in_base = self.layout.offset(in_id);
        let out_base = self.layout.offset(node.id());
        let tiles: Vec<(u32, u32)> = (0..m.v_xbs)
            .flat_map(|vi| (0..m.h_xbs).map(move |hi| (vi, hi)))
            .collect();
        for (fold, chunk) in tiles.chunks(total_slots as usize).enumerate() {
            // Program this fold's tiles at slots 0..chunk.len().
            for (slot, &(vi, hi)) in chunk.iter().enumerate() {
                let (row0, col0, rr, cc) = self.tile(m, vi, hi);
                let addr = self.slot_addr(0, slot as u32);
                if wlm {
                    for r in 0..rr {
                        self.flow.push(MetaOp::WriteRow {
                            xb: addr,
                            row: r,
                            weights: mat,
                            src_row: row0 + r,
                            src_col: col0,
                            dst_col: 0,
                            cols: cc,
                        });
                    }
                } else {
                    self.flow.push(MetaOp::WriteXb {
                        xb: addr,
                        weights: mat,
                        src_row: row0,
                        src_col: col0,
                        dst_row: 0,
                        dst_col: 0,
                        rows: rr,
                        cols: cc,
                    });
                }
            }
            // Replay every MVM against this chunk.
            for mvm in 0..m.mvm_count {
                let staging = BufRef::l1(0, 0);
                let out_reg = BufRef::l1(0, u64::from(m.rows));
                self.emit_gather(node, m, mvm, in_base, staging);
                self.flow.push(MetaOp::Dcom {
                    func: DcomFunc::Zero,
                    srcs: vec![],
                    dst: out_reg,
                    len: u64::from(m.cols),
                });
                let mut ops = Vec::new();
                for (slot, &(vi, hi)) in chunk.iter().enumerate() {
                    let (row0, col0, rr, cc) = self.tile(m, vi, hi);
                    let addr = self.slot_addr(0, slot as u32);
                    if wlm {
                        let groups = rr.div_ceil(pr);
                        for g in 0..groups {
                            let rows_in_group = (rr - g * pr).min(pr);
                            ops.push(MetaOp::ReadRow {
                                xb: addr,
                                row_start: g * pr,
                                rows: rows_in_group,
                                col_start: 0,
                                cols: cc,
                                src: staging.at(u64::from(row0 + g * pr)),
                                dst: out_reg.at(u64::from(col0)),
                                accumulate: true,
                            });
                        }
                    } else {
                        ops.push(MetaOp::ReadXb {
                            xb: addr,
                            row_start: 0,
                            rows: rr,
                            col_start: 0,
                            cols: cc,
                            src: staging.at(u64::from(row0)),
                            dst: out_reg.at(u64::from(col0)),
                            accumulate: true,
                        });
                    }
                }
                self.flow.push_parallel(ops);
                self.emit_scatter_acc(node, m, mvm, out_base, out_reg, fold > 0);
            }
        }
    }

    /// Gathers the `mvm`-th input vector into the staging buffer.
    fn emit_gather(
        &mut self,
        node: Node<'_>,
        m: &OpMapping,
        mvm: u64,
        in_base: u64,
        staging: BufRef,
    ) {
        match node.op() {
            OpKind::Conv2d {
                kernel,
                stride,
                padding,
                ..
            } => {
                let (in_c, in_h, in_w) = self
                    .graph
                    .node(node.inputs()[0])
                    .out_shape()
                    .as_chw()
                    .expect("conv input is [C,H,W]");
                let (_, _, out_w) = node.out_shape().as_chw().expect("conv output is [C,H,W]");
                let oy = (mvm / out_w as u64) as i64;
                let ox = (mvm % out_w as u64) as i64;
                let k = *kernel as i64;
                let s = *stride as i64;
                let p = *padding as i64;
                if *padding > 0 {
                    self.flow.push(MetaOp::Dcom {
                        func: DcomFunc::Zero,
                        srcs: vec![],
                        dst: staging,
                        len: u64::from(m.rows),
                    });
                }
                for c in 0..in_c as i64 {
                    for ky in 0..k {
                        let iy = oy * s - p + ky;
                        if iy < 0 || iy >= in_h as i64 {
                            continue;
                        }
                        let kx_lo = (p - ox * s).max(0);
                        let kx_hi = (in_w as i64 - 1 - ox * s + p).min(k - 1);
                        if kx_lo > kx_hi {
                            continue;
                        }
                        let ix0 = ox * s - p + kx_lo;
                        let src = in_base
                            + (c as u64) * (in_h as u64) * (in_w as u64)
                            + (iy as u64) * (in_w as u64)
                            + ix0 as u64;
                        let dst_row = ((c * k + ky) * k + kx_lo) as u64;
                        self.flow.push(MetaOp::Mov {
                            src: BufRef::l0(src),
                            dst: staging.at(dst_row),
                            len: (kx_hi - kx_lo + 1) as u64,
                        });
                    }
                }
            }
            OpKind::Linear { .. } => {
                self.flow.push(MetaOp::Mov {
                    src: BufRef::l0(in_base + mvm * u64::from(m.rows)),
                    dst: staging,
                    len: u64::from(m.rows),
                });
            }
            _ => unreachable!("gather only for static CIM ops"),
        }
    }

    /// Whole-crossbar activations: one `parallel` block covering the VXB.
    fn emit_xbm_reads(
        &mut self,
        m: &OpMapping,
        placement: Placement,
        replica: u32,
        staging: BufRef,
        out_reg: BufRef,
    ) {
        let replica_base = replica * placement.spread * m.vxb_size();
        let mut ops = Vec::with_capacity(m.vxb_size() as usize);
        for vi in 0..m.v_xbs {
            for hi in 0..m.h_xbs {
                let (row0, col0, rr, cc) = self.tile(m, vi, hi);
                let slot = replica_base + vi * m.h_xbs + hi;
                ops.push(MetaOp::ReadXb {
                    xb: self.slot_addr(placement.base_core, slot),
                    row_start: 0,
                    rows: rr,
                    col_start: 0,
                    cols: cc,
                    src: staging.at(u64::from(row0)),
                    dst: out_reg.at(u64::from(col0)),
                    accumulate: vi > 0,
                });
            }
        }
        self.flow.push_parallel(ops);
    }

    /// Wave-by-wave wordline activations honoring the remapping layout.
    fn emit_wlm_reads(
        &mut self,
        m: &OpMapping,
        placement: Placement,
        replica: u32,
        staging: BufRef,
        out_reg: BufRef,
    ) {
        let xb = self.arch.crossbar();
        let xb_rows = xb.shape().rows;
        let pr = xb.parallel_row();
        let k = placement.spread.max(1);
        let replica_base = replica * k * m.vxb_size();
        let max_block_groups = xb_rows.min(m.rows).div_ceil(pr);
        let waves = max_block_groups.div_ceil(k);
        for w in 0..waves {
            let mut ops = Vec::new();
            for vi in 0..m.v_xbs {
                let block_rows = (m.rows - vi * xb_rows).min(xb_rows);
                let block_groups = block_rows.div_ceil(pr);
                for s in 0..k {
                    let g = w * k + s;
                    if g >= block_groups {
                        continue;
                    }
                    let rows_in_group = (block_rows - g * pr).min(pr);
                    let orig_row0 = vi * xb_rows + g * pr;
                    let local_row0 = (g / k) * pr;
                    for hi in 0..m.h_xbs {
                        let (_, col0, _, cc) = self.tile(m, vi, hi);
                        let slot = replica_base + (vi * k + s) * m.h_xbs + hi;
                        ops.push(MetaOp::ReadRow {
                            xb: self.slot_addr(placement.base_core, slot),
                            row_start: local_row0,
                            rows: rows_in_group,
                            col_start: 0,
                            cols: cc,
                            src: staging.at(u64::from(orig_row0)),
                            dst: out_reg.at(u64::from(col0)),
                            accumulate: !(vi == 0 && g == 0),
                        });
                    }
                }
            }
            self.flow.push_parallel(ops);
        }
    }

    /// Scatters an MVM's output vector into the node's L0 tensor.
    fn emit_scatter(
        &mut self,
        node: Node<'_>,
        m: &OpMapping,
        mvm: u64,
        out_base: u64,
        out_reg: BufRef,
    ) {
        self.emit_scatter_acc(node, m, mvm, out_base, out_reg, false);
    }

    /// Scatter with optional accumulation (`shiftacc`) for fold partials.
    fn emit_scatter_acc(
        &mut self,
        node: Node<'_>,
        m: &OpMapping,
        mvm: u64,
        out_base: u64,
        out_reg: BufRef,
        accumulate: bool,
    ) {
        let mut push = |src: BufRef, dst: BufRef, len: u64| {
            if accumulate {
                self.flow.push(MetaOp::Dcom {
                    func: DcomFunc::ShiftAcc,
                    srcs: vec![src],
                    dst,
                    len,
                });
            } else {
                self.flow.push(MetaOp::Mov { src, dst, len });
            }
        };
        match node.op() {
            OpKind::Conv2d { .. } => {
                let (out_c, oh, ow) = node.out_shape().as_chw().expect("conv output");
                let oy = mvm / ow as u64;
                let ox = mvm % ow as u64;
                for c in 0..out_c as u64 {
                    push(
                        out_reg.at(c),
                        BufRef::l0(out_base + c * (oh as u64) * (ow as u64) + oy * ow as u64 + ox),
                        1,
                    );
                }
            }
            OpKind::Linear { .. } => {
                push(
                    out_reg,
                    BufRef::l0(out_base + mvm * u64::from(m.cols)),
                    u64::from(m.cols),
                );
            }
            _ => unreachable!("scatter only for static CIM ops"),
        }
    }

    // --- digital --------------------------------------------------------------

    fn emit_digital(&mut self, node: Node<'_>) {
        let dst = BufRef::l0(self.layout.offset(node.id()));
        let len = node.out_shape().elements();
        let srcs: Vec<BufRef> = node
            .inputs()
            .iter()
            .map(|&i| BufRef::l0(self.layout.offset(i)))
            .collect();
        let in_shape = node
            .inputs()
            .first()
            .map(|&i| self.graph.node(i).out_shape().clone());
        let func = match node.op() {
            OpKind::Relu => DcomFunc::Relu,
            OpKind::Gelu => DcomFunc::Gelu,
            OpKind::Softmax => {
                let rows = node.out_shape().dims()[..node.out_shape().rank() - 1]
                    .iter()
                    .product::<usize>() as u32;
                DcomFunc::Softmax {
                    groups: rows.max(1),
                }
            }
            OpKind::LayerNorm => {
                let rows = node.out_shape().dims()[..node.out_shape().rank() - 1]
                    .iter()
                    .product::<usize>() as u32;
                DcomFunc::LayerNorm {
                    groups: rows.max(1),
                }
            }
            OpKind::BatchNorm => DcomFunc::BatchNorm,
            OpKind::Add => DcomFunc::AddEw,
            OpKind::Pool2d {
                kind,
                kernel,
                stride,
                padding,
            } => {
                let (c, h, w) = in_shape
                    .as_ref()
                    .and_then(|s| s.as_chw())
                    .expect("pool input is [C,H,W]");
                let (c, h, w) = (c as u32, h as u32, w as u32);
                let (kernel, stride, padding) = (*kernel as u32, *stride as u32, *padding as u32);
                match kind {
                    cim_graph::PoolKind::Max => DcomFunc::MaxPool {
                        c,
                        h,
                        w,
                        kernel,
                        stride,
                        padding,
                    },
                    cim_graph::PoolKind::Avg => DcomFunc::AvgPool {
                        c,
                        h,
                        w,
                        kernel,
                        stride,
                        padding,
                    },
                }
            }
            OpKind::GlobalAvgPool => {
                let (c, h, w) = in_shape
                    .as_ref()
                    .and_then(|s| s.as_chw())
                    .expect("gap input is [C,H,W]");
                DcomFunc::GlobalAvgPool {
                    c: c as u32,
                    h: h as u32,
                    w: w as u32,
                }
            }
            OpKind::Attention { heads } => {
                let (t, d) = node
                    .out_shape()
                    .as_tokens()
                    .expect("attention output is [tokens, dim]");
                DcomFunc::Attention {
                    heads: *heads as u32,
                    tokens: t as u32,
                    dim: d as u32,
                }
            }
            OpKind::Flatten | OpKind::Reshape { .. } => {
                self.flow.push(MetaOp::Mov {
                    src: srcs[0],
                    dst,
                    len,
                });
                return;
            }
            OpKind::Concat { .. } => {
                let mut off = 0;
                for (&input, src) in node.inputs().iter().zip(&srcs) {
                    let n = self.graph.node(input).out_shape().elements();
                    self.flow.push(MetaOp::Mov {
                        src: *src,
                        dst: dst.at(off),
                        len: n,
                    });
                    off += n;
                }
                return;
            }
            other => unreachable!("unhandled digital op {other:?}"),
        };
        self.flow.push(MetaOp::Dcom {
            func,
            srcs,
            dst,
            len,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileOptions, Compiler};
    use cim_arch::presets;
    use cim_graph::{zoo, Shape};
    use cim_mop::FlowStats;

    fn small_conv_graph() -> Graph {
        let mut g = Graph::new("small");
        let x = g
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::chw(2, 6, 6),
                },
                [],
            )
            .unwrap();
        let c = g.add("conv", OpKind::conv2d(4, 3, 1, 1), [x]).unwrap();
        let _ = g.add("relu", OpKind::Relu, [c]).unwrap();
        g
    }

    #[test]
    fn xbm_flow_validates() {
        let g = small_conv_graph();
        let arch = presets::isaac_baseline();
        let c = Compiler::new().compile(&g, &arch).unwrap();
        let (flow, layout) = generate_flow(&c, &g, &arch).unwrap();
        flow.validate(&arch).expect("flow is architecturally valid");
        let stats = FlowStats::of(&flow);
        // 36 output positions -> 36 MVM read activations (single crossbar).
        assert_eq!(stats.read_xb, 36);
        assert!(stats.write_xb >= 1);
        assert!(stats.dcom >= 1); // relu (+ zero fills)
        assert!(layout.total_elements() >= (2 + 4 + 4) * 36);
    }

    #[test]
    fn wlm_flow_validates_and_respects_parallel_row() {
        let g = small_conv_graph();
        let arch = presets::table2_example(); // WLM, parallel_row 16
        let c = Compiler::new().compile(&g, &arch).unwrap();
        let (flow, _) = generate_flow(&c, &g, &arch).unwrap();
        flow.validate(&arch).expect("flow is architecturally valid");
        let stats = FlowStats::of(&flow);
        assert!(stats.read_row > 0);
        assert!(stats.write_row > 0);
        assert_eq!(stats.read_xb, 0);
    }

    #[test]
    fn cm_flow_uses_readcore() {
        let g = small_conv_graph();
        let arch = presets::jia_isscc21();
        let c = Compiler::new().compile(&g, &arch).unwrap();
        let (flow, _) = generate_flow(&c, &g, &arch).unwrap();
        flow.validate(&arch).expect("flow is architecturally valid");
        let stats = FlowStats::of(&flow);
        assert_eq!(stats.read_core, 1);
        assert_eq!(stats.read_xb + stats.read_row, 0);
    }

    #[test]
    fn lenet_flow_generates_for_every_mode() {
        let g = zoo::lenet5();
        for arch in [
            presets::jia_isscc21(),
            presets::isaac_baseline(),
            presets::isaac_baseline_wlm(),
        ] {
            let c = Compiler::new().compile(&g, &arch).unwrap();
            let (flow, _) = generate_flow(&c, &g, &arch).unwrap();
            flow.validate(&arch)
                .unwrap_or_else(|e| panic!("{}: {e}", arch.name()));
            assert!(flow.op_count() > 0);
        }
    }

    #[test]
    fn flow_budget_enforced() {
        let g = zoo::vgg16();
        let arch = presets::isaac_baseline();
        let opts = CompileOptions {
            max_flow_ops: 1000,
            ..CompileOptions::default()
        };
        let c = Compiler::with_options(opts).compile(&g, &arch).unwrap();
        let err = generate_flow(&c, &g, &arch).unwrap_err();
        assert!(matches!(err, CompileError::FlowTooLarge { .. }));
    }

    #[test]
    fn dynamic_matmul_rejected() {
        let mut g = Graph::new("dyn");
        let a = g
            .add(
                "a",
                OpKind::Input {
                    shape: Shape::tokens(4, 8),
                },
                [],
            )
            .unwrap();
        let b = g
            .add(
                "b",
                OpKind::Input {
                    shape: Shape::tokens(8, 4),
                },
                [],
            )
            .unwrap();
        let _ = g.add("mm", OpKind::MatMul, [a, b]).unwrap();
        let arch = presets::isaac_baseline();
        let c = Compiler::new().compile(&g, &arch).unwrap();
        assert!(matches!(
            generate_flow(&c, &g, &arch),
            Err(CompileError::Internal { .. })
        ));
    }
}
