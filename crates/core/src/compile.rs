//! The top-level compiler driver (paper Figure 3).

use crate::cg::{CgOptions, CgSchedule};
use crate::mvm::{MvmOptions, MvmSchedule};
use crate::perf::PerfReport;
use crate::pipeline::{Pipeline, Session};
use crate::vvm::VvmSchedule;
use crate::Result;
use cim_arch::CimArchitecture;
use cim_graph::Graph;

/// How far down the multi-level scheduler should go.
///
/// The default, [`OptLevel::Auto`], follows the paper's workflow
/// (Figure 3): the computing mode of the target decides which levels run —
/// CG for CM, CG+MVM for XBM, CG+MVM+VVM for WLM. The explicit levels
/// exist for the ablation studies of Figures 21 and 22.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// Decide from the target's computing mode.
    #[default]
    Auto,
    /// Stop after CG-grained optimization.
    Cg,
    /// Stop after MVM-grained optimization (requires XBM or WLM).
    CgMvm,
    /// Run all three levels (requires WLM).
    CgMvmVvm,
}

/// Compiler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileOptions {
    /// Weight precision in bits (the paper's evaluation uses 8).
    pub weight_bits: u32,
    /// Activation precision in bits (8 in the paper).
    pub act_bits: u32,
    /// CG-grained feature toggles.
    pub cg: CgOptions,
    /// MVM-grained feature toggles.
    pub mvm: MvmOptions,
    /// Scheduling depth.
    pub level: OptLevel,
    /// Upper bound on generated meta-operators when code generation is
    /// requested (guards against emitting multi-gigabyte flows for
    /// ImageNet-scale models).
    pub max_flow_ops: u64,
    /// Worker threads for intra-graph scheduling (the CG segmentation
    /// rows and per-segment MVM refinement fan out onto
    /// [`crate::pool::run_ordered`]). Purely an execution knob: schedules
    /// are byte-identical for every value, so it participates in neither
    /// pass fingerprints nor cache keys.
    pub jobs: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            weight_bits: 8,
            act_bits: 8,
            cg: CgOptions::full(),
            mvm: MvmOptions::full(),
            level: OptLevel::Auto,
            max_flow_ops: 20_000_000,
            jobs: 1,
        }
    }
}

/// The CIM-MLC compiler.
///
/// Stateless apart from its options; reuse one instance across models and
/// architectures.
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    options: CompileOptions,
}

impl Compiler {
    /// A compiler with default options (full optimization, 8-bit data).
    #[must_use]
    pub fn new() -> Self {
        Compiler::default()
    }

    /// A compiler with explicit options.
    #[must_use]
    pub fn with_options(options: CompileOptions) -> Self {
        Compiler { options }
    }

    /// The active options.
    #[must_use]
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Compiles `graph` for `arch`, running the scheduling levels the
    /// target's computing mode admits (or fewer, per
    /// [`CompileOptions::level`]).
    ///
    /// This is a thin wrapper over the staged pipeline: it runs
    /// [`Pipeline::plan`]'s pass list to completion in one call. Use
    /// [`Compiler::session`] to pause, inspect intermediate artifacts,
    /// or swap passes.
    ///
    /// # Errors
    /// Propagates scheduling errors (nothing to map, operator too large,
    /// unsupported dynamic weights).
    pub fn compile(&self, graph: &Graph, arch: &CimArchitecture) -> Result<Compiled> {
        self.session(graph, arch).finish()
    }

    /// Starts a staged compilation [`Session`] over [`Pipeline::plan`]'s
    /// pass list — the resumable, inspectable form of
    /// [`Compiler::compile`].
    #[must_use]
    pub fn session<'a>(&self, graph: &'a Graph, arch: &'a CimArchitecture) -> Session<'a> {
        Pipeline::plan(&self.options, arch).session(graph, arch, self.options)
    }
}

/// The result of compiling one model for one architecture: the per-level
/// schedules and their reports.
#[derive(Debug, Clone)]
pub struct Compiled {
    model: String,
    arch_name: String,
    options: CompileOptions,
    /// CG-grained schedule (always present).
    pub cg: CgSchedule,
    /// MVM-grained refinement (XBM/WLM targets).
    pub mvm: Option<MvmSchedule>,
    /// VVM-grained refinement (WLM targets).
    pub vvm: Option<VvmSchedule>,
}

impl Compiled {
    /// Assembles a compiled artifact from pipeline outputs (the pipeline
    /// is the only producer of `Compiled` values).
    pub(crate) fn from_parts(
        model: String,
        arch_name: String,
        options: CompileOptions,
        cg: CgSchedule,
        mvm: Option<MvmSchedule>,
        vvm: Option<VvmSchedule>,
    ) -> Self {
        Compiled {
            model,
            arch_name,
            options,
            cg,
            mvm,
            vvm,
        }
    }

    /// The compiled model's name.
    #[must_use]
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The target architecture's name.
    #[must_use]
    pub fn arch_name(&self) -> &str {
        &self.arch_name
    }

    /// The options used.
    #[must_use]
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// The report of the deepest scheduling level that ran.
    #[must_use]
    pub fn report(&self) -> &PerfReport {
        if let Some(v) = &self.vvm {
            &v.report
        } else if let Some(m) = &self.mvm {
            &m.report
        } else {
            &self.cg.report
        }
    }

    /// Reports of every level that ran, coarse to fine.
    #[must_use]
    pub fn reports(&self) -> Vec<&PerfReport> {
        let mut out = vec![&self.cg.report];
        if let Some(m) = &self.mvm {
            out.push(&m.report);
        }
        if let Some(v) = &self.vvm {
            out.push(&v.report);
        }
        out
    }

    /// The steady-state initiation interval for batch processing: with the
    /// inter-operator pipeline running, a new image can enter the chip
    /// every bottleneck-stage interval; without it (or across segments),
    /// images serialize. This is the quantity a batch pipeline
    /// (Poly-Schedule's strength) optimizes — single-image latency, which
    /// the paper reports, is [`PerfReport::latency_cycles`].
    #[must_use]
    pub fn steady_state_interval(&self) -> f64 {
        let segments: Vec<&crate::cg::Segment> = if let Some(v) = &self.vvm {
            v.segments.iter().collect()
        } else if let Some(m) = &self.mvm {
            m.segments.iter().collect()
        } else {
            self.cg.segments.iter().collect()
        };
        if !self.cg.options.pipeline || segments.len() > 1 {
            // Reprogramming between segments blocks overlap entirely.
            return self.report().latency_cycles;
        }
        segments
            .iter()
            .flat_map(|s| s.plans.iter())
            .map(|p| p.latency)
            .fold(0.0, f64::max)
    }

    /// Renders the final schedule as a text table: one row per stage with
    /// its segment, duplication, cores, folds and latency — the compiler's
    /// explain-plan.
    #[must_use]
    pub fn render_schedule(&self) -> String {
        let segments = if let Some(v) = &self.vvm {
            &v.segments
        } else if let Some(m) = &self.mvm {
            &m.segments
        } else {
            &self.cg.segments
        };
        format!(
            "schedule: {} on {}\n{}",
            self.model,
            self.arch_name,
            crate::pipeline::render_plan_table(&self.cg.stages, segments, self.report())
        )
    }

    /// The final per-stage plans (deepest level), flattened across
    /// segments in execution order.
    #[must_use]
    pub fn final_plans(&self) -> Vec<&crate::cg::StagePlan> {
        let segments = if let Some(v) = &self.vvm {
            &v.segments
        } else if let Some(m) = &self.mvm {
            &m.segments
        } else {
            &self.cg.segments
        };
        segments.iter().flat_map(|s| s.plans.iter()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::presets;
    use cim_graph::zoo;

    #[test]
    fn auto_level_follows_computing_mode() {
        let g = zoo::lenet5();
        let cm = Compiler::new()
            .compile(&g, &presets::jia_isscc21())
            .unwrap();
        assert!(cm.mvm.is_none() && cm.vvm.is_none());
        assert_eq!(cm.report().level, "cg");

        let xbm = Compiler::new()
            .compile(&g, &presets::isaac_baseline())
            .unwrap();
        assert!(xbm.mvm.is_some() && xbm.vvm.is_none());
        assert_eq!(xbm.report().level, "cg+mvm");

        let wlm = Compiler::new().compile(&g, &presets::jain_sram()).unwrap();
        assert!(wlm.mvm.is_some() && wlm.vvm.is_some());
        assert_eq!(wlm.report().level, "cg+mvm+vvm");
    }

    #[test]
    fn explicit_level_caps_depth() {
        let g = zoo::lenet5();
        let opts = CompileOptions {
            level: OptLevel::Cg,
            ..CompileOptions::default()
        };
        let c = Compiler::with_options(opts)
            .compile(&g, &presets::jain_sram())
            .unwrap();
        assert!(c.mvm.is_none());
    }

    #[test]
    fn explicit_level_never_exceeds_mode() {
        // Requesting VVM on a CM machine silently degrades to CG: the
        // hardware interface simply does not exist.
        let g = zoo::lenet5();
        let opts = CompileOptions {
            level: OptLevel::CgMvmVvm,
            ..CompileOptions::default()
        };
        let c = Compiler::with_options(opts)
            .compile(&g, &presets::jia_isscc21())
            .unwrap();
        assert!(c.mvm.is_none() && c.vvm.is_none());
    }

    #[test]
    fn deeper_levels_never_slower() {
        let g = zoo::vgg7();
        let c = Compiler::new()
            .compile(&g, &presets::isaac_baseline_wlm())
            .unwrap();
        let reports = c.reports();
        for w in reports.windows(2) {
            assert!(
                w[1].latency_cycles <= w[0].latency_cycles * 1.0001,
                "{} ({}) slower than {} ({})",
                w[1].level,
                w[1].latency_cycles,
                w[0].level,
                w[0].latency_cycles
            );
        }
    }

    #[test]
    fn steady_state_interval_bounded_by_latency() {
        for arch in [presets::isaac_baseline(), presets::jia_isscc21()] {
            for g in [zoo::lenet5(), zoo::vgg7()] {
                let c = Compiler::new().compile(&g, &arch).unwrap();
                let interval = c.steady_state_interval();
                assert!(interval > 0.0);
                assert!(
                    interval <= c.report().latency_cycles * 1.0001,
                    "{} on {}: interval {} > latency {}",
                    g.name(),
                    arch.name(),
                    interval,
                    c.report().latency_cycles
                );
            }
        }
    }

    #[test]
    fn energy_is_invariant_across_levels() {
        // Scheduling rearranges when activations happen, not how many —
        // every level reports the same inference energy.
        let g = zoo::vgg7();
        let c = Compiler::new()
            .compile(&g, &presets::isaac_baseline_wlm())
            .unwrap();
        let energies: Vec<f64> = c.reports().iter().map(|r| r.energy.total()).collect();
        for e in &energies {
            assert!(*e > 0.0);
            assert!((e - energies[0]).abs() < 1e-6 * energies[0]);
        }
        // Crossbar activation dominates inference energy on CIM designs.
        let b = &c.report().energy;
        assert!(b.crossbar > b.movement + b.alu, "{b:?}");
    }

    #[test]
    fn render_schedule_lists_every_stage() {
        let g = zoo::lenet5();
        let c = Compiler::new()
            .compile(&g, &presets::isaac_baseline())
            .unwrap();
        let text = c.render_schedule();
        for stage in &c.cg.stages {
            assert!(text.contains(&stage.name), "missing {}", stage.name);
        }
        assert!(text.contains("total:"));
        assert!(text.contains("cg+mvm"));
    }

    #[test]
    fn final_plans_cover_all_stages() {
        let g = zoo::vgg7();
        let c = Compiler::new()
            .compile(&g, &presets::isaac_baseline())
            .unwrap();
        assert_eq!(c.final_plans().len(), c.cg.stages.len());
        assert_eq!(c.model(), "vgg7");
        assert!(c.arch_name().contains("ISAAC"));
    }
}
