//! Compiler error type.

use std::error::Error;
use std::fmt;

/// Error produced during compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The graph has no CIM-supported operators, so there is nothing to map.
    NothingToMap {
        /// Model name.
        model: String,
    },
    /// A single operator replica does not fit on the whole chip even once
    /// (its weight matrix needs more crossbars than exist).
    OperatorTooLarge {
        /// Offending node name.
        node: String,
        /// Crossbars required by one replica.
        required: u64,
        /// Crossbars available on the chip.
        available: u64,
    },
    /// The target device forbids in-inference weight writes but the graph
    /// requires them (dynamic `MatMul` on ReRAM/Flash without rewrites).
    DynamicWeightsUnsupported {
        /// Offending node name.
        node: String,
        /// Device name.
        device: &'static str,
    },
    /// Code generation would exceed the configured flow-size budget.
    FlowTooLarge {
        /// Estimated meta-operator count.
        estimated: u64,
        /// Configured limit.
        limit: u64,
    },
    /// A [`GraphDelta`](cim_graph::GraphDelta) handed to
    /// [`Session::recompile`](crate::Session::recompile) failed
    /// validation against the session's current graph.
    InvalidDelta {
        /// The underlying [`DeltaError`](cim_graph::DeltaError) message,
        /// naming the offending node or edge.
        message: String,
    },
    /// Internal invariant violation (a bug in the scheduler).
    Internal {
        /// Description.
        message: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NothingToMap { model } => {
                write!(f, "model `{model}` contains no CIM-supported operators")
            }
            CompileError::OperatorTooLarge {
                node,
                required,
                available,
            } => write!(
                f,
                "operator `{node}` needs {required} crossbars but the chip has only {available}"
            ),
            CompileError::DynamicWeightsUnsupported { node, device } => write!(
                f,
                "operator `{node}` needs per-inference weight writes, unsupported on {device}"
            ),
            CompileError::FlowTooLarge { estimated, limit } => write!(
                f,
                "generated flow would hold ~{estimated} meta-operators (limit {limit}); raise \
                 CompileOptions::max_flow_ops or compile a smaller model"
            ),
            CompileError::InvalidDelta { message } => {
                write!(f, "invalid graph delta: {message}")
            }
            CompileError::Internal { message } => write!(f, "internal scheduler error: {message}"),
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let e = CompileError::OperatorTooLarge {
            node: "fc1".into(),
            required: 100,
            available: 4,
        };
        let s = e.to_string();
        assert!(s.contains("fc1") && s.contains("100") && s.contains('4'));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompileError>();
    }
}
