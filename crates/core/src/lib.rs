//! # cim-compiler — the CIM-MLC multi-level scheduler
//!
//! This crate is the primary contribution of the reproduced paper
//! (ASPLOS'24, §3.3): a compiler that lowers a DNN computation graph onto a
//! CIM accelerator described by the [`cim_arch`] abstraction, optimizing at
//! up to three granularities according to the accelerator's computing mode:
//!
//! 1. **CG-grained** ([`cg`]) — always runs. Resource-adaptive compute-graph
//!    segmentation, dynamic operator *duplication* under the
//!    `core_number` / bandwidth / ALU constraints, and an inter-operator
//!    *pipeline* (§3.3.2, Figure 9).
//! 2. **MVM-grained** ([`mvm`]) — for XBM/WLM targets. Unrolls CIM operators
//!    into matrix-vector multiplies on *virtual crossbars* (VXBs, Figure 7),
//!    refines duplication with the paper's Equation 1 using idle crossbars,
//!    and staggers crossbar activations to cut peak power (§3.3.3,
//!    Figure 12).
//! 3. **VVM-grained** ([`vvm`]) — for WLM targets. Remaps wordlines that
//!    accumulate into the same output across different crossbars so a full
//!    MVM completes in fewer `parallel_row` activations (§3.3.4,
//!    Figure 14).
//!
//! The flow is organized as a staged **pass pipeline** ([`pipeline`]):
//! each level is a [`Pass`] over typed [`Artifact`]s
//! (`Staged → CgScheduled → MvmScheduled → VvmScheduled → Codegenned`),
//! assembled by [`Pipeline::plan`] and executed by a [`Session`] that can
//! pause between passes, expose the intermediate artifact, and collect a
//! per-pass [`PassTimeline`]. A content-addressed compile cache
//! ([`cache`]) memoizes pass artifacts across sessions, sweep jobs and
//! processes. [`Compiler::compile`] is a thin wrapper
//! that runs the planned pipeline to completion and returns the
//! [`Compiled`] artifact holding the mapping, the per-level schedules
//! with their latency/peak-power reports, and (on demand) an executable
//! meta-operator flow ([`codegen`]).
//!
//! ```
//! use cim_arch::presets;
//! use cim_compiler::Compiler;
//! use cim_graph::zoo;
//!
//! # fn main() -> Result<(), cim_compiler::CompileError> {
//! let arch = presets::isaac_baseline();
//! let graph = zoo::lenet5();
//! // One-shot…
//! let compiled = Compiler::new().compile(&graph, &arch)?;
//! assert!(compiled.report().latency_cycles > 0.0);
//! // …or staged, pausing after every pass.
//! let mut session = Compiler::new().session(&graph, &arch);
//! while session.step()? {
//!     println!("ran `{}`", session.timeline().records.last().unwrap().pass);
//! }
//! assert_eq!(session.finish()?.report(), compiled.report());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod cache;
pub mod cg;
pub mod codegen;
mod compile;
mod error;
pub mod mapping;
mod metrics;
pub mod mvm;
pub mod pass;
pub mod perf;
pub mod pipeline;
pub mod pool;
pub mod region;
pub mod scratch;
pub mod stage;
pub mod vvm;

pub use cache::{
    write_atomic, CacheStats, CompileCache, DiskCache, Fingerprint, FingerprintBuilder,
    MemoryCache, TieredCache,
};
pub use compile::{CompileOptions, Compiled, Compiler, OptLevel};
pub use error::CompileError;
pub use metrics::CompileMetrics;
pub use pass::{Diagnostics, Pass, PassContext, PassRecord, PassTimeline};
pub use perf::PerfReport;
pub use pipeline::{
    Artifact, CgPass, CodegenPass, ExtractStagesPass, MvmPass, Pipeline, Session, StageKind,
    VvmPass,
};
pub use pool::{run_ordered, Pool, PoolFull};
pub use region::RegionMemo;
pub use scratch::{ScratchArena, ScratchVec};

/// Convenient result alias for fallible compilation operations.
pub type Result<T> = std::result::Result<T, CompileError>;

// The parallel sweep driver (`cim-bench`) shares compilers, schedules and
// reports across worker threads. Everything here is plain owned data — no
// interior mutability — so thread-safety is a compile-time invariant we
// pin down rather than an accident of the current field set.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Compiler>();
    assert_send_sync::<CompileOptions>();
    assert_send_sync::<Compiled>();
    assert_send_sync::<CompileMetrics>();
    assert_send_sync::<PerfReport>();
    assert_send_sync::<CompileError>();
    assert_send_sync::<cg::CgSchedule>();
    assert_send_sync::<mvm::MvmSchedule>();
    assert_send_sync::<vvm::VvmSchedule>();
    // The pipeline types too: `Pass: Send + Sync` is a supertrait bound,
    // so sessions and pipelines can move across sweep worker threads.
    assert_send_sync::<Artifact>();
    assert_send_sync::<Pipeline>();
    assert_send_sync::<Session<'static>>();
    assert_send_sync::<PassTimeline>();
    // The compile caches are shared across sweep worker threads by
    // design (`CompileCache: Send + Sync` is a supertrait bound).
    assert_send_sync::<MemoryCache>();
    assert_send_sync::<DiskCache>();
    assert_send_sync::<std::sync::Arc<dyn CompileCache>>();
    assert_send_sync::<CacheStats>();
    // The scratch arena is leased from concurrently by `pool::run_ordered`
    // workers inside a pass.
    assert_send_sync::<ScratchArena>();
    // The per-region memo is shared by a pass's worker threads, and
    // pinned sessions holding one move across `cimc serve` handlers.
    assert_send_sync::<RegionMemo>();
};
