//! Virtual-crossbar construction and dimension binding (paper §3.3.3,
//! Figure 7).
//!
//! A CIM operator's weight matrix (R rows × C columns at `weight_bits`
//! precision) is bound to physical crossbars as:
//!
//! * matrix rows **R → XBR** (crossbar rows) — `ceil(R / xb_rows)`
//!   *vertical* crossbars whose partial sums accumulate;
//! * matrix columns **C → XBC** (crossbar columns);
//! * weight bits **B → XBC** — each weight occupies
//!   `ceil(weight_bits / cell_bits)` adjacent columns (bit slicing), so the
//!   horizontal extent is `C · ceil(wb/cb)` cells across
//!   `ceil(C·ceil(wb/cb) / xb_cols)` *horizontal* crossbars.
//!
//! One **VXB** (virtual crossbar) is the `v × h` group of physical
//! crossbars jointly performing one MVM.

use cim_arch::CimArchitecture;
use cim_graph::{Graph, NodeId};

/// The Figure 7 dimension-binding choice for the weight-bit dimension
/// (`B`). Matrix rows always bind to crossbar rows (`R → XBR`) and matrix
/// columns to crossbar columns (`C → XBC`); the bits of each weight can
/// go either way:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DimBinding {
    /// `B → XBC`: "the data bits are spread to the adjacent column in the
    /// crossbar" — each weight occupies `ceil(wb/cb)` adjacent columns.
    /// The paper's (and this compiler's) default.
    #[default]
    BitsToColumns,
    /// `B → XB`: "the data bits will be spread to the different
    /// crossbars" — one bit-plane crossbar per `cb`-bit slice, merged by
    /// shift-accumulate. Trades wider output parallelism per crossbar for
    /// `ceil(wb/cb)` times more crossbars.
    BitsToCrossbars,
}

/// How one CIM operator maps onto crossbars (one replica).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMapping {
    /// The mapped graph node.
    pub node: NodeId,
    /// Weight-matrix rows (reduction extent).
    pub rows: u32,
    /// Weight-matrix columns (output extent).
    pub cols: u32,
    /// Cell columns per weight within one crossbar (bit-slicing factor;
    /// 1 under [`DimBinding::BitsToCrossbars`]).
    pub cols_per_weight: u32,
    /// Bit-plane crossbars per tile (1 under
    /// [`DimBinding::BitsToColumns`]).
    pub bit_planes: u32,
    /// Vertical physical crossbars per VXB (`ceil(rows / xb_rows)`).
    pub v_xbs: u32,
    /// Horizontal physical crossbars per VXB
    /// (`ceil(cols·cols_per_weight / xb_cols)`).
    pub h_xbs: u32,
    /// Number of MVMs the operator unrolls into.
    pub mvm_count: u64,
    /// Rows actually used in the *last* vertical crossbar
    /// (`rows − (v_xbs−1)·xb_rows`).
    pub last_rows: u32,
    /// Logical columns used in the last horizontal crossbar.
    pub last_cols: u32,
}

impl OpMapping {
    /// Computes the mapping of graph node `node` onto `arch`'s crossbars
    /// with `weight_bits`-bit weights, using the default `B → XBC`
    /// binding.
    ///
    /// Returns `None` for non-CIM nodes.
    #[must_use]
    pub fn of(
        graph: &Graph,
        node: NodeId,
        arch: &CimArchitecture,
        weight_bits: u32,
    ) -> Option<Self> {
        Self::with_binding(graph, node, arch, weight_bits, DimBinding::BitsToColumns)
    }

    /// Computes the mapping under an explicit dimension binding.
    ///
    /// Returns `None` for non-CIM nodes.
    #[must_use]
    pub fn with_binding(
        graph: &Graph,
        node: NodeId,
        arch: &CimArchitecture,
        weight_bits: u32,
        binding: DimBinding,
    ) -> Option<Self> {
        let (rows, cols) = graph.weight_matrix(node)?;
        let rows = u32::try_from(rows).expect("weight rows fit u32");
        let cols = u32::try_from(cols).expect("weight cols fit u32");
        let xb = arch.crossbar();
        let (cols_per_weight, bit_planes) = match binding {
            DimBinding::BitsToColumns => (xb.columns_per_weight(weight_bits), 1),
            DimBinding::BitsToCrossbars => (1, xb.columns_per_weight(weight_bits)),
        };
        let shape = xb.shape();
        let v_xbs = rows.div_ceil(shape.rows);
        // Whole weights are packed per crossbar: a crossbar holds
        // floor(xb_cols / cols_per_weight) logical columns.
        let logical_cols_per_xb = (shape.cols / cols_per_weight).max(1);
        let h_xbs = cols.div_ceil(logical_cols_per_xb);
        let last_rows = rows - (v_xbs - 1) * shape.rows;
        let last_cols = cols - (h_xbs - 1) * logical_cols_per_xb;
        Some(OpMapping {
            node,
            rows,
            cols,
            cols_per_weight,
            bit_planes,
            v_xbs,
            h_xbs,
            mvm_count: graph.mvm_count(node),
            last_rows,
            last_cols,
        })
    }

    /// Physical crossbars in one VXB (one replica of the operator).
    #[must_use]
    pub fn vxb_size(&self) -> u32 {
        self.v_xbs * self.h_xbs * self.bit_planes
    }

    /// Logical (weight) columns held by one crossbar:
    /// `floor(xb_cols / cols_per_weight)`, at least 1.
    #[must_use]
    pub fn logical_cols_per_xb(&self, arch: &CimArchitecture) -> u32 {
        (arch.crossbar().shape().cols / self.cols_per_weight).max(1)
    }

    /// Cores one replica occupies on `arch` (`ceil(vxb / xb_number)`).
    #[must_use]
    pub fn cores_per_replica(&self, arch: &CimArchitecture) -> u32 {
        self.vxb_size().div_ceil(arch.core().xb_count())
    }

    /// Idle crossbars in the last, partially-filled core of one replica.
    #[must_use]
    pub fn idle_xbs_per_replica(&self, arch: &CimArchitecture) -> u32 {
        let per_core = arch.core().xb_count();
        let used = self.vxb_size();
        self.cores_per_replica(arch) * per_core - used
    }

    /// Row-group activations needed per crossbar activation wave: the
    /// deepest vertical crossbar dominates
    /// (`ceil(min(rows, xb_rows) / parallel_row)`).
    #[must_use]
    pub fn activation_groups(&self, arch: &CimArchitecture) -> u32 {
        let xb = arch.crossbar();
        xb.activations_for_rows(self.rows.min(xb.shape().rows))
    }

    /// Cycles for one MVM at CG/MVM granularity: bit-serial input slices ×
    /// row-group activations. Vertical crossbars run concurrently when the
    /// core has an analog shift-and-accumulate tree; macro-style cores
    /// without one serialize the vertical partial-sum readouts (the
    /// serialization that VVM-grained remapping later removes, §4.2
    /// Work 3).
    #[must_use]
    pub fn cycles_per_mvm(&self, arch: &CimArchitecture, act_bits: u32) -> u64 {
        let xb = arch.crossbar();
        let base = u64::from(xb.input_slices(act_bits)) * u64::from(self.activation_groups(arch));
        if arch.core().analog_partial_sum() {
            base
        } else {
            base * u64::from(self.v_xbs)
        }
    }

    /// Total compute cycles of the whole operator with `dup` parallel
    /// replicas (no pipeline overlap).
    #[must_use]
    pub fn compute_cycles(&self, arch: &CimArchitecture, act_bits: u32, dup: u32) -> f64 {
        debug_assert!(dup >= 1);
        self.mvm_count as f64 * self.cycles_per_mvm(arch, act_bits) as f64 / f64::from(dup)
    }
}

/// Computes the mapping of every CIM node of `graph`, in topological order.
#[must_use]
pub fn map_graph(graph: &Graph, arch: &CimArchitecture, weight_bits: u32) -> Vec<OpMapping> {
    graph
        .cim_nodes()
        .into_iter()
        .filter_map(|id| OpMapping::of(graph, id, arch, weight_bits))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::presets;
    use cim_graph::{Graph, OpKind, Shape};

    fn conv_graph() -> (Graph, NodeId) {
        let mut g = Graph::new("t");
        let x = g
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::chw(3, 32, 32),
                },
                [],
            )
            .unwrap();
        let c = g.add("conv", OpKind::conv2d(32, 3, 1, 1), [x]).unwrap();
        (g, c)
    }

    #[test]
    fn figure16_conv_on_table2_arch() {
        // Table 2: 32x128 crossbars, 2-bit cells; conv weights 27x32 at 8
        // bits -> 4 columns per weight -> 128 cell columns = exactly one
        // crossbar wide; 27 rows fit in 32 -> v = 1.
        let (g, c) = conv_graph();
        let arch = presets::table2_example();
        let m = OpMapping::of(&g, c, &arch, 8).unwrap();
        assert_eq!((m.rows, m.cols), (27, 32));
        assert_eq!(m.cols_per_weight, 4);
        assert_eq!(m.v_xbs, 1);
        assert_eq!(m.h_xbs, 1);
        assert_eq!(m.vxb_size(), 1);
        assert_eq!(m.mvm_count, 1024);
        // One VXB = one crossbar -> a core with 2 xbs holds 2 replicas.
        assert_eq!(m.cores_per_replica(&arch), 1);
        assert_eq!(m.idle_xbs_per_replica(&arch), 1);
        // parallel_row 16 of 27 used rows -> 2 activation groups; 8-bit
        // input through 1-bit DAC -> 8 slices -> 16 cycles per MVM.
        assert_eq!(m.activation_groups(&arch), 2);
        assert_eq!(m.cycles_per_mvm(&arch, 8), 16);
    }

    #[test]
    fn large_matrix_spans_crossbars() {
        // VGG16 fc1: 25088 x 4096 at 8 bits on 128x128, 2-bit cells.
        let mut g = Graph::new("fc");
        let x = g
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::vec(25088),
                },
                [],
            )
            .unwrap();
        let l = g.add("fc1", OpKind::linear(4096), [x]).unwrap();
        let arch = presets::isaac_baseline();
        let m = OpMapping::of(&g, l, &arch, 8).unwrap();
        assert_eq!(m.v_xbs, 196); // 25088 / 128
        assert_eq!(m.h_xbs, 128); // 4096*4 / 128
        assert_eq!(m.vxb_size(), 196 * 128);
        // 16 xbs per core -> 1568 cores per replica.
        assert_eq!(m.cores_per_replica(&arch), 1568);
    }

    #[test]
    fn non_cim_nodes_have_no_mapping() {
        let (mut g, c) = conv_graph();
        let arch = presets::isaac_baseline();
        let r = g.add("r", OpKind::Relu, [c]).unwrap();
        assert!(OpMapping::of(&g, c, &arch, 8).is_some());
        assert!(OpMapping::of(&g, r, &arch, 8).is_none());
    }

    #[test]
    fn map_graph_covers_all_cim_nodes() {
        let g = cim_graph::zoo::vgg7();
        let arch = presets::isaac_baseline();
        let maps = map_graph(&g, &arch, 8);
        assert_eq!(maps.len(), g.cim_nodes().len());
        for m in &maps {
            assert!(m.vxb_size() >= 1);
            assert!(m.mvm_count >= 1);
        }
    }

    #[test]
    fn one_bit_cells_expand_columns() {
        let (g, c) = conv_graph();
        let arch = presets::jain_sram(); // 256x64 crossbars, 1-bit cells
        let m = OpMapping::of(&g, c, &arch, 8).unwrap();
        assert_eq!(m.cols_per_weight, 8);
        // 32 weights * 8 bits = 256 cell columns over 64-wide xbs -> 4.
        assert_eq!(m.h_xbs, 4);
        assert_eq!(m.v_xbs, 1);
        // parallel_row 32 over 27 used rows -> 1 activation group.
        assert_eq!(m.activation_groups(&arch), 1);
    }

    #[test]
    fn bits_to_crossbars_binding_trades_planes_for_columns() {
        // Figure 7's alternative B -> XB binding: 8-bit weights on 2-bit
        // cells become 4 bit-plane crossbars, each holding whole columns.
        let (g, c) = conv_graph();
        let arch = presets::isaac_baseline();
        let cols_binding =
            OpMapping::with_binding(&g, c, &arch, 8, DimBinding::BitsToColumns).unwrap();
        let plane_binding =
            OpMapping::with_binding(&g, c, &arch, 8, DimBinding::BitsToCrossbars).unwrap();
        assert_eq!(plane_binding.cols_per_weight, 1);
        assert_eq!(plane_binding.bit_planes, 4);
        // conv 27x32 on 128x128: B->XBC needs 1 crossbar (32*4=128 cols);
        // B->XB needs 4 bit planes of 1 crossbar each.
        assert_eq!(cols_binding.vxb_size(), 1);
        assert_eq!(plane_binding.vxb_size(), 4);
        // Both store the same number of weight cells overall.
        let cells = |m: &OpMapping| {
            u64::from(m.rows)
                * u64::from(m.cols)
                * u64::from(m.cols_per_weight)
                * u64::from(m.bit_planes)
        };
        assert_eq!(cells(&cols_binding), cells(&plane_binding));
    }

    #[test]
    fn default_binding_is_bits_to_columns() {
        let (g, c) = conv_graph();
        let arch = presets::isaac_baseline();
        assert_eq!(
            OpMapping::of(&g, c, &arch, 8),
            OpMapping::with_binding(&g, c, &arch, 8, DimBinding::default())
        );
    }

    #[test]
    fn compute_cycles_scale_inverse_with_duplication() {
        let (g, c) = conv_graph();
        let arch = presets::isaac_baseline();
        let m = OpMapping::of(&g, c, &arch, 8).unwrap();
        let t1 = m.compute_cycles(&arch, 8, 1);
        let t4 = m.compute_cycles(&arch, 8, 4);
        assert!((t1 / 4.0 - t4).abs() < 1e-9);
    }
}
