//! Cheap per-compilation summary metrics for sweep drivers.
//!
//! [`CompileMetrics`] condenses a [`Compiled`] artifact into the flat,
//! deterministic numbers a batch run wants to record per (model,
//! architecture) job — the deepest level's performance report plus
//! macro-operation and resource-usage counts — without re-running any
//! scheduling or generating a meta-operator flow.

use crate::compile::Compiled;
use cim_arch::{CimArchitecture, EnergyBreakdown};

/// Flat summary of one compilation, derived from the deepest scheduling
/// level that ran. Every field is a pure function of the schedule, so two
/// compilations of the same (model, architecture, options) triple yield
/// identical metrics regardless of host or thread interleaving.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileMetrics {
    /// Deepest scheduling level that ran (`"cg"`, `"cg+mvm"`,
    /// `"cg+mvm+vvm"`).
    pub level: &'static str,
    /// End-to-end single-image inference latency in cycles.
    pub latency_cycles: f64,
    /// Steady-state initiation interval for batch processing.
    pub steady_state_interval: f64,
    /// Peak instantaneous power (energy units per cycle).
    pub peak_power: f64,
    /// Maximum number of crossbars simultaneously active.
    pub peak_active_crossbars: u64,
    /// Total energy of one inference, by component.
    pub energy: EnergyBreakdown,
    /// Number of compute-graph segments.
    pub segments: usize,
    /// Cycles spent reprogramming crossbars between segments/folds.
    pub reprogram_cycles: f64,
    /// Number of pipeline stages (CIM operators) scheduled.
    pub stages: usize,
    /// MVM macro-operations the schedule issues per inference, summed
    /// over all stages.
    pub mvm_ops: u64,
    /// Crossbar allocations summed over the final plans (replica count ×
    /// VXB size per stage). Exceeds the chip's crossbar count when the
    /// model runs in multiple reprogrammed segments.
    pub crossbars_allocated: u64,
    /// Peak fraction of the chip's crossbars simultaneously active
    /// (`peak_active_crossbars / total_crossbars`).
    pub utilization: f64,
}

impl Compiled {
    /// Summarizes this compilation against the architecture it was
    /// compiled for. `arch` only supplies chip totals (for utilization);
    /// passing a different architecture than the one given to
    /// [`crate::Compiler::compile`] yields meaningless ratios.
    #[must_use]
    pub fn metrics(&self, arch: &CimArchitecture) -> CompileMetrics {
        let report = self.report();
        let plans = self.final_plans();
        let mvm_ops = plans
            .iter()
            .map(|p| self.cg.stages[p.stage].mapping.mvm_count)
            .sum();
        let crossbars_allocated = plans
            .iter()
            .map(|p| {
                u64::from(self.cg.stages[p.stage].mapping.vxb_size()) * u64::from(p.duplication)
            })
            .sum();
        let total_crossbars = arch.total_crossbars();
        let utilization = if total_crossbars == 0 {
            0.0
        } else {
            report.peak_active_crossbars as f64 / total_crossbars as f64
        };
        CompileMetrics {
            level: report.level,
            latency_cycles: report.latency_cycles,
            steady_state_interval: self.steady_state_interval(),
            peak_power: report.peak_power,
            peak_active_crossbars: report.peak_active_crossbars,
            energy: report.energy,
            segments: report.segments,
            reprogram_cycles: report.reprogram_cycles,
            stages: self.cg.stages.len(),
            mvm_ops,
            crossbars_allocated,
            utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Compiler;
    use cim_arch::presets;
    use cim_graph::zoo;

    #[test]
    fn metrics_match_the_deepest_report() {
        let arch = presets::isaac_baseline();
        let c = Compiler::new().compile(&zoo::vgg7(), &arch).unwrap();
        let m = c.metrics(&arch);
        let r = c.report();
        assert_eq!(m.level, r.level);
        assert_eq!(m.latency_cycles, r.latency_cycles);
        assert_eq!(m.peak_active_crossbars, r.peak_active_crossbars);
        assert_eq!(m.segments, r.segments);
        assert_eq!(m.stages, c.cg.stages.len());
        assert!(m.mvm_ops > 0);
        assert!(m.crossbars_allocated > 0);
        assert!(m.utilization > 0.0 && m.utilization <= 1.0);
        assert_eq!(m.steady_state_interval, c.steady_state_interval());
    }

    #[test]
    fn metrics_are_deterministic() {
        let arch = presets::jain_sram();
        let g = zoo::lenet5();
        let a = Compiler::new().compile(&g, &arch).unwrap().metrics(&arch);
        let b = Compiler::new().compile(&g, &arch).unwrap().metrics(&arch);
        assert_eq!(a, b);
    }
}
