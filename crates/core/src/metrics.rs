//! Cheap per-compilation summary metrics for sweep drivers.
//!
//! [`CompileMetrics`] condenses a [`Compiled`] artifact into the flat,
//! deterministic numbers a batch run wants to record per (model,
//! architecture) job — the deepest level's performance report plus
//! macro-operation and resource-usage counts — without re-running any
//! scheduling or generating a meta-operator flow.

use crate::compile::Compiled;
use crate::perf::{deserialize_level, require};
use cim_arch::{CimArchitecture, EnergyBreakdown};
use serde::{DeError, Deserialize, Serialize, Value};

/// Flat summary of one compilation, derived from the deepest scheduling
/// level that ran. Every field is a pure function of the schedule, so two
/// compilations of the same (model, architecture, options) triple yield
/// identical metrics regardless of host or thread interleaving.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileMetrics {
    /// Deepest scheduling level that ran (`"cg"`, `"cg+mvm"`,
    /// `"cg+mvm+vvm"`).
    pub level: &'static str,
    /// End-to-end single-image inference latency in cycles.
    pub latency_cycles: f64,
    /// Steady-state initiation interval for batch processing.
    pub steady_state_interval: f64,
    /// Peak instantaneous power (energy units per cycle).
    pub peak_power: f64,
    /// Maximum number of crossbars simultaneously active.
    pub peak_active_crossbars: u64,
    /// Total energy of one inference, by component.
    pub energy: EnergyBreakdown,
    /// Number of compute-graph segments.
    pub segments: usize,
    /// Cycles spent reprogramming crossbars between segments/folds.
    pub reprogram_cycles: f64,
    /// Number of pipeline stages (CIM operators) scheduled.
    pub stages: usize,
    /// MVM macro-operations the schedule issues per inference, summed
    /// over all stages.
    pub mvm_ops: u64,
    /// Crossbar allocations summed over the final plans (replica count ×
    /// VXB size per stage). Exceeds the chip's crossbar count when the
    /// model runs in multiple reprogrammed segments.
    pub crossbars_allocated: u64,
    /// Peak fraction of the chip's crossbars simultaneously active
    /// (`peak_active_crossbars / total_crossbars`).
    pub utilization: f64,
}

// Manual impls rather than derives: `level` is interned `&'static str`
// (see `crate::perf::LEVEL_NAMES`).
impl Serialize for CompileMetrics {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("level".to_owned(), Value::Str(self.level.to_owned())),
            ("latency_cycles".to_owned(), self.latency_cycles.to_value()),
            (
                "steady_state_interval".to_owned(),
                self.steady_state_interval.to_value(),
            ),
            ("peak_power".to_owned(), self.peak_power.to_value()),
            (
                "peak_active_crossbars".to_owned(),
                self.peak_active_crossbars.to_value(),
            ),
            ("energy".to_owned(), self.energy.to_value()),
            ("segments".to_owned(), self.segments.to_value()),
            (
                "reprogram_cycles".to_owned(),
                self.reprogram_cycles.to_value(),
            ),
            ("stages".to_owned(), self.stages.to_value()),
            ("mvm_ops".to_owned(), self.mvm_ops.to_value()),
            (
                "crossbars_allocated".to_owned(),
                self.crossbars_allocated.to_value(),
            ),
            ("utilization".to_owned(), self.utilization.to_value()),
        ])
    }
}

impl Deserialize for CompileMetrics {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        const OWNER: &str = "CompileMetrics";
        let m = v
            .as_map()
            .ok_or_else(|| DeError::custom("expected object for struct CompileMetrics"))?;
        Ok(CompileMetrics {
            level: deserialize_level(require(m, "level", OWNER)?)?,
            latency_cycles: f64::from_value(require(m, "latency_cycles", OWNER)?)?,
            steady_state_interval: f64::from_value(require(m, "steady_state_interval", OWNER)?)?,
            peak_power: f64::from_value(require(m, "peak_power", OWNER)?)?,
            peak_active_crossbars: u64::from_value(require(m, "peak_active_crossbars", OWNER)?)?,
            energy: EnergyBreakdown::from_value(require(m, "energy", OWNER)?)?,
            segments: usize::from_value(require(m, "segments", OWNER)?)?,
            reprogram_cycles: f64::from_value(require(m, "reprogram_cycles", OWNER)?)?,
            stages: usize::from_value(require(m, "stages", OWNER)?)?,
            mvm_ops: u64::from_value(require(m, "mvm_ops", OWNER)?)?,
            crossbars_allocated: u64::from_value(require(m, "crossbars_allocated", OWNER)?)?,
            utilization: f64::from_value(require(m, "utilization", OWNER)?)?,
        })
    }
}

impl Compiled {
    /// Summarizes this compilation against the architecture it was
    /// compiled for. `arch` only supplies chip totals (for utilization);
    /// passing a different architecture than the one given to
    /// [`crate::Compiler::compile`] yields meaningless ratios.
    #[must_use]
    pub fn metrics(&self, arch: &CimArchitecture) -> CompileMetrics {
        let report = self.report();
        let plans = self.final_plans();
        let mvm_ops = plans
            .iter()
            .map(|p| self.cg.stages[p.stage].mapping.mvm_count)
            .sum();
        let crossbars_allocated = plans
            .iter()
            .map(|p| {
                u64::from(self.cg.stages[p.stage].mapping.vxb_size()) * u64::from(p.duplication)
            })
            .sum();
        let total_crossbars = arch.total_crossbars();
        let utilization = if total_crossbars == 0 {
            0.0
        } else {
            report.peak_active_crossbars as f64 / total_crossbars as f64
        };
        CompileMetrics {
            level: report.level,
            latency_cycles: report.latency_cycles,
            steady_state_interval: self.steady_state_interval(),
            peak_power: report.peak_power,
            peak_active_crossbars: report.peak_active_crossbars,
            energy: report.energy,
            segments: report.segments,
            reprogram_cycles: report.reprogram_cycles,
            stages: self.cg.stages.len(),
            mvm_ops,
            crossbars_allocated,
            utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Compiler;
    use cim_arch::presets;
    use cim_graph::zoo;

    #[test]
    fn metrics_match_the_deepest_report() {
        let arch = presets::isaac_baseline();
        let c = Compiler::new().compile(&zoo::vgg7(), &arch).unwrap();
        let m = c.metrics(&arch);
        let r = c.report();
        assert_eq!(m.level, r.level);
        assert_eq!(m.latency_cycles, r.latency_cycles);
        assert_eq!(m.peak_active_crossbars, r.peak_active_crossbars);
        assert_eq!(m.segments, r.segments);
        assert_eq!(m.stages, c.cg.stages.len());
        assert!(m.mvm_ops > 0);
        assert!(m.crossbars_allocated > 0);
        assert!(m.utilization > 0.0 && m.utilization <= 1.0);
        assert_eq!(m.steady_state_interval, c.steady_state_interval());
    }

    #[test]
    fn metrics_value_round_trip() {
        use serde::{Deserialize, Serialize};
        let arch = presets::isaac_baseline();
        let m = Compiler::new()
            .compile(&zoo::vgg7(), &arch)
            .unwrap()
            .metrics(&arch);
        let back = crate::CompileMetrics::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn metrics_are_deterministic() {
        let arch = presets::jain_sram();
        let g = zoo::lenet5();
        let a = Compiler::new().compile(&g, &arch).unwrap().metrics(&arch);
        let b = Compiler::new().compile(&g, &arch).unwrap().metrics(&arch);
        assert_eq!(a, b);
    }
}
