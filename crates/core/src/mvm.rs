//! MVM-grained optimization (paper §3.3.3, Figure 12).
//!
//! Given the CG-grained schedule and the chip+core tier abstractions, this
//! level:
//!
//! * refines duplication with the paper's Equation 1 — the crossbars left
//!   idle in an operator's assigned cores host extra replicas:
//!   `D′ = ⌊ cores·D·Core_VXB / num_VXB ⌋`;
//! * introduces the *MVM-grained computing pipeline*: a crossbar activates
//!   as soon as its input chunk arrives instead of waiting for the whole
//!   VXB, so at any instant only one vertical wave of each replica is
//!   firing. This cuts the peak number of simultaneously active crossbars
//!   (peak power) and halves the per-stage communication granularity.

use crate::cg::{pipeline_latency, stage_latency, CgSchedule, Segment, StagePlan};
use crate::perf::{phase_power, PerfReport};
use crate::region::RegionMemo;
use cim_arch::CimArchitecture;

/// The MVM-grained refinement of a CG schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct MvmSchedule {
    /// Refined segments (same order as the CG schedule's).
    pub segments: Vec<Segment>,
    /// Whether the staggered-activation pipeline was applied.
    pub staggered: bool,
    /// Summary report.
    pub report: PerfReport,
}

/// Equation 1: refined duplication using idle crossbars of the assigned
/// cores.
#[must_use]
pub fn equation1_duplication(
    assigned_cores: u32,
    xb_per_core: u32,
    vxb_size: u32,
    cg_dup: u32,
) -> u32 {
    if vxb_size == 0 {
        return cg_dup.max(1);
    }
    let slots = u64::from(assigned_cores) * u64::from(xb_per_core);
    let refined = (slots / u64::from(vxb_size)) as u32;
    refined.max(cg_dup).max(1)
}

/// Options for MVM-grained optimization (Figure 21b/21d ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MvmOptions {
    /// Apply Equation 1 duplication refinement.
    pub duplication: bool,
    /// Apply the staggered-activation pipeline (peak-power reduction and
    /// finer communication granularity).
    pub pipeline: bool,
}

impl MvmOptions {
    /// Both refinements on.
    #[must_use]
    pub fn full() -> Self {
        MvmOptions {
            duplication: true,
            pipeline: true,
        }
    }
}

/// Runs MVM-grained optimization on top of a CG schedule.
///
/// The CG schedule's per-segment structure is preserved; duplication
/// numbers, stage latencies and activation profiles are refined.
#[must_use]
pub fn schedule_mvm(
    cg: &CgSchedule,
    arch: &CimArchitecture,
    options: MvmOptions,
    act_bits: u32,
) -> MvmSchedule {
    schedule_mvm_jobs(cg, arch, options, act_bits, 1)
}

/// [`schedule_mvm`] with an explicit worker count — the form the
/// [`crate::MvmPass`] calls with
/// [`CompileOptions::jobs`](crate::CompileOptions::jobs).
///
/// Segments are refined independently (each is a pure function of its CG
/// segment), so with `jobs > 1` they fan out onto
/// [`crate::pool::run_ordered`] and merge back in segment order; the
/// refined schedule is byte-identical for every `jobs` value.
#[must_use]
pub fn schedule_mvm_jobs(
    cg: &CgSchedule,
    arch: &CimArchitecture,
    options: MvmOptions,
    act_bits: u32,
    jobs: usize,
) -> MvmSchedule {
    schedule_mvm_memo(cg, arch, options, act_bits, jobs, &RegionMemo::new())
}

/// [`schedule_mvm_jobs`] with an explicit per-session [`RegionMemo`] —
/// the incremental-recompilation entry point. Refined segments are keyed
/// by the region-id run they cover: a memo retained across
/// [`Session::recompile`](crate::Session::recompile) calls answers
/// unchanged segments without re-refining them.
#[must_use]
pub fn schedule_mvm_memo(
    cg: &CgSchedule,
    arch: &CimArchitecture,
    options: MvmOptions,
    act_bits: u32,
    jobs: usize,
    memo: &RegionMemo,
) -> MvmSchedule {
    let xb_per_core = arch.core().xb_count();
    // Region ids of every stage; a segment's memo key is the id run of
    // the (contiguous) stages its plans cover. Identical runs produce
    // identical CG segments (scheduling is a pure function of stage
    // content), so equal keys imply equal refinement inputs.
    let ids = memo.intern_stages(&cg.stages);

    let refine = |seg: &Segment| -> Segment {
        let start = seg.plans.first().map_or(0, |p| p.stage);
        let key: Vec<u32> = seg.plans.iter().map(|p| ids[p.stage]).collect();
        if let Some(cached) = memo.mvm_segment(&key, start) {
            return cached;
        }
        let mut plans = Vec::with_capacity(seg.plans.len());
        let mut lat_fill = Vec::with_capacity(seg.plans.len());
        for plan in &seg.plans {
            let stage = &cg.stages[plan.stage];
            let cpm = stage.mapping.cycles_per_mvm(arch, act_bits);
            let dup = if options.duplication && plan.folds == 1 {
                let refined = equation1_duplication(
                    plan.cores,
                    xb_per_core,
                    stage.mapping.vxb_size(),
                    plan.duplication,
                );
                // The refinement exploits idle crossbars; bandwidth and MVM
                // caps still apply.
                refined
                    .min(crate::cg::duplication_cap(stage, arch, act_bits, cpm))
                    .max(plan.duplication)
            } else {
                plan.duplication
            };
            let latency = stage_latency(stage, arch, act_bits, dup, cpm, plan.folds);
            // The MVM pipeline halves the input chunk each stage waits for
            // (Figure 12d: OP2's inputs are half the size of the
            // traditional pipeline's).
            let fill = if options.pipeline {
                stage.fill_fraction / 2.0
            } else {
                stage.fill_fraction
            };
            plans.push(StagePlan {
                stage: plan.stage,
                duplication: dup,
                cores: plan.cores,
                folds: plan.folds,
                latency,
            });
            lat_fill.push((latency, fill));
        }
        let latency = if cg.options.pipeline {
            pipeline_latency(&lat_fill)
        } else {
            lat_fill.iter().map(|&(l, _)| l).sum()
        };
        // Active crossbars: with staggering only one vertical wave of each
        // replica fires at any cycle (`D′·h` per stage); without, the full
        // VXBs co-fire.
        let chip_slots = u64::from(arch.chip().core_count()) * u64::from(xb_per_core);
        let per_plan_active = |p: &StagePlan| -> u64 {
            let m = &cg.stages[p.stage].mapping;
            let raw = if p.folds > 1 {
                if options.pipeline {
                    // Staggering applies within a fold pass too: one
                    // vertical wave of the resident tile grid at a time.
                    u64::from(m.h_xbs)
                } else {
                    // Lockstep folding keeps the whole chip busy.
                    chip_slots
                }
            } else if options.pipeline {
                u64::from(p.duplication) * u64::from(m.h_xbs)
            } else {
                u64::from(p.duplication) * u64::from(m.vxb_size())
            };
            raw.min(chip_slots)
        };
        let active: u64 = if cg.options.pipeline {
            plans
                .iter()
                .map(per_plan_active)
                .sum::<u64>()
                .min(chip_slots)
        } else {
            plans.iter().map(per_plan_active).max().unwrap_or(0)
        };
        let refined = Segment {
            plans,
            latency,
            active_crossbars: active,
            streaming_bits_per_cycle: seg.streaming_bits_per_cycle,
        };
        memo.store_mvm_segment(&key, start, &refined);
        refined
    };

    let segments: Vec<Segment> = if jobs > 1 && cg.segments.len() > 1 {
        crate::pool::run_ordered(&cg.segments, jobs, refine)
    } else {
        cg.segments.iter().map(refine).collect()
    };

    // Fold totals and the peak-power phase in segment (execution) order,
    // exactly as the sequential walk did.
    let mut total_latency = 0.0;
    let mut peak_power = 0.0;
    let mut peak_active = 0u64;
    let mut peak_breakdown = Default::default();
    for seg in &segments {
        let (power, breakdown) =
            phase_power(arch, seg.active_crossbars, seg.streaming_bits_per_cycle);
        if power > peak_power {
            peak_power = power;
            peak_active = seg.active_crossbars;
            peak_breakdown = breakdown;
        }
        total_latency += seg.latency;
    }

    let report = PerfReport {
        level: "cg+mvm",
        latency_cycles: total_latency + cg.report.reprogram_cycles,
        peak_active_crossbars: peak_active,
        peak_power,
        peak_breakdown,
        // The refinement reorders activations; the work (and its energy)
        // is unchanged.
        energy: cg.report.energy,
        segments: segments.len(),
        reprogram_cycles: cg.report.reprogram_cycles,
    };
    MvmSchedule {
        segments,
        staggered: options.pipeline,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{schedule_cg, CgOptions};
    use cim_arch::presets;
    use cim_graph::zoo;

    #[test]
    fn equation1_matches_paper_walkthrough() {
        // §3.4 MVM-grained: 2 cores × 2 crossbars, one VXB = 1 crossbar,
        // CG duplication 2 -> refined duplication 4.
        assert_eq!(equation1_duplication(2, 2, 1, 2), 4);
        // No idle crossbars -> unchanged.
        assert_eq!(equation1_duplication(1, 2, 2, 1), 1);
        // Never decreases below the CG number.
        assert_eq!(equation1_duplication(1, 2, 4, 3), 3);
        // Degenerate vxb.
        assert_eq!(equation1_duplication(1, 2, 0, 2), 2);
    }

    #[test]
    fn mvm_never_slower_than_cg() {
        let arch = presets::isaac_baseline();
        for g in [zoo::vgg7(), zoo::resnet50()] {
            let cg = schedule_cg(&g, &arch, CgOptions::full(), 8, 8).unwrap();
            let mvm = schedule_mvm(&cg, &arch, MvmOptions::full(), 8);
            assert!(
                mvm.report.latency_cycles <= cg.report.latency_cycles * 1.0001,
                "{}: mvm {} > cg {}",
                g.name(),
                mvm.report.latency_cycles,
                cg.report.latency_cycles
            );
        }
    }

    #[test]
    fn stagger_reduces_peak_power() {
        // Figure 21d: MVM-grained pipeline lowers the peak activated
        // crossbar count relative to CG-grained scheduling.
        let arch = presets::isaac_baseline();
        let g = zoo::resnet50();
        let cg = schedule_cg(&g, &arch, CgOptions::full(), 8, 8).unwrap();
        let staggered = schedule_mvm(&cg, &arch, MvmOptions::full(), 8);
        let lockstep = schedule_mvm(
            &cg,
            &arch,
            MvmOptions {
                duplication: true,
                pipeline: false,
            },
            8,
        );
        assert!(
            staggered.report.peak_power < lockstep.report.peak_power,
            "staggered {} >= lockstep {}",
            staggered.report.peak_power,
            lockstep.report.peak_power
        );
    }

    #[test]
    fn duplication_refinement_helps_resnet50() {
        // Figure 21b: CG+MVM duplication gives extra speedup.
        let arch = presets::isaac_baseline();
        let g = zoo::resnet50();
        let cg = schedule_cg(&g, &arch, CgOptions::full(), 8, 8).unwrap();
        let with_dup = schedule_mvm(&cg, &arch, MvmOptions::full(), 8);
        let without = schedule_mvm(
            &cg,
            &arch,
            MvmOptions {
                duplication: false,
                pipeline: true,
            },
            8,
        );
        assert!(with_dup.report.latency_cycles <= without.report.latency_cycles);
    }

    #[test]
    fn folded_stages_keep_their_plan() {
        // VGG16 fc1 on PUMA exceeds the chip; folds must survive MVM
        // refinement.
        let arch = presets::puma();
        let cg = schedule_cg(&zoo::vgg16(), &arch, CgOptions::full(), 8, 8).unwrap();
        let mvm = schedule_mvm(&cg, &arch, MvmOptions::full(), 8);
        let has_fold = mvm
            .segments
            .iter()
            .flat_map(|s| &s.plans)
            .any(|p| p.folds > 1);
        assert!(has_fold);
    }
}
