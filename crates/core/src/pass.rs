//! The pass abstraction of the staged compilation pipeline.
//!
//! A [`Pass`] consumes one [`Artifact`] and produces the
//! next; the [`Pipeline`](crate::Pipeline) assembles passes and a
//! [`Session`](crate::Session) runs them one at a time, recording a
//! [`PassRecord`] per pass into a [`PassTimeline`].
//!
//! # The `Pass` contract
//!
//! Implementations must uphold three invariants the pipeline relies on:
//!
//! 1. **Purity** — `run` is a pure function of the input artifact and the
//!    [`PassContext`] (graph, architecture, options). Two runs with equal
//!    inputs must produce equal artifacts, so sessions stay deterministic
//!    across hosts and worker threads. Wall-clock and diagnostics are the
//!    only side channels, and both live in the timeline, never in the
//!    artifact.
//! 2. **Stage typing** — a pass declares the artifact stage it consumes by
//!    rejecting others with [`CompileError::Internal`](crate::CompileError::Internal); it must not
//!    silently pass through an unexpected stage. A pass that *upholds* its
//!    input stage (returns the same [`StageKind`](crate::StageKind)) is a
//!    rewrite pass; one that advances the stage is a lowering pass.
//! 3. **No hidden state** — passes are `Send + Sync` and may be shared
//!    across threads; configuration belongs in the pass value itself (set
//!    at construction), not in globals.
//!
//! ```
//! use cim_compiler::{Artifact, CompileOptions, Diagnostics, Pass, PassContext};
//!
//! /// A rewrite pass: keeps only the first `n` stages.
//! struct TruncateStages(usize);
//!
//! impl Pass for TruncateStages {
//!     fn name(&self) -> &'static str {
//!         "truncate-stages"
//!     }
//!     fn run(
//!         &self,
//!         _cx: &PassContext<'_>,
//!         diag: &mut Diagnostics,
//!         input: Artifact,
//!     ) -> cim_compiler::Result<Artifact> {
//!         let Artifact::Staged(mut staged) = input else {
//!             return Err(cim_compiler::CompileError::Internal {
//!                 message: "truncate-stages needs a staged artifact".into(),
//!             });
//!         };
//!         staged.stages.truncate(self.0);
//!         diag.note(format!("kept {} stage(s)", staged.stages.len()));
//!         Ok(Artifact::Staged(staged))
//!     }
//! }
//! ```

use crate::cache::Fingerprint;
use crate::compile::CompileOptions;
use crate::pipeline::Artifact;
use crate::region::RegionMemo;
use crate::scratch::ScratchArena;
use crate::Result;
use cim_arch::CimArchitecture;
use cim_graph::Graph;
use serde::{Deserialize, Serialize};

/// Everything a pass may read besides its input artifact: the model, the
/// target, the compile options and the session's scratch arena. Passes
/// must treat graph/arch/options as immutable inputs (see the module docs
/// for the full contract); the scratch arena is for short-lived buffers
/// only and must never leak state into the produced artifact.
#[derive(Debug, Clone, Copy)]
pub struct PassContext<'a> {
    /// The model being compiled.
    pub graph: &'a Graph,
    /// The target architecture.
    pub arch: &'a CimArchitecture,
    /// The compile options in force.
    pub options: &'a CompileOptions,
    /// The session's pooled scratch buffers (see [`crate::scratch`]).
    /// Peak usage per pass lands in [`PassRecord::scratch_peak_bytes`].
    pub scratch: &'a ScratchArena,
    /// The session's per-region schedule memo (see [`crate::region`]).
    /// Scheduling passes thread it into the `_memo` scheduler entry
    /// points so [`Session::recompile`](crate::Session::recompile) can
    /// reuse schedules for unedited regions; per-pass hit/miss deltas
    /// land in [`PassRecord::region_hits`] /
    /// [`PassRecord::region_misses`].
    pub memo: &'a RegionMemo,
}

/// Per-pass diagnostics sink: free-form notes a pass wants surfaced in
/// the timeline (`cimc compile --timings`) without polluting artifacts.
#[derive(Debug, Default)]
pub struct Diagnostics {
    notes: Vec<String>,
}

impl Diagnostics {
    /// Records one diagnostic note.
    pub fn note(&mut self, message: impl Into<String>) {
        self.notes.push(message.into());
    }

    /// The notes recorded so far.
    #[must_use]
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    fn into_notes(self) -> Vec<String> {
        self.notes
    }
}

/// One stage of the compilation pipeline.
///
/// See the [module docs](self) for the implementation contract (purity,
/// stage typing, no hidden state). Built-in passes live in
/// [`crate::pipeline`]; custom passes plug in via
/// [`Pipeline::push`](crate::Pipeline::push) /
/// [`Pipeline::replace`](crate::Pipeline::replace).
pub trait Pass: Send + Sync {
    /// Stable pass name, used by [`Pipeline::replace`](crate::Pipeline::replace),
    /// [`Pipeline::remove`](crate::Pipeline::remove) and the timeline.
    fn name(&self) -> &'static str;

    /// Consumes `input` and produces the next artifact.
    ///
    /// # Errors
    /// Returns a [`crate::CompileError`] on scheduling failures, or
    /// [`crate::CompileError::Internal`] when `input` is not a stage this
    /// pass consumes.
    fn run(
        &self,
        cx: &PassContext<'_>,
        diag: &mut Diagnostics,
        input: Artifact,
    ) -> Result<Artifact>;

    /// A stable [`Fingerprint`] of this pass's behaviour — its identity
    /// plus the subset of `cx` it actually consumes — used by a cached
    /// [`Session`](crate::Session) as one link of the
    /// [content-addressed cache key chain](crate::cache).
    ///
    /// The default is `None`: the pass is not cacheable, and (because an
    /// unknown pass may produce anything) neither is any pass after it
    /// in the session. Override it only when `run` upholds the purity
    /// contract above *and* the returned fingerprint covers every input
    /// that can change the output; hash only consumed
    /// [`CompileOptions`] fields, so pipelines differing in unconsumed
    /// options still share entries.
    fn fingerprint(&self, cx: &PassContext<'_>) -> Option<Fingerprint> {
        let _ = cx;
        None
    }
}

/// Instrumentation record of one executed (or skipped) pass.
///
/// Serializes both ways: the `cimc serve` wire protocol ships timelines
/// inside compile responses, so clients must be able to parse them back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassRecord {
    /// The pass's [`Pass::name`].
    pub pass: String,
    /// Stage name of the artifact the pass produced
    /// ([`StageKind::name`](crate::StageKind::name)), or `"skipped"`.
    pub stage: String,
    /// Wall-clock time the pass took, in milliseconds (0 when skipped).
    pub wall_ms: f64,
    /// Compile-cache outcome for this pass: `"hit"` (artifact served
    /// from the cache), `"miss"` (looked up, recomputed, not banked),
    /// `"miss+store"` (recomputed and banked), or `""` when the session
    /// has no cache or the pass is uncacheable.
    pub cache: String,
    /// One-line summary of the produced artifact.
    pub summary: String,
    /// Peak bytes leased from the session's [`ScratchArena`] while the
    /// pass ran (0 when skipped, served from cache, or scratch-free).
    pub scratch_peak_bytes: u64,
    /// Diagnostics the pass emitted.
    pub diagnostics: Vec<String>,
    /// Regions the pass's schedulers answered from the session's
    /// [`RegionMemo`]. Recorded only during
    /// [`Session::recompile`](crate::Session::recompile) (0 on cold
    /// compiles, and for passes that do not consult the memo). Absent
    /// fields deserialize as 0, so pre-existing serialized timelines
    /// still parse.
    #[serde(default)]
    pub region_hits: u64,
    /// Regions the pass's schedulers had to reschedule. Same recording
    /// rules as [`PassRecord::region_hits`].
    #[serde(default)]
    pub region_misses: u64,
}

/// The per-pass instrumentation of one pipeline session: what ran, in
/// which order, how long each pass took and what it produced.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PassTimeline {
    /// Records in execution order.
    pub records: Vec<PassRecord>,
}

impl PassTimeline {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &mut self,
        pass: &str,
        artifact: &Artifact,
        wall_ms: f64,
        cache: &str,
        scratch_peak_bytes: u64,
        diag: Diagnostics,
        region_hits: u64,
        region_misses: u64,
    ) {
        self.records.push(PassRecord {
            pass: pass.to_owned(),
            stage: artifact.kind().name().to_owned(),
            wall_ms,
            cache: cache.to_owned(),
            summary: artifact.summary(),
            scratch_peak_bytes,
            diagnostics: diag.into_notes(),
            region_hits,
            region_misses,
        });
    }

    pub(crate) fn record_skip(&mut self, pass: &str) {
        self.records.push(PassRecord {
            pass: pass.to_owned(),
            stage: "skipped".to_owned(),
            wall_ms: 0.0,
            cache: String::new(),
            summary: String::new(),
            scratch_peak_bytes: 0,
            diagnostics: Vec::new(),
            region_hits: 0,
            region_misses: 0,
        });
    }

    /// Totals the cache outcomes recorded across this timeline's passes
    /// (`hit` / `miss` / `miss+store` entries; empty outcomes count as
    /// nothing).
    #[must_use]
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        let mut stats = crate::cache::CacheStats::default();
        for r in &self.records {
            match r.cache.as_str() {
                "hit" => stats.hits += 1,
                "miss" => stats.misses += 1,
                "miss+store" => {
                    stats.misses += 1;
                    stats.stores += 1;
                }
                _ => {}
            }
        }
        stats
    }

    /// Total wall-clock time across all recorded passes, in milliseconds.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.records.iter().map(|r| r.wall_ms).sum()
    }

    /// Totals the per-region memo outcomes recorded across this
    /// timeline's passes as `(hits, misses)`. Non-zero only for
    /// timelines produced by
    /// [`Session::recompile`](crate::Session::recompile).
    #[must_use]
    pub fn region_stats(&self) -> (u64, u64) {
        self.records
            .iter()
            .fold((0, 0), |(h, m), r| (h + r.region_hits, m + r.region_misses))
    }

    /// Renders the timeline as a text table, one row per pass, with
    /// diagnostics indented under their pass.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<16} {:<8} {:>10} {:>12} {:<10}  {}\n",
            "pass", "stage", "wall(ms)", "scratch(B)", "cache", "summary"
        );
        for r in &self.records {
            out.push_str(&format!(
                "{:<16} {:<8} {:>10.3} {:>12} {:<10}  {}\n",
                r.pass, r.stage, r.wall_ms, r.scratch_peak_bytes, r.cache, r.summary
            ));
            for note in &r.diagnostics {
                out.push_str(&format!("{:<16} - {note}\n", ""));
            }
        }
        out.push_str(&format!(
            "total: {} pass(es) in {:.3} ms\n",
            self.records.len(),
            self.total_ms()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_renders_records_and_totals() {
        let mut t = PassTimeline::default();
        t.records.push(PassRecord {
            pass: "cg".into(),
            stage: "cg".into(),
            wall_ms: 1.5,
            cache: "hit".into(),
            summary: "1 segment(s)".into(),
            scratch_peak_bytes: 4096,
            diagnostics: vec!["note one".into()],
            region_hits: 3,
            region_misses: 1,
        });
        t.record_skip("mvm");
        let text = t.render();
        assert!(text.contains("cg"), "{text}");
        assert!(text.contains("note one"), "{text}");
        assert!(text.contains("skipped"), "{text}");
        assert!(text.contains("hit"), "{text}");
        assert!(text.contains("2 pass(es)"), "{text}");
        assert!((t.total_ms() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn timeline_cache_stats_totals_outcomes() {
        let mut t = PassTimeline::default();
        for cache in ["hit", "miss+store", "miss", ""] {
            t.records.push(PassRecord {
                pass: "p".into(),
                stage: "cg".into(),
                wall_ms: 0.0,
                cache: cache.into(),
                summary: String::new(),
                scratch_peak_bytes: 0,
                diagnostics: Vec::new(),
                region_hits: 2,
                region_misses: 1,
            });
        }
        let stats = t.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.stores, 1);
        assert_eq!(t.region_stats(), (8, 4));
    }

    #[test]
    fn diagnostics_accumulate_in_order() {
        let mut d = Diagnostics::default();
        d.note("first");
        d.note(String::from("second"));
        assert_eq!(d.notes(), ["first", "second"]);
    }
}
