//! Performance reports: latency and peak-power estimates for a schedule.

use cim_arch::{CimArchitecture, EnergyBreakdown};
use serde::{DeError, Deserialize, Serialize, Value};

/// Latency / peak-power summary of one compiled schedule level.
///
/// Latency is in cycles of the accelerator's crossbar-activation clock;
/// power is in the cost model's energy-per-cycle units. All evaluation
/// claims reproduced from the paper are *relative* (speedups, normalized
/// peak power), so the units cancel.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Scheduling level that produced this report (`"no-opt"`, `"cg"`,
    /// `"cg+mvm"`, `"cg+mvm+vvm"`, or a baseline name).
    pub level: &'static str,
    /// End-to-end single-image inference latency in cycles.
    pub latency_cycles: f64,
    /// Maximum number of crossbars simultaneously active.
    pub peak_active_crossbars: u64,
    /// Peak instantaneous power (energy units per cycle).
    pub peak_power: f64,
    /// Component breakdown at the peak cycle.
    pub peak_breakdown: EnergyBreakdown,
    /// Total energy of one inference. Unlike latency, energy is a
    /// work-dependent quantity: the scheduling levels rearrange *when*
    /// activations happen, not how many there are, so it is invariant
    /// across levels up to reprogramming overheads (asserted in tests).
    pub energy: EnergyBreakdown,
    /// Number of compute-graph segments the model was split into.
    pub segments: usize,
    /// Cycles spent reprogramming crossbars between segments/folds.
    pub reprogram_cycles: f64,
}

/// The level names this workspace's schedulers and baselines produce.
/// [`PerfReport`] deserialization interns incoming levels against this
/// table, which is what lets the field stay `&'static str` end to end.
pub const LEVEL_NAMES: [&str; 10] = [
    "no-opt",
    "cg-pipeline",
    "cg-duplication",
    "cg",
    "cg+mvm",
    "cg+mvm+vvm",
    "poly-schedule",
    "jia-et-al",
    "jain-et-al",
    "puma",
];

/// Interns a serialized level name against [`LEVEL_NAMES`].
#[must_use]
pub fn intern_level(name: &str) -> Option<&'static str> {
    LEVEL_NAMES.into_iter().find(|&k| k == name)
}

pub(crate) fn deserialize_level(v: &Value) -> Result<&'static str, DeError> {
    let name = String::from_value(v)?;
    intern_level(&name).ok_or_else(|| {
        DeError::custom(format!(
            "unknown scheduling level `{name}` (known: {})",
            LEVEL_NAMES.join(", ")
        ))
    })
}

pub(crate) fn require<'v>(
    entries: &'v [(String, Value)],
    key: &str,
    owner: &str,
) -> Result<&'v Value, DeError> {
    Value::lookup(entries, key)
        .ok_or_else(|| DeError::custom(format!("missing field `{key}` in {owner}")))
}

// Manual impls rather than derives: the `level` field is `&'static str`
// (interned), which a derived `Deserialize` cannot produce.
impl Serialize for PerfReport {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("level".to_owned(), Value::Str(self.level.to_owned())),
            ("latency_cycles".to_owned(), self.latency_cycles.to_value()),
            (
                "peak_active_crossbars".to_owned(),
                self.peak_active_crossbars.to_value(),
            ),
            ("peak_power".to_owned(), self.peak_power.to_value()),
            ("peak_breakdown".to_owned(), self.peak_breakdown.to_value()),
            ("energy".to_owned(), self.energy.to_value()),
            ("segments".to_owned(), self.segments.to_value()),
            (
                "reprogram_cycles".to_owned(),
                self.reprogram_cycles.to_value(),
            ),
        ])
    }
}

impl Deserialize for PerfReport {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_map()
            .ok_or_else(|| DeError::custom("expected object for struct PerfReport"))?;
        Ok(PerfReport {
            level: deserialize_level(require(m, "level", "PerfReport")?)?,
            latency_cycles: f64::from_value(require(m, "latency_cycles", "PerfReport")?)?,
            peak_active_crossbars: u64::from_value(require(
                m,
                "peak_active_crossbars",
                "PerfReport",
            )?)?,
            peak_power: f64::from_value(require(m, "peak_power", "PerfReport")?)?,
            peak_breakdown: EnergyBreakdown::from_value(require(
                m,
                "peak_breakdown",
                "PerfReport",
            )?)?,
            energy: EnergyBreakdown::from_value(require(m, "energy", "PerfReport")?)?,
            segments: usize::from_value(require(m, "segments", "PerfReport")?)?,
            reprogram_cycles: f64::from_value(require(m, "reprogram_cycles", "PerfReport")?)?,
        })
    }
}

impl PerfReport {
    /// Speedup of this schedule over `baseline` (baseline latency divided
    /// by ours).
    #[must_use]
    pub fn speedup_over(&self, baseline: &PerfReport) -> f64 {
        baseline.latency_cycles / self.latency_cycles
    }

    /// This schedule's peak power normalized to `baseline`'s.
    #[must_use]
    pub fn normalized_peak_power(&self, baseline: &PerfReport) -> f64 {
        self.peak_power / baseline.peak_power
    }
}

/// Total energy of executing one stage's work once (compute + converter +
/// movement + ALU), independent of duplication or activation order.
#[must_use]
pub fn stage_energy(
    stage: &crate::stage::Stage,
    arch: &CimArchitecture,
    act_bits: u32,
) -> EnergyBreakdown {
    let xb = arch.crossbar();
    let cost = arch.cost();
    let m = &stage.mapping;
    // Every MVM engages each of the replica's vxb crossbars for
    // `slices × groups` row-group activations.
    let activations = m.mvm_count
        * u64::from(m.vxb_size())
        * u64::from(xb.input_slices(act_bits))
        * u64::from(m.activation_groups(arch));
    let per_activation = cost.activation_energy(xb.parallel_row().min(m.rows), xb.shape().cols);
    let mut energy = per_activation.scale(activations as f64);
    energy = energy
        .add(&cost.movement_energy((stage.in_elements + stage.out_elements) * u64::from(act_bits)));
    energy = energy.add(&cost.alu_energy(stage.alu_ops));
    if stage.dynamic_weights {
        energy = energy.add(&cost.write_energy(m.rows.min(xb.shape().rows), xb.shape().cols));
    }
    energy
}

/// Total energy of one inference: every stage's work plus
/// `reprogram_events` whole-chip crossbar rewrites.
#[must_use]
pub fn model_energy(
    stages: &[crate::stage::Stage],
    arch: &CimArchitecture,
    act_bits: u32,
    reprogram_events: u64,
) -> EnergyBreakdown {
    let mut total = EnergyBreakdown::default();
    for stage in stages {
        total = total.add(&stage_energy(stage, arch, act_bits));
    }
    let per_reprogram = arch
        .cost()
        .write_energy(arch.crossbar().shape().rows, arch.crossbar().shape().cols)
        .scale(arch.total_crossbars() as f64);
    total.add(&per_reprogram.scale(reprogram_events as f64))
}

/// Computes the peak instantaneous power of a schedule phase in which
/// `active_crossbars` crossbars fire concurrently (each engaging
/// `parallel_row` wordlines and its full column set) while
/// `streaming_bits_per_cycle` bits move through the buffer hierarchy.
#[must_use]
pub fn phase_power(
    arch: &CimArchitecture,
    active_crossbars: u64,
    streaming_bits_per_cycle: f64,
) -> (f64, EnergyBreakdown) {
    let xb = arch.crossbar();
    let cost = arch.cost();
    let per_xb = cost.activation_energy(xb.parallel_row(), xb.shape().cols);
    let mut breakdown = per_xb.scale(active_crossbars as f64);
    breakdown.movement = cost.e_mov_per_bit * streaming_bits_per_cycle;
    (breakdown.total(), breakdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::presets;

    fn report(level: &'static str, latency: f64, peak: f64) -> PerfReport {
        PerfReport {
            level,
            latency_cycles: latency,
            peak_active_crossbars: 0,
            peak_power: peak,
            peak_breakdown: EnergyBreakdown::default(),
            energy: EnergyBreakdown::default(),
            segments: 1,
            reprogram_cycles: 0.0,
        }
    }

    #[test]
    fn perf_report_value_round_trips_and_interns_level() {
        let r = PerfReport {
            level: "cg+mvm",
            latency_cycles: 123.0,
            peak_active_crossbars: 7,
            peak_power: 2.5,
            peak_breakdown: EnergyBreakdown {
                crossbar: 1.0,
                adc: 0.5,
                dac: 0.25,
                movement: 0.5,
                alu: 0.25,
            },
            energy: EnergyBreakdown::default(),
            segments: 2,
            reprogram_cycles: 10.0,
        };
        let back = PerfReport::from_value(&r.to_value()).unwrap();
        assert_eq!(back, r);
        // Interning returns the canonical static string.
        assert!(std::ptr::eq(back.level, intern_level("cg+mvm").unwrap()));

        let mut v = r.to_value();
        if let Value::Map(entries) = &mut v {
            entries[0].1 = Value::Str("made-up-level".to_owned());
        }
        let err = PerfReport::from_value(&v).unwrap_err().to_string();
        assert!(err.contains("made-up-level"), "{err}");
    }

    #[test]
    fn every_emitted_level_is_internable() {
        for name in LEVEL_NAMES {
            assert_eq!(intern_level(name), Some(name));
        }
        assert_eq!(intern_level("nope"), None);
    }

    #[test]
    fn speedup_and_normalization() {
        let base = report("no-opt", 1000.0, 10.0);
        let ours = report("cg", 250.0, 25.0);
        assert!((ours.speedup_over(&base) - 4.0).abs() < 1e-12);
        assert!((ours.normalized_peak_power(&base) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn phase_power_scales_with_active_crossbars() {
        let arch = presets::isaac_baseline();
        let (p1, b1) = phase_power(&arch, 10, 0.0);
        let (p2, _) = phase_power(&arch, 20, 0.0);
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
        assert_eq!(b1.movement, 0.0);
        let (p3, b3) = phase_power(&arch, 10, 384.0);
        assert!(p3 > p1);
        assert!(b3.movement > 0.0);
    }

    #[test]
    fn crossbar_term_dominates_under_calibration() {
        // With full-row activation (PUMA), the crossbar share must be near
        // the calibrated 83%.
        let arch = presets::puma();
        let (_, b) = phase_power(&arch, 1, 2.0 * 128.0 * 8.0);
        let total = b.total();
        assert!(b.crossbar / total > 0.7, "{}", b.crossbar / total);
    }
}
