//! The staged compilation pipeline (paper Figure 3, made explicit).
//!
//! The multi-level flow — stage extraction, CG-grained scheduling,
//! MVM-grained refinement, VVM-grained refinement, code generation — is
//! expressed as a list of [`Pass`]es over typed [`Artifact`]s:
//!
//! ```text
//! Source ── stages ──▶ Staged ── cg ──▶ CgScheduled ── mvm ──▶ MvmScheduled
//!                                           │                      │
//!                                        codegen                  vvm
//!                                           ▼                      ▼
//!                                      Codegenned ◀── codegen ── VvmScheduled
//! ```
//!
//! [`Pipeline::plan`] assembles the pass list the target's computing mode
//! and [`CompileOptions::level`] admit — exactly the levels
//! [`Compiler::compile`](crate::Compiler::compile) used to run as one
//! opaque call. A [`Session`] executes passes one at a time, so callers
//! can pause between levels, inspect the intermediate artifact (stage
//! plans, per-level [`PerfReport`]s, the generated MOP flow), skip or
//! replace passes, mutate the artifact, and resume. Per-pass wall time
//! and diagnostics land in a [`PassTimeline`].
//!
//! ```
//! use cim_arch::presets;
//! use cim_compiler::{Pipeline, Compiler, CompileOptions};
//! use cim_graph::zoo;
//!
//! # fn main() -> Result<(), cim_compiler::CompileError> {
//! let graph = zoo::lenet5();
//! let arch = presets::isaac_baseline();
//! let options = CompileOptions::default();
//! let mut session = Pipeline::plan(&options, &arch).session(&graph, &arch, options);
//! while session.step()? {
//!     if let Some(report) = session.artifact().report() {
//!         println!("after {}: {} cycles", report.level, report.latency_cycles);
//!     }
//! }
//! let compiled = session.finish()?;
//! assert_eq!(compiled.report(), Compiler::new().compile(&graph, &arch)?.report());
//! # Ok(())
//! # }
//! ```

use crate::cache::{source_fingerprint, CompileCache, Fingerprint, FingerprintBuilder};
use crate::cg::{schedule_cg_stages_memo, CgSchedule, Segment};
use crate::codegen::{generate_flow, FlowLayout};
use crate::compile::{CompileOptions, Compiled, OptLevel};
use crate::mvm::{schedule_mvm_memo, MvmSchedule};
use crate::pass::{Diagnostics, Pass, PassContext, PassTimeline};
use crate::perf::PerfReport;
use crate::region::RegionMemo;
use crate::stage::{extract_stages, Stage};
use crate::vvm::{schedule_vvm_memo, VvmSchedule};
use crate::{CompileError, Result};
use cim_arch::{CimArchitecture, ComputingMode};
use cim_graph::{Graph, GraphDelta};
use cim_mop::MopFlow;
use cim_obs::{keys, TraceClock};
use std::borrow::Cow;
use std::sync::Arc;

/// Which stage of the flow an [`Artifact`] represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Nothing computed yet: the session's starting point.
    Source,
    /// Stages extracted, not yet scheduled.
    Staged,
    /// CG-grained schedule available.
    Cg,
    /// MVM-grained refinement available.
    Mvm,
    /// VVM-grained refinement available.
    Vvm,
    /// Executable meta-operator flow generated.
    Codegen,
}

impl StageKind {
    /// Stable stage name, used by the CLI (`--dump-stage`) and timelines.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Source => "source",
            StageKind::Staged => "staged",
            StageKind::Cg => "cg",
            StageKind::Mvm => "mvm",
            StageKind::Vvm => "vvm",
            StageKind::Codegen => "codegen",
        }
    }

    /// Parses a name produced by [`StageKind::name`].
    #[must_use]
    pub fn parse(name: &str) -> Option<StageKind> {
        [
            StageKind::Source,
            StageKind::Staged,
            StageKind::Cg,
            StageKind::Mvm,
            StageKind::Vvm,
            StageKind::Codegen,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }
}

/// Artifact of the `stages` pass: the model's pipeline stages, extracted
/// but not yet scheduled.
#[derive(Debug, Clone, PartialEq)]
pub struct Staged {
    /// Stages in topological order.
    pub stages: Vec<Stage>,
}

/// Artifact of the `cg` pass: the CG-grained schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct CgScheduled {
    /// The CG-grained schedule (owns the stage list).
    pub cg: CgSchedule,
}

/// Artifact of the `mvm` pass: CG schedule plus its MVM-grained
/// refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct MvmScheduled {
    /// The CG-grained schedule.
    pub cg: CgSchedule,
    /// The MVM-grained refinement.
    pub mvm: MvmSchedule,
}

/// Artifact of the `vvm` pass: all three scheduling levels.
#[derive(Debug, Clone, PartialEq)]
pub struct VvmScheduled {
    /// The CG-grained schedule.
    pub cg: CgSchedule,
    /// The MVM-grained refinement.
    pub mvm: MvmSchedule,
    /// The VVM-grained refinement.
    pub vvm: VvmSchedule,
}

/// Artifact of the `codegen` pass: the compiled schedules plus the
/// executable meta-operator flow and its buffer layout.
#[derive(Debug, Clone)]
pub struct Codegenned {
    /// The compiled artifact the flow was generated from.
    pub compiled: Compiled,
    /// The executable meta-operator flow.
    pub flow: MopFlow,
    /// Where each node's output tensor lives in the L0 buffer.
    pub layout: FlowLayout,
}

/// A typed intermediate artifact of the staged pipeline.
///
/// Artifacts are cumulative: each stage carries everything the previous
/// stages produced, so pausing after any pass leaves the session fully
/// inspectable.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// Nothing computed yet (the session's starting point).
    Source,
    /// Stages extracted ([`Staged`]).
    Staged(Staged),
    /// CG-grained schedule ([`CgScheduled`]).
    CgScheduled(Box<CgScheduled>),
    /// MVM-grained refinement ([`MvmScheduled`]).
    MvmScheduled(Box<MvmScheduled>),
    /// VVM-grained refinement ([`VvmScheduled`]).
    VvmScheduled(Box<VvmScheduled>),
    /// Executable flow generated ([`Codegenned`]).
    Codegenned(Box<Codegenned>),
}

impl Artifact {
    /// This artifact's stage.
    #[must_use]
    pub fn kind(&self) -> StageKind {
        match self {
            Artifact::Source => StageKind::Source,
            Artifact::Staged(_) => StageKind::Staged,
            Artifact::CgScheduled(_) => StageKind::Cg,
            Artifact::MvmScheduled(_) => StageKind::Mvm,
            Artifact::VvmScheduled(_) => StageKind::Vvm,
            Artifact::Codegenned(_) => StageKind::Codegen,
        }
    }

    /// The extracted stage list, once available.
    #[must_use]
    pub fn stages(&self) -> Option<&[Stage]> {
        match self {
            Artifact::Source => None,
            Artifact::Staged(s) => Some(&s.stages),
            Artifact::CgScheduled(a) => Some(&a.cg.stages),
            Artifact::MvmScheduled(a) => Some(&a.cg.stages),
            Artifact::VvmScheduled(a) => Some(&a.cg.stages),
            Artifact::Codegenned(c) => Some(&c.compiled.cg.stages),
        }
    }

    /// The CG-grained schedule, once available.
    #[must_use]
    pub fn cg(&self) -> Option<&CgSchedule> {
        match self {
            Artifact::Source | Artifact::Staged(_) => None,
            Artifact::CgScheduled(a) => Some(&a.cg),
            Artifact::MvmScheduled(a) => Some(&a.cg),
            Artifact::VvmScheduled(a) => Some(&a.cg),
            Artifact::Codegenned(c) => Some(&c.compiled.cg),
        }
    }

    /// The MVM-grained refinement, once available.
    #[must_use]
    pub fn mvm(&self) -> Option<&MvmSchedule> {
        match self {
            Artifact::MvmScheduled(a) => Some(&a.mvm),
            Artifact::VvmScheduled(a) => Some(&a.mvm),
            Artifact::Codegenned(c) => c.compiled.mvm.as_ref(),
            _ => None,
        }
    }

    /// The VVM-grained refinement, once available.
    #[must_use]
    pub fn vvm(&self) -> Option<&VvmSchedule> {
        match self {
            Artifact::VvmScheduled(a) => Some(&a.vvm),
            Artifact::Codegenned(c) => c.compiled.vvm.as_ref(),
            _ => None,
        }
    }

    /// The generated meta-operator flow, once available.
    #[must_use]
    pub fn flow(&self) -> Option<&MopFlow> {
        match self {
            Artifact::Codegenned(c) => Some(&c.flow),
            _ => None,
        }
    }

    /// The generated flow's buffer layout, once available.
    #[must_use]
    pub fn layout(&self) -> Option<&FlowLayout> {
        match self {
            Artifact::Codegenned(c) => Some(&c.layout),
            _ => None,
        }
    }

    /// The report of the deepest scheduling level run so far, if any
    /// level has run.
    #[must_use]
    pub fn report(&self) -> Option<&PerfReport> {
        match self {
            Artifact::Source | Artifact::Staged(_) => None,
            Artifact::CgScheduled(a) => Some(&a.cg.report),
            Artifact::MvmScheduled(a) => Some(&a.mvm.report),
            Artifact::VvmScheduled(a) => Some(&a.vvm.report),
            Artifact::Codegenned(c) => Some(c.compiled.report()),
        }
    }

    /// Reports of every level run so far, coarse to fine.
    #[must_use]
    pub fn reports(&self) -> Vec<&PerfReport> {
        let mut out = Vec::new();
        if let Some(cg) = self.cg() {
            out.push(&cg.report);
        }
        if let Some(mvm) = self.mvm() {
            out.push(&mvm.report);
        }
        if let Some(vvm) = self.vvm() {
            out.push(&vvm.report);
        }
        out
    }

    /// One-line description, used in timelines.
    #[must_use]
    pub fn summary(&self) -> String {
        match self {
            Artifact::Source => "source graph".to_owned(),
            Artifact::Staged(s) => format!("{} stage(s)", s.stages.len()),
            Artifact::CgScheduled(_) | Artifact::MvmScheduled(_) | Artifact::VvmScheduled(_) => {
                let r = self.report().expect("scheduled artifacts have a report");
                format!(
                    "level {}: {} segment(s), latency {:.0} cycles, peak power {:.1}",
                    r.level, r.segments, r.latency_cycles, r.peak_power
                )
            }
            Artifact::Codegenned(c) => format!("{} meta-operator(s)", c.flow.stmts().len()),
        }
    }

    /// Renders the artifact for human inspection: the stage list before
    /// scheduling, the per-stage plan table for scheduled levels, the
    /// flow statistics after codegen. This is what
    /// `cimc compile --dump-stage` prints.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Artifact::Source => "source graph (no passes run)\n".to_owned(),
            Artifact::Staged(s) => {
                // No folds/duplication columns: those are scheduling
                // decisions the cg pass has not made yet.
                let mut out = format!("{:<4} {:<24} {:>7} {:>12}\n", "#", "stage", "VXB", "MVMs");
                for (i, stage) in s.stages.iter().enumerate() {
                    out.push_str(&format!(
                        "{:<4} {:<24} {:>7} {:>12}\n",
                        i,
                        stage.name,
                        stage.mapping.vxb_size(),
                        stage.mapping.mvm_count
                    ));
                }
                out
            }
            Artifact::CgScheduled(_) | Artifact::MvmScheduled(_) | Artifact::VvmScheduled(_) => {
                let stages = self.stages().expect("scheduled artifacts have stages");
                let segments = match self {
                    Artifact::CgScheduled(a) => &a.cg.segments,
                    Artifact::MvmScheduled(a) => &a.mvm.segments,
                    Artifact::VvmScheduled(a) => &a.vvm.segments,
                    _ => unreachable!(),
                };
                let report = self.report().expect("scheduled artifacts have a report");
                render_plan_table(stages, segments, report)
            }
            Artifact::Codegenned(c) => {
                format!(
                    "{}\n{} meta-operator(s)\n",
                    c.compiled.render_schedule(),
                    c.flow.stmts().len()
                )
            }
        }
    }

    /// Converts the artifact into the one-shot [`Compiled`] result.
    /// `model`, `arch_name` and `options` label the result exactly as
    /// [`Compiler::compile`](crate::Compiler::compile) would.
    ///
    /// # Errors
    /// Returns [`CompileError::Internal`] when no scheduling level has run
    /// yet (the pipeline is missing a `cg` pass).
    pub fn into_compiled(
        self,
        model: &str,
        arch_name: &str,
        options: CompileOptions,
    ) -> Result<Compiled> {
        let (cg, mvm, vvm) = match self {
            Artifact::Source | Artifact::Staged(_) => {
                return Err(CompileError::Internal {
                    message: format!(
                        "pipeline stopped at stage `{}` without producing a schedule \
                         (missing `cg` pass?)",
                        self.kind().name()
                    ),
                })
            }
            Artifact::CgScheduled(a) => (a.cg, None, None),
            Artifact::MvmScheduled(a) => {
                let a = *a;
                (a.cg, Some(a.mvm), None)
            }
            Artifact::VvmScheduled(a) => {
                let a = *a;
                (a.cg, Some(a.mvm), Some(a.vvm))
            }
            Artifact::Codegenned(c) => return Ok(c.compiled),
        };
        Ok(Compiled::from_parts(
            model.to_owned(),
            arch_name.to_owned(),
            options,
            cg,
            mvm,
            vvm,
        ))
    }
}

/// Renders a per-stage plan table for one scheduling level — the shared
/// body of [`Compiled::render_schedule`] and [`Artifact::render`].
pub(crate) fn render_plan_table(
    stages: &[Stage],
    segments: &[Segment],
    report: &PerfReport,
) -> String {
    let mut out = format!(
        "level {}\n{:<4} {:<24} {:>5} {:>6} {:>6} {:>6} {:>14}\n",
        report.level, "seg", "stage", "dup", "cores", "folds", "VXB", "latency(cyc)"
    );
    for (si, seg) in segments.iter().enumerate() {
        for plan in &seg.plans {
            let stage = &stages[plan.stage];
            out.push_str(&format!(
                "{:<4} {:<24} {:>5} {:>6} {:>6} {:>6} {:>14.0}\n",
                si,
                stage.name,
                plan.duplication,
                plan.cores,
                plan.folds,
                stage.mapping.vxb_size(),
                plan.latency
            ));
        }
    }
    out.push_str(&format!(
        "total: {:.0} cycles ({} segments, {:.0} reprogram), peak power {:.1}, energy {:.1}\n",
        report.latency_cycles,
        report.segments,
        report.reprogram_cycles,
        report.peak_power,
        report.energy.total()
    ));
    out
}

// ---------------------------------------------------------------------------
// Built-in passes.

/// The `stages` pass: extracts pipeline stages from the graph
/// (`Source → Staged`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtractStagesPass;

impl Pass for ExtractStagesPass {
    fn name(&self) -> &'static str {
        "stages"
    }

    fn run(
        &self,
        cx: &PassContext<'_>,
        diag: &mut Diagnostics,
        input: Artifact,
    ) -> Result<Artifact> {
        let Artifact::Source = input else {
            return Err(stage_mismatch(self.name(), "source", &input));
        };
        let stages = extract_stages(cx.graph, cx.arch, cx.options.weight_bits);
        diag.note(format!(
            "{} CIM stage(s) from {} graph node(s)",
            stages.len(),
            cx.graph.len()
        ));
        Ok(Artifact::Staged(Staged { stages }))
    }

    fn fingerprint(&self, cx: &PassContext<'_>) -> Option<Fingerprint> {
        // Stage extraction reads only the weight precision.
        Some(
            FingerprintBuilder::new("cim-mlc/pass/stages/v1")
                .u64(u64::from(cx.options.weight_bits))
                .finish(),
        )
    }
}

/// The `cg` pass: CG-grained scheduling (`Staged → CgScheduled`).
#[derive(Debug, Clone, Copy, Default)]
pub struct CgPass;

impl Pass for CgPass {
    fn name(&self) -> &'static str {
        "cg"
    }

    fn run(
        &self,
        cx: &PassContext<'_>,
        diag: &mut Diagnostics,
        input: Artifact,
    ) -> Result<Artifact> {
        let Artifact::Staged(staged) = input else {
            return Err(stage_mismatch(self.name(), "staged", &input));
        };
        // Policy lives here, mechanism in the scheduler: the requested
        // worker count is clamped to the machine so `--jobs 4` on a
        // single-core box takes the zero-overhead sequential path.
        let cg = schedule_cg_stages_memo(
            cx.graph.name(),
            staged.stages,
            cx.arch,
            cx.options.cg,
            cx.options.act_bits,
            crate::pool::effective_threads(cx.options.jobs),
            cx.scratch,
            cx.memo,
        )?;
        diag.note(format!(
            "{} segment(s), {:.0} reprogram cycle(s)",
            cg.segments.len(),
            cg.report.reprogram_cycles
        ));
        Ok(Artifact::CgScheduled(Box::new(CgScheduled { cg })))
    }

    fn fingerprint(&self, cx: &PassContext<'_>) -> Option<Fingerprint> {
        // CG scheduling reads its feature toggles and the activation
        // precision; `level` stays out of the key, so `auto` and `cg`
        // jobs share this link.
        Some(
            FingerprintBuilder::new("cim-mlc/pass/cg/v1")
                .bool(cx.options.cg.pipeline)
                .bool(cx.options.cg.duplication)
                .u64(u64::from(cx.options.act_bits))
                .finish(),
        )
    }
}

/// The `mvm` pass: MVM-grained refinement (`CgScheduled → MvmScheduled`).
#[derive(Debug, Clone, Copy, Default)]
pub struct MvmPass;

impl Pass for MvmPass {
    fn name(&self) -> &'static str {
        "mvm"
    }

    fn run(
        &self,
        cx: &PassContext<'_>,
        diag: &mut Diagnostics,
        input: Artifact,
    ) -> Result<Artifact> {
        let Artifact::CgScheduled(a) = input else {
            return Err(stage_mismatch(self.name(), "cg", &input));
        };
        let cg = a.cg;
        let mvm = schedule_mvm_memo(
            &cg,
            cx.arch,
            cx.options.mvm,
            cx.options.act_bits,
            crate::pool::effective_threads(cx.options.jobs),
            cx.memo,
        );
        let refined = mvm
            .segments
            .iter()
            .flat_map(|s| s.plans.iter())
            .zip(cg.segments.iter().flat_map(|s| s.plans.iter()))
            .filter(|(m, c)| m.duplication > c.duplication)
            .count();
        diag.note(format!(
            "duplication refined on {refined} stage(s), staggered={}",
            mvm.staggered
        ));
        Ok(Artifact::MvmScheduled(Box::new(MvmScheduled { cg, mvm })))
    }

    fn fingerprint(&self, cx: &PassContext<'_>) -> Option<Fingerprint> {
        Some(
            FingerprintBuilder::new("cim-mlc/pass/mvm/v1")
                .bool(cx.options.mvm.duplication)
                .bool(cx.options.mvm.pipeline)
                .u64(u64::from(cx.options.act_bits))
                .finish(),
        )
    }
}

/// The `vvm` pass: VVM-grained refinement (`MvmScheduled → VvmScheduled`).
#[derive(Debug, Clone, Copy, Default)]
pub struct VvmPass;

impl Pass for VvmPass {
    fn name(&self) -> &'static str {
        "vvm"
    }

    fn run(
        &self,
        cx: &PassContext<'_>,
        diag: &mut Diagnostics,
        input: Artifact,
    ) -> Result<Artifact> {
        let Artifact::MvmScheduled(a) = input else {
            return Err(stage_mismatch(self.name(), "mvm", &input));
        };
        let MvmScheduled { cg, mvm } = *a;
        let vvm = schedule_vvm_memo(&cg, &mvm, cx.arch, cx.options.act_bits, cx.memo);
        let remapped = vvm
            .spreads
            .iter()
            .flat_map(|s| s.iter())
            .filter(|&&k| k > 1)
            .count();
        diag.note(format!(
            "wordline remapping (spread > 1) on {remapped} stage(s)"
        ));
        Ok(Artifact::VvmScheduled(Box::new(VvmScheduled {
            cg,
            mvm,
            vvm,
        })))
    }

    fn fingerprint(&self, cx: &PassContext<'_>) -> Option<Fingerprint> {
        Some(
            FingerprintBuilder::new("cim-mlc/pass/vvm/v1")
                .u64(u64::from(cx.options.act_bits))
                .finish(),
        )
    }
}

/// The `codegen` pass: lowers any scheduled artifact into an executable
/// meta-operator flow (`CgScheduled | MvmScheduled | VvmScheduled →
/// Codegenned`).
///
/// Codegen keeps the default [`Pass::fingerprint`] of `None`: flows can
/// reach [`CompileOptions::max_flow_ops`] meta-operators, far too large
/// to bank in a [compile cache](crate::cache), so the pass always
/// re-runs (its scheduled *input*, the expensive part, still caches).
#[derive(Debug, Clone, Copy, Default)]
pub struct CodegenPass;

impl Pass for CodegenPass {
    fn name(&self) -> &'static str {
        "codegen"
    }

    fn run(
        &self,
        cx: &PassContext<'_>,
        diag: &mut Diagnostics,
        input: Artifact,
    ) -> Result<Artifact> {
        if !matches!(
            input,
            Artifact::CgScheduled(_) | Artifact::MvmScheduled(_) | Artifact::VvmScheduled(_)
        ) {
            return Err(stage_mismatch(self.name(), "cg, mvm or vvm", &input));
        }
        let compiled = input.into_compiled(cx.graph.name(), cx.arch.name(), *cx.options)?;
        let (flow, layout) = generate_flow(&compiled, cx.graph, cx.arch)?;
        diag.note(format!("{} meta-operator(s)", flow.stmts().len()));
        Ok(Artifact::Codegenned(Box::new(Codegenned {
            compiled,
            flow,
            layout,
        })))
    }
}

fn stage_mismatch(pass: &str, wants: &str, got: &Artifact) -> CompileError {
    CompileError::Internal {
        message: format!(
            "pass `{pass}` consumes a `{wants}` artifact but received `{}`",
            got.kind().name()
        ),
    }
}

// ---------------------------------------------------------------------------
// Pipeline and session.

/// An ordered list of passes, assembled by [`Pipeline::plan`] or by hand.
///
/// The pipeline is inert data; [`Pipeline::session`] binds it to a model
/// and target for execution.
#[derive(Default)]
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("passes", &self.names())
            .finish()
    }
}

impl Pipeline {
    /// An empty pipeline; push passes by hand.
    #[must_use]
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// The standard pass list for `options` against `arch` — the exact
    /// levels [`Compiler::compile`](crate::Compiler::compile) runs:
    /// `stages` and `cg` always; `mvm` when the target's computing mode
    /// and [`CompileOptions::level`] admit it; `vvm` likewise. Code
    /// generation is not included — append [`CodegenPass`] when the flow
    /// is wanted.
    #[must_use]
    pub fn plan(options: &CompileOptions, arch: &CimArchitecture) -> Self {
        let mut p = Pipeline::new();
        p.push(Box::new(ExtractStagesPass));
        p.push(Box::new(CgPass));
        let want_mvm = match options.level {
            OptLevel::Auto => arch.mode().supports(ComputingMode::Xbm),
            OptLevel::Cg => false,
            OptLevel::CgMvm | OptLevel::CgMvmVvm => true,
        } && arch.mode().supports(ComputingMode::Xbm);
        let want_vvm = match options.level {
            OptLevel::Auto => arch.mode().supports(ComputingMode::Wlm),
            OptLevel::CgMvmVvm => true,
            _ => false,
        } && arch.mode().supports(ComputingMode::Wlm)
            && want_mvm;
        if want_mvm {
            p.push(Box::new(MvmPass));
        }
        if want_vvm {
            p.push(Box::new(VvmPass));
        }
        p
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// The pass names, in execution order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Number of passes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the pipeline has no passes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Replaces the first pass named `name` with `pass`. Returns whether
    /// a pass was replaced.
    pub fn replace(&mut self, name: &str, pass: Box<dyn Pass>) -> bool {
        match self.passes.iter().position(|p| p.name() == name) {
            Some(i) => {
                self.passes[i] = pass;
                true
            }
            None => false,
        }
    }

    /// Removes the first pass named `name`. Returns whether a pass was
    /// removed.
    pub fn remove(&mut self, name: &str) -> bool {
        match self.passes.iter().position(|p| p.name() == name) {
            Some(i) => {
                self.passes.remove(i);
                true
            }
            None => false,
        }
    }

    /// Inserts `pass` immediately after the first pass named `name`.
    /// Returns whether the anchor was found.
    pub fn insert_after(&mut self, name: &str, pass: Box<dyn Pass>) -> bool {
        match self.passes.iter().position(|p| p.name() == name) {
            Some(i) => {
                self.passes.insert(i + 1, pass);
                true
            }
            None => false,
        }
    }

    /// Binds the pipeline to a model and target, ready to run.
    #[must_use]
    pub fn session<'a>(
        self,
        graph: &'a Graph,
        arch: &'a CimArchitecture,
        options: CompileOptions,
    ) -> Session<'a> {
        Session {
            graph: Cow::Borrowed(graph),
            arch: Cow::Borrowed(arch),
            options,
            passes: self.passes,
            cursor: 0,
            artifact: Artifact::Source,
            timeline: PassTimeline::default(),
            cache: None,
            chain: None,
            scratch: crate::scratch::ScratchArena::new(),
            memo: RegionMemo::new(),
            record_regions: false,
        }
    }
}

/// One compilation in flight: a pass list, a cursor, and the current
/// [`Artifact`].
///
/// Drive it with [`Session::step`] (pause between passes, inspect via
/// [`Session::artifact`], intervene via [`Session::artifact_mut`] or
/// [`Session::skip_next`], then resume), or all at once with
/// [`Session::run`] / [`Session::finish`].
///
/// If a pass fails, the session is poisoned: the artifact resets to
/// [`Artifact::Source`] (the failed pass consumed its input) and further
/// stepping re-runs from the failed pass, which will reject the stale
/// stage — start a fresh session instead.
pub struct Session<'a> {
    /// Borrowed from the caller on a fresh session; owned after
    /// [`Session::recompile`] (the delta produces a new graph) or
    /// [`Session::into_owned`].
    graph: Cow<'a, Graph>,
    arch: Cow<'a, CimArchitecture>,
    options: CompileOptions,
    passes: Vec<Box<dyn Pass>>,
    cursor: usize,
    artifact: Artifact,
    timeline: PassTimeline,
    /// Compile cache consulted before each pass, when attached.
    cache: Option<Arc<dyn CompileCache>>,
    /// Fingerprint of the pass chain that produced `artifact`; `None`
    /// when no cache is attached, an uncacheable pass ran, or the caller
    /// touched the artifact (see [`crate::cache`]'s invalidation rules).
    chain: Option<Fingerprint>,
    /// Pooled scratch buffers shared by every pass of this session (and
    /// by the intra-graph worker threads a pass fans out to). Reset-peak
    /// bracketing around each pass feeds
    /// [`PassRecord::scratch_peak_bytes`](crate::PassRecord::scratch_peak_bytes).
    scratch: crate::scratch::ScratchArena,
    /// Per-region schedule memo shared by every pass of this session (see
    /// [`crate::region`]). Populated on the first (cold) run; consulted
    /// by [`Session::recompile`] to reuse schedules for unedited regions.
    memo: RegionMemo,
    /// Whether [`Session::step`] records per-pass region hit/miss deltas
    /// into the timeline. Off on cold compiles (region counts would
    /// double-count intra-model repetition); on during
    /// [`Session::recompile`].
    record_regions: bool,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("model", &self.graph.name())
            .field("arch", &self.arch.name())
            .field("cursor", &self.cursor)
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .field("stage", &self.artifact.kind().name())
            .finish()
    }
}

impl<'a> Session<'a> {
    /// The model being compiled.
    ///
    /// Since incremental recompilation landed, the session may own its
    /// graph (after [`Session::recompile`] or [`Session::into_owned`]),
    /// so the returned borrow is tied to `&self` rather than the
    /// session's lifetime parameter.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The target architecture. Borrow tied to `&self`, as with
    /// [`Session::graph`].
    #[must_use]
    pub fn arch(&self) -> &CimArchitecture {
        &self.arch
    }

    /// The options in force.
    #[must_use]
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Attaches a [`CompileCache`]: every subsequent cacheable pass is
    /// looked up by its [content-addressed fingerprint](crate::cache)
    /// before running, and stored after a miss. Outcomes land in the
    /// [`PassTimeline`]'s `cache` column.
    ///
    /// Attach before the first [`Session::step`]; on a session that has
    /// already advanced, the artifact's provenance is unknown, so the
    /// cache is held but never consulted.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<dyn CompileCache>) -> Self {
        self.chain = (self.cursor == 0 && matches!(self.artifact, Artifact::Source))
            .then(|| source_fingerprint(&self.graph, &self.arch));
        self.cache = Some(cache);
        self
    }

    /// Name of the next pass to run, or `None` when the pipeline is done.
    #[must_use]
    pub fn next_pass(&self) -> Option<&'static str> {
        self.passes.get(self.cursor).map(|p| p.name())
    }

    /// Number of passes already executed or skipped.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.cursor
    }

    /// Whether every pass has run.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.cursor >= self.passes.len()
    }

    /// The current artifact.
    #[must_use]
    pub fn artifact(&self) -> &Artifact {
        &self.artifact
    }

    /// Mutable access to the current artifact, for intervening between
    /// passes (edit stage plans, drop stages, …). The caller owns the
    /// consequences: later passes see the modified artifact.
    #[must_use]
    pub fn artifact_mut(&mut self) -> &mut Artifact {
        // The caller may change the artifact arbitrarily: its provenance
        // no longer matches the pass chain, so stop caching.
        self.chain = None;
        &mut self.artifact
    }

    /// Replaces the current artifact wholesale, returning the previous
    /// one — resume-from-elsewhere for checkpointed artifacts. Like
    /// [`Session::artifact_mut`], this stops compile-cache participation
    /// for the rest of the session.
    pub fn replace_artifact(&mut self, artifact: Artifact) -> Artifact {
        self.chain = None;
        std::mem::replace(&mut self.artifact, artifact)
    }

    /// The per-pass instrumentation collected so far.
    #[must_use]
    pub fn timeline(&self) -> &PassTimeline {
        &self.timeline
    }

    /// Runs the next pass. Returns `Ok(true)` if a pass ran, `Ok(false)`
    /// if the pipeline was already finished.
    ///
    /// # Errors
    /// Propagates the pass's [`crate::CompileError`]; see the type docs
    /// for the poisoning behaviour on failure.
    pub fn step(&mut self) -> Result<bool> {
        let Some(pass) = self.passes.get(self.cursor) else {
            return Ok(false);
        };
        let cx = PassContext {
            graph: &self.graph,
            arch: &self.arch,
            options: &self.options,
            scratch: &self.scratch,
            memo: &self.memo,
        };
        // Advance the cache-key chain: this pass's key links its
        // fingerprint onto the chain that produced the current artifact.
        // An uncacheable pass (fingerprint `None`) breaks the chain for
        // the rest of the session.
        let key = match (self.cache.as_ref(), self.chain) {
            (Some(_), Some(prev)) => pass.fingerprint(&cx).map(|pf| prev.chain(pf)),
            _ => None,
        };
        self.chain = key;
        let started = TraceClock::global().stopwatch();
        let mut span = cim_obs::span("pass", pass.name());
        cim_obs::count("compile.passes", 1);
        if let Some(key) = key {
            let cache = self.cache.as_ref().expect("a key implies a cache");
            if let Some(artifact) = cache.load(&key) {
                let wall_ms = started.elapsed_ms();
                cim_obs::count("compile.cache.hits", 1);
                span.set(keys::CACHE, "hit");
                let mut diag = Diagnostics::default();
                diag.note(format!("served from cache ({key})"));
                self.timeline
                    .record(pass.name(), &artifact, wall_ms, "hit", 0, diag, 0, 0);
                self.artifact = artifact;
                self.cursor += 1;
                return Ok(true);
            }
        }
        let mut diag = Diagnostics::default();
        let input = std::mem::replace(&mut self.artifact, Artifact::Source);
        self.scratch.reset_peak();
        let (region_hits_0, region_misses_0) = self.memo.counters();
        let output = match pass.run(&cx, &mut diag, input) {
            Ok(output) => output,
            Err(e) => {
                self.chain = None;
                return Err(e);
            }
        };
        let (region_hits_1, region_misses_1) = self.memo.counters();
        let (region_hits, region_misses) = if self.record_regions {
            (
                region_hits_1 - region_hits_0,
                region_misses_1 - region_misses_0,
            )
        } else {
            (0, 0)
        };
        if region_hits + region_misses > 0 {
            diag.note(format!(
                "regions: {region_hits} hit(s), {region_misses} miss(es)"
            ));
        }
        let scratch_peak = self.scratch.peak_bytes();
        let cache_outcome = match (self.cache.as_ref(), key) {
            (Some(cache), Some(key)) => {
                cim_obs::count("compile.cache.misses", 1);
                if cache.store(&key, &output) {
                    "miss+store"
                } else {
                    "miss"
                }
            }
            _ => "",
        };
        span.set(keys::CACHE, cache_outcome);
        span.set(keys::REGION_HITS, region_hits);
        span.set(keys::REGION_MISSES, region_misses);
        let wall_ms = started.elapsed_ms();
        self.timeline.record(
            pass.name(),
            &output,
            wall_ms,
            cache_outcome,
            scratch_peak,
            diag,
            region_hits,
            region_misses,
        );
        self.artifact = output;
        self.cursor += 1;
        Ok(true)
    }

    /// Skips the next pass without running it, recording the skip in the
    /// timeline. Returns the skipped pass's name, or `None` when the
    /// pipeline is finished. Skipping stops compile-cache participation
    /// for the rest of the session (the artifact no longer corresponds
    /// to the executed pass chain).
    pub fn skip_next(&mut self) -> Option<&'static str> {
        let name = self.passes.get(self.cursor).map(|p| p.name())?;
        self.chain = None;
        self.timeline.record_skip(name);
        self.cursor += 1;
        Some(name)
    }

    /// Runs every remaining pass.
    ///
    /// # Errors
    /// Propagates the first failing pass's error.
    pub fn run(&mut self) -> Result<()> {
        while self.step()? {}
        Ok(())
    }

    /// Runs every remaining pass and converts the final artifact into the
    /// one-shot [`Compiled`] result.
    ///
    /// # Errors
    /// Propagates pass errors, or [`CompileError::Internal`] when the
    /// pipeline never produced a schedule.
    pub fn finish(mut self) -> Result<Compiled> {
        self.run()?;
        self.artifact
            .into_compiled(self.graph.name(), self.arch.name(), self.options)
    }

    /// Tears the session down into its final artifact and timeline
    /// without converting to [`Compiled`].
    #[must_use]
    pub fn into_parts(self) -> (Artifact, PassTimeline) {
        (self.artifact, self.timeline)
    }

    /// Converts the current artifact into a [`Compiled`] result without
    /// consuming the session — the inspection point after
    /// [`Session::recompile`], which keeps the session alive for further
    /// deltas.
    ///
    /// # Errors
    /// [`CompileError::Internal`] when no scheduling level has run yet.
    pub fn compiled(&self) -> Result<Compiled> {
        self.artifact
            .clone()
            .into_compiled(self.graph.name(), self.arch.name(), self.options)
    }

    /// Applies a typed [`GraphDelta`] to the session's graph and re-runs
    /// the pipeline, reusing per-region schedules for every segment whose
    /// region content the delta did not touch (see [`crate::region`]).
    ///
    /// This is the sole graph-mutation entry point that preserves
    /// incremental state: [`Session::artifact_mut`] /
    /// [`Session::replace_artifact`] hand the artifact to the caller and
    /// stop cache participation, whereas `recompile` re-derives
    /// everything from the mutated graph. The timeline is reset so its
    /// records (including the per-pass
    /// [`region_hits`](crate::PassRecord::region_hits) /
    /// [`region_misses`](crate::PassRecord::region_misses) columns)
    /// describe this recompilation alone; the scheduling memo persists,
    /// which is what makes the recompile incremental. Works from any
    /// session state, including a partially-stepped or failed one — the
    /// cursor rewinds to the first pass.
    ///
    /// The result is bit-identical to a fresh compile of the mutated
    /// graph: region keys hash everything the schedulers read, so a memo
    /// hit returns exactly what rescheduling would have computed.
    ///
    /// # Errors
    /// [`CompileError::InvalidDelta`] when the delta does not validate
    /// against the current graph (the message names the offending node or
    /// edge); pass errors as [`Session::run`].
    pub fn recompile(&mut self, delta: &GraphDelta) -> Result<()> {
        let mutated = delta
            .apply(&self.graph)
            .map_err(|e| CompileError::InvalidDelta {
                message: e.to_string(),
            })?;
        self.graph = Cow::Owned(mutated);
        self.cursor = 0;
        self.artifact = Artifact::Source;
        self.timeline = PassTimeline::default();
        if self.cache.is_some() {
            self.chain = Some(source_fingerprint(&self.graph, &self.arch));
        }
        self.record_regions = true;
        self.run()
    }

    /// Detaches the session from its borrowed inputs by cloning the graph
    /// and architecture into the session, yielding a `Session<'static>`
    /// that can outlive the caller's data — what `cimc serve` uses to pin
    /// sessions across requests for [`Session::recompile`].
    #[must_use]
    pub fn into_owned(self) -> Session<'static> {
        Session {
            graph: Cow::Owned(self.graph.into_owned()),
            arch: Cow::Owned(self.arch.into_owned()),
            options: self.options,
            passes: self.passes,
            cursor: self.cursor,
            artifact: self.artifact,
            timeline: self.timeline,
            cache: self.cache,
            chain: self.chain,
            scratch: self.scratch,
            memo: self.memo,
            record_regions: self.record_regions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;
    use cim_arch::presets;
    use cim_graph::zoo;

    #[test]
    fn plan_matches_computing_mode() {
        let opts = CompileOptions::default();
        assert_eq!(
            Pipeline::plan(&opts, &presets::jia_isscc21()).names(),
            ["stages", "cg"]
        );
        assert_eq!(
            Pipeline::plan(&opts, &presets::isaac_baseline()).names(),
            ["stages", "cg", "mvm"]
        );
        assert_eq!(
            Pipeline::plan(&opts, &presets::jain_sram()).names(),
            ["stages", "cg", "mvm", "vvm"]
        );
    }

    #[test]
    fn plan_honours_explicit_level() {
        let opts = CompileOptions {
            level: OptLevel::Cg,
            ..CompileOptions::default()
        };
        assert_eq!(
            Pipeline::plan(&opts, &presets::jain_sram()).names(),
            ["stages", "cg"]
        );
        // Requesting deeper levels than the mode supports degrades.
        let opts = CompileOptions {
            level: OptLevel::CgMvmVvm,
            ..CompileOptions::default()
        };
        assert_eq!(
            Pipeline::plan(&opts, &presets::jia_isscc21()).names(),
            ["stages", "cg"]
        );
    }

    #[test]
    fn stepped_session_produces_cumulative_artifacts() {
        let graph = zoo::lenet5();
        let arch = presets::jain_sram();
        let opts = CompileOptions::default();
        let mut session = Pipeline::plan(&opts, &arch).session(&graph, &arch, opts);
        let mut kinds = vec![session.artifact().kind()];
        while session.step().unwrap() {
            kinds.push(session.artifact().kind());
        }
        assert_eq!(
            kinds,
            [
                StageKind::Source,
                StageKind::Staged,
                StageKind::Cg,
                StageKind::Mvm,
                StageKind::Vvm
            ]
        );
        assert_eq!(session.timeline().records.len(), 4);
        let compiled = session.finish().unwrap();
        assert_eq!(compiled.report().level, "cg+mvm+vvm");
    }

    #[test]
    fn codegen_pass_produces_a_flow() {
        let graph = zoo::lenet5();
        let arch = presets::isaac_baseline();
        let opts = CompileOptions::default();
        let mut pipeline = Pipeline::plan(&opts, &arch);
        pipeline.push(Box::new(CodegenPass));
        let mut session = pipeline.session(&graph, &arch, opts);
        session.run().unwrap();
        assert_eq!(session.artifact().kind(), StageKind::Codegen);
        assert!(!session.artifact().flow().unwrap().stmts().is_empty());
        let (flow, layout) = crate::codegen::generate_flow(
            &Compiler::new().compile(&graph, &arch).unwrap(),
            &graph,
            &arch,
        )
        .unwrap();
        assert_eq!(session.artifact().flow().unwrap(), &flow);
        assert_eq!(
            session.artifact().layout().unwrap().total_elements(),
            layout.total_elements()
        );
    }

    #[test]
    fn pass_on_wrong_stage_is_an_internal_error() {
        let graph = zoo::lenet5();
        let arch = presets::isaac_baseline();
        let opts = CompileOptions::default();
        let mut pipeline = Pipeline::new();
        pipeline.push(Box::new(MvmPass)); // needs a cg artifact, gets source
        let mut session = pipeline.session(&graph, &arch, opts);
        let err = session.step().unwrap_err();
        assert!(matches!(err, CompileError::Internal { .. }), "{err}");
        let msg = err.to_string();
        assert!(msg.contains("mvm") && msg.contains("source"), "{msg}");
    }

    #[test]
    fn stage_kind_names_round_trip() {
        for kind in [
            StageKind::Source,
            StageKind::Staged,
            StageKind::Cg,
            StageKind::Mvm,
            StageKind::Vvm,
            StageKind::Codegen,
        ] {
            assert_eq!(StageKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(StageKind::parse("bogus"), None);
    }

    #[test]
    fn recompile_matches_fresh_compile_and_reuses_regions() {
        let graph = zoo::vit_base();
        let arch = presets::isaac_baseline();
        let opts = CompileOptions::default();
        let mut session = Pipeline::plan(&opts, &arch).session(&graph, &arch, opts);
        session.run().unwrap();

        // Retune one layer's fc1 width; every other layer keeps its
        // region content.
        let delta = cim_graph::GraphDelta::new().with(cim_graph::GraphEdit::RetuneOpParams {
            node: "l4.fc1".into(),
            op: cim_graph::OpKind::Linear { out_features: 1024 },
        });
        session.recompile(&delta).unwrap();
        let incremental = session.compiled().unwrap();

        let fresh_graph = delta.apply(&graph).unwrap();
        let fresh = Compiler::new().compile(&fresh_graph, &arch).unwrap();
        assert_eq!(incremental.cg, fresh.cg);
        assert_eq!(incremental.mvm, fresh.mvm);
        assert_eq!(incremental.vvm, fresh.vvm);

        // The unedited regions were answered from the memo.
        let (hits, misses) = session.timeline().region_stats();
        assert!(hits > 0, "no region hits ({hits} hit / {misses} miss)");
        assert!(
            session.timeline().records.iter().any(|r| r.region_hits > 0),
            "no pass recorded region hits"
        );
    }

    #[test]
    fn recompile_rejects_invalid_deltas() {
        let graph = zoo::lenet5();
        let arch = presets::isaac_baseline();
        let opts = CompileOptions::default();
        let mut session = Pipeline::plan(&opts, &arch).session(&graph, &arch, opts);
        session.run().unwrap();
        let delta = cim_graph::GraphDelta::new().with(cim_graph::GraphEdit::RemoveNode {
            node: "no-such-node".into(),
        });
        let err = session.recompile(&delta).unwrap_err();
        assert!(matches!(err, CompileError::InvalidDelta { .. }), "{err}");
        assert!(err.to_string().contains("no-such-node"), "{err}");
    }

    #[test]
    fn pipeline_edits_find_their_anchor() {
        let opts = CompileOptions::default();
        let arch = presets::isaac_baseline();
        let mut p = Pipeline::plan(&opts, &arch);
        assert!(p.remove("mvm"));
        assert!(!p.remove("mvm"));
        assert!(p.insert_after("cg", Box::new(MvmPass)));
        assert!(p.replace("mvm", Box::new(MvmPass)));
        assert!(!p.replace("vvm", Box::new(VvmPass)));
        assert_eq!(p.names(), ["stages", "cg", "mvm"]);
    }
}
