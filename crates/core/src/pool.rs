//! A deterministic work-queue thread pool for batch evaluation.
//!
//! [`run_ordered`] is the scheduling core shared by the compiler's own
//! intra-graph fan-out ([`crate::cg`]'s segmentation rows, [`crate::mvm`]'s
//! per-segment refinement), the `cim-bench` sweep driver and the
//! design-space explorer (`cim-dse`): workers pull item indices off a
//! shared atomic counter — so a slow item never blocks the rest of the
//! batch behind a static partition — and write results back *by index*,
//! so the output order equals the input order regardless of worker count
//! or interleaving. Anything built on top of it therefore produces
//! thread-count-invariant results as long as the per-item function is
//! pure.
//!
//! Worker threads are named `cim-pool-{i}` so they are identifiable in
//! debuggers, profilers and panic backtraces, and a panic inside `f` is
//! re-raised on the caller with the index of the job that panicked.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count actually worth spawning for a CPU-bound fan-out:
/// `requested` clamped to the machine's available parallelism.
///
/// The compiler's intra-graph call sites branch on this before touching
/// [`run_ordered`], so `--jobs 4` on a single-core container degrades to
/// the plain sequential path (no threads, no overhead) instead of
/// oversubscribing one CPU. Results are unaffected either way —
/// [`run_ordered`] is thread-count-invariant.
#[must_use]
pub fn effective_threads(requested: usize) -> usize {
    requested
        .max(1)
        .min(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Maps `f` over `items` on `threads` worker threads (clamped to
/// `1..=items.len()`), returning the results in input order.
///
/// `f` must be pure with respect to the output (it may hit shared
/// caches): the contract every caller relies on is that the returned
/// vector is identical for any `threads` value.
///
/// # Panics
/// Panics if a worker thread panics (a bug in `f`, not an input error).
/// The message names the input index of the job that panicked — when
/// several jobs panic concurrently, the lowest index wins.
pub fn run_ordered<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    // First panic per worker, recorded as (job index, payload text); the
    // lowest job index is re-raised after the scope joins so the caller
    // sees a deterministic culprit.
    let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let worker_loop = || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(out) => {
                        *slots[i].lock().expect("pool worker poisoned a slot") = Some(out);
                    }
                    Err(payload) => {
                        let text = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_owned());
                        panics
                            .lock()
                            .expect("pool panic log poisoned")
                            .push((i, text));
                        break;
                    }
                }
            };
            std::thread::Builder::new()
                .name(format!("cim-pool-{worker}"))
                .spawn_scoped(scope, worker_loop)
                .expect("spawning a cim-pool worker thread failed");
        }
    });
    let mut panics = panics.into_inner().expect("pool panic log poisoned");
    if let Some((job, text)) = panics.drain(..).min_by_key(|&(job, _)| job) {
        panic!("cim-pool worker panicked on job {job}: {text}");
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("pool worker poisoned a slot")
                .expect("every item index was claimed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|n| n * n).collect();
        for threads in [1, 2, 4, 16, 200] {
            assert_eq!(run_ordered(&items, threads, |n| n * n), expect);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = run_ordered(&[] as &[u32], 4, |n| *n);
        assert!(out.is_empty());
    }

    #[test]
    fn work_queue_balances_uneven_items() {
        // A deliberately skewed workload: one heavy item plus many light
        // ones. Correctness (order) must hold; this is primarily a
        // does-not-deadlock/does-not-partition-statically check.
        let items: Vec<u64> = (0..32).collect();
        let out = run_ordered(&items, 4, |n| {
            if *n == 0 {
                (0..10_000u64).fold(0, |a, b| a ^ b.wrapping_mul(*n + 1))
            } else {
                *n
            }
        });
        assert_eq!(out[5], 5);
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn workers_are_named() {
        let names = run_ordered(&[(), (), (), ()], 4, |()| {
            std::thread::current().name().map(str::to_owned)
        });
        for name in names.into_iter().flatten() {
            assert!(name.starts_with("cim-pool-"), "{name}");
        }
    }

    #[test]
    fn worker_panic_names_the_job() {
        let items: Vec<u32> = (0..8).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_ordered(&items, 2, |n| {
                assert!(*n != 5, "job five is poisoned");
                *n
            })
        }))
        .unwrap_err();
        let text = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a formatted string");
        assert!(text.contains("job 5"), "{text}");
        assert!(text.contains("job five is poisoned"), "{text}");
    }
}
