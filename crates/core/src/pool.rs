//! A deterministic work-queue thread pool for batch evaluation.
//!
//! [`run_ordered`] is the scheduling core shared by the compiler's own
//! intra-graph fan-out ([`crate::cg`]'s segmentation rows, [`crate::mvm`]'s
//! per-segment refinement), the `cim-bench` sweep driver and the
//! design-space explorer (`cim-dse`): workers pull item indices off a
//! shared atomic counter — so a slow item never blocks the rest of the
//! batch behind a static partition — and write results back *by index*,
//! so the output order equals the input order regardless of worker count
//! or interleaving. Anything built on top of it therefore produces
//! thread-count-invariant results as long as the per-item function is
//! pure.
//!
//! Worker threads are named `cim-pool-{i}` so they are identifiable in
//! debuggers, profilers and panic backtraces, and a panic inside `f` is
//! re-raised on the caller with the index of the job that panicked.
//!
//! # Observability
//!
//! Both schedulers are instrumented through [`cim_obs`] (free when the
//! collector is disabled): [`run_ordered`] wraps each item in a
//! `pool:job` span, and [`Pool`] records per-job queue wait
//! (`pool.queue_wait_us` histogram plus a `pool:queue_wait` trace
//! span), live queue depth (`pool.queue_depth` gauge), job and busy
//! counters (`pool.jobs`, `pool.busy_us`) for worker-utilization math
//! (`busy_us / (workers × wall time)`).

use cim_obs::{keys, TraceClock};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Worker count actually worth spawning for a CPU-bound fan-out:
/// `requested` clamped to the machine's available parallelism.
///
/// The compiler's intra-graph call sites branch on this before touching
/// [`run_ordered`], so `--jobs 4` on a single-core container degrades to
/// the plain sequential path (no threads, no overhead) instead of
/// oversubscribing one CPU. Results are unaffected either way —
/// [`run_ordered`] is thread-count-invariant.
#[must_use]
pub fn effective_threads(requested: usize) -> usize {
    requested
        .max(1)
        .min(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Maps `f` over `items` on `threads` worker threads (clamped to
/// `1..=items.len()`), returning the results in input order.
///
/// `f` must be pure with respect to the output (it may hit shared
/// caches): the contract every caller relies on is that the returned
/// vector is identical for any `threads` value.
///
/// # Panics
/// Panics if a worker thread panics (a bug in `f`, not an input error).
/// The message names the input index of the job that panicked — when
/// several jobs panic concurrently, the lowest index wins.
pub fn run_ordered<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    // First panic per worker, recorded as (job index, payload text); the
    // lowest job index is re-raised after the scope joins so the caller
    // sees a deterministic culprit.
    let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let worker_loop = || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                match catch_unwind(AssertUnwindSafe(|| {
                    let mut span = cim_obs::span("pool", "job");
                    span.set(keys::INDEX, i as u64);
                    f(item)
                })) {
                    Ok(out) => {
                        *slots[i].lock().expect("pool worker poisoned a slot") = Some(out);
                    }
                    Err(payload) => {
                        let text = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_owned());
                        panics
                            .lock()
                            .expect("pool panic log poisoned")
                            .push((i, text));
                        break;
                    }
                }
            };
            std::thread::Builder::new()
                .name(format!("cim-pool-{worker}"))
                .spawn_scoped(scope, worker_loop)
                .expect("spawning a cim-pool worker thread failed");
        }
    });
    let mut panics = panics.into_inner().expect("pool panic log poisoned");
    if let Some((job, text)) = panics.drain(..).min_by_key(|&(job, _)| job) {
        panic!("cim-pool worker panicked on job {job}: {text}");
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("pool worker poisoned a slot")
                .expect("every item index was claimed")
        })
        .collect()
}

/// Rejection returned by [`Pool::try_submit`] when the bounded queue is
/// full: the admission-control signal a server turns into a structured
/// "overloaded" response instead of unbounded buffering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolFull {
    /// Jobs queued (but not yet started) at rejection time.
    pub depth: usize,
    /// The queue's capacity.
    pub capacity: usize,
}

impl std::fmt::Display for PoolFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pool queue full ({} of {} slots taken)",
            self.depth, self.capacity
        )
    }
}

impl std::error::Error for PoolFull {}

/// A pending job stamped with its enqueue time, so the dequeueing
/// worker can attribute queue wait without touching the clock twice.
struct Queued {
    job: Box<dyn FnOnce() + Send>,
    enqueued_us: u64,
}

struct PoolState {
    jobs: std::collections::VecDeque<Queued>,
    draining: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    available: std::sync::Condvar,
    capacity: usize,
}

/// A persistent, bounded-queue thread pool for long-running services.
///
/// Where [`run_ordered`] maps one batch and joins, a [`Pool`] keeps its
/// `cim-pool-{i}` workers alive across submissions — this is what
/// `cimc serve` multiplexes concurrent requests onto. Admission is
/// bounded: [`try_submit`](Pool::try_submit) rejects with [`PoolFull`]
/// instead of queueing without limit, so overload surfaces as a
/// structured response, not ballooning memory and latency.
///
/// A panicking job is caught and reported on stderr; the worker survives
/// and moves on to the next job, so one poisoned request cannot shrink
/// the pool. [`drain`](Pool::drain) finishes every queued job and joins
/// the workers (graceful shutdown).
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawns `threads` workers (clamped via [`effective_threads`])
    /// fed from a queue bounded at `capacity` pending jobs
    /// (`capacity >= 1` enforced).
    ///
    /// # Panics
    /// Panics if the OS refuses to spawn a worker thread.
    #[must_use]
    pub fn new(threads: usize, capacity: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: std::collections::VecDeque::new(),
                draining: false,
            }),
            available: std::sync::Condvar::new(),
            capacity: capacity.max(1),
        });
        let workers = (0..effective_threads(threads))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cim-pool-{i}"))
                    .spawn(move || Pool::worker_loop(&shared))
                    .expect("spawning a cim-pool worker thread failed")
            })
            .collect();
        Pool { shared, workers }
    }

    fn worker_loop(shared: &PoolShared) {
        loop {
            let (queued, depth) = {
                let mut state = shared.state.lock().expect("pool state poisoned");
                loop {
                    if let Some(queued) = state.jobs.pop_front() {
                        break (queued, state.jobs.len());
                    }
                    if state.draining {
                        return;
                    }
                    state = shared
                        .available
                        .wait(state)
                        .expect("pool state poisoned while waiting");
                }
            };
            let Queued { job, enqueued_us } = queued;
            let dequeued_us = TraceClock::global().now_us();
            cim_obs::gauge_set("pool.queue_depth", depth as i64);
            cim_obs::observe_us(
                "pool.queue_wait_us",
                dequeued_us.saturating_sub(enqueued_us),
            );
            cim_obs::complete_span("pool", "queue_wait", enqueued_us, dequeued_us, Vec::new());
            cim_obs::count("pool.jobs", 1);
            let started = TraceClock::global().stopwatch();
            if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                let text = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                eprintln!("cim-pool worker: job panicked: {text}");
            }
            cim_obs::count("pool.busy_us", started.elapsed_us());
        }
    }

    /// Number of jobs queued but not yet started.
    ///
    /// # Panics
    /// Panics if a previous pool user panicked while holding the lock.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("pool state poisoned")
            .jobs
            .len()
    }

    /// The queue's capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues `job`, or rejects it with [`PoolFull`] when `capacity`
    /// jobs are already pending (or the pool is draining).
    ///
    /// # Errors
    /// Returns [`PoolFull`] with the observed depth when the queue is at
    /// capacity or [`drain`](Pool::drain) has begun.
    ///
    /// # Panics
    /// Panics if a previous pool user panicked while holding the lock.
    pub fn try_submit(&self, job: Box<dyn FnOnce() + Send>) -> Result<(), PoolFull> {
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        if state.draining || state.jobs.len() >= self.shared.capacity {
            return Err(PoolFull {
                depth: state.jobs.len(),
                capacity: self.shared.capacity,
            });
        }
        state.jobs.push_back(Queued {
            job,
            enqueued_us: TraceClock::global().now_us(),
        });
        let depth = state.jobs.len();
        drop(state);
        cim_obs::gauge_set("pool.queue_depth", depth as i64);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Finishes every queued job, then joins the workers. Further
    /// submissions are rejected the moment this is called.
    ///
    /// # Panics
    /// Panics if a previous pool user panicked while holding the lock,
    /// or if a worker thread cannot be joined.
    pub fn drain(mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.draining = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("cim-pool worker thread panicked");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Best-effort drain when the owner forgets: mark draining and
        // detach (joining in drop could deadlock a panicking thread).
        if let Ok(mut state) = self.shared.state.lock() {
            state.draining = true;
        }
        self.shared.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|n| n * n).collect();
        for threads in [1, 2, 4, 16, 200] {
            assert_eq!(run_ordered(&items, threads, |n| n * n), expect);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = run_ordered(&[] as &[u32], 4, |n| *n);
        assert!(out.is_empty());
    }

    #[test]
    fn work_queue_balances_uneven_items() {
        // A deliberately skewed workload: one heavy item plus many light
        // ones. Correctness (order) must hold; this is primarily a
        // does-not-deadlock/does-not-partition-statically check.
        let items: Vec<u64> = (0..32).collect();
        let out = run_ordered(&items, 4, |n| {
            if *n == 0 {
                (0..10_000u64).fold(0, |a, b| a ^ b.wrapping_mul(*n + 1))
            } else {
                *n
            }
        });
        assert_eq!(out[5], 5);
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn workers_are_named() {
        let names = run_ordered(&[(), (), (), ()], 4, |()| {
            std::thread::current().name().map(str::to_owned)
        });
        for name in names.into_iter().flatten() {
            assert!(name.starts_with("cim-pool-"), "{name}");
        }
    }

    #[test]
    fn persistent_pool_runs_jobs_and_drains_gracefully() {
        let pool = Pool::new(2, 64);
        assert_eq!(pool.capacity(), 64);
        assert!(pool.workers() >= 1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..40 {
            let counter = Arc::clone(&counter);
            pool.try_submit(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }))
            .expect("queue has room");
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn full_queue_rejects_with_depth_and_capacity() {
        let pool = Pool::new(1, 2);
        let gate = Arc::new(Mutex::new(()));
        // Park the single worker on a held lock so the queue backs up.
        let held = gate.lock().unwrap();
        let block = Arc::clone(&gate);
        pool.try_submit(Box::new(move || {
            drop(block.lock());
        }))
        .expect("first job admitted");
        // Wait for the worker to pick the blocker up so the queue is
        // provably empty before we fill it.
        while pool.depth() > 0 {
            std::thread::yield_now();
        }
        pool.try_submit(Box::new(|| {})).expect("slot 1");
        pool.try_submit(Box::new(|| {})).expect("slot 2");
        let err = pool.try_submit(Box::new(|| {})).unwrap_err();
        assert_eq!(
            err,
            PoolFull {
                depth: 2,
                capacity: 2
            }
        );
        assert!(err.to_string().contains("2 of 2"), "{err}");
        drop(held);
        pool.drain();
    }

    #[test]
    fn draining_pool_rejects_new_work_but_finishes_queued_jobs() {
        let pool = Pool::new(1, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let counter = Arc::clone(&counter);
            pool.try_submit(Box::new(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }))
            .unwrap();
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = Pool::new(1, 8);
        pool.try_submit(Box::new(|| panic!("poisoned request")))
            .unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.try_submit(Box::new(move || {
            c.fetch_add(1, Ordering::Relaxed);
        }))
        .unwrap();
        pool.drain();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_names_the_job() {
        let items: Vec<u32> = (0..8).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_ordered(&items, 2, |n| {
                assert!(*n != 5, "job five is poisoned");
                *n
            })
        }))
        .unwrap_err();
        let text = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a formatted string");
        assert!(text.contains("job 5"), "{text}");
        assert!(text.contains("job five is poisoned"), "{text}");
    }
}
