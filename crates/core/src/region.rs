//! Per-region schedule memoization for incremental recompilation.
//!
//! A *region* is one pipeline stage, identified by its content
//! fingerprint ([`crate::cache::region_fingerprint`])
//! rather than its position or [`NodeId`](cim_graph::NodeId). The
//! CG/MVM/VVM schedulers intern each stage into a [`RegionMemo`] and key
//! every per-segment schedule they produce by the *sequence of region
//! ids* the segment covers. When [`Session::recompile`](crate::Session::recompile)
//! re-runs the pipeline after a [`GraphDelta`](cim_graph::GraphDelta),
//! segments whose region-id sequences are unchanged are answered from the
//! memo — only segments containing an edited region are rescheduled.
//!
//! # Validity
//!
//! A memo lives inside one [`Session`](crate::Session), whose
//! architecture and options are fixed for its lifetime. Region ids
//! therefore fully determine every cached value: two stages with equal
//! content fingerprints are scheduled identically under the session's
//! (arch, options, act_bits), so serving the cached segment is
//! correctness-preserving — verified bit-for-bit by the equivalence
//! proptests and the `incremental-smoke` CI gate.
//!
//! # Counters
//!
//! [`RegionMemo::counters`] reports hits/misses at *segment lookup*
//! granularity, weighted by the number of stages (regions) the segment
//! covers, so the numbers read as "regions reused" vs "regions
//! rescheduled". The internal DP cost memo is not counted — it is a
//! latency-estimation shortcut, not a schedule reuse.

use crate::alloc::AllocItem;
use crate::cache::{region_fingerprint, Fingerprint};
use crate::cg::Segment;
use crate::stage::Stage;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A memo key: the run of region ids a cached value covers.
type RegionKey = Box<[u32]>;

/// A memoized DP row: one latency per budget-feasible candidate segment.
type Row = Arc<[f64]>;

/// Per-session memo of region ids and region-keyed schedules.
///
/// Shared by the scheduler's worker threads (all maps are behind
/// mutexes; counters are atomic). Create one per [`Session`](crate::Session);
/// the schedulers' `_memo` entry points thread it through the pipeline.
#[derive(Debug, Default)]
pub struct RegionMemo {
    /// Content-fingerprint → dense region id, in insertion order.
    /// Interning happens serially before any parallel fan-out, so ids are
    /// deterministic for a given stage list; their numeric values never
    /// influence schedules, only memo keys.
    ids: Mutex<HashMap<Fingerprint, u32>>,
    /// DP range-latency memo (CG segmentation cost estimates), keyed by
    /// the region-id run `[start..=end]`. Not counted in hit/miss.
    costs: Mutex<HashMap<RegionKey, f64>>,
    /// DP row memo: every budget-feasible candidate-segment latency for a
    /// row, keyed by the region-id run of the row's budget window. One
    /// lookup answers a whole row, so recompiles skip the per-candidate
    /// probes for every row outside the edit's window. Not counted in
    /// hit/miss (like `costs`, a latency-estimation shortcut).
    rows: Mutex<HashMap<RegionKey, Row>>,
    /// Per-region scheduling stats (core need, cycles per MVM, allocator
    /// item), indexed by region id — content-determined under the
    /// session's fixed (arch, act_bits), so a recompile recomputes them
    /// only for regions it has never seen. Not counted in hit/miss.
    stats: Mutex<Vec<Option<StageStats>>>,
    /// CG segment schedules keyed by the region-id run they cover, with
    /// plans rebased to segment-relative stage indices.
    cg_segments: Mutex<HashMap<RegionKey, Segment>>,
    /// MVM-refined segment schedules, same keying as `cg_segments`.
    mvm_segments: Mutex<HashMap<RegionKey, Segment>>,
    /// VVM-refined segment schedules plus their per-plan spread factors.
    vvm_segments: Mutex<HashMap<RegionKey, (Segment, Vec<u32>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RegionMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> Self {
        RegionMemo::default()
    }

    /// Interns every stage, returning one dense region id per stage.
    ///
    /// Called serially (before any parallel fan-out) so id assignment is
    /// deterministic in stage order.
    #[must_use]
    pub fn intern_stages(&self, stages: &[Stage]) -> Vec<u32> {
        let mut ids = self.ids.lock().unwrap();
        stages
            .iter()
            .map(|s| {
                let fp = region_fingerprint(s);
                let next = ids.len() as u32;
                *ids.entry(fp).or_insert(next)
            })
            .collect()
    }

    /// Cached DP latency estimate for the region run `key`, if any.
    #[must_use]
    pub fn cost(&self, key: &[u32]) -> Option<f64> {
        self.costs.lock().unwrap().get(key).copied()
    }

    /// Stores a DP latency estimate.
    pub fn store_cost(&self, key: &[u32], cost: f64) {
        self.costs.lock().unwrap().insert(key.into(), cost);
    }

    /// Per-region stats for region `id`, computing and caching them on
    /// first sight. `compute` must be a pure function of the region's
    /// content (plus the session-fixed arch/options), like every other
    /// entry in the memo.
    pub fn stage_stats(&self, id: u32, compute: impl FnOnce() -> StageStats) -> StageStats {
        let mut stats = self.stats.lock().unwrap();
        let slot = id as usize;
        if slot >= stats.len() {
            stats.resize(slot + 1, None);
        }
        *stats[slot].get_or_insert_with(|| {
            let mut span = cim_obs::span("region", "stage_stats");
            span.set(cim_obs::keys::INDEX, u64::from(id));
            compute()
        })
    }

    /// Cached DP row (candidate-segment latencies) for the budget window
    /// `key`, if any.
    #[must_use]
    pub fn row(&self, key: &[u32]) -> Option<Row> {
        self.rows.lock().unwrap().get(key).cloned()
    }

    /// Stores a DP row for the budget window `key`.
    pub fn store_row(&self, key: &[u32], row: Row) {
        self.rows.lock().unwrap().insert(key.into(), row);
    }

    /// Cached CG segment for the region run `key`, with plan stage
    /// indices rebased onto `start` (the run's global first-stage index).
    #[must_use]
    pub fn cg_segment(&self, key: &[u32], start: usize) -> Option<Segment> {
        let found = self.cg_segments.lock().unwrap().get(key).cloned();
        self.count(found.is_some(), key.len());
        found.map(|seg| rebase(seg, start))
    }

    /// Stores a CG segment whose plans start at global stage `start`.
    pub fn store_cg_segment(&self, key: &[u32], start: usize, seg: &Segment) {
        self.cg_segments
            .lock()
            .unwrap()
            .insert(key.into(), unbase(seg.clone(), start));
    }

    /// Cached MVM-refined segment for the region run `key`.
    #[must_use]
    pub fn mvm_segment(&self, key: &[u32], start: usize) -> Option<Segment> {
        let found = self.mvm_segments.lock().unwrap().get(key).cloned();
        self.count(found.is_some(), key.len());
        found.map(|seg| rebase(seg, start))
    }

    /// Stores an MVM-refined segment whose plans start at `start`.
    pub fn store_mvm_segment(&self, key: &[u32], start: usize, seg: &Segment) {
        self.mvm_segments
            .lock()
            .unwrap()
            .insert(key.into(), unbase(seg.clone(), start));
    }

    /// Cached VVM-refined segment (and per-plan spreads) for `key`.
    #[must_use]
    pub fn vvm_segment(&self, key: &[u32], start: usize) -> Option<(Segment, Vec<u32>)> {
        let found = self.vvm_segments.lock().unwrap().get(key).cloned();
        self.count(found.is_some(), key.len());
        found.map(|(seg, spreads)| (rebase(seg, start), spreads))
    }

    /// Stores a VVM-refined segment and its spreads.
    pub fn store_vvm_segment(&self, key: &[u32], start: usize, seg: &Segment, spreads: &[u32]) {
        self.vvm_segments
            .lock()
            .unwrap()
            .insert(key.into(), (unbase(seg.clone(), start), spreads.to_vec()));
    }

    /// (hits, misses) across all segment-level lookups, weighted by the
    /// number of regions each segment covers.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn count(&self, hit: bool, regions: usize) {
        let n = regions as u64;
        if hit {
            self.hits.fetch_add(n, Ordering::Relaxed);
            cim_obs::count("compile.regions.hits", n);
        } else {
            self.misses.fetch_add(n, Ordering::Relaxed);
            cim_obs::count("compile.regions.misses", n);
        }
    }
}

/// Per-region scheduling stats the CG DP reads for every stage.
///
/// Cached by [`RegionMemo::stage_stats`] so the per-stage prep scan costs
/// one vector index per stage instead of re-deriving the crossbar math.
#[derive(Debug, Clone, Copy)]
pub struct StageStats {
    /// Cores one replica occupies.
    pub need: u64,
    /// Cycles per MVM.
    pub cpm: u64,
    /// The allocator's view of the stage (cost, latency, duplication cap).
    pub item: AllocItem,
}

/// Shifts a stored (segment-relative) segment onto global stage indices.
fn rebase(mut seg: Segment, start: usize) -> Segment {
    for plan in &mut seg.plans {
        plan.stage += start;
    }
    seg
}

/// Shifts a freshly-scheduled segment down to segment-relative indices
/// for position-independent storage.
fn unbase(mut seg: Segment, start: usize) -> Segment {
    for plan in &mut seg.plans {
        plan.stage -= start;
    }
    seg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::StagePlan;
    use crate::stage::extract_stages;
    use cim_arch::presets;
    use cim_graph::zoo;

    fn segment(stages: &[usize]) -> Segment {
        Segment {
            plans: stages
                .iter()
                .map(|&s| StagePlan {
                    stage: s,
                    duplication: 1,
                    cores: 1,
                    folds: 1,
                    latency: 10.0,
                })
                .collect(),
            latency: 10.0,
            active_crossbars: 4,
            streaming_bits_per_cycle: 1.0,
        }
    }

    #[test]
    fn interning_is_content_addressed() {
        let g = zoo::vit_base();
        let arch = presets::isaac_baseline();
        let stages = extract_stages(&g, &arch, 8);
        let memo = RegionMemo::new();
        let ids = memo.intern_stages(&stages);
        assert_eq!(ids.len(), stages.len());
        // Identical transformer layers produce identical region ids.
        let by_name = |n: &str| {
            stages
                .iter()
                .position(|s| s.name == n)
                .unwrap_or_else(|| panic!("no stage {n}"))
        };
        assert_eq!(ids[by_name("l0.q")], ids[by_name("l1.q")]);
        // Distinct content produces distinct ids.
        assert_ne!(ids[by_name("l0.q")], ids[by_name("patch_embed")]);
        // Re-interning the same stages yields the same ids.
        assert_eq!(memo.intern_stages(&stages), ids);
    }

    #[test]
    fn segments_rebase_on_load() {
        let memo = RegionMemo::new();
        let key = [3u32, 3, 7];
        // Stored from global stages 10..13 …
        memo.store_cg_segment(&key, 10, &segment(&[10, 11, 12]));
        // … reusable at any other position with the same content run.
        let out = memo.cg_segment(&key, 50).unwrap();
        let got: Vec<usize> = out.plans.iter().map(|p| p.stage).collect();
        assert_eq!(got, vec![50, 51, 52]);
        assert!(memo.cg_segment(&[9u32], 0).is_none());
        assert_eq!(memo.counters(), (3, 1));
    }

    #[test]
    fn costs_do_not_touch_counters() {
        let memo = RegionMemo::new();
        assert_eq!(memo.cost(&[1, 2]), None);
        memo.store_cost(&[1, 2], 42.0);
        assert_eq!(memo.cost(&[1, 2]), Some(42.0));
        assert_eq!(memo.counters(), (0, 0));
    }

    #[test]
    fn vvm_round_trips_spreads() {
        let memo = RegionMemo::new();
        memo.store_vvm_segment(&[5u32], 2, &segment(&[2]), &[4]);
        let (seg, spreads) = memo.vvm_segment(&[5u32], 8).unwrap();
        assert_eq!(seg.plans[0].stage, 8);
        assert_eq!(spreads, vec![4]);
    }
}
