//! Reusable scratch buffers for the scheduling passes.
//!
//! The CG-grained segmentation DP and the MVM-grained refinement are
//! called thousands of times per compile (once per candidate segment) and
//! each call needs a handful of short-lived vectors — duplication
//! numbers, latency/fill pairs, DP tables. Allocating them fresh on every
//! evaluation dominated the pre-arena profile, so a [`ScratchArena`]
//! owned by the [`Session`](crate::Session) pools them instead: a pass
//! leases a [`ScratchVec`] (recycling a previously returned buffer when
//! one is available), uses it like a `Vec`, and the buffer returns to the
//! pool on drop with its capacity intact.
//!
//! The arena is `Sync` — the pooled free lists sit behind mutexes — so
//! the intra-graph worker threads of [`crate::pool::run_ordered`] lease
//! from the same arena the sequential parts of a pass use. Leases only
//! touch the pool on construction and drop, never per element, so the
//! mutexes are uncontended in practice.
//!
//! Peak accounting: the arena tracks the bytes leased out at any instant
//! and the high-water mark since the last [`ScratchArena::reset_peak`].
//! The session resets the mark before each pass and stores the peak in
//! the pass's [`PassRecord`](crate::PassRecord), which is what
//! `cimc compile --timings` surfaces per pass.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A pool of reusable scratch buffers with peak-usage accounting.
///
/// See the [module docs](self) for the lifecycle. One arena per
/// [`Session`](crate::Session); passes reach it through
/// [`PassContext::scratch`](crate::PassContext::scratch).
#[derive(Debug, Default)]
pub struct ScratchArena {
    f64s: Mutex<Vec<Vec<f64>>>,
    u32s: Mutex<Vec<Vec<u32>>>,
    usizes: Mutex<Vec<Vec<usize>>>,
    pairs: Mutex<Vec<Vec<(f64, f64)>>>,
    /// Bytes currently leased out (sum of leased capacities).
    in_use: AtomicUsize,
    /// High-water mark of `in_use` since the last [`Self::reset_peak`].
    peak: AtomicUsize,
}

impl ScratchArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        ScratchArena::default()
    }

    /// Leases an empty `f64` buffer with at least `capacity` slots.
    #[must_use]
    pub fn f64s(&self, capacity: usize) -> ScratchVec<'_, f64> {
        self.lease(&self.f64s, capacity)
    }

    /// Leases an empty `u32` buffer with at least `capacity` slots.
    #[must_use]
    pub fn u32s(&self, capacity: usize) -> ScratchVec<'_, u32> {
        self.lease(&self.u32s, capacity)
    }

    /// Leases an empty `usize` buffer with at least `capacity` slots.
    #[must_use]
    pub fn usizes(&self, capacity: usize) -> ScratchVec<'_, usize> {
        self.lease(&self.usizes, capacity)
    }

    /// Leases an empty `(f64, f64)` buffer with at least `capacity`
    /// slots (latency/fill pairs).
    #[must_use]
    pub fn pairs(&self, capacity: usize) -> ScratchVec<'_, (f64, f64)> {
        self.lease(&self.pairs, capacity)
    }

    /// Bytes currently leased out across all buffer types.
    #[must_use]
    pub fn in_use_bytes(&self) -> u64 {
        self.in_use.load(Ordering::Relaxed) as u64
    }

    /// High-water mark of leased bytes since the last
    /// [`Self::reset_peak`] (or arena creation).
    #[must_use]
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed) as u64
    }

    /// Resets the high-water mark to the bytes currently leased.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.in_use.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn lease<'a, T: ScratchItem>(
        &'a self,
        pool: &'a Mutex<Vec<Vec<T>>>,
        capacity: usize,
    ) -> ScratchVec<'a, T> {
        let mut buf = pool
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default();
        buf.clear();
        if buf.capacity() < capacity {
            buf.reserve(capacity - buf.len());
        }
        let bytes = buf.capacity() * std::mem::size_of::<T>();
        self.charge(bytes);
        ScratchVec {
            arena: self,
            pool,
            charged: bytes,
            buf,
        }
    }

    fn charge(&self, bytes: usize) {
        let now = self.in_use.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn release(&self, bytes: usize) {
        self.in_use.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// Marker for the element types the arena pools.
pub trait ScratchItem: Copy + Default {}
impl ScratchItem for f64 {}
impl ScratchItem for u32 {}
impl ScratchItem for usize {}
impl ScratchItem for (f64, f64) {}

/// A leased scratch buffer: dereferences to `Vec<T>`, returns to its
/// arena's pool (capacity intact) on drop.
#[derive(Debug)]
pub struct ScratchVec<'a, T: ScratchItem> {
    arena: &'a ScratchArena,
    pool: &'a Mutex<Vec<Vec<T>>>,
    /// Bytes charged against the arena at lease time; reconciled with the
    /// final capacity on drop (the buffer may have grown in use).
    charged: usize,
    buf: Vec<T>,
}

impl<T: ScratchItem> Deref for ScratchVec<'_, T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.buf
    }
}

impl<T: ScratchItem> DerefMut for ScratchVec<'_, T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }
}

impl<T: ScratchItem> Drop for ScratchVec<'_, T> {
    fn drop(&mut self) {
        let final_bytes = self.buf.capacity() * std::mem::size_of::<T>();
        if final_bytes > self.charged {
            // The vec reallocated while leased; account the growth so the
            // peak reflects what was actually held.
            self.arena.charge(final_bytes - self.charged);
        }
        self.arena.release(final_bytes.max(self.charged));
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        self.pool.lock().expect("scratch pool poisoned").push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled_across_leases() {
        let arena = ScratchArena::new();
        let ptr = {
            let mut v = arena.f64s(128);
            v.extend(std::iter::repeat_n(1.0, 100));
            v.as_ptr()
        };
        // The returned buffer (capacity >= 128) is reused by the next lease.
        let v2 = arena.f64s(64);
        assert_eq!(v2.as_ptr(), ptr);
        assert!(v2.is_empty());
        assert!(v2.capacity() >= 128);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let arena = ScratchArena::new();
        {
            let _a = arena.f64s(100);
            let _b = arena.u32s(50);
            assert!(arena.in_use_bytes() >= 100 * 8 + 50 * 4);
        }
        assert_eq!(arena.in_use_bytes(), 0);
        assert!(arena.peak_bytes() >= 100 * 8 + 50 * 4);
        arena.reset_peak();
        assert_eq!(arena.peak_bytes(), 0);
        let _c = arena.usizes(10);
        assert!(arena.peak_bytes() >= 10 * std::mem::size_of::<usize>() as u64);
    }

    #[test]
    fn growth_while_leased_is_accounted() {
        let arena = ScratchArena::new();
        {
            let mut v = arena.pairs(1);
            v.extend(std::iter::repeat_n((0.0, 0.0), 10_000));
        }
        assert_eq!(arena.in_use_bytes(), 0);
        assert!(arena.peak_bytes() >= 10_000 * 16);
    }

    #[test]
    fn arena_is_shareable_across_threads() {
        let arena = ScratchArena::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        let mut v = arena.f64s(32);
                        v.push(1.0);
                    }
                });
            }
        });
        assert_eq!(arena.in_use_bytes(), 0);
        assert!(arena.peak_bytes() > 0);
    }
}
