//! Pipeline-stage extraction.
//!
//! The scheduler views the DNN as a topologically-ordered list of *stages*,
//! one per CIM operator. Digital operators (ReLU, pooling, normalization,
//! the fused attention core, …) do not occupy crossbars; each is attached
//! to the stage of its most recent CIM ancestor and executes on that
//! stage's core-local ALUs, as in the paper's workflow where
//! CIM-unsupported nodes constrain the producing operator's duplication
//! via the `ALU` parameter (§3.3.2).

use crate::mapping::OpMapping;
use cim_arch::CimArchitecture;
use cim_graph::{Graph, NodeId, OpKind};

/// One pipeline stage: a CIM operator plus its attached digital work.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// The CIM node this stage executes.
    pub node: NodeId,
    /// Node name (for diagnostics and reports).
    pub name: String,
    /// Crossbar mapping of the operator.
    pub mapping: OpMapping,
    /// Digital nodes attached to this stage.
    pub digital: Vec<NodeId>,
    /// ALU operations of the attached digital nodes.
    pub alu_ops: u64,
    /// Input elements streamed into the stage per inference.
    pub in_elements: u64,
    /// Output elements streamed out per inference (after digital ops).
    pub out_elements: u64,
    /// Fraction of this stage's compute that must finish before the next
    /// stage can start (pipeline fill). 1.0 for fully-blocking consumers
    /// (e.g. a Linear after Flatten needs the whole tensor).
    pub fill_fraction: f64,
    /// Whether the stage's weights must be rewritten each inference
    /// (dynamic `MatMul`).
    pub dynamic_weights: bool,
}

impl Stage {
    /// ALU cycles for the attached digital work, given the ALU throughput
    /// of one core and the number of cores executing replicas of this
    /// stage (each core contributes its own ALU).
    #[must_use]
    pub fn alu_cycles(&self, alu_ops_per_cycle: Option<u64>, cores: u32) -> f64 {
        match alu_ops_per_cycle {
            None => 0.0,
            Some(rate) => self.alu_ops as f64 / (rate as f64 * f64::from(cores.max(1))),
        }
    }
}

/// Approximate ALU operation count of one digital node.
fn digital_ops(graph: &Graph, id: NodeId) -> u64 {
    let node = graph.node(id);
    let elems = node.out_shape().elements();
    match node.op() {
        OpKind::Attention { .. } => graph.macs(id),
        OpKind::Softmax | OpKind::LayerNorm => 5 * elems,
        OpKind::Gelu => 4 * elems,
        OpKind::Pool2d { kernel, .. } => elems * (*kernel as u64) * (*kernel as u64),
        OpKind::GlobalAvgPool => {
            // reduces the whole input feature map
            graph.node(node.inputs()[0]).out_shape().elements()
        }
        _ => elems,
    }
}

/// Pipeline-fill fraction of producer stage `node` given the operator that
/// consumes its (post-digital) output.
fn fill_fraction(graph: &Graph, producer: NodeId, consumer: Option<&OpKind>) -> f64 {
    let out = graph.node(producer).out_shape();
    match consumer {
        // A convolution/pool consumer can start once `kernel` rows of the
        // producer's output feature map exist.
        Some(OpKind::Conv2d { kernel, .. }) | Some(OpKind::Pool2d { kernel, .. }) => {
            match out.as_chw() {
                Some((_, h, _)) => (*kernel as f64 / h as f64).min(1.0),
                None => 1.0,
            }
        }
        // Token-wise consumers (linear / matmul / attention over [t, d])
        // can start after one token row.
        Some(OpKind::Linear { .. }) | Some(OpKind::MatMul) => match out.as_tokens() {
            Some((t, _)) => 1.0 / t as f64,
            // Linear after Flatten/GAP consumes the whole tensor.
            None => 1.0,
        },
        Some(OpKind::Attention { .. }) => 1.0,
        // Element-wise / unknown consumers: one feature-map row.
        Some(_) => match out.as_chw() {
            Some((_, h, _)) => 1.0 / h as f64,
            None => match out.as_tokens() {
                Some((t, _)) => 1.0 / t as f64,
                None => 1.0,
            },
        },
        // Final stage: its full latency counts.
        None => 1.0,
    }
}

/// Extracts the pipeline stages of `graph` for `arch`.
///
/// Every CIM node becomes a stage in topological order; digital nodes are
/// attached to the stage of their most recent CIM ancestor (digital work
/// before the first CIM node attaches to the first stage).
#[must_use]
pub fn extract_stages(graph: &Graph, arch: &CimArchitecture, weight_bits: u32) -> Vec<Stage> {
    let cim_ids = graph.cim_nodes();
    if cim_ids.is_empty() {
        return Vec::new();
    }
    // Stage index of each CIM node. Node ids are dense arena indices, so
    // plain vectors beat hash maps on this hot path (re-run per
    // recompile).
    let mut stage_of_cim: Vec<Option<usize>> = vec![None; graph.len()];
    for (i, &id) in cim_ids.iter().enumerate() {
        stage_of_cim[id.index()] = Some(i);
    }
    // Propagate "latest CIM ancestor stage" through the graph.
    let mut latest_stage: Vec<usize> = vec![0; graph.len()];
    let mut attached: Vec<Vec<NodeId>> = vec![Vec::new(); cim_ids.len()];
    for node in graph.nodes() {
        let id = node.id();
        if let Some(s) = stage_of_cim[id.index()] {
            latest_stage[id.index()] = s;
            continue;
        }
        let stage = node
            .inputs()
            .iter()
            .map(|i| latest_stage[i.index()])
            .max()
            .unwrap_or(0);
        latest_stage[id.index()] = stage;
        if !matches!(node.op(), OpKind::Input { .. }) {
            attached[stage].push(id);
        }
    }
    // The consumer operator of each stage's final output: the first CIM
    // node (or graph output) downstream. For fill estimation we use the
    // next stage's operator.
    let mut stages = Vec::with_capacity(cim_ids.len());
    for (i, &id) in cim_ids.iter().enumerate() {
        let mapping = OpMapping::of(graph, id, arch, weight_bits)
            .expect("cim_nodes only returns mappable nodes");
        let node = graph.node(id);
        let digital = attached[i].clone();
        let alu_ops: u64 = digital.iter().map(|&d| digital_ops(graph, d)).sum();
        let in_elements: u64 = node
            .inputs()
            .iter()
            .map(|&p| graph.node(p).out_shape().elements())
            .sum();
        // Output after the attached digital chain: the last attached
        // digital node's shape if any, else the CIM node's own.
        let out_elements = digital
            .last()
            .map(|&d| graph.node(d).out_shape().elements())
            .unwrap_or_else(|| node.out_shape().elements());
        let next_op = cim_ids.get(i + 1).map(|&n| graph.node(n).op());
        let fill = fill_fraction(graph, id, next_op);
        stages.push(Stage {
            node: id,
            name: node.name().to_owned(),
            mapping,
            digital,
            alu_ops,
            in_elements,
            out_elements,
            fill_fraction: fill,
            dynamic_weights: !node.op().has_static_weights(),
        });
    }
    stages
}

/// Movement cycles for a stage's input+output traffic: the slower of the
/// global-buffer bandwidth and the chip NoC (worst-case per-bit cost), or
/// 0 when both are ideal. This is the term that caps duplication — the
/// paper's "keep the data transfer amount within the NoC and buffer
/// capability" (§3.3.2).
#[must_use]
pub fn movement_cycles(stage: &Stage, arch: &CimArchitecture, act_bits: u32) -> f64 {
    let bits = ((stage.in_elements + stage.out_elements) * u64::from(act_bits)) as f64;
    let buffer = match arch.chip().l0_bw_bits_per_cycle() {
        None => 0.0,
        Some(bw) => bits / bw as f64,
    };
    let noc = bits * arch.chip().noc_cost().worst_case_cycles_per_bit();
    buffer.max(noc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::presets;
    use cim_graph::{zoo, Graph, Shape};

    #[test]
    fn stages_cover_cim_nodes_in_order() {
        let g = zoo::vgg7();
        let arch = presets::isaac_baseline();
        let stages = extract_stages(&g, &arch, 8);
        assert_eq!(stages.len(), g.cim_nodes().len());
        for w in stages.windows(2) {
            assert!(w[0].node < w[1].node);
        }
    }

    #[test]
    fn digital_nodes_attach_to_producers() {
        let g = zoo::lenet5();
        let arch = presets::isaac_baseline();
        let stages = extract_stages(&g, &arch, 8);
        // Every non-input digital node appears exactly once.
        let attached_total: usize = stages.iter().map(|s| s.digital.len()).sum();
        let digital_total = g
            .nodes()
            .filter(|n| !n.op().is_cim_supported() && !matches!(n.op(), OpKind::Input { .. }))
            .count();
        assert_eq!(attached_total, digital_total);
        // conv1 has bn+relu+pool attached.
        assert!(stages[0].digital.len() >= 2);
        assert!(stages[0].alu_ops > 0);
    }

    #[test]
    fn fill_fraction_conv_consumer() {
        let g = zoo::vgg7();
        let arch = presets::isaac_baseline();
        let stages = extract_stages(&g, &arch, 8);
        // First conv (32x32 output) feeding a 3x3 conv: fill = 3/32.
        assert!((stages[0].fill_fraction - 3.0 / 32.0).abs() < 1e-9);
        // The conv before flatten+fc blocks fully.
        let last_conv_fill = stages[stages.len() - 3].fill_fraction;
        assert_eq!(last_conv_fill, 1.0);
    }

    #[test]
    fn vit_attention_is_digital_work() {
        let g = zoo::vit_base();
        let arch = presets::sensitivity_baseline();
        let stages = extract_stages(&g, &arch, 8);
        // q/k/v linears exist; the attention core is attached to the v
        // stage (its latest CIM ancestor).
        let v_stage = stages.iter().find(|s| s.name == "l0.v").unwrap();
        assert!(v_stage.alu_ops > 1_000_000, "{}", v_stage.alu_ops);
        // No stage has dynamic weights (attention core is fused digital).
        assert!(stages.iter().all(|s| !s.dynamic_weights));
    }

    #[test]
    fn movement_uses_l0_bandwidth() {
        let g = zoo::vgg7();
        let arch = presets::isaac_baseline();
        let stages = extract_stages(&g, &arch, 8);
        let m = movement_cycles(&stages[0], &arch, 8);
        let expected = ((stages[0].in_elements + stages[0].out_elements) * 8) as f64 / 384.0;
        assert!((m - expected).abs() < 1e-9);
        // Ideal-bandwidth arch moves for free.
        let ideal = presets::jain_sram();
        let stages2 = extract_stages(&g, &ideal, 8);
        assert_eq!(movement_cycles(&stages2[0], &ideal, 8), 0.0);
    }

    #[test]
    fn empty_graph_has_no_stages() {
        let mut g = Graph::new("empty");
        let _ = g
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::vec(4),
                },
                [],
            )
            .unwrap();
        let arch = presets::isaac_baseline();
        assert!(extract_stages(&g, &arch, 8).is_empty());
    }

    #[test]
    fn alu_cycles_scale_with_cores() {
        let g = zoo::lenet5();
        let arch = presets::isaac_baseline();
        let stages = extract_stages(&g, &arch, 8);
        let s = &stages[0];
        let one = s.alu_cycles(Some(1024), 1);
        let four = s.alu_cycles(Some(1024), 4);
        assert!((one / 4.0 - four).abs() < 1e-9);
        assert_eq!(s.alu_cycles(None, 1), 0.0);
    }
}
