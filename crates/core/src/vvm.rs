//! VVM-grained optimization (paper §3.3.4, Figure 14).
//!
//! On WLM targets only `parallel_row` wordlines of a crossbar can fire per
//! cycle, so a full-depth MVM needs `⌈used_rows / parallel_row⌉`
//! sequential activation groups. The *data remapping* strategy spreads
//! wordlines that accumulate into the same output across different
//! crossbars: `k` crossbars each firing `parallel_row` rows complete the
//! same reduction in `⌈groups / k⌉` steps, with the partial sums merged by
//! the core ALU (shift-accumulate).
//!
//! Remapping consumes idle crossbars — each replica spreads over
//! `spread × v × h` physical crossbars, each 1/spread full — so the spread
//! factor is bounded by the crossbars left idle after MVM-grained
//! duplication.

use crate::cg::{pipeline_latency, CgSchedule, Segment, StagePlan};
use crate::mvm::MvmSchedule;
use crate::perf::{phase_power, PerfReport};
use crate::region::RegionMemo;
use crate::stage::{movement_cycles, Stage};
use cim_arch::CimArchitecture;

/// The VVM-grained refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct VvmSchedule {
    /// Refined segments.
    pub segments: Vec<Segment>,
    /// Spread factor chosen per (segment, plan) — 1 means no remapping.
    pub spreads: Vec<Vec<u32>>,
    /// Summary report.
    pub report: PerfReport,
}

/// The spread factor available to one stage: how many copies of its
/// crossbar footprint fit in the cores it was assigned.
#[must_use]
pub fn spread_factor(
    assigned_cores: u32,
    xb_per_core: u32,
    vxb_size: u32,
    dup: u32,
    activation_groups: u32,
) -> u32 {
    if vxb_size == 0 || dup == 0 {
        return 1;
    }
    let slots = u64::from(assigned_cores) * u64::from(xb_per_core);
    let footprint = u64::from(dup) * u64::from(vxb_size);
    if footprint == 0 {
        return 1;
    }
    let k = (slots / footprint) as u32;
    k.clamp(1, activation_groups.max(1))
}

/// Stage latency with a remapping spread factor applied: activation groups
/// shrink by `spread`, everything else as in the base model.
fn vvm_stage_latency(
    stage: &Stage,
    arch: &CimArchitecture,
    act_bits: u32,
    dup: u32,
    folds: u32,
    spread: u32,
) -> f64 {
    let xb = arch.crossbar();
    let groups = stage
        .mapping
        .activation_groups(arch)
        .div_ceil(spread.max(1));
    // VVM remapping merges partial sums on the digital ALU (shift-
    // accumulate), so vertical crossbars no longer serialize even on cores
    // without analog S&A hardware: the `v` factor of
    // `OpMapping::cycles_per_mvm` disappears here.
    let cpm = u64::from(xb.input_slices(act_bits)) * u64::from(groups.max(1));
    let compute = stage.mapping.mvm_count as f64 * cpm as f64 / f64::from(dup.max(1))
        * f64::from(folds.max(1));
    let mov = movement_cycles(stage, arch, act_bits);
    let cores = dup.max(1) * stage.mapping.cores_per_replica(arch);
    let alu = stage.alu_cycles(
        arch.chip().alu_ops_per_cycle(),
        cores.min(arch.chip().core_count()),
    );
    let mut latency = compute.max(mov).max(alu);
    if stage.dynamic_weights {
        latency += arch
            .cost()
            .write_cycles(stage.mapping.rows.min(xb.shape().rows)) as f64;
    }
    latency
}

/// Runs VVM-grained optimization on top of an MVM schedule.
///
/// Only meaningful on WLM targets where `parallel_row < xb_rows`; on
/// full-parallel crossbars the spread factor is always 1 and the schedule
/// is returned unchanged (modulo the report level).
#[must_use]
pub fn schedule_vvm(
    cg: &CgSchedule,
    mvm: &MvmSchedule,
    arch: &CimArchitecture,
    act_bits: u32,
) -> VvmSchedule {
    schedule_vvm_memo(cg, mvm, arch, act_bits, &RegionMemo::new())
}

/// [`schedule_vvm`] with an explicit per-session [`RegionMemo`] — the
/// incremental-recompilation entry point. Remapped segments (and their
/// spread factors) are keyed by the region-id run they cover: a memo
/// retained across [`Session::recompile`](crate::Session::recompile)
/// calls answers unchanged segments without re-running the d×k sweep.
#[must_use]
pub fn schedule_vvm_memo(
    cg: &CgSchedule,
    mvm: &MvmSchedule,
    arch: &CimArchitecture,
    act_bits: u32,
    memo: &RegionMemo,
) -> VvmSchedule {
    let xb_per_core = arch.core().xb_count();
    // Region ids of every stage; segment memo keys are id runs, as in the
    // CG and MVM levels.
    let ids = memo.intern_stages(&cg.stages);
    let mut segments = Vec::with_capacity(mvm.segments.len());
    let mut spreads = Vec::with_capacity(mvm.segments.len());
    let mut total_latency = 0.0;
    let mut peak_power = 0.0;
    let mut peak_active = 0u64;
    let mut peak_breakdown = Default::default();

    for seg in &mvm.segments {
        let start = seg.plans.first().map_or(0, |p| p.stage);
        let key: Vec<u32> = seg.plans.iter().map(|p| ids[p.stage]).collect();
        if let Some((cached, cached_spreads)) = memo.vvm_segment(&key, start) {
            let (power, breakdown) = phase_power(
                arch,
                cached.active_crossbars,
                cached.streaming_bits_per_cycle,
            );
            if power > peak_power {
                peak_power = power;
                peak_active = cached.active_crossbars;
                peak_breakdown = breakdown;
            }
            total_latency += cached.latency;
            segments.push(cached);
            spreads.push(cached_spreads);
            continue;
        }
        let mut plans = Vec::with_capacity(seg.plans.len());
        let mut seg_spreads = Vec::with_capacity(seg.plans.len());
        let mut lat_fill = Vec::with_capacity(seg.plans.len());
        for plan in &seg.plans {
            let stage = &cg.stages[plan.stage];
            let groups = stage.mapping.activation_groups(arch);
            let vxb = stage.mapping.vxb_size();
            // Choose the best split of the stage's crossbar slots between
            // extra replicas (duplication `d`) and row spreading (`k`):
            // latency ∝ ⌈groups/k⌉ / d with d·k·vxb ≤ slots. Pure Eq.-1
            // duplication (k = 1) and pure spreading are both special
            // cases; ceiling effects make mixed splits win by the modest
            // margins the paper reports (Figure 21c).
            let slots = u64::from(plan.cores) * u64::from(xb_per_core);
            let (mut best_d, mut best_k) = (plan.duplication.max(1), 1u32);
            let mut best_latency =
                vvm_stage_latency(stage, arch, act_bits, best_d, plan.folds, best_k);
            if plan.folds == 1 && vxb > 0 {
                let cpm = stage.mapping.cycles_per_mvm(arch, act_bits);
                let cap = crate::cg::duplication_cap(stage, arch, act_bits, cpm);
                let max_d =
                    ((slots / u64::from(vxb)).clamp(1, u64::from(u32::MAX)) as u32).min(cap);
                for d in 1..=max_d {
                    let k = spread_factor(plan.cores, xb_per_core, vxb, d, groups);
                    let lat = vvm_stage_latency(stage, arch, act_bits, d, plan.folds, k);
                    // Tie-break toward fewer replicas (more spreading):
                    // equal throughput with half the weight copies to
                    // program — and it is the Figure 16(e) layout.
                    if lat < best_latency || (lat == best_latency && d < best_d) {
                        best_latency = lat;
                        best_d = d;
                        best_k = k;
                    }
                }
            }
            seg_spreads.push(best_k);
            // Figure 14's pipeline effect: remapping completes each output
            // accumulation in one activation wave instead of `groups`
            // serial ones, so the consumer's first inputs are ready one
            // granularity step earlier — the pipeline hand-off chunk
            // halves once more relative to the MVM-grained pipeline.
            let fill = stage.fill_fraction / 4.0;
            lat_fill.push((best_latency, fill));
            plans.push(StagePlan {
                duplication: best_d,
                latency: best_latency,
                ..plan.clone()
            });
        }
        let latency = if cg.options.pipeline {
            pipeline_latency(&lat_fill)
        } else {
            lat_fill.iter().map(|&(l, _)| l).sum()
        };
        // Remapped stages co-activate `spread` crossbars per vertical wave.
        let chip_slots = u64::from(arch.chip().core_count()) * u64::from(xb_per_core);
        let per_plan_active = |(p, s): (&StagePlan, &u32)| -> u64 {
            let m = &cg.stages[p.stage].mapping;
            let raw = if p.folds > 1 {
                // One vertical wave of the resident fold tiles at a time.
                u64::from(m.h_xbs)
            } else {
                u64::from(p.duplication) * u64::from(m.h_xbs) * u64::from(*s)
            };
            raw.min(chip_slots)
        };
        let active: u64 = if cg.options.pipeline {
            plans
                .iter()
                .zip(&seg_spreads)
                .map(per_plan_active)
                .sum::<u64>()
                .min(chip_slots)
        } else {
            plans
                .iter()
                .zip(&seg_spreads)
                .map(per_plan_active)
                .max()
                .unwrap_or(0)
        };
        let (power, breakdown) = phase_power(arch, active, seg.streaming_bits_per_cycle);
        if power > peak_power {
            peak_power = power;
            peak_active = active;
            peak_breakdown = breakdown;
        }
        total_latency += latency;
        let refined = Segment {
            plans,
            latency,
            active_crossbars: active,
            streaming_bits_per_cycle: seg.streaming_bits_per_cycle,
        };
        memo.store_vvm_segment(&key, start, &refined, &seg_spreads);
        segments.push(refined);
        spreads.push(seg_spreads);
    }

    let report = PerfReport {
        level: "cg+mvm+vvm",
        latency_cycles: total_latency + cg.report.reprogram_cycles,
        peak_active_crossbars: peak_active,
        peak_power,
        peak_breakdown,
        // Remapping relocates wordlines; the activation count (and its
        // energy) is unchanged.
        energy: cg.report.energy,
        segments: segments.len(),
        reprogram_cycles: cg.report.reprogram_cycles,
    };
    VvmSchedule {
        segments,
        spreads,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{schedule_cg, CgOptions};
    use crate::mvm::{schedule_mvm, MvmOptions};
    use cim_arch::presets;
    use cim_graph::zoo;

    #[test]
    fn spread_factor_bounds() {
        // 4 idle-slot copies available but only 2 activation groups ->
        // spread capped at 2.
        assert_eq!(spread_factor(8, 2, 2, 2, 2), 2);
        // No slack -> 1.
        assert_eq!(spread_factor(1, 2, 2, 1, 16), 1);
        // Degenerate inputs.
        assert_eq!(spread_factor(1, 2, 0, 1, 4), 1);
        assert_eq!(spread_factor(1, 2, 2, 0, 4), 1);
    }

    #[test]
    fn figure14_example_spread() {
        // Figure 14: one op with a 2-group reduction spread over 2 VXBs
        // completes in one activation.
        // xb 32 rows, parallel_row 16 -> 2 groups; slack 2x -> spread 2.
        assert_eq!(spread_factor(2, 2, 1, 2, 2), 2);
    }

    #[test]
    fn vvm_never_slower_than_mvm() {
        let arch = presets::isaac_baseline_wlm();
        for g in [zoo::vgg7(), zoo::resnet50()] {
            let cg = schedule_cg(&g, &arch, CgOptions::full(), 8, 8).unwrap();
            let mvm = schedule_mvm(&cg, &arch, MvmOptions::full(), 8);
            let vvm = schedule_vvm(&cg, &mvm, &arch, 8);
            assert!(
                vvm.report.latency_cycles <= mvm.report.latency_cycles * 1.0001,
                "{}: vvm {} > mvm {}",
                g.name(),
                vvm.report.latency_cycles,
                mvm.report.latency_cycles
            );
        }
    }

    #[test]
    fn full_parallel_crossbars_get_no_spread() {
        // Jia's crossbars activate all rows at once; spread must be 1
        // everywhere.
        let arch = presets::jia_isscc21().with_mode(cim_arch::ComputingMode::Wlm);
        let cg = schedule_cg(&zoo::vgg7(), &arch, CgOptions::full(), 8, 8).unwrap();
        let mvm = schedule_mvm(&cg, &arch, MvmOptions::full(), 8);
        let vvm = schedule_vvm(&cg, &mvm, &arch, 8);
        for seg in &vvm.spreads {
            assert!(seg.iter().all(|&s| s == 1));
        }
    }

    #[test]
    fn jain_macro_benefits_from_remapping() {
        // Figure 20c: the WLM SRAM macro (parallel_row 32 of 256 rows)
        // gains from VVM remapping.
        let arch = presets::jain_sram();
        let g = zoo::vgg7();
        let cg = schedule_cg(&g, &arch, CgOptions::full(), 8, 8).unwrap();
        let mvm = schedule_mvm(&cg, &arch, MvmOptions::full(), 8);
        let vvm = schedule_vvm(&cg, &mvm, &arch, 8);
        assert!(
            vvm.report.latency_cycles < mvm.report.latency_cycles,
            "vvm {} >= mvm {}",
            vvm.report.latency_cycles,
            mvm.report.latency_cycles
        );
    }
}
