//! Integration and property tests of the content-addressed compile
//! cache: fingerprint stability (equal inputs ⇒ equal keys, any single
//! perturbed field ⇒ different key), cached-session equivalence with
//! uncached compilation, chain invalidation, and distrust of poisoned
//! on-disk entries.

use cim_arch::{presets, CimArchitecture};
use cim_compiler::cache::{fingerprint_arch, fingerprint_graph, source_fingerprint};
use cim_compiler::cg::CgOptions;
use cim_compiler::mvm::MvmOptions;
use cim_compiler::{
    CgPass, CompileCache, CompileOptions, Compiler, DiskCache, ExtractStagesPass, Fingerprint,
    MemoryCache, MvmPass, OptLevel, Pass, PassContext, Pipeline, VvmPass,
};
use cim_graph::{zoo, Graph};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn pass_by_name(name: &str) -> Box<dyn Pass> {
    match name {
        "stages" => Box::new(ExtractStagesPass),
        "cg" => Box::new(CgPass),
        "mvm" => Box::new(MvmPass),
        "vvm" => Box::new(VvmPass),
        other => panic!("unexpected planned pass `{other}`"),
    }
}

/// The cache key of the *final* artifact of the planned pipeline for
/// (graph, arch, options) — the full fingerprint chain a cached session
/// walks.
fn job_key(graph: &Graph, arch: &CimArchitecture, options: &CompileOptions) -> Fingerprint {
    let scratch = cim_compiler::ScratchArena::new();
    let memo = cim_compiler::RegionMemo::new();
    let cx = PassContext {
        graph,
        arch,
        options,
        scratch: &scratch,
        memo: &memo,
    };
    let mut key = source_fingerprint(graph, arch);
    for name in Pipeline::plan(options, arch).names() {
        let link = pass_by_name(name)
            .fingerprint(&cx)
            .expect("built-in scheduling passes are cacheable");
        key = key.chain(link);
    }
    key
}

fn models() -> [Graph; 3] {
    [zoo::lenet5(), zoo::mlp(), zoo::vgg7()]
}

fn archs() -> [CimArchitecture; 3] {
    [
        presets::isaac_baseline(),
        presets::jia_isscc21(),
        presets::jain_sram(),
    ]
}

fn options_strategy() -> impl Strategy<Value = CompileOptions> {
    (
        2u32..17,
        2u32..17,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0usize..4,
    )
        .prop_map(|(wb, ab, cgp, cgd, mvmd, mvmp, level)| CompileOptions {
            weight_bits: wb,
            act_bits: ab,
            cg: CgOptions {
                pipeline: cgp,
                duplication: cgd,
            },
            mvm: MvmOptions {
                duplication: mvmd,
                pipeline: mvmp,
            },
            level: [
                OptLevel::Auto,
                OptLevel::Cg,
                OptLevel::CgMvm,
                OptLevel::CgMvmVvm,
            ][level],
            ..CompileOptions::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn equal_inputs_always_fingerprint_equal(
        model in 0usize..3,
        arch in 0usize..3,
        options in options_strategy(),
    ) {
        let g = &models()[model];
        let a = &archs()[arch];
        // Rebuilt graph/arch values (not clones) must fingerprint
        // identically, key by key.
        prop_assert_eq!(fingerprint_graph(g), fingerprint_graph(&models()[model]));
        prop_assert_eq!(fingerprint_arch(a), fingerprint_arch(&archs()[arch]));
        prop_assert_eq!(job_key(g, a, &options), job_key(g, a, &options));
    }

    #[test]
    fn perturbing_any_single_field_changes_the_fingerprint(
        model in 0usize..3,
        arch in 0usize..3,
        options in options_strategy(),
    ) {
        let g = &models()[model];
        let a = &archs()[arch];
        let base = job_key(g, a, &options);

        // Graph axis: a different model must key differently.
        let other_model = &models()[(model + 1) % 3];
        prop_assert_ne!(job_key(other_model, a, &options), base);

        // Architecture axis: another preset, and the same preset under a
        // different computing mode.
        let other_arch = &archs()[(arch + 1) % 3];
        prop_assert_ne!(job_key(g, other_arch, &options), base);
        let remoded = a.with_mode(match a.mode() {
            cim_arch::ComputingMode::Cm => cim_arch::ComputingMode::Wlm,
            _ => cim_arch::ComputingMode::Cm,
        });
        prop_assert_ne!(
            source_fingerprint(g, &remoded),
            source_fingerprint(g, a)
        );

        // Option axis, one field at a time. Every consumed field must
        // change the key of the planned pipeline.
        let mut wb = options;
        wb.weight_bits += 1;
        prop_assert_ne!(job_key(g, a, &wb), base);

        let mut ab = options;
        ab.act_bits += 1;
        prop_assert_ne!(job_key(g, a, &ab), base);

        let mut cgp = options;
        cgp.cg.pipeline = !cgp.cg.pipeline;
        prop_assert_ne!(job_key(g, a, &cgp), base);

        let mut cgd = options;
        cgd.cg.duplication = !cgd.cg.duplication;
        prop_assert_ne!(job_key(g, a, &cgd), base);

        // The MVM toggles are consumed only when the plan runs the mvm
        // pass; otherwise they must NOT perturb the key (that sharing is
        // what lets auto/cg jobs reuse each other's prefixes).
        let plan_has_mvm = Pipeline::plan(&options, a).names().contains(&"mvm");
        let mut mvmd = options;
        mvmd.mvm.duplication = !mvmd.mvm.duplication;
        prop_assert_eq!(job_key(g, a, &mvmd) != base, plan_has_mvm);

        // The level field keys by the *work it selects*: a level change
        // changes the key exactly when it changes the planned pass list.
        for level in [
            OptLevel::Auto,
            OptLevel::Cg,
            OptLevel::CgMvm,
            OptLevel::CgMvmVvm,
        ] {
            let mut relevelled = options;
            relevelled.level = level;
            let same_plan =
                Pipeline::plan(&relevelled, a).names() == Pipeline::plan(&options, a).names();
            prop_assert_eq!(job_key(g, a, &relevelled) == base, same_plan);
        }
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cim_cache_it_{tag}_{}", std::process::id()))
}

#[test]
fn cached_sessions_reproduce_uncached_results_exactly() {
    let cache: Arc<dyn CompileCache> = Arc::new(MemoryCache::new());
    for g in &models() {
        for a in &archs() {
            let uncached = Compiler::new().compile(g, a).unwrap();
            // Cold: populates the cache; must already match.
            let cold = Compiler::new()
                .session(g, a)
                .with_cache(Arc::clone(&cache))
                .finish()
                .unwrap();
            assert_eq!(cold.report(), uncached.report());
            // Warm: every pass served from the cache.
            let mut warm_session = Compiler::new().session(g, a).with_cache(Arc::clone(&cache));
            warm_session.run().unwrap();
            assert!(
                warm_session
                    .timeline()
                    .records
                    .iter()
                    .all(|r| r.cache == "hit"),
                "{:?}",
                warm_session.timeline()
            );
            let warm = warm_session.finish().unwrap();
            assert_eq!(warm.report(), uncached.report());
            assert_eq!(warm.reports().len(), uncached.reports().len());
            assert_eq!(
                warm.steady_state_interval(),
                uncached.steady_state_interval()
            );
        }
    }
    let stats = cache.stats();
    assert!(stats.hits > 0 && stats.misses > 0 && stats.stores == stats.misses);
}

#[test]
fn auto_and_cg_jobs_share_their_pipeline_prefix() {
    let g = zoo::lenet5();
    let a = presets::isaac_baseline();
    let cache: Arc<dyn CompileCache> = Arc::new(MemoryCache::new());
    let auto = Compiler::new()
        .session(&g, &a)
        .with_cache(Arc::clone(&cache));
    auto.finish().unwrap(); // stages, cg, mvm → 3 stores
    let cg_only = Compiler::with_options(CompileOptions {
        level: OptLevel::Cg,
        ..CompileOptions::default()
    });
    let mut session = cg_only.session(&g, &a).with_cache(Arc::clone(&cache));
    session.run().unwrap();
    // Despite the different `level`, both of the cg-only job's passes
    // hit the artifacts the auto job banked.
    assert!(
        session.timeline().records.iter().all(|r| r.cache == "hit"),
        "{:?}",
        session.timeline()
    );
}

#[test]
fn skipping_or_mutating_stops_cache_participation() {
    let g = zoo::lenet5();
    let a = presets::isaac_baseline();
    let cache: Arc<dyn CompileCache> = Arc::new(MemoryCache::new());

    let mut session = Compiler::new()
        .session(&g, &a)
        .with_cache(Arc::clone(&cache));
    session.step().unwrap(); // stages: miss+store
    let _ = session.artifact_mut(); // caller may have edited the stages
    session.run().unwrap();
    let records = &session.timeline().records;
    assert_eq!(records[0].cache, "miss+store");
    assert!(
        records[1..].iter().all(|r| r.cache.is_empty()),
        "{records:?}"
    );

    // skip_next likewise poisons the chain for later passes.
    let mut session = Compiler::new()
        .session(&g, &a)
        .with_cache(Arc::clone(&cache));
    session.skip_next();
    while session.step().is_ok_and(|ran| ran) {}
    assert!(
        session
            .timeline()
            .records
            .iter()
            .all(|r| r.cache.is_empty()),
        "{:?}",
        session.timeline()
    );
}

#[test]
fn custom_passes_without_fingerprints_break_the_chain_safely() {
    struct Identity;
    impl Pass for Identity {
        fn name(&self) -> &'static str {
            "identity"
        }
        fn run(
            &self,
            _cx: &PassContext<'_>,
            _diag: &mut cim_compiler::Diagnostics,
            input: cim_compiler::Artifact,
        ) -> cim_compiler::Result<cim_compiler::Artifact> {
            Ok(input)
        }
    }

    let g = zoo::lenet5();
    let a = presets::isaac_baseline();
    let options = CompileOptions::default();
    let cache: Arc<dyn CompileCache> = Arc::new(MemoryCache::new());
    let mut pipeline = Pipeline::plan(&options, &a);
    assert!(pipeline.insert_after("stages", Box::new(Identity)));
    let mut session = pipeline
        .session(&g, &a, options)
        .with_cache(Arc::clone(&cache));
    session.run().unwrap();
    let records = &session.timeline().records;
    assert_eq!(records[0].cache, "miss+store"); // stages, before the break
    assert!(
        records[1..].iter().all(|r| r.cache.is_empty()),
        "{records:?}"
    );
}

#[test]
fn poisoned_disk_entries_are_recompiled_not_trusted() {
    let dir = tmp_dir("poison");
    let _ = std::fs::remove_dir_all(&dir);
    let g = zoo::vgg7();
    let a = presets::jain_sram();
    let clean = Compiler::new().compile(&g, &a).unwrap();

    // Populate the cache.
    {
        let cache: Arc<dyn CompileCache> = Arc::new(DiskCache::open(&dir).unwrap());
        Compiler::new()
            .session(&g, &a)
            .with_cache(cache)
            .finish()
            .unwrap();
    }
    // Poison every entry: flip one payload byte in each.
    let mut poisoned = 0;
    for shard in std::fs::read_dir(&dir).unwrap() {
        for entry in std::fs::read_dir(shard.unwrap().path()).unwrap() {
            let path = entry.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(&path, bytes).unwrap();
            poisoned += 1;
        }
    }
    assert!(poisoned >= 3, "expected one entry per scheduling pass");

    // A warm run over the poisoned cache must detect every corruption,
    // recompile, and still produce the clean result.
    let cache: Arc<dyn CompileCache> = Arc::new(DiskCache::open(&dir).unwrap());
    let mut session = Compiler::new()
        .session(&g, &a)
        .with_cache(Arc::clone(&cache));
    session.run().unwrap();
    assert!(
        session
            .timeline()
            .records
            .iter()
            .all(|r| r.cache == "miss+store"),
        "poisoned entries must read as misses: {:?}",
        session.timeline()
    );
    let recompiled = session.finish().unwrap();
    assert_eq!(recompiled.report(), clean.report());
    assert_eq!(cache.stats().hits, 0);
    assert_eq!(cache.stats().misses as usize, poisoned);

    // The recompilation re-banked good entries: a second warm run hits.
    let cache: Arc<dyn CompileCache> = Arc::new(DiskCache::open(&dir).unwrap());
    let rewarmed = Compiler::new()
        .session(&g, &a)
        .with_cache(Arc::clone(&cache))
        .finish()
        .unwrap();
    assert_eq!(rewarmed.report(), clean.report());
    assert_eq!(cache.stats().misses, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
