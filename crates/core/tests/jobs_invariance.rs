//! `CompileOptions::jobs` is purely an execution knob: intra-graph
//! scheduling must produce byte-identical schedules and reports for
//! every worker count. These tests pin that contract both at the
//! scheduler API (forcing the threaded path even on single-core
//! machines — `schedule_cg_stages_in`/`schedule_mvm_jobs` spawn exactly
//! the workers they are given) and end-to-end through the compiler.

use cim_compiler::cg::{schedule_cg_stages_in, CgOptions};
use cim_compiler::mvm::{schedule_mvm_jobs, MvmOptions};
use cim_compiler::stage::extract_stages;
use cim_compiler::{CompileOptions, Compiler, ScratchArena};
use cim_graph::zoo;

const MODELS: &[(&str, &str)] = &[
    ("vit_base", "isaac"), // deep DP path, 2 segments
    ("resnet50", "puma"),  // segmentation-heavy small chip
    ("vgg16", "jia"),      // SRAM, many segments
    ("resnet50", "isaac"), // whole-model-resident fast path
];

#[test]
fn scheduler_output_is_identical_across_worker_counts() {
    for &(model, arch) in MODELS {
        let graph = zoo::by_name(model).unwrap();
        let arch = cim_arch::presets::by_name(arch).unwrap();
        let stages = extract_stages(&graph, &arch, 8);
        let schedule = |jobs: usize| {
            let scratch = ScratchArena::new();
            let cg = schedule_cg_stages_in(
                graph.name(),
                stages.clone(),
                &arch,
                CgOptions::full(),
                8,
                jobs,
                &scratch,
            )
            .unwrap();
            let mvm = schedule_mvm_jobs(&cg, &arch, MvmOptions::full(), 8, jobs);
            (cg, mvm)
        };
        let (cg1, mvm1) = schedule(1);
        for jobs in [2, 4, 7] {
            let (cg, mvm) = schedule(jobs);
            assert_eq!(cg1, cg, "{model}: cg schedule differs at jobs={jobs}");
            assert_eq!(mvm1, mvm, "{model}: mvm schedule differs at jobs={jobs}");
        }
    }
}

#[test]
fn compiled_output_is_identical_across_worker_counts() {
    for &(model, arch_name) in MODELS {
        let graph = zoo::by_name(model).unwrap();
        let arch = cim_arch::presets::by_name(arch_name).unwrap();
        let compile = |jobs: usize| {
            Compiler::with_options(CompileOptions {
                jobs,
                ..CompileOptions::default()
            })
            .session(&graph, &arch)
            .finish()
            .unwrap()
        };
        let one = compile(1);
        let four = compile(4);
        assert_eq!(one.cg, four.cg, "{model}@{arch_name}");
        assert_eq!(one.mvm, four.mvm, "{model}@{arch_name}");
        assert_eq!(
            one.reports(),
            four.reports(),
            "{model}@{arch_name}: reports differ across jobs"
        );
    }
}
