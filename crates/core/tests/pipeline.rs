//! Equivalence and intervention tests for the staged pass pipeline.
//!
//! The load-bearing guarantee of the API redesign: driving the pipeline
//! pass by pass — with arbitrary pauses and inspections in between — is
//! *provably equivalent* to the legacy one-shot `Compiler::compile`
//! wrapper, across the full zoo × preset × level matrix, including the
//! generated meta-operator flows. On top of that, the intervention
//! surface (skip, replace, artifact mutation) and the serde round-trips
//! of the report types get targeted unit tests.

use cim_arch::presets;
use cim_compiler::{
    Artifact, CodegenPass, CompileError, CompileMetrics, CompileOptions, Compiler, Diagnostics,
    OptLevel, Pass, PassContext, PerfReport, Pipeline, StageKind,
};
use cim_graph::zoo;
use proptest::prelude::*;

const LEVELS: [OptLevel; 4] = [
    OptLevel::Auto,
    OptLevel::Cg,
    OptLevel::CgMvm,
    OptLevel::CgMvmVvm,
];

fn options_for(level: OptLevel) -> CompileOptions {
    CompileOptions {
        level,
        ..CompileOptions::default()
    }
}

/// Runs the staged pipeline step by step and returns the finished
/// artifact as `Compiled`, mirroring what `Compiler::compile` does in
/// one call.
fn staged_compile(
    graph: &cim_graph::Graph,
    arch: &cim_arch::CimArchitecture,
    options: CompileOptions,
) -> Result<cim_compiler::Compiled, CompileError> {
    let mut session = Pipeline::plan(&options, arch).session(graph, arch, options);
    while session.step()? {}
    session.finish()
}

#[test]
fn staged_pipeline_equals_one_shot_across_the_full_matrix() {
    for model in zoo::NAMES {
        let graph = zoo::by_name(model).unwrap();
        for preset in presets::NAMES {
            let arch = presets::by_name(preset).unwrap();
            for level in LEVELS {
                let options = options_for(level);
                let one_shot = Compiler::with_options(options).compile(&graph, &arch);
                let staged = staged_compile(&graph, &arch, options);
                match (one_shot, staged) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a.reports(),
                            b.reports(),
                            "{model}@{preset} level {level:?}: reports diverge"
                        );
                        assert_eq!(
                            a.metrics(&arch),
                            b.metrics(&arch),
                            "{model}@{preset} level {level:?}: metrics diverge"
                        );
                        assert_eq!(a.model(), b.model());
                        assert_eq!(a.arch_name(), b.arch_name());
                    }
                    (Err(a), Err(b)) => {
                        assert_eq!(a, b, "{model}@{preset} level {level:?}: errors diverge");
                    }
                    (a, b) => panic!(
                        "{model}@{preset} level {level:?}: one path failed, the other did not \
                         (one-shot ok: {}, staged ok: {})",
                        a.is_ok(),
                        b.is_ok()
                    ),
                }
            }
        }
    }
}

#[test]
fn staged_pipeline_generates_identical_flows() {
    // MOP-flow equivalence on the models small enough to lower quickly.
    for model in ["lenet5", "mlp", "vgg7"] {
        let graph = zoo::by_name(model).unwrap();
        for preset in ["isaac", "jia", "jain", "table2"] {
            let arch = presets::by_name(preset).unwrap();
            let options = CompileOptions::default();
            let compiled = Compiler::with_options(options)
                .compile(&graph, &arch)
                .unwrap();
            let one_shot = cim_compiler::codegen::generate_flow(&compiled, &graph, &arch);

            let mut pipeline = Pipeline::plan(&options, &arch);
            pipeline.push(Box::new(CodegenPass));
            let mut session = pipeline.session(&graph, &arch, options);
            let staged = session.run();
            match (one_shot, staged) {
                (Ok((flow, layout)), Ok(())) => {
                    assert_eq!(
                        session.artifact().flow().unwrap(),
                        &flow,
                        "{model}@{preset}: flows diverge"
                    );
                    assert_eq!(
                        session.artifact().layout().unwrap().total_elements(),
                        layout.total_elements(),
                        "{model}@{preset}: layouts diverge"
                    );
                }
                // Schedules codegen cannot lower (e.g. folded operators)
                // must fail identically on both paths.
                (Err(a), Err(b)) => {
                    assert_eq!(a, b, "{model}@{preset}: codegen errors diverge");
                }
                (a, b) => panic!(
                    "{model}@{preset}: one codegen path failed, the other did not \
                     (one-shot ok: {}, staged ok: {})",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Pausing and inspecting between arbitrary passes never changes the
    // result: inspection is read-only, resumption picks up exactly where
    // the session stopped.
    #[test]
    fn pause_inspect_resume_is_equivalent(
        model_i in 0usize..15,
        preset_i in 0usize..7,
        level_i in 0usize..4,
        pause_mask in 0u8..64,
    ) {
        let graph = zoo::by_name(zoo::NAMES[model_i]).unwrap();
        let arch = presets::by_name(presets::NAMES[preset_i]).unwrap();
        let options = options_for(LEVELS[level_i]);
        let one_shot = Compiler::with_options(options).compile(&graph, &arch);

        let mut session = Pipeline::plan(&options, &arch).session(&graph, &arch, options);
        let mut steps = 0u8;
        let staged = loop {
            match session.step() {
                Ok(true) => {}
                Ok(false) => break Ok(()),
                Err(e) => break Err(e),
            }
            if pause_mask & (1 << (steps % 8)) != 0 {
                // "Pause": exercise the whole inspection surface.
                let artifact = session.artifact();
                let _ = artifact.summary();
                let _ = artifact.render();
                let _ = artifact.reports();
                let _ = session.timeline().render();
                prop_assert!(artifact.kind() != StageKind::Source);
            }
            steps += 1;
        };
        match (one_shot, staged.and_then(|()| session.finish())) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.reports(), b.reports());
                prop_assert_eq!(a.metrics(&arch), b.metrics(&arch));
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(
                false,
                "one path failed, the other did not (one-shot ok: {}, staged ok: {})",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }
}

#[test]
fn skipping_the_mvm_pass_degrades_to_cg() {
    let graph = zoo::vgg7();
    let arch = presets::isaac_baseline();
    let options = CompileOptions::default();
    let mut session = Pipeline::plan(&options, &arch).session(&graph, &arch, options);
    while session.next_pass() == Some("stages") || session.next_pass() == Some("cg") {
        session.step().unwrap();
    }
    assert_eq!(session.skip_next(), Some("mvm"));
    let compiled = session.finish().unwrap();
    assert_eq!(compiled.report().level, "cg");

    let cg_only = Compiler::with_options(options_for(OptLevel::Cg))
        .compile(&graph, &arch)
        .unwrap();
    assert_eq!(compiled.report(), cg_only.report());
}

/// A pass that keeps its input artifact unchanged — replacing `mvm` with
/// it disables the MVM level without re-planning the pipeline.
struct PassThrough(&'static str);

impl Pass for PassThrough {
    fn name(&self) -> &'static str {
        self.0
    }
    fn run(
        &self,
        _cx: &PassContext<'_>,
        diag: &mut Diagnostics,
        input: Artifact,
    ) -> cim_compiler::Result<Artifact> {
        diag.note("pass-through");
        Ok(input)
    }
}

#[test]
fn replacing_a_pass_takes_effect() {
    let graph = zoo::vgg7();
    let arch = presets::isaac_baseline();
    let options = CompileOptions::default();
    let mut pipeline = Pipeline::plan(&options, &arch);
    assert!(pipeline.replace("mvm", Box::new(PassThrough("mvm"))));
    let mut session = pipeline.session(&graph, &arch, options);
    session.run().unwrap();
    // The replaced pass ran (timeline proves it) but the artifact stayed
    // at the CG stage.
    let record = session
        .timeline()
        .records
        .iter()
        .find(|r| r.pass == "mvm")
        .unwrap();
    assert_eq!(record.diagnostics, ["pass-through"]);
    assert_eq!(session.artifact().kind(), StageKind::Cg);
    let compiled = session.finish().unwrap();
    assert_eq!(compiled.report().level, "cg");
}

#[test]
fn artifact_mutation_between_passes_feeds_later_passes() {
    let graph = zoo::vgg7();
    let arch = presets::isaac_baseline();
    let options = CompileOptions::default();
    let mut session = Pipeline::plan(&options, &arch).session(&graph, &arch, options);
    session.step().unwrap(); // stages
    let full = session.artifact().stages().unwrap().len();
    assert!(full > 2);
    if let Artifact::Staged(staged) = session.artifact_mut() {
        staged.stages.truncate(2);
    } else {
        panic!("expected a staged artifact");
    }
    let compiled = session.finish().unwrap();
    assert_eq!(compiled.cg.stages.len(), 2);
}

#[test]
fn timeline_records_every_pass_with_instrumentation() {
    let graph = zoo::lenet5();
    let arch = presets::jain_sram();
    let options = CompileOptions::default();
    let mut session = Pipeline::plan(&options, &arch).session(&graph, &arch, options);
    session.run().unwrap();
    let timeline = session.timeline();
    let names: Vec<&str> = timeline.records.iter().map(|r| r.pass.as_str()).collect();
    assert_eq!(names, ["stages", "cg", "mvm", "vvm"]);
    for record in &timeline.records {
        assert!(record.wall_ms >= 0.0);
        assert!(!record.summary.is_empty(), "{record:?}");
        assert!(!record.diagnostics.is_empty(), "{record:?}");
    }
    assert!(timeline.total_ms() >= 0.0);
    let rendered = timeline.render();
    assert!(
        rendered.contains("vvm") && rendered.contains("wall(ms)"),
        "{rendered}"
    );
}

#[test]
fn perf_report_and_metrics_round_trip_through_json() {
    let graph = zoo::vgg7();
    let arch = presets::jain_sram();
    let compiled = Compiler::new().compile(&graph, &arch).unwrap();

    for report in compiled.reports() {
        let json = serde_json::to_string(report).unwrap();
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, report);
    }

    let metrics = compiled.metrics(&arch);
    let json = serde_json::to_string_pretty(&metrics).unwrap();
    let back: CompileMetrics = serde_json::from_str(&json).unwrap();
    assert_eq!(back, metrics);

    // Unknown levels are rejected rather than misread.
    let bad = json.replace("cg+mvm+vvm", "not-a-level");
    let err = serde_json::from_str::<CompileMetrics>(&bad).unwrap_err();
    assert!(err.to_string().contains("not-a-level"), "{err}");
}
