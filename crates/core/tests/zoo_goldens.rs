//! Golden structural fingerprints of the model zoo.
//!
//! The committed fixture (`tests/fixtures/zoo_goldens.txt`) was captured
//! *before* the arena/interning graph refactor; [`fingerprint_graph`]
//! hashes the canonical JSON exchange form of a graph, so equal
//! fingerprints prove the rebuilt zoo graphs are byte-identical on the
//! wire — structure, names, operator attributes and edges all unchanged.
//! The node/weight/MAC columns pin the analysis queries the fingerprint
//! does not cover.
//!
//! Regenerate (only when a zoo model is *intentionally* changed) with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p cim-compiler --test zoo_goldens
//! ```

use cim_compiler::cache::fingerprint_graph;
use cim_graph::zoo;

const FIXTURE: &str = include_str!("fixtures/zoo_goldens.txt");

fn current_lines() -> Vec<String> {
    zoo::all()
        .iter()
        .map(|g| {
            format!(
                "{} {} {} {} {} {}",
                g.name(),
                fingerprint_graph(g).to_hex(),
                g.len(),
                g.cim_nodes().len(),
                g.total_weights(),
                g.total_macs()
            )
        })
        .collect()
}

#[test]
fn zoo_matches_pre_refactor_goldens() {
    let current = current_lines();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/zoo_goldens.txt"
        );
        std::fs::write(path, current.join("\n") + "\n").expect("write fixture");
        return;
    }
    let golden: Vec<&str> = FIXTURE.lines().collect();
    assert_eq!(
        golden.len(),
        current.len(),
        "zoo size changed; regenerate the fixture if intentional"
    );
    for (want, got) in golden.iter().zip(&current) {
        assert_eq!(got, want, "zoo golden mismatch");
    }
}
