//! The exploration engine: strategy batches → parallel cached
//! evaluation → Pareto front + convergence trace.
//!
//! [`Explorer::explore`] drives a [`SearchStrategy`] against a
//! [`DesignSpace`]: each proposed batch is realized into concrete
//! architectures, compiled on the shared worker pool
//! ([`cim_bench::pool::run_ordered`], the same scheduler `cimc bench`
//! sweeps on), and scored under the run's [`Objective`]. A shared
//! [`CompileCache`] makes neighboring candidates cheap — points
//! differing only in scheduling depth share pipeline-prefix artifacts,
//! revisited points are memoized outright, and a
//! [`DiskCache`](cim_compiler::DiskCache) makes whole reruns warm.
//!
//! Determinism: candidate order equals proposal order (the pool writes
//! results back by index), strategies are seeded, and every recorded
//! quantity is a pure function of the compilation — so identical
//! `(space, strategy, seed, budget, objective, model)` runs produce
//! byte-identical [`DseReport::comparable`] documents at any `--jobs`
//! setting and any cache temperature.

use crate::objective::{pareto_front, Objective, TrafficEval};
use crate::report::{DseCandidate, DseFailure, DseReport, DseTiming, TracePoint, SCHEMA_VERSION};
use crate::space::{DesignPoint, DesignSpace, SpaceError};
use crate::strategy::{History, SearchStrategy};
use cim_bench::pool::run_ordered;
use cim_bench::report::JobMetrics;
use cim_compiler::{CompileCache, CompileOptions, Compiler};
use cim_graph::Graph;
use cim_traffic::{simulate_priced, Batching, Placement, PolicyKind, SimConfig, Trace};
use std::collections::HashSet;
use std::sync::Arc;

/// Why an exploration could not start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DseError {
    /// The design space failed validation.
    Space(SpaceError),
    /// The evaluation budget is zero.
    ZeroBudget,
    /// The objective reads serving metrics but the explorer carries no
    /// traffic workload ([`Explorer::with_traffic`]).
    TrafficRequired {
        /// The first traffic-requiring metric of the objective.
        metric: String,
    },
}

impl std::fmt::Display for DseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DseError::Space(e) => e.fmt(f),
            DseError::ZeroBudget => write!(f, "exploration budget must be at least 1"),
            DseError::TrafficRequired { metric } => write!(
                f,
                "objective metric `{metric}` needs a traffic workload \
                 (provide a trace to simulate candidates under)"
            ),
        }
    }
}

impl std::error::Error for DseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DseError::Space(e) => Some(e),
            _ => None,
        }
    }
}

/// The fixed serving workload candidates are simulated under when the
/// objective includes a traffic metric: one trace, the graphs of every
/// model it references, and the scheduling configuration. Held constant
/// across the whole exploration so candidates are comparable.
#[derive(Clone)]
pub struct TrafficWorkload {
    /// The request trace (its spec names the tenants and models).
    pub trace: Trace,
    /// Graph for every distinct model the trace's tenants run.
    pub models: Vec<(String, Graph)>,
    /// Scheduling policy candidates serve under.
    pub policy: PolicyKind,
    /// Batch-forming limits.
    pub batching: Batching,
}

impl From<SpaceError> for DseError {
    fn from(e: SpaceError) -> Self {
        DseError::Space(e)
    }
}

/// Drives design-space exploration runs. Configure once (threads,
/// cache), then call [`Explorer::explore`] per run.
#[derive(Default)]
pub struct Explorer {
    threads: usize,
    cache: Option<Arc<dyn CompileCache>>,
    traffic: Option<TrafficWorkload>,
}

impl Explorer {
    /// An explorer evaluating candidates sequentially with no cache.
    #[must_use]
    pub fn new() -> Self {
        Explorer {
            threads: 1,
            cache: None,
            traffic: None,
        }
    }

    /// Sets the worker-thread count for batch evaluation (clamped to at
    /// least 1). Results are identical for every value; only wall-clock
    /// time changes.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Shares `cache` across every candidate compilation of every run —
    /// the warm-rerun/cross-candidate reuse the exploration workload is
    /// built around.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<dyn CompileCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a fixed serving workload: every candidate architecture
    /// is additionally carved into a balanced per-model placement,
    /// priced through the shared compile cache, and replayed under
    /// `workload.trace` — populating each candidate's `traffic`
    /// evaluation and enabling the `p99_latency`/`throughput`/
    /// `miss_rate` objectives.
    #[must_use]
    pub fn with_traffic(mut self, workload: TrafficWorkload) -> Self {
        self.traffic = Some(workload);
        self
    }

    /// Runs `strategy` over `space` against workload `graph`, charging
    /// at most `budget` evaluations, and assembles the versioned report.
    ///
    /// `seed` must be the seed `strategy` was built with — it is
    /// recorded in the report for reproduction, not consumed here.
    ///
    /// # Errors
    /// Returns [`DseError`] on an invalid space or a zero budget.
    /// Per-candidate build/compile failures do *not* abort the run; they
    /// are recorded in the report's `failures` section.
    pub fn explore(
        &self,
        graph: &Graph,
        space: &DesignSpace,
        strategy: &mut dyn SearchStrategy,
        objective: &Objective,
        seed: u64,
        budget: usize,
    ) -> Result<DseReport, DseError> {
        space.validate()?;
        if budget == 0 {
            return Err(DseError::ZeroBudget);
        }
        if objective.needs_traffic() && self.traffic.is_none() {
            return Err(DseError::TrafficRequired {
                metric: objective
                    .first_traffic_metric()
                    .expect("needs_traffic implies a traffic metric")
                    .name()
                    .to_owned(),
            });
        }
        let base = space.base_arch();
        let stats_before = self.cache.as_ref().map(|c| c.stats());
        let started = cim_obs::stopwatch();

        let mut history = History::new();
        let mut trace = Vec::new();
        let mut proposed = 0usize;
        while proposed < budget {
            let remaining = budget - proposed;
            let mut batch = strategy.next_batch(space, &history, remaining);
            if batch.is_empty() {
                break;
            }
            batch.truncate(remaining);
            proposed += batch.len();

            // Unique new points of this batch, in first-proposal order;
            // revisits (across batches or within one) are memo-served.
            let mut seen: HashSet<String> = HashSet::new();
            let fresh: Vec<DesignPoint> = batch
                .into_iter()
                .filter(|p| !history.contains(p) && seen.insert(p.key()))
                .collect();

            let outcomes = run_ordered(&fresh, self.threads, |point| {
                evaluate(
                    point,
                    graph,
                    &base,
                    self.traffic.as_ref(),
                    self.cache.as_ref(),
                )
            });
            for (point, outcome) in fresh.into_iter().zip(outcomes) {
                match outcome {
                    Ok((metrics, traffic, eval_ms)) => {
                        let objectives = objective.vector(&metrics, traffic.as_ref());
                        let score = objective.score(&metrics, traffic.as_ref());
                        history.record_success(DseCandidate {
                            point,
                            metrics,
                            traffic,
                            objectives,
                            score,
                            eval_ms,
                        });
                    }
                    Err(error) => history.record_failure(DseFailure { point, error }),
                }
            }
            trace.push(TracePoint {
                proposed,
                evaluated: history.candidates().len(),
                best_score: history.best().map(|c| c.score),
            });
        }

        let total_ms = started.elapsed_ms();
        let (candidates, failures) = history.into_parts();
        let vectors: Vec<Vec<f64>> = candidates.iter().map(|c| c.objectives.clone()).collect();
        let front = pareto_front(&vectors);
        let mut report = DseReport {
            schema_version: SCHEMA_VERSION,
            toolchain: concat!("cim-dse ", env!("CARGO_PKG_VERSION")).to_owned(),
            model: graph.name().to_owned(),
            space: space.clone(),
            strategy: strategy.name().to_owned(),
            objective: objective.canonical(),
            seed,
            budget,
            proposed,
            candidates,
            failures,
            front,
            trace,
            timing: DseTiming {
                total_ms,
                threads: self.threads,
            },
            cache_stats: None,
        };
        report.cache_stats = self
            .cache
            .as_ref()
            .zip(stats_before)
            .map(|(c, before)| c.stats().since(&before));
        Ok(report)
    }
}

/// Compiles one candidate: realize the architecture, run the staged
/// pipeline (with the shared cache when present), summarize — and, when
/// a traffic workload is attached, carve the candidate into a balanced
/// placement and replay the trace against it. The returned metrics are
/// pure functions of the point (and the fixed workload), so memoizing
/// by point key is sound.
fn evaluate(
    point: &DesignPoint,
    graph: &Graph,
    base: &cim_arch::CimArchitecture,
    traffic: Option<&TrafficWorkload>,
    cache: Option<&Arc<dyn CompileCache>>,
) -> Result<(JobMetrics, Option<TrafficEval>, f64), String> {
    let started = cim_obs::stopwatch();
    let arch = point
        .realize(base)
        .map_err(|e| format!("invalid architecture: {e}"))?;
    let options = CompileOptions {
        level: point.mode.opt_level(),
        ..CompileOptions::default()
    };
    let mut session = Compiler::with_options(options).session(graph, &arch);
    if let Some(cache) = cache {
        session = session.with_cache(Arc::clone(cache));
    }
    let metrics = match session.finish() {
        Ok(compiled) => JobMetrics::from(&compiled.metrics(&arch)),
        Err(e) => return Err(e.to_string()),
    };
    let traffic_eval = match traffic {
        Some(w) => Some(evaluate_traffic(&arch, w, cache)?),
        None => None,
    };
    let eval_ms = started.elapsed_ms();
    Ok((metrics, traffic_eval, eval_ms))
}

/// Simulates the fixed workload on one candidate architecture. Pricing
/// goes through the shared compile cache; the simulation itself is the
/// bit-reproducible integer-cycle engine, so the result is a pure
/// function of `(point, workload)` at any cache temperature.
fn evaluate_traffic(
    arch: &cim_arch::CimArchitecture,
    workload: &TrafficWorkload,
    cache: Option<&Arc<dyn CompileCache>>,
) -> Result<TrafficEval, String> {
    let placement = Placement::balanced(arch, &workload.trace.spec)
        .map_err(|e| format!("traffic placement failed: {e}"))?;
    let services = cim_traffic::price_placement(arch, &placement, &workload.models, cache, 1)
        .map_err(|e| format!("traffic pricing failed: {e}"))?;
    let config = SimConfig {
        policy: workload.policy,
        batching: workload.batching,
    };
    let (report, _) = simulate_priced(&workload.trace, arch, &placement, &services, &config, 1)
        .map_err(|e| format!("traffic simulation failed: {e}"))?;
    let agg = &report.aggregate;
    let miss_rate = if agg.requests > 0 {
        (agg.dropped + agg.missed) as f64 / agg.requests as f64
    } else {
        0.0
    };
    Ok(TrafficEval {
        p99_latency: agg.latency.p99,
        throughput: agg.throughput,
        miss_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Metric;
    use crate::strategy::{Exhaustive, HillClimb, StrategyKind};
    use cim_graph::zoo;

    fn tiny_space() -> DesignSpace {
        DesignSpace {
            base: "isaac-wlm".to_owned(),
            xb_rows: vec![64, 128],
            xb_cols: vec![128],
            xb_per_core: vec![8, 16],
            cores: vec![384],
            cell_bits: vec![2],
            adc_bits: vec![6, 8],
            modes: vec![cim_bench::ScheduleMode::Auto, cim_bench::ScheduleMode::Cg],
        }
    }

    #[test]
    fn exhaustive_covers_the_whole_tiny_space() {
        let space = tiny_space();
        let graph = zoo::lenet5();
        let mut strategy = Exhaustive::new();
        let report = Explorer::new()
            .with_threads(2)
            .explore(
                &graph,
                &space,
                &mut strategy,
                &Objective::single(Metric::Latency),
                0,
                1000,
            )
            .unwrap();
        // 2*1*2*1*1*2*2 = 16 points, all unique, all compiled.
        assert_eq!(report.proposed, 16);
        assert_eq!(report.candidates.len(), 16);
        assert!(report.failures.is_empty());
        assert!(!report.front.is_empty());
        // Single-objective front members all share the minimum score.
        let best = report.best().unwrap().score;
        for c in report.front_candidates() {
            assert_eq!(c.score, best);
        }
        // The trace is monotone in proposals and ends at the budget spent.
        assert!(report
            .trace
            .windows(2)
            .all(|w| w[0].proposed < w[1].proposed));
        assert_eq!(report.trace.last().unwrap().proposed, 16);
    }

    #[test]
    fn zero_budget_and_bad_space_are_rejected() {
        let graph = zoo::lenet5();
        let mut strategy = Exhaustive::new();
        let err = Explorer::new()
            .explore(
                &graph,
                &tiny_space(),
                &mut strategy,
                &Objective::single(Metric::Latency),
                0,
                0,
            )
            .unwrap_err();
        assert_eq!(err, DseError::ZeroBudget);

        let mut bad = tiny_space();
        bad.base = "nope".to_owned();
        let err = Explorer::new()
            .explore(
                &graph,
                &bad,
                &mut strategy,
                &Objective::single(Metric::Latency),
                0,
                4,
            )
            .unwrap_err();
        assert!(err.to_string().contains("`nope`"), "{err}");
    }

    #[test]
    fn hill_climb_improves_or_matches_its_start_and_respects_budget() {
        let space = tiny_space();
        let graph = zoo::lenet5();
        let mut strategy = HillClimb::new(11);
        let objective = Objective::single(Metric::Latency);
        let report = Explorer::new()
            .with_threads(2)
            .explore(&graph, &space, &mut strategy, &objective, 11, 40)
            .unwrap();
        assert!(report.proposed <= 40);
        let start = &report.candidates[0];
        assert!(report.best().unwrap().score <= start.score);
    }

    #[test]
    fn traffic_objective_without_workload_is_rejected_up_front() {
        let graph = zoo::lenet5();
        let mut strategy = Exhaustive::new();
        let err = Explorer::new()
            .explore(
                &graph,
                &tiny_space(),
                &mut strategy,
                &Objective::parse("p99_latency").unwrap(),
                0,
                4,
            )
            .unwrap_err();
        assert!(
            matches!(&err, DseError::TrafficRequired { metric } if metric == "p99_latency"),
            "{err}"
        );
    }

    #[test]
    fn traffic_objective_explores_and_reproduces_across_thread_counts() {
        use cim_traffic::{GeneratorKind, TenantSpec, TraceSpec};
        let spec = TraceSpec {
            name: "dse-fixed".to_owned(),
            kind: GeneratorKind::Poisson,
            seed: 7,
            horizon: 400_000,
            mean_gap: 4_000.0,
            burst_len: 8,
            idle_gap: 50_000.0,
            tenants: vec![TenantSpec {
                name: "t0".to_owned(),
                model: "lenet5".to_owned(),
                weight: 1.0,
                priority: 0,
                deadline: Some(100_000),
            }],
        };
        let workload = TrafficWorkload {
            trace: spec.generate().unwrap(),
            models: vec![("lenet5".to_owned(), zoo::lenet5())],
            policy: PolicyKind::Edf,
            batching: Batching::default(),
        };
        let graph = zoo::lenet5();
        let objective = Objective::parse("p99_latency,throughput").unwrap();
        let run = |threads: usize| {
            let mut strategy = Exhaustive::new();
            Explorer::new()
                .with_threads(threads)
                .with_traffic(workload.clone())
                .explore(&graph, &tiny_space(), &mut strategy, &objective, 0, 8)
                .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert!(!a.front.is_empty());
        assert!(a.candidates.iter().all(|c| c.traffic.is_some()));
        let c = a.best().unwrap();
        assert!(c.traffic.unwrap().throughput > 0.0);
        assert_eq!(
            a.comparable().to_json(),
            b.comparable().to_json(),
            "traffic exploration must be thread-count invariant"
        );
    }

    #[test]
    fn memoized_revisits_do_not_duplicate_candidates() {
        // Random sampling of a 16-point space with a 64-proposal budget
        // must revisit, yet candidates stay unique.
        let space = tiny_space();
        let graph = zoo::lenet5();
        let mut strategy = StrategyKind::Random.build(5);
        let report = Explorer::new()
            .with_threads(4)
            .explore(
                &graph,
                &space,
                strategy.as_mut(),
                &Objective::parse("latency,energy").unwrap(),
                5,
                64,
            )
            .unwrap();
        assert_eq!(report.proposed, 64);
        let mut keys: Vec<String> = report.candidates.iter().map(|c| c.point.key()).collect();
        let unique_before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), unique_before, "duplicate candidate recorded");
        assert!(unique_before <= 16);
        // Multi-objective vectors have one entry per metric.
        assert_eq!(report.candidates[0].objectives.len(), 2);
    }
}
