//! The exploration engine: strategy batches → parallel cached
//! evaluation → Pareto front + convergence trace.
//!
//! [`Explorer::explore`] drives a [`SearchStrategy`] against a
//! [`DesignSpace`]: each proposed batch is realized into concrete
//! architectures, compiled on the shared worker pool
//! ([`cim_bench::pool::run_ordered`], the same scheduler `cimc bench`
//! sweeps on), and scored under the run's [`Objective`]. A shared
//! [`CompileCache`] makes neighboring candidates cheap — points
//! differing only in scheduling depth share pipeline-prefix artifacts,
//! revisited points are memoized outright, and a
//! [`DiskCache`](cim_compiler::DiskCache) makes whole reruns warm.
//!
//! Determinism: candidate order equals proposal order (the pool writes
//! results back by index), strategies are seeded, and every recorded
//! quantity is a pure function of the compilation — so identical
//! `(space, strategy, seed, budget, objective, model)` runs produce
//! byte-identical [`DseReport::comparable`] documents at any `--jobs`
//! setting and any cache temperature.

use crate::objective::{pareto_front, Objective};
use crate::report::{DseCandidate, DseFailure, DseReport, DseTiming, TracePoint, SCHEMA_VERSION};
use crate::space::{DesignPoint, DesignSpace, SpaceError};
use crate::strategy::{History, SearchStrategy};
use cim_bench::pool::run_ordered;
use cim_bench::report::JobMetrics;
use cim_compiler::{CompileCache, CompileOptions, Compiler};
use cim_graph::Graph;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Why an exploration could not start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DseError {
    /// The design space failed validation.
    Space(SpaceError),
    /// The evaluation budget is zero.
    ZeroBudget,
}

impl std::fmt::Display for DseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DseError::Space(e) => e.fmt(f),
            DseError::ZeroBudget => write!(f, "exploration budget must be at least 1"),
        }
    }
}

impl std::error::Error for DseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DseError::Space(e) => Some(e),
            DseError::ZeroBudget => None,
        }
    }
}

impl From<SpaceError> for DseError {
    fn from(e: SpaceError) -> Self {
        DseError::Space(e)
    }
}

/// Drives design-space exploration runs. Configure once (threads,
/// cache), then call [`Explorer::explore`] per run.
#[derive(Default)]
pub struct Explorer {
    threads: usize,
    cache: Option<Arc<dyn CompileCache>>,
}

impl Explorer {
    /// An explorer evaluating candidates sequentially with no cache.
    #[must_use]
    pub fn new() -> Self {
        Explorer {
            threads: 1,
            cache: None,
        }
    }

    /// Sets the worker-thread count for batch evaluation (clamped to at
    /// least 1). Results are identical for every value; only wall-clock
    /// time changes.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Shares `cache` across every candidate compilation of every run —
    /// the warm-rerun/cross-candidate reuse the exploration workload is
    /// built around.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<dyn CompileCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Runs `strategy` over `space` against workload `graph`, charging
    /// at most `budget` evaluations, and assembles the versioned report.
    ///
    /// `seed` must be the seed `strategy` was built with — it is
    /// recorded in the report for reproduction, not consumed here.
    ///
    /// # Errors
    /// Returns [`DseError`] on an invalid space or a zero budget.
    /// Per-candidate build/compile failures do *not* abort the run; they
    /// are recorded in the report's `failures` section.
    pub fn explore(
        &self,
        graph: &Graph,
        space: &DesignSpace,
        strategy: &mut dyn SearchStrategy,
        objective: &Objective,
        seed: u64,
        budget: usize,
    ) -> Result<DseReport, DseError> {
        space.validate()?;
        if budget == 0 {
            return Err(DseError::ZeroBudget);
        }
        let base = space.base_arch();
        let stats_before = self.cache.as_ref().map(|c| c.stats());
        let started = Instant::now();

        let mut history = History::new();
        let mut trace = Vec::new();
        let mut proposed = 0usize;
        while proposed < budget {
            let remaining = budget - proposed;
            let mut batch = strategy.next_batch(space, &history, remaining);
            if batch.is_empty() {
                break;
            }
            batch.truncate(remaining);
            proposed += batch.len();

            // Unique new points of this batch, in first-proposal order;
            // revisits (across batches or within one) are memo-served.
            let mut seen: HashSet<String> = HashSet::new();
            let fresh: Vec<DesignPoint> = batch
                .into_iter()
                .filter(|p| !history.contains(p) && seen.insert(p.key()))
                .collect();

            let outcomes = run_ordered(&fresh, self.threads, |point| {
                evaluate(point, graph, &base, self.cache.as_ref())
            });
            for (point, outcome) in fresh.into_iter().zip(outcomes) {
                match outcome {
                    Ok((metrics, eval_ms)) => {
                        let objectives = objective.vector(&metrics);
                        let score = objective.score(&metrics);
                        history.record_success(DseCandidate {
                            point,
                            metrics,
                            objectives,
                            score,
                            eval_ms,
                        });
                    }
                    Err(error) => history.record_failure(DseFailure { point, error }),
                }
            }
            trace.push(TracePoint {
                proposed,
                evaluated: history.candidates().len(),
                best_score: history.best().map(|c| c.score),
            });
        }

        let total_ms = started.elapsed().as_secs_f64() * 1e3;
        let (candidates, failures) = history.into_parts();
        let vectors: Vec<Vec<f64>> = candidates.iter().map(|c| c.objectives.clone()).collect();
        let front = pareto_front(&vectors);
        let mut report = DseReport {
            schema_version: SCHEMA_VERSION,
            toolchain: concat!("cim-dse ", env!("CARGO_PKG_VERSION")).to_owned(),
            model: graph.name().to_owned(),
            space: space.clone(),
            strategy: strategy.name().to_owned(),
            objective: objective.canonical(),
            seed,
            budget,
            proposed,
            candidates,
            failures,
            front,
            trace,
            timing: DseTiming {
                total_ms,
                threads: self.threads,
            },
            cache_stats: None,
        };
        report.cache_stats = self
            .cache
            .as_ref()
            .zip(stats_before)
            .map(|(c, before)| c.stats().since(&before));
        Ok(report)
    }
}

/// Compiles one candidate: realize the architecture, run the staged
/// pipeline (with the shared cache when present), summarize. The
/// returned metrics are pure functions of the point, so memoizing by
/// point key is sound.
fn evaluate(
    point: &DesignPoint,
    graph: &Graph,
    base: &cim_arch::CimArchitecture,
    cache: Option<&Arc<dyn CompileCache>>,
) -> Result<(JobMetrics, f64), String> {
    let started = Instant::now();
    let arch = point
        .realize(base)
        .map_err(|e| format!("invalid architecture: {e}"))?;
    let options = CompileOptions {
        level: point.mode.opt_level(),
        ..CompileOptions::default()
    };
    let mut session = Compiler::with_options(options).session(graph, &arch);
    if let Some(cache) = cache {
        session = session.with_cache(Arc::clone(cache));
    }
    match session.finish() {
        Ok(compiled) => {
            let eval_ms = started.elapsed().as_secs_f64() * 1e3;
            Ok((JobMetrics::from(&compiled.metrics(&arch)), eval_ms))
        }
        Err(e) => Err(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Metric;
    use crate::strategy::{Exhaustive, HillClimb, StrategyKind};
    use cim_graph::zoo;

    fn tiny_space() -> DesignSpace {
        DesignSpace {
            base: "isaac-wlm".to_owned(),
            xb_rows: vec![64, 128],
            xb_cols: vec![128],
            xb_per_core: vec![8, 16],
            cores: vec![384],
            cell_bits: vec![2],
            adc_bits: vec![6, 8],
            modes: vec![cim_bench::ScheduleMode::Auto, cim_bench::ScheduleMode::Cg],
        }
    }

    #[test]
    fn exhaustive_covers_the_whole_tiny_space() {
        let space = tiny_space();
        let graph = zoo::lenet5();
        let mut strategy = Exhaustive::new();
        let report = Explorer::new()
            .with_threads(2)
            .explore(
                &graph,
                &space,
                &mut strategy,
                &Objective::single(Metric::Latency),
                0,
                1000,
            )
            .unwrap();
        // 2*1*2*1*1*2*2 = 16 points, all unique, all compiled.
        assert_eq!(report.proposed, 16);
        assert_eq!(report.candidates.len(), 16);
        assert!(report.failures.is_empty());
        assert!(!report.front.is_empty());
        // Single-objective front members all share the minimum score.
        let best = report.best().unwrap().score;
        for c in report.front_candidates() {
            assert_eq!(c.score, best);
        }
        // The trace is monotone in proposals and ends at the budget spent.
        assert!(report
            .trace
            .windows(2)
            .all(|w| w[0].proposed < w[1].proposed));
        assert_eq!(report.trace.last().unwrap().proposed, 16);
    }

    #[test]
    fn zero_budget_and_bad_space_are_rejected() {
        let graph = zoo::lenet5();
        let mut strategy = Exhaustive::new();
        let err = Explorer::new()
            .explore(
                &graph,
                &tiny_space(),
                &mut strategy,
                &Objective::single(Metric::Latency),
                0,
                0,
            )
            .unwrap_err();
        assert_eq!(err, DseError::ZeroBudget);

        let mut bad = tiny_space();
        bad.base = "nope".to_owned();
        let err = Explorer::new()
            .explore(
                &graph,
                &bad,
                &mut strategy,
                &Objective::single(Metric::Latency),
                0,
                4,
            )
            .unwrap_err();
        assert!(err.to_string().contains("`nope`"), "{err}");
    }

    #[test]
    fn hill_climb_improves_or_matches_its_start_and_respects_budget() {
        let space = tiny_space();
        let graph = zoo::lenet5();
        let mut strategy = HillClimb::new(11);
        let objective = Objective::single(Metric::Latency);
        let report = Explorer::new()
            .with_threads(2)
            .explore(&graph, &space, &mut strategy, &objective, 11, 40)
            .unwrap();
        assert!(report.proposed <= 40);
        let start = &report.candidates[0];
        assert!(report.best().unwrap().score <= start.score);
    }

    #[test]
    fn memoized_revisits_do_not_duplicate_candidates() {
        // Random sampling of a 16-point space with a 64-proposal budget
        // must revisit, yet candidates stay unique.
        let space = tiny_space();
        let graph = zoo::lenet5();
        let mut strategy = StrategyKind::Random.build(5);
        let report = Explorer::new()
            .with_threads(4)
            .explore(
                &graph,
                &space,
                strategy.as_mut(),
                &Objective::parse("latency,energy").unwrap(),
                5,
                64,
            )
            .unwrap();
        assert_eq!(report.proposed, 64);
        let mut keys: Vec<String> = report.candidates.iter().map(|c| c.point.key()).collect();
        let unique_before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), unique_before, "duplicate candidate recorded");
        assert!(unique_before <= 16);
        // Multi-objective vectors have one entry per metric.
        assert_eq!(report.candidates[0].objectives.len(), 2);
    }
}
