//! # cim-dse — design-space exploration for CIM architectures
//!
//! The CIM-MLC abstraction deliberately parameterizes the accelerator
//! (crossbar geometry, tier fan-outs, device precision, converter
//! resolution, scheduling depth); this crate *searches* that space
//! instead of only evaluating hand-written presets:
//!
//! * [`DesignSpace`] / [`DesignPoint`] — the mutable axes with validated
//!   bounds, realized into concrete [`CimArchitecture`](cim_arch::CimArchitecture)s
//!   through the arch builder's mutation helpers;
//! * [`SearchStrategy`] — pluggable batch-proposing searches, with four
//!   built-ins ([`Exhaustive`], [`Random`], [`HillClimb`],
//!   [`Evolutionary`]), all deterministic from their seed;
//! * [`Objective`] / [`Metric`] — weighted single- or multi-objective
//!   goals over the existing compile metrics, with exact
//!   [`pareto_front`] extraction;
//! * [`Explorer`] — drives batches through the `cim-bench` worker pool
//!   with a shared [`CompileCache`](cim_compiler::CompileCache), so
//!   revisited points and shared pipeline prefixes are never recompiled;
//! * [`DseReport`] — the schema-versioned JSON artifact
//!   (`cimc explore --out`), byte-reproducible across worker counts via
//!   [`DseReport::comparable`].
//!
//! ## Quickstart
//!
//! ```
//! use cim_dse::{DesignSpace, Explorer, Metric, Objective, StrategyKind};
//! use cim_graph::zoo;
//!
//! # fn main() -> Result<(), cim_dse::DseError> {
//! let space = DesignSpace::default_space();
//! let mut strategy = StrategyKind::HillClimb.build(42);
//! let report = Explorer::new().with_threads(2).explore(
//!     &zoo::lenet5(),
//!     &space,
//!     strategy.as_mut(),
//!     &Objective::single(Metric::Latency),
//!     42,
//!     24,
//! )?;
//! assert!(!report.front.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explorer;
pub mod objective;
pub mod report;
pub mod space;
pub mod strategy;

pub use explorer::{DseError, Explorer, TrafficWorkload};
pub use objective::{dominates, pareto_front, Metric, Objective, ObjectiveError, TrafficEval};
pub use report::{
    DseCandidate, DseFailure, DseReport, DseReportError, DseTiming, TracePoint, MIN_SCHEMA_VERSION,
    SCHEMA_VERSION,
};
pub use space::{DesignPoint, DesignSpace, SpaceError, AXIS_BOUNDS, AXIS_NAMES, NUM_AXES};
pub use strategy::{
    Evolutionary, Exhaustive, HillClimb, History, Random, SearchStrategy, SplitMix64, StrategyKind,
};
