//! Optimization objectives over compile metrics, and exact Pareto
//! extraction for multi-objective runs.
//!
//! A [`Metric`] names one scalar of a [`JobMetrics`] record together
//! with its optimization direction; an [`Objective`] is a weighted list
//! of metrics. Scalar searches rank candidates by
//! [`Objective::score`] (lower is better, directions folded in);
//! multi-objective runs additionally keep the per-metric
//! [`Objective::vector`] and extract the exact non-dominated set with
//! [`pareto_front`].

use cim_bench::report::JobMetrics;
use serde::{Deserialize, Serialize};

/// The serving-quality scalars of one design point under a fixed
/// traffic workload — produced by simulating the candidate architecture
/// with `cim-traffic` and consumed by the traffic [`Metric`] family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficEval {
    /// Aggregate p99 request latency in cycles (minimize).
    pub p99_latency: f64,
    /// Served requests per million cycles (maximize).
    pub throughput: f64,
    /// Fraction of requests dropped or served past their deadline
    /// (minimize).
    pub miss_rate: f64,
}

/// One optimizable scalar of a design point's evaluation.
///
/// The first four read the compile metrics of the candidate
/// architecture; the traffic family ([`Metric::P99Latency`],
/// [`Metric::Throughput`], [`Metric::MissRate`]) reads a [`TrafficEval`]
/// obtained by replaying a fixed request trace against the candidate,
/// and is only available when the explorer was given a traffic
/// workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// End-to-end inference latency in cycles (minimize).
    Latency,
    /// Total energy of one inference (minimize).
    Energy,
    /// Peak instantaneous power (minimize).
    PeakPower,
    /// Peak fraction of crossbars simultaneously active (maximize).
    Utilization,
    /// Aggregate p99 serving latency under the traffic workload
    /// (minimize).
    P99Latency,
    /// Served throughput under the traffic workload (maximize).
    Throughput,
    /// Drop + deadline-miss rate under the traffic workload (minimize).
    MissRate,
}

impl Metric {
    /// Every metric, in canonical order.
    pub const ALL: [Metric; 7] = [
        Metric::Latency,
        Metric::Energy,
        Metric::PeakPower,
        Metric::Utilization,
        Metric::P99Latency,
        Metric::Throughput,
        Metric::MissRate,
    ];

    /// Canonical names accepted by [`Metric::parse`] and the
    /// `cimc explore --objective` flag, in [`Metric::ALL`] order.
    pub const NAMES: [&'static str; 7] = [
        "latency",
        "energy",
        "peak-power",
        "utilization",
        "p99_latency",
        "throughput",
        "miss_rate",
    ];

    /// Stable CLI/report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Metric::Latency => "latency",
            Metric::Energy => "energy",
            Metric::PeakPower => "peak-power",
            Metric::Utilization => "utilization",
            Metric::P99Latency => "p99_latency",
            Metric::Throughput => "throughput",
            Metric::MissRate => "miss_rate",
        }
    }

    /// Parses a name produced by [`Metric::name`].
    #[must_use]
    pub fn parse(name: &str) -> Option<Metric> {
        Metric::ALL.into_iter().find(|m| m.name() == name)
    }

    /// Whether smaller raw values are better for this metric.
    #[must_use]
    pub fn lower_is_better(self) -> bool {
        !matches!(self, Metric::Utilization | Metric::Throughput)
    }

    /// Whether this metric reads a [`TrafficEval`] (and therefore
    /// requires the explorer to carry a traffic workload).
    #[must_use]
    pub fn needs_traffic(self) -> bool {
        matches!(
            self,
            Metric::P99Latency | Metric::Throughput | Metric::MissRate
        )
    }

    /// The raw value of this metric in an evaluation.
    ///
    /// # Panics
    /// Panics when a traffic metric is read without a [`TrafficEval`];
    /// the explorer pre-validates (`DseError::TrafficRequired`) so this
    /// cannot fire on the `cimc explore` path.
    #[must_use]
    pub fn value(self, metrics: &JobMetrics, traffic: Option<&TrafficEval>) -> f64 {
        let serving = || {
            traffic.unwrap_or_else(|| {
                panic!(
                    "metric `{}` requires a traffic evaluation, but none was provided",
                    self.name()
                )
            })
        };
        match self {
            Metric::Latency => metrics.latency_cycles,
            Metric::Energy => metrics.energy_total,
            Metric::PeakPower => metrics.peak_power,
            Metric::Utilization => metrics.utilization,
            Metric::P99Latency => serving().p99_latency,
            Metric::Throughput => serving().throughput,
            Metric::MissRate => serving().miss_rate,
        }
    }

    /// The direction-adjusted value: raw for minimized metrics, negated
    /// for maximized ones, so *lower is always better*.
    ///
    /// # Panics
    /// Like [`Metric::value`], panics when a traffic metric is read
    /// without a [`TrafficEval`].
    #[must_use]
    pub fn goal_value(self, metrics: &JobMetrics, traffic: Option<&TrafficEval>) -> f64 {
        let v = self.value(metrics, traffic);
        if self.lower_is_better() {
            v
        } else {
            -v
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an objective expression was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectiveError {
    /// A term names no known metric.
    UnknownMetric(String),
    /// A term's weight is not a positive finite number.
    BadWeight {
        /// The metric the weight was attached to.
        metric: String,
        /// The offending weight text.
        weight: String,
    },
    /// The same metric appears twice.
    DuplicateMetric(String),
    /// The expression has no terms.
    Empty,
}

impl std::fmt::Display for ObjectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObjectiveError::UnknownMetric(name) => write!(
                f,
                "unknown objective metric `{name}` (known: {})",
                Metric::NAMES.join(", ")
            ),
            ObjectiveError::BadWeight { metric, weight } => write!(
                f,
                "invalid weight `{weight}` for objective metric `{metric}` \
                 (expected a positive number)"
            ),
            ObjectiveError::DuplicateMetric(name) => {
                write!(f, "objective metric `{name}` appears twice")
            }
            ObjectiveError::Empty => write!(f, "objective has no metrics"),
        }
    }
}

impl std::error::Error for ObjectiveError {}

/// A weighted list of metrics to optimize.
///
/// One term makes a scalar objective; several make a multi-objective run
/// whose report carries a Pareto front over the unweighted per-metric
/// values, while the weights still drive the scalar [`Objective::score`]
/// local/evolutionary searches rank by.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    terms: Vec<(Metric, f64)>,
}

impl Objective {
    /// A single-metric objective with weight 1.
    #[must_use]
    pub fn single(metric: Metric) -> Self {
        Objective {
            terms: vec![(metric, 1.0)],
        }
    }

    /// Builds an objective from explicit terms.
    ///
    /// # Errors
    /// Rejects empty term lists, duplicate metrics and non-positive or
    /// non-finite weights.
    pub fn new(terms: Vec<(Metric, f64)>) -> Result<Self, ObjectiveError> {
        if terms.is_empty() {
            return Err(ObjectiveError::Empty);
        }
        for (i, (metric, weight)) in terms.iter().enumerate() {
            if !(weight.is_finite() && *weight > 0.0) {
                return Err(ObjectiveError::BadWeight {
                    metric: metric.name().to_owned(),
                    weight: weight.to_string(),
                });
            }
            if terms[..i].iter().any(|(m, _)| m == metric) {
                return Err(ObjectiveError::DuplicateMetric(metric.name().to_owned()));
            }
        }
        Ok(Objective { terms })
    }

    /// Parses a comma-separated objective expression: each term is
    /// `metric` or `metric:weight` (`latency`, `latency,energy`,
    /// `latency:2,energy`).
    ///
    /// # Errors
    /// Returns an [`ObjectiveError`] naming the offending term.
    pub fn parse(expr: &str) -> Result<Self, ObjectiveError> {
        let mut terms = Vec::new();
        for part in expr.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (name, weight) = match part.split_once(':') {
                Some((name, w)) => {
                    let metric = name.trim();
                    let weight: f64 = w.trim().parse().map_err(|_| ObjectiveError::BadWeight {
                        metric: metric.to_owned(),
                        weight: w.trim().to_owned(),
                    })?;
                    (metric, weight)
                }
                None => (part, 1.0),
            };
            let metric = Metric::parse(name)
                .ok_or_else(|| ObjectiveError::UnknownMetric(name.to_owned()))?;
            terms.push((metric, weight));
        }
        Objective::new(terms)
    }

    /// Canonical rendering ([`Objective::parse`]-able; weights of 1 are
    /// elided).
    #[must_use]
    pub fn canonical(&self) -> String {
        self.terms
            .iter()
            .map(|(m, w)| {
                if *w == 1.0 {
                    m.name().to_owned()
                } else {
                    format!("{}:{}", m.name(), w)
                }
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The metrics of this objective, in term order.
    #[must_use]
    pub fn metrics(&self) -> Vec<Metric> {
        self.terms.iter().map(|(m, _)| *m).collect()
    }

    /// Number of terms; a run is multi-objective when this exceeds 1.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Whether any term reads a [`TrafficEval`] — such objectives can
    /// only be explored with a traffic workload attached.
    #[must_use]
    pub fn needs_traffic(&self) -> bool {
        self.terms.iter().any(|(m, _)| m.needs_traffic())
    }

    /// The first traffic-requiring metric, if any (for error messages).
    #[must_use]
    pub fn first_traffic_metric(&self) -> Option<Metric> {
        self.terms
            .iter()
            .map(|(m, _)| *m)
            .find(|m| m.needs_traffic())
    }

    /// The direction-adjusted, *unweighted* per-metric vector — the
    /// coordinates Pareto dominance is decided on (lower is better in
    /// every coordinate).
    ///
    /// # Panics
    /// Panics when a traffic term is evaluated without a
    /// [`TrafficEval`] (see [`Metric::value`]).
    #[must_use]
    pub fn vector(&self, metrics: &JobMetrics, traffic: Option<&TrafficEval>) -> Vec<f64> {
        self.terms
            .iter()
            .map(|(m, _)| m.goal_value(metrics, traffic))
            .collect()
    }

    /// The weighted scalarization (lower is better): the ranking key of
    /// hill-climbing and evolutionary selection, and the quantity the
    /// convergence trace records.
    ///
    /// # Panics
    /// Panics when a traffic term is evaluated without a
    /// [`TrafficEval`] (see [`Metric::value`]).
    #[must_use]
    pub fn score(&self, metrics: &JobMetrics, traffic: Option<&TrafficEval>) -> f64 {
        self.terms
            .iter()
            .map(|(m, w)| w * m.goal_value(metrics, traffic))
            .sum()
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// Whether objective vector `a` Pareto-dominates `b`: no worse in every
/// coordinate and strictly better in at least one (both vectors are
/// direction-adjusted so lower is better; see [`Objective::vector`]).
///
/// # Panics
/// Panics if the vectors have different lengths.
#[must_use]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must align");
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Exact Pareto front over `vectors`: the ascending indices of every
/// vector no other vector dominates.
///
/// Duplicate vectors are all kept (none dominates its equal), so every
/// candidate tied on all objectives appears on the front. O(n²) pairwise
/// — exact by construction, and comfortably fast at exploration scales
/// (thousands of candidates).
#[must_use]
pub fn pareto_front(vectors: &[Vec<f64>]) -> Vec<usize> {
    (0..vectors.len())
        .filter(|&i| !vectors.iter().any(|other| dominates(other, &vectors[i])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(latency: f64, energy: f64, util: f64) -> JobMetrics {
        JobMetrics {
            level: "cg".to_owned(),
            latency_cycles: latency,
            steady_state_interval: latency,
            peak_power: 10.0,
            peak_active_crossbars: 64,
            energy_total: energy,
            energy_crossbar: energy,
            energy_adc: 0.0,
            energy_dac: 0.0,
            energy_movement: 0.0,
            energy_alu: 0.0,
            segments: 1,
            reprogram_cycles: 0.0,
            stages: 3,
            mvm_ops: 1000,
            crossbars_allocated: 128,
            utilization: util,
        }
    }

    #[test]
    fn parse_round_trips_and_names_offenders() {
        let o = Objective::parse("latency").unwrap();
        assert_eq!(o.arity(), 1);
        assert_eq!(o.canonical(), "latency");

        let o = Objective::parse("latency:2, energy").unwrap();
        assert_eq!(o.arity(), 2);
        assert_eq!(o.canonical(), "latency:2,energy");
        assert_eq!(Objective::parse(&o.canonical()).unwrap(), o);

        let err = Objective::parse("latency,bogus").unwrap_err();
        assert!(err.to_string().contains("`bogus`"), "{err}");
        let err = Objective::parse("latency:-1").unwrap_err();
        assert!(err.to_string().contains("`-1`"), "{err}");
        let err = Objective::parse("latency,latency").unwrap_err();
        assert!(err.to_string().contains("`latency`"), "{err}");
        assert_eq!(Objective::parse(""), Err(ObjectiveError::Empty));
    }

    #[test]
    fn every_metric_name_parses() {
        for name in Metric::NAMES {
            let m = Metric::parse(name).unwrap();
            assert_eq!(m.name(), name);
        }
        assert_eq!(Metric::parse("nope"), None);
    }

    #[test]
    fn utilization_is_maximized() {
        let a = metrics(100.0, 50.0, 0.9);
        let b = metrics(100.0, 50.0, 0.5);
        let o = Objective::single(Metric::Utilization);
        assert!(
            o.score(&a, None) < o.score(&b, None),
            "higher utilization scores better"
        );
        assert_eq!(o.vector(&a, None), vec![-0.9]);
    }

    #[test]
    fn weighted_score_folds_directions() {
        let m = metrics(100.0, 50.0, 0.5);
        let o = Objective::parse("latency:2,energy").unwrap();
        assert_eq!(o.score(&m, None), 2.0 * 100.0 + 50.0);
        assert_eq!(o.vector(&m, None), vec![100.0, 50.0]);
    }

    #[test]
    fn traffic_metrics_read_the_traffic_eval() {
        let m = metrics(100.0, 50.0, 0.5);
        let t = TrafficEval {
            p99_latency: 9_000.0,
            throughput: 12.5,
            miss_rate: 0.25,
        };
        let o = Objective::parse("p99_latency,throughput,miss_rate").unwrap();
        assert!(o.needs_traffic());
        assert_eq!(o.first_traffic_metric(), Some(Metric::P99Latency));
        assert_eq!(o.vector(&m, Some(&t)), vec![9_000.0, -12.5, 0.25]);
        assert!(!Objective::parse("latency,energy").unwrap().needs_traffic());
    }

    #[test]
    #[should_panic(expected = "requires a traffic evaluation")]
    fn traffic_metric_without_eval_panics() {
        let m = metrics(100.0, 50.0, 0.5);
        let _ = Objective::single(Metric::P99Latency).score(&m, None);
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[1.0, 2.0]));
        assert!(
            !dominates(&[1.0, 2.0], &[1.0, 2.0]),
            "equal never dominates"
        );
        assert!(!dominates(&[0.0, 5.0], &[1.0, 2.0]), "trade-off");
    }

    #[test]
    fn pareto_front_is_exact() {
        let vectors = vec![
            vec![1.0, 5.0], // front
            vec![2.0, 4.0], // front
            vec![2.0, 5.0], // dominated by both
            vec![5.0, 1.0], // front
            vec![1.0, 5.0], // duplicate of 0 — kept
        ];
        assert_eq!(pareto_front(&vectors), vec![0, 1, 3, 4]);
        // Single objective: the front is all minima.
        let single = vec![vec![3.0], vec![1.0], vec![1.0], vec![2.0]];
        assert_eq!(pareto_front(&single), vec![1, 2]);
        // Empty in, empty out.
        assert!(pareto_front(&[]).is_empty());
    }
}
