//! Versioned, machine-readable exploration reports.
//!
//! A [`DseReport`] is the JSON artifact `cimc explore --out` emits,
//! following the [`BenchReport`](cim_bench::BenchReport) conventions:
//! a `schema_version` gate on load, run-specific wall-clock/cache fields
//! isolated from the deterministic comparison section, and a
//! [`DseReport::comparable`] view that serializes byte-identically for
//! identical `(strategy, seed, budget, space, objective)` runs
//! regardless of worker count or cache state.

use crate::space::{DesignPoint, DesignSpace};
use cim_bench::report::JobMetrics;
use cim_compiler::CacheStats;
use serde::{Deserialize, Serialize};

/// Version of the exploration-report layout. Bump on any
/// backwards-incompatible change; [`DseReport::from_json`] rejects
/// documents outside [`MIN_SCHEMA_VERSION`]`..=`[`SCHEMA_VERSION`].
///
/// # History
///
/// * **1** — initial layout.
/// * **2** — candidates gain an optional `traffic` evaluation
///   (serving p99/throughput/miss-rate under a fixed trace, for the
///   `p99_latency`/`throughput`/`miss_rate` objective family). Absent
///   for compile-only objectives, so v1 documents still load.
pub const SCHEMA_VERSION: u32 = 2;

/// Oldest report layout [`DseReport::from_json`] still reads.
pub const MIN_SCHEMA_VERSION: u32 = 1;

/// One evaluated (successfully compiled) design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseCandidate {
    /// The design point.
    pub point: DesignPoint,
    /// Full deterministic metrics of the compilation.
    pub metrics: JobMetrics,
    /// Serving-quality scalars under the run's traffic workload, when
    /// the exploration carried one. Deterministic like `metrics` (the
    /// simulation is bit-reproducible), so kept by
    /// [`DseReport::comparable`].
    #[serde(default)]
    pub traffic: Option<crate::objective::TrafficEval>,
    /// Direction-adjusted per-objective values (lower is better; the
    /// coordinates the Pareto front is decided on).
    pub objectives: Vec<f64>,
    /// Weighted scalar score (lower is better).
    pub score: f64,
    /// Wall-clock evaluation time in milliseconds — run-specific;
    /// zeroed by [`DseReport::comparable`].
    pub eval_ms: f64,
}

/// One design point that failed to build or compile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseFailure {
    /// The design point.
    pub point: DesignPoint,
    /// The build/compile error, verbatim.
    pub error: String,
}

/// One convergence-trace sample, recorded after every strategy batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Evaluations charged against the budget so far (including
    /// memo-served revisits).
    pub proposed: usize,
    /// Unique candidates successfully evaluated so far.
    pub evaluated: usize,
    /// Best (lowest) scalar score seen so far, if any candidate
    /// compiled.
    pub best_score: Option<f64>,
}

/// Wall-clock summary of an exploration. Run-specific: excluded from the
/// comparison section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseTiming {
    /// Total exploration wall-clock time in milliseconds.
    pub total_ms: f64,
    /// Worker threads used.
    pub threads: usize,
}

/// The machine-readable artifact of one exploration run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseReport {
    /// Document layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The toolchain that produced the report.
    pub toolchain: String,
    /// Workload the space was explored against (zoo model name).
    pub model: String,
    /// The explored space.
    pub space: DesignSpace,
    /// Search strategy name.
    pub strategy: String,
    /// Canonical objective expression ([`crate::Objective::canonical`]).
    pub objective: String,
    /// Seed the strategy was constructed with.
    pub seed: u64,
    /// Evaluation budget requested.
    pub budget: usize,
    /// Evaluations actually charged (≤ budget; a strategy may exhaust
    /// its space early).
    pub proposed: usize,
    /// Unique successfully-evaluated candidates, in first-evaluation
    /// order.
    pub candidates: Vec<DseCandidate>,
    /// Unique failed points, in first-evaluation order.
    pub failures: Vec<DseFailure>,
    /// Ascending indices into `candidates` of the exact Pareto front
    /// over the `objectives` vectors.
    pub front: Vec<usize>,
    /// Per-batch convergence trace.
    pub trace: Vec<TracePoint>,
    /// Wall-clock section (excluded from comparison).
    pub timing: DseTiming,
    /// Compile-cache counters of the run (`None` when uncached).
    /// Run-specific like `timing`, and excluded from comparison: a cold
    /// and a warm exploration differ here and nowhere else.
    #[serde(default)]
    pub cache_stats: Option<CacheStats>,
}

/// Why a report document was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DseReportError {
    /// The document is not valid JSON or does not match the schema.
    Parse(String),
    /// The document's `schema_version` is outside
    /// [`MIN_SCHEMA_VERSION`]`..=`[`SCHEMA_VERSION`].
    SchemaVersion {
        /// Version found in the document.
        found: u32,
        /// Newest version this toolchain reads and writes.
        expected: u32,
    },
}

impl std::fmt::Display for DseReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DseReportError::Parse(e) => write!(f, "invalid exploration report: {e}"),
            DseReportError::SchemaVersion { found, expected } => write!(
                f,
                "exploration report schema_version {found} is outside the supported \
                 range {MIN_SCHEMA_VERSION}..={expected}"
            ),
        }
    }
}

impl std::error::Error for DseReportError {}

impl DseReport {
    /// Serializes the report as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("exploration reports always serialize")
    }

    /// Parses and validates a report document.
    ///
    /// # Errors
    /// Returns [`DseReportError`] on malformed JSON, a schema-version
    /// mismatch, or a `front` index that does not resolve into
    /// `candidates` (a truncated or hand-edited document), so
    /// [`DseReport::front_candidates`] can never panic on a loaded
    /// report.
    pub fn from_json(json: &str) -> Result<Self, DseReportError> {
        let report: DseReport =
            serde_json::from_str(json).map_err(|e| DseReportError::Parse(e.to_string()))?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&report.schema_version) {
            return Err(DseReportError::SchemaVersion {
                found: report.schema_version,
                expected: SCHEMA_VERSION,
            });
        }
        if let Some(&bad) = report.front.iter().find(|&&i| i >= report.candidates.len()) {
            return Err(DseReportError::Parse(format!(
                "front index {bad} is out of bounds for {} candidate(s)",
                report.candidates.len()
            )));
        }
        Ok(report)
    }

    /// A copy with every run-specific field stripped — wall clocks
    /// zeroed, `cache_stats` dropped. Two explorations with identical
    /// `(space, strategy, seed, budget, objective, model)` inputs
    /// serialize this copy to byte-identical JSON regardless of worker
    /// count or cache state.
    #[must_use]
    pub fn comparable(&self) -> Self {
        let mut report = self.clone();
        report.timing = DseTiming {
            total_ms: 0.0,
            threads: 0,
        };
        for candidate in &mut report.candidates {
            candidate.eval_ms = 0.0;
        }
        report.cache_stats = None;
        report
    }

    /// The Pareto-front candidates themselves, in `front` order.
    #[must_use]
    pub fn front_candidates(&self) -> Vec<&DseCandidate> {
        self.front.iter().map(|&i| &self.candidates[i]).collect()
    }

    /// The best candidate by scalar score (ties to the earliest
    /// evaluated), if any compiled.
    #[must_use]
    pub fn best(&self) -> Option<&DseCandidate> {
        self.candidates
            .iter()
            .reduce(|best, c| if c.score < best.score { c } else { best })
    }

    /// Renders a human-readable summary: the front as an aligned table,
    /// plus counts and the best scalar score.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "exploration: {} on `{}` ({} strategy, objective {}, seed {})\n\
             {} evaluation(s) charged of {} budget; {} unique candidate(s), {} failure(s)\n",
            self.space.base,
            self.model,
            self.strategy,
            self.objective,
            self.seed,
            self.proposed,
            self.budget,
            self.candidates.len(),
            self.failures.len(),
        ));
        if let Some(best) = self.best() {
            out.push_str(&format!(
                "best score {:.4} at {}\n",
                best.score,
                best.point.key()
            ));
        }
        out.push_str(&format!(
            "Pareto front ({} point(s), objective(s) {}):\n",
            self.front.len(),
            self.objective
        ));
        for c in self.front_candidates() {
            out.push_str(&format!(
                "  {:<34} score {:>14.4}  latency {:>14.0}  energy {:>14.1}  util {:>6.3}",
                c.point.key(),
                c.score,
                c.metrics.latency_cycles,
                c.metrics.energy_total,
                c.metrics.utilization,
            ));
            if let Some(t) = &c.traffic {
                out.push_str(&format!(
                    "  p99 {:>12.0}  thrpt {:>8.2}/Mcyc  miss {:>6.3}",
                    t.p99_latency, t.throughput, t.miss_rate
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_bench::ScheduleMode;

    fn metrics(latency: f64) -> JobMetrics {
        JobMetrics {
            level: "cg".to_owned(),
            latency_cycles: latency,
            steady_state_interval: latency,
            peak_power: 10.0,
            peak_active_crossbars: 64,
            energy_total: 100.0,
            energy_crossbar: 80.0,
            energy_adc: 5.0,
            energy_dac: 5.0,
            energy_movement: 5.0,
            energy_alu: 5.0,
            segments: 1,
            reprogram_cycles: 0.0,
            stages: 3,
            mvm_ops: 1000,
            crossbars_allocated: 128,
            utilization: 0.5,
        }
    }

    fn point() -> DesignPoint {
        DesignPoint {
            xb_rows: 128,
            xb_cols: 128,
            xb_per_core: 16,
            cores: 768,
            cell_bits: 2,
            adc_bits: 8,
            mode: ScheduleMode::Auto,
        }
    }

    fn report() -> DseReport {
        DseReport {
            schema_version: SCHEMA_VERSION,
            toolchain: "cim-dse test".to_owned(),
            model: "lenet5".to_owned(),
            space: DesignSpace::default_space(),
            strategy: "random".to_owned(),
            objective: "latency".to_owned(),
            seed: 7,
            budget: 10,
            proposed: 10,
            candidates: vec![
                DseCandidate {
                    point: point(),
                    metrics: metrics(1000.0),
                    traffic: None,
                    objectives: vec![1000.0],
                    score: 1000.0,
                    eval_ms: 1.5,
                },
                DseCandidate {
                    point: DesignPoint {
                        xb_rows: 64,
                        ..point()
                    },
                    metrics: metrics(800.0),
                    traffic: Some(crate::objective::TrafficEval {
                        p99_latency: 9_000.0,
                        throughput: 12.5,
                        miss_rate: 0.1,
                    }),
                    objectives: vec![800.0],
                    score: 800.0,
                    eval_ms: 2.5,
                },
            ],
            failures: vec![DseFailure {
                point: DesignPoint {
                    cell_bits: 1,
                    ..point()
                },
                error: "boom".to_owned(),
            }],
            front: vec![1],
            trace: vec![TracePoint {
                proposed: 10,
                evaluated: 2,
                best_score: Some(800.0),
            }],
            timing: DseTiming {
                total_ms: 12.0,
                threads: 4,
            },
            cache_stats: Some(CacheStats {
                hits: 3,
                misses: 2,
                stores: 2,
            }),
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report();
        let back = DseReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn schema_version_mismatch_rejected() {
        let mut r = report();
        r.schema_version = SCHEMA_VERSION + 1;
        let err = DseReport::from_json(&r.to_json()).unwrap_err();
        assert!(matches!(err, DseReportError::SchemaVersion { .. }), "{err}");
        assert!(DseReport::from_json("{nope").is_err());
    }

    #[test]
    fn out_of_bounds_front_indices_are_rejected_on_load() {
        let mut r = report();
        r.front = vec![1, 7];
        let err = DseReport::from_json(&r.to_json()).unwrap_err();
        assert!(
            matches!(&err, DseReportError::Parse(m) if m.contains("7")),
            "{err}"
        );
    }

    #[test]
    fn comparable_strips_only_run_specific_fields() {
        let r = report();
        let c = r.comparable();
        assert_eq!(c.timing.total_ms, 0.0);
        assert_eq!(c.timing.threads, 0);
        assert_eq!(c.candidates[0].eval_ms, 0.0);
        assert_eq!(c.cache_stats, None);
        assert_eq!(c.candidates[0].metrics, r.candidates[0].metrics);
        assert_eq!(
            c.candidates[1].traffic, r.candidates[1].traffic,
            "traffic evaluation is deterministic and survives comparable()"
        );
        assert_eq!(c.front, r.front);
        assert_eq!(c.trace, r.trace);
    }

    #[test]
    fn v1_documents_without_traffic_still_load() {
        let mut r = report();
        r.schema_version = 1;
        let json = r.to_json().replace("\"traffic\"", "\"traffic_unknown\"");
        // serde ignores the unknown key and defaults `traffic` to None.
        let back = DseReport::from_json(&json).unwrap();
        assert_eq!(back.schema_version, 1);
        assert!(back.candidates.iter().all(|c| c.traffic.is_none()));
    }

    #[test]
    fn accessors_resolve_the_front_and_best() {
        let r = report();
        assert_eq!(r.best().unwrap().score, 800.0);
        let front = r.front_candidates();
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].point.xb_rows, 64);
        let text = r.render();
        assert!(text.contains("Pareto front"), "{text}");
        assert!(text.contains("r64x128"), "{text}");
    }
}
