//! The searchable architecture space: axes, bounds, points.
//!
//! A [`DesignSpace`] names a base preset and, per mutable axis, the
//! candidate values a search may pick — the paper's `Abs-arch`
//! parameterization (crossbar geometry, tier fan-outs, device bit-width,
//! converter resolution) plus the scheduling-depth axis the sweep driver
//! already exposes. A [`DesignPoint`] is one concrete choice per axis;
//! [`DesignPoint::realize`] turns it into a buildable
//! [`CimArchitecture`] by mutating the base preset through
//! [`CimArchitectureBuilder`](cim_arch::CimArchitectureBuilder) and the
//! crossbar-tier `with_*` helpers.
//!
//! Axis values are explicit lists (not ranges): grids, neighborhoods and
//! crossover all become index arithmetic, and a JSON space file states
//! exactly what will be explored.

use cim_arch::{presets, ArchError, CimArchitecture, XbShape};
use cim_bench::ScheduleMode;
use serde::{Deserialize, Serialize};

/// Number of axes of a [`DesignSpace`] / coordinates of a point.
pub const NUM_AXES: usize = 7;

/// Stable axis names, in coordinate order.
pub const AXIS_NAMES: [&str; NUM_AXES] = [
    "xb_rows",
    "xb_cols",
    "xb_per_core",
    "cores",
    "cell_bits",
    "adc_bits",
    "mode",
];

/// Hard validation bounds per numeric axis: `(name, min, max)`.
/// Values outside these are rejected by [`DesignSpace::validate`]
/// regardless of what the base preset would accept, keeping runaway
/// space files from requesting nonsensical hardware.
pub const AXIS_BOUNDS: [(&str, u32, u32); 6] = [
    ("xb_rows", 1, 8192),
    ("xb_cols", 1, 8192),
    ("xb_per_core", 1, 4096),
    ("cores", 1, 1_048_576),
    ("cell_bits", 1, 16),
    ("adc_bits", 1, 32),
];

/// One concrete architecture + scheduling choice: a coordinate per axis
/// of the enclosing [`DesignSpace`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Crossbar wordlines (`xb_size` rows).
    pub xb_rows: u32,
    /// Crossbar bitlines (`xb_size` cols).
    pub xb_cols: u32,
    /// Crossbars (macros) per core (`xb_number`).
    pub xb_per_core: u32,
    /// Cores on the chip (`core_number`).
    pub cores: u32,
    /// Bits stored per memory cell (`Precision`).
    pub cell_bits: u32,
    /// ADC resolution in bits.
    pub adc_bits: u32,
    /// Scheduling depth the candidate is compiled at.
    pub mode: ScheduleMode,
}

impl DesignPoint {
    /// Stable identifier of this point — the dedup/memoization key of an
    /// exploration and the label reports render.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "r{}x{}-xb{}-c{}-b{}-a{}#{}",
            self.xb_rows,
            self.xb_cols,
            self.xb_per_core,
            self.cores,
            self.cell_bits,
            self.adc_bits,
            self.mode.name()
        )
    }

    /// Builds the concrete architecture this point describes by mutating
    /// `base` (NoCs, buffers, DAC, cell technology and computing mode are
    /// inherited; `parallel_row` is clamped to the new row count). The
    /// cost model is re-derived from the mutated crossbar tier via
    /// [`CimArchitectureBuilder::build`](cim_arch::CimArchitectureBuilder::build).
    ///
    /// # Errors
    /// Propagates tier validation errors (a point can be structurally
    /// valid for the space yet unbuildable on a particular base, e.g. an
    /// ADC resolution the cost model rejects).
    pub fn realize(&self, base: &CimArchitecture) -> Result<CimArchitecture, ArchError> {
        let resized = base
            .with_core_count(self.cores)?
            .with_xb_count(self.xb_per_core)?;
        let crossbar = resized
            .crossbar()
            .with_shape(XbShape::new(self.xb_rows, self.xb_cols)?)?
            .with_adc_bits(self.adc_bits)?
            .with_cell_bits(self.cell_bits)?;
        resized.to_builder().crossbar(crossbar).build()
    }
}

/// Why a [`DesignSpace`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// `base` is not a known architecture preset.
    UnknownBase(String),
    /// An axis has no candidate values.
    EmptyAxis(&'static str),
    /// An axis lists the same value twice.
    DuplicateValue {
        /// Axis name.
        axis: &'static str,
        /// The repeated value.
        value: String,
    },
    /// A value is outside the axis's hard bounds ([`AXIS_BOUNDS`]).
    OutOfBounds {
        /// Axis name.
        axis: &'static str,
        /// The offending value.
        value: u32,
        /// Inclusive lower bound.
        min: u32,
        /// Inclusive upper bound.
        max: u32,
    },
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::UnknownBase(name) => write!(
                f,
                "unknown base preset `{name}` (known: {})",
                presets::NAMES.join(", ")
            ),
            SpaceError::EmptyAxis(axis) => write!(f, "design space axis `{axis}` has no values"),
            SpaceError::DuplicateValue { axis, value } => {
                write!(f, "design space axis `{axis}` lists `{value}` twice")
            }
            SpaceError::OutOfBounds {
                axis,
                value,
                min,
                max,
            } => write!(
                f,
                "design space axis `{axis}` value `{value}` is outside {min}..={max}"
            ),
        }
    }
}

impl std::error::Error for SpaceError {}

/// The searchable space: a base preset plus candidate values per axis.
///
/// Serializes to/from JSON (`cimc explore --space <file.json>`); see
/// [`DesignSpace::default_space`] for the committed default.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// Architecture preset every candidate starts from
    /// ([`presets::NAMES`]).
    pub base: String,
    /// Candidate crossbar row counts.
    pub xb_rows: Vec<u32>,
    /// Candidate crossbar column counts.
    pub xb_cols: Vec<u32>,
    /// Candidate crossbars-per-core counts.
    pub xb_per_core: Vec<u32>,
    /// Candidate chip core counts.
    pub cores: Vec<u32>,
    /// Candidate per-cell precisions.
    pub cell_bits: Vec<u32>,
    /// Candidate ADC resolutions.
    pub adc_bits: Vec<u32>,
    /// Candidate scheduling modes.
    pub modes: Vec<ScheduleMode>,
}

impl DesignSpace {
    /// The committed default space around the paper's WLM-exposed
    /// Table 3 baseline: 3 × 3 × 4 × 3 × 3 × 3 × 4 = 3888 points
    /// spanning the Figure 22 sensitivity axes plus device precision,
    /// ADC resolution and scheduling depth.
    #[must_use]
    pub fn default_space() -> Self {
        DesignSpace {
            base: "isaac-wlm".to_owned(),
            xb_rows: vec![64, 128, 256],
            xb_cols: vec![64, 128, 256],
            xb_per_core: vec![4, 8, 16, 32],
            cores: vec![192, 384, 768],
            cell_bits: vec![1, 2, 4],
            adc_bits: vec![4, 6, 8],
            modes: ScheduleMode::ALL.to_vec(),
        }
    }

    fn numeric_axes(&self) -> [(&'static str, &Vec<u32>); 6] {
        [
            ("xb_rows", &self.xb_rows),
            ("xb_cols", &self.xb_cols),
            ("xb_per_core", &self.xb_per_core),
            ("cores", &self.cores),
            ("cell_bits", &self.cell_bits),
            ("adc_bits", &self.adc_bits),
        ]
    }

    /// Checks the base resolves and every axis is non-empty, duplicate
    /// free and within its hard bounds.
    ///
    /// # Errors
    /// Returns the first failing [`SpaceError`], naming the offending
    /// axis and value.
    pub fn validate(&self) -> Result<(), SpaceError> {
        if presets::by_name(&self.base).is_none() {
            return Err(SpaceError::UnknownBase(self.base.clone()));
        }
        for ((axis, values), (_, min, max)) in self.numeric_axes().into_iter().zip(AXIS_BOUNDS) {
            if values.is_empty() {
                return Err(SpaceError::EmptyAxis(axis));
            }
            for (i, &v) in values.iter().enumerate() {
                if !(min..=max).contains(&v) {
                    return Err(SpaceError::OutOfBounds {
                        axis,
                        value: v,
                        min,
                        max,
                    });
                }
                if values[..i].contains(&v) {
                    return Err(SpaceError::DuplicateValue {
                        axis,
                        value: v.to_string(),
                    });
                }
            }
        }
        if self.modes.is_empty() {
            return Err(SpaceError::EmptyAxis("mode"));
        }
        for (i, m) in self.modes.iter().enumerate() {
            if self.modes[..i].contains(m) {
                return Err(SpaceError::DuplicateValue {
                    axis: "mode",
                    value: m.name().to_owned(),
                });
            }
        }
        Ok(())
    }

    /// The base preset every candidate mutates.
    ///
    /// # Panics
    /// Panics if the space was not validated (`base` unknown).
    #[must_use]
    pub fn base_arch(&self) -> CimArchitecture {
        presets::by_name(&self.base).expect("space validated")
    }

    /// Number of candidate values along axis `axis` (coordinate order of
    /// [`AXIS_NAMES`]).
    ///
    /// # Panics
    /// Panics if `axis >= NUM_AXES`.
    #[must_use]
    pub fn cardinality(&self, axis: usize) -> usize {
        match axis {
            0 => self.xb_rows.len(),
            1 => self.xb_cols.len(),
            2 => self.xb_per_core.len(),
            3 => self.cores.len(),
            4 => self.cell_bits.len(),
            5 => self.adc_bits.len(),
            6 => self.modes.len(),
            _ => panic!("axis {axis} out of range (NUM_AXES = {NUM_AXES})"),
        }
    }

    /// Total number of points in the space (product of cardinalities,
    /// saturating at `u64::MAX`).
    #[must_use]
    pub fn size(&self) -> u64 {
        (0..NUM_AXES).fold(1u64, |acc, axis| {
            acc.saturating_mul(self.cardinality(axis) as u64)
        })
    }

    /// The point at coordinates `coords` (one index per axis).
    ///
    /// # Panics
    /// Panics if a coordinate is out of range for its axis.
    #[must_use]
    pub fn point(&self, coords: &[usize; NUM_AXES]) -> DesignPoint {
        DesignPoint {
            xb_rows: self.xb_rows[coords[0]],
            xb_cols: self.xb_cols[coords[1]],
            xb_per_core: self.xb_per_core[coords[2]],
            cores: self.cores[coords[3]],
            cell_bits: self.cell_bits[coords[4]],
            adc_bits: self.adc_bits[coords[5]],
            mode: self.modes[coords[6]],
        }
    }

    /// Coordinates of the point at lexicographic index `index`
    /// (axis 0 most significant — the [`Exhaustive`](crate::Exhaustive)
    /// enumeration order).
    ///
    /// # Panics
    /// Panics if `index >= self.size()`.
    #[must_use]
    pub fn coords_at(&self, index: u64) -> [usize; NUM_AXES] {
        assert!(index < self.size(), "index {index} out of range");
        let mut coords = [0usize; NUM_AXES];
        let mut rest = index;
        for axis in (0..NUM_AXES).rev() {
            let card = self.cardinality(axis) as u64;
            coords[axis] = usize::try_from(rest % card).expect("cardinality fits usize");
            rest /= card;
        }
        coords
    }

    /// Coordinates whose values are closest to the base preset's own
    /// axis values (ties to the smaller value; the mode coordinate
    /// starts at the first listed mode) — the deterministic starting
    /// point of local searches.
    #[must_use]
    pub fn start_coords(&self) -> [usize; NUM_AXES] {
        let base = self.base_arch();
        let target = [
            base.axis("xb_rows").unwrap_or(0),
            base.axis("xb_cols").unwrap_or(0),
            base.axis("xb_number").unwrap_or(0),
            base.axis("core_number").unwrap_or(0),
            base.axis("cell_bits").unwrap_or(0),
            base.axis("adc_bits").unwrap_or(0),
        ];
        let mut coords = [0usize; NUM_AXES];
        for (axis, (_, values)) in self.numeric_axes().into_iter().enumerate() {
            coords[axis] = values
                .iter()
                .enumerate()
                .min_by_key(|(_, &v)| (u64::from(v).abs_diff(target[axis]), v))
                .map(|(i, _)| i)
                .expect("validated axes are non-empty");
        }
        coords[6] = 0;
        coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_validates_and_sizes() {
        let s = DesignSpace::default_space();
        s.validate().unwrap();
        assert_eq!(s.size(), 3 * 3 * 4 * 3 * 3 * 3 * 4);
        assert_eq!(NUM_AXES, AXIS_NAMES.len());
    }

    #[test]
    fn validation_names_the_offender() {
        let mut s = DesignSpace::default_space();
        s.base = "nope".into();
        assert!(s.validate().unwrap_err().to_string().contains("`nope`"));

        let mut s = DesignSpace::default_space();
        s.adc_bits = vec![];
        assert_eq!(s.validate(), Err(SpaceError::EmptyAxis("adc_bits")));

        let mut s = DesignSpace::default_space();
        s.cell_bits = vec![2, 2];
        let msg = s.validate().unwrap_err().to_string();
        assert!(msg.contains("cell_bits") && msg.contains("`2`"), "{msg}");

        let mut s = DesignSpace::default_space();
        s.xb_rows = vec![0];
        let msg = s.validate().unwrap_err().to_string();
        assert!(msg.contains("xb_rows") && msg.contains("`0`"), "{msg}");

        let mut s = DesignSpace::default_space();
        s.modes = vec![ScheduleMode::Cg, ScheduleMode::Cg];
        let msg = s.validate().unwrap_err().to_string();
        assert!(msg.contains("mode") && msg.contains("`cg`"), "{msg}");
    }

    #[test]
    fn coords_round_trip_lexicographically() {
        let s = DesignSpace::default_space();
        assert_eq!(s.coords_at(0), [0; NUM_AXES]);
        // Index 1 increments the least-significant (mode) axis.
        assert_eq!(s.coords_at(1), [0, 0, 0, 0, 0, 0, 1]);
        // The last index is the all-max coordinate.
        let last = s.coords_at(s.size() - 1);
        for (axis, &c) in last.iter().enumerate() {
            assert_eq!(c, s.cardinality(axis) - 1, "axis {axis}");
        }
        // Distinct indices give distinct points.
        assert_ne!(s.point(&s.coords_at(17)), s.point(&s.coords_at(18)));
    }

    #[test]
    fn realize_mutates_the_base() {
        let s = DesignSpace::default_space();
        let base = s.base_arch();
        let p = DesignPoint {
            xb_rows: 64,
            xb_cols: 256,
            xb_per_core: 4,
            cores: 192,
            cell_bits: 4,
            adc_bits: 6,
            mode: ScheduleMode::Auto,
        };
        let arch = p.realize(&base).unwrap();
        assert_eq!(arch.axis("xb_rows"), Some(64));
        assert_eq!(arch.axis("xb_cols"), Some(256));
        assert_eq!(arch.axis("xb_number"), Some(4));
        assert_eq!(arch.axis("core_number"), Some(192));
        assert_eq!(arch.axis("cell_bits"), Some(4));
        assert_eq!(arch.axis("adc_bits"), Some(6));
        // Inherited from the base preset.
        assert_eq!(arch.mode(), base.mode());
        assert_eq!(arch.crossbar().dac_bits(), base.crossbar().dac_bits());
        assert_eq!(arch.crossbar().cell_type(), base.crossbar().cell_type());
        // parallel_row clamps when the crossbar shrinks below it.
        let tiny = DesignPoint { xb_rows: 4, ..p };
        assert_eq!(tiny.realize(&base).unwrap().crossbar().parallel_row(), 4);
    }

    #[test]
    fn start_coords_recover_the_base_preset() {
        let s = DesignSpace::default_space();
        let coords = s.start_coords();
        let p = s.point(&coords);
        // isaac-wlm: 128x128 crossbars, 16 per core, 768 cores, 2-bit
        // cells, 8-bit ADC.
        assert_eq!(
            (
                p.xb_rows,
                p.xb_cols,
                p.xb_per_core,
                p.cores,
                p.cell_bits,
                p.adc_bits
            ),
            (128, 128, 16, 768, 2, 8)
        );
        assert_eq!(p.mode, s.modes[0]);
    }

    #[test]
    fn space_json_round_trips() {
        let s = DesignSpace::default_space();
        let json = serde_json::to_string(&s).unwrap();
        let back: DesignSpace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn point_keys_are_unique_per_point() {
        let s = DesignSpace::default_space();
        let a = s.point(&s.coords_at(0));
        let b = s.point(&s.coords_at(1));
        assert_ne!(a.key(), b.key());
        assert_eq!(a.key(), s.point(&s.coords_at(0)).key());
    }
}
