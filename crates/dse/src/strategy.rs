//! Pluggable search strategies and the evaluation history they read.
//!
//! A [`SearchStrategy`] proposes batches of [`DesignPoint`]s; the
//! [`Explorer`](crate::Explorer) evaluates each batch on the worker pool
//! and records the outcomes in a [`History`] the strategy consults on
//! its next call. Batches keep strategies parallel-friendly (a
//! neighborhood or a generation evaluates concurrently) while the
//! batch *order* keeps runs deterministic: nothing a strategy sees
//! depends on worker count.
//!
//! Budget accounting is proposal-based: every proposed point charges the
//! budget, including revisits of already-evaluated points (served from
//! the explorer's memo without recompiling). That keeps local searches
//! honest — circling a local optimum spends budget — and guarantees
//! termination.
//!
//! Four built-ins ([`StrategyKind`]):
//!
//! * [`Exhaustive`] — lexicographic grid enumeration;
//! * [`Random`] — uniform i.i.d. sampling, seeded;
//! * [`HillClimb`] — steepest-ascent neighborhood search with seeded
//!   random restarts;
//! * [`Evolutionary`] — elitist generational GA: tournament selection,
//!   uniform crossover, ±1-step mutation, deterministic from its seed.

use crate::report::{DseCandidate, DseFailure};
use crate::space::{DesignPoint, DesignSpace, NUM_AXES};
use std::collections::HashMap;

/// Deterministic splitmix64 generator driving the seeded strategies.
///
/// In-tree (no external RNG crates) and stable across platforms: the
/// same seed always yields the same exploration.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n = 0` yields 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Everything evaluated so far, in first-evaluation order — the
/// read-only view strategies make decisions on.
#[derive(Debug, Default)]
pub struct History {
    candidates: Vec<DseCandidate>,
    failures: Vec<DseFailure>,
    scores: HashMap<String, Option<f64>>,
}

impl History {
    pub(crate) fn new() -> Self {
        History::default()
    }

    pub(crate) fn record_success(&mut self, candidate: DseCandidate) {
        self.scores
            .insert(candidate.point.key(), Some(candidate.score));
        self.candidates.push(candidate);
    }

    pub(crate) fn record_failure(&mut self, failure: DseFailure) {
        self.scores.insert(failure.point.key(), None);
        self.failures.push(failure);
    }

    pub(crate) fn into_parts(self) -> (Vec<DseCandidate>, Vec<DseFailure>) {
        (self.candidates, self.failures)
    }

    /// Successfully evaluated candidates, in first-evaluation order.
    #[must_use]
    pub fn candidates(&self) -> &[DseCandidate] {
        &self.candidates
    }

    /// Failed points, in first-evaluation order.
    #[must_use]
    pub fn failures(&self) -> &[DseFailure] {
        &self.failures
    }

    /// Whether `point` has been evaluated (successfully or not).
    #[must_use]
    pub fn contains(&self, point: &DesignPoint) -> bool {
        self.scores.contains_key(&point.key())
    }

    /// `point`'s scalar score: `None` when never evaluated *or* when it
    /// failed to compile (failed points never rank).
    #[must_use]
    pub fn score_of(&self, point: &DesignPoint) -> Option<f64> {
        self.scores.get(&point.key()).copied().flatten()
    }

    /// The best candidate by scalar score (ties to the earliest
    /// evaluated), if any compiled.
    #[must_use]
    pub fn best(&self) -> Option<&DseCandidate> {
        self.candidates
            .iter()
            .reduce(|best, c| if c.score < best.score { c } else { best })
    }
}

/// A design-space search: proposes candidate batches, reads outcomes
/// from the [`History`] on its next call.
///
/// Implementations must be deterministic functions of their constructor
/// arguments (seed) and the history — never of wall-clock time, thread
/// interleaving or ambient randomness — so explorations are reproducible
/// across machines and `--jobs` settings.
pub trait SearchStrategy {
    /// Strategy name as reported and accepted by the CLI.
    fn name(&self) -> &'static str;

    /// Proposes the next batch of candidates, at most `remaining`
    /// (larger batches are truncated by the explorer). An empty batch
    /// ends the exploration early (e.g. a grid fully enumerated).
    fn next_batch(
        &mut self,
        space: &DesignSpace,
        history: &History,
        remaining: usize,
    ) -> Vec<DesignPoint>;
}

/// Chunk size exhaustive/random enumeration proposes per batch: large
/// enough to saturate the worker pool, small enough for a meaningful
/// convergence trace. Fixed (never derived from thread count) so batch
/// boundaries — and therefore traces — are `--jobs`-invariant.
const ENUM_BATCH: usize = 32;

fn random_coords(space: &DesignSpace, rng: &mut SplitMix64) -> [usize; NUM_AXES] {
    let mut coords = [0usize; NUM_AXES];
    for (axis, c) in coords.iter_mut().enumerate() {
        *c = usize::try_from(rng.below(space.cardinality(axis) as u64))
            .expect("cardinality fits usize");
    }
    coords
}

/// Lexicographic grid enumeration ([`DesignSpace::coords_at`] order).
/// Ignores its budget's randomness entirely; ends early when the grid is
/// exhausted.
#[derive(Debug, Default)]
pub struct Exhaustive {
    cursor: u64,
}

impl Exhaustive {
    /// A fresh enumeration from the first grid point.
    #[must_use]
    pub fn new() -> Self {
        Exhaustive::default()
    }
}

impl SearchStrategy for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn next_batch(
        &mut self,
        space: &DesignSpace,
        _history: &History,
        remaining: usize,
    ) -> Vec<DesignPoint> {
        let size = space.size();
        let take = remaining.min(ENUM_BATCH) as u64;
        let end = self.cursor.saturating_add(take).min(size);
        let batch = (self.cursor..end)
            .map(|i| space.point(&space.coords_at(i)))
            .collect();
        self.cursor = end;
        batch
    }
}

/// Uniform i.i.d. sampling of the space, deterministic from its seed.
/// May revisit points (charged against the budget, served from the
/// memo).
#[derive(Debug)]
pub struct Random {
    rng: SplitMix64,
}

impl Random {
    /// A sampler seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Random {
            rng: SplitMix64::new(seed),
        }
    }
}

impl SearchStrategy for Random {
    fn name(&self) -> &'static str {
        "random"
    }

    fn next_batch(
        &mut self,
        space: &DesignSpace,
        _history: &History,
        remaining: usize,
    ) -> Vec<DesignPoint> {
        (0..remaining.min(ENUM_BATCH))
            .map(|_| space.point(&random_coords(space, &mut self.rng)))
            .collect()
    }
}

#[derive(Debug)]
enum ClimbState {
    /// Nothing proposed yet: start from [`DesignSpace::start_coords`].
    Start,
    /// A single point (start or restart) is out for evaluation.
    AwaitPoint([usize; NUM_AXES]),
    /// The neighborhood of `current` is out for evaluation.
    AwaitNeighborhood {
        current: [usize; NUM_AXES],
        proposed: Vec<[usize; NUM_AXES]>,
    },
}

/// Steepest-ascent hill climbing over the axis grid.
///
/// Starts at the point closest to the base preset, evaluates the full
/// ±1-step neighborhood (every axis, both directions — a parallel
/// batch), moves to the best strictly-improving neighbor, and on a local
/// optimum restarts from a seeded random point. Mutation happens in
/// coordinate space; the realized architectures come from
/// [`DesignPoint::realize`]'s builder mutations.
#[derive(Debug)]
pub struct HillClimb {
    rng: SplitMix64,
    state: ClimbState,
}

impl HillClimb {
    /// A climber seeded with `seed` (drives restarts only; the first
    /// start point is deterministic from the space).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        HillClimb {
            rng: SplitMix64::new(seed),
            state: ClimbState::Start,
        }
    }

    /// All in-range coordinates one step away from `coords` on exactly
    /// one axis, minus-step first, in axis order.
    fn neighbors(space: &DesignSpace, coords: &[usize; NUM_AXES]) -> Vec<[usize; NUM_AXES]> {
        let mut out = Vec::with_capacity(2 * NUM_AXES);
        for axis in 0..NUM_AXES {
            if coords[axis] > 0 {
                let mut n = *coords;
                n[axis] -= 1;
                out.push(n);
            }
            if coords[axis] + 1 < space.cardinality(axis) {
                let mut n = *coords;
                n[axis] += 1;
                out.push(n);
            }
        }
        out
    }
}

impl SearchStrategy for HillClimb {
    fn name(&self) -> &'static str {
        "hill-climb"
    }

    fn next_batch(
        &mut self,
        space: &DesignSpace,
        history: &History,
        _remaining: usize,
    ) -> Vec<DesignPoint> {
        loop {
            match std::mem::replace(&mut self.state, ClimbState::Start) {
                ClimbState::Start => {
                    let start = space.start_coords();
                    self.state = ClimbState::AwaitPoint(start);
                    return vec![space.point(&start)];
                }
                ClimbState::AwaitPoint(coords) => {
                    if history.score_of(&space.point(&coords)).is_some() {
                        // The point compiled: climb from it.
                        let neighborhood = Self::neighbors(space, &coords);
                        if neighborhood.is_empty() {
                            // Degenerate single-point space: done.
                            return Vec::new();
                        }
                        let batch = neighborhood.iter().map(|c| space.point(c)).collect();
                        self.state = ClimbState::AwaitNeighborhood {
                            current: coords,
                            proposed: neighborhood,
                        };
                        return batch;
                    }
                    // The point failed to compile: restart elsewhere.
                    let restart = random_coords(space, &mut self.rng);
                    self.state = ClimbState::AwaitPoint(restart);
                    return vec![space.point(&restart)];
                }
                ClimbState::AwaitNeighborhood { current, proposed } => {
                    let current_score = history
                        .score_of(&space.point(&current))
                        .unwrap_or(f64::INFINITY);
                    // Best evaluated neighbor; ties broken by point key
                    // so the walk is order-deterministic.
                    let best = proposed
                        .iter()
                        .filter_map(|c| {
                            let p = space.point(c);
                            history.score_of(&p).map(|s| (s, p.key(), *c))
                        })
                        .min_by(|(sa, ka, _), (sb, kb, _)| {
                            sa.total_cmp(sb).then_with(|| ka.cmp(kb))
                        });
                    match best {
                        Some((score, _, coords)) if score < current_score => {
                            // Strict improvement: move and climb again
                            // (the moved-to point is already evaluated,
                            // so loop to propose its neighborhood).
                            self.state = ClimbState::AwaitPoint(coords);
                        }
                        _ => {
                            // Local optimum (or all neighbors failed):
                            // seeded random restart.
                            let restart = random_coords(space, &mut self.rng);
                            self.state = ClimbState::AwaitPoint(restart);
                            return vec![space.point(&restart)];
                        }
                    }
                }
            }
        }
    }
}

/// Population size of [`Evolutionary`] generations.
const POPULATION: usize = 16;
/// Members carried over unchanged each generation.
const ELITES: usize = 2;
/// Tournament size for parent selection.
const TOURNAMENT: usize = 3;

/// Elitist generational genetic search: seeded random initial
/// population, tournament parent selection, per-axis uniform crossover,
/// ±1-step mutation with probability `1/NUM_AXES` per axis. Entirely
/// deterministic from its seed.
#[derive(Debug)]
pub struct Evolutionary {
    rng: SplitMix64,
    population: Vec<[usize; NUM_AXES]>,
}

impl Evolutionary {
    /// A GA seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Evolutionary {
            rng: SplitMix64::new(seed),
            population: Vec::new(),
        }
    }

    /// Ranks population indices best-first by (score, key); unevaluated
    /// or failed members sink to the end.
    fn ranked(&self, space: &DesignSpace, history: &History) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.population.len()).collect();
        let fitness: Vec<(f64, String)> = self
            .population
            .iter()
            .map(|c| {
                let p = space.point(c);
                (history.score_of(&p).unwrap_or(f64::INFINITY), p.key())
            })
            .collect();
        order.sort_by(|&a, &b| {
            fitness[a]
                .0
                .total_cmp(&fitness[b].0)
                .then_with(|| fitness[a].1.cmp(&fitness[b].1))
        });
        order
    }

    /// Tournament-selects one parent from the ranked population.
    fn select(&mut self, ranked: &[usize]) -> usize {
        // Rank-based tournament: the lowest drawn rank wins, so the
        // selection pressure is independent of score magnitudes.
        (0..TOURNAMENT)
            .map(|_| usize::try_from(self.rng.below(ranked.len() as u64)).expect("rank fits usize"))
            .min()
            .map(|rank| ranked[rank])
            .expect("tournament size is non-zero")
    }
}

impl SearchStrategy for Evolutionary {
    fn name(&self) -> &'static str {
        "evolutionary"
    }

    fn next_batch(
        &mut self,
        space: &DesignSpace,
        history: &History,
        remaining: usize,
    ) -> Vec<DesignPoint> {
        if self.population.is_empty() {
            // Generation 0: seeded random population.
            self.population = (0..POPULATION)
                .map(|_| random_coords(space, &mut self.rng))
                .collect();
        } else {
            let ranked = self.ranked(space, history);
            let mut next: Vec<[usize; NUM_AXES]> = ranked
                .iter()
                .take(ELITES)
                .map(|&i| self.population[i])
                .collect();
            while next.len() < POPULATION {
                let pa = self.select(&ranked);
                let pb = self.select(&ranked);
                let (a, b) = (self.population[pa], self.population[pb]);
                let mut child = [0usize; NUM_AXES];
                for axis in 0..NUM_AXES {
                    // Uniform crossover…
                    child[axis] = if self.rng.below(2) == 0 {
                        a[axis]
                    } else {
                        b[axis]
                    };
                    // …then ±1-step mutation at rate 1/NUM_AXES.
                    if self.rng.below(NUM_AXES as u64) == 0 {
                        let card = space.cardinality(axis);
                        child[axis] = if self.rng.below(2) == 0 {
                            child[axis].saturating_sub(1)
                        } else {
                            (child[axis] + 1).min(card - 1)
                        };
                    }
                }
                next.push(child);
            }
            self.population = next;
        }
        self.population
            .iter()
            .take(remaining)
            .map(|c| space.point(c))
            .collect()
    }
}

/// The built-in strategies, for CLI parsing and discovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// [`Exhaustive`].
    Exhaustive,
    /// [`Random`].
    Random,
    /// [`HillClimb`].
    HillClimb,
    /// [`Evolutionary`].
    Evolutionary,
}

impl StrategyKind {
    /// Every built-in, in canonical order.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::Exhaustive,
        StrategyKind::Random,
        StrategyKind::HillClimb,
        StrategyKind::Evolutionary,
    ];

    /// Canonical names, in [`StrategyKind::ALL`] order — the vocabulary
    /// `cimc explore --strategy` validates against.
    pub const NAMES: [&'static str; 4] = ["exhaustive", "random", "hill-climb", "evolutionary"];

    /// Stable CLI/report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Exhaustive => "exhaustive",
            StrategyKind::Random => "random",
            StrategyKind::HillClimb => "hill-climb",
            StrategyKind::Evolutionary => "evolutionary",
        }
    }

    /// Parses a name produced by [`StrategyKind::name`].
    #[must_use]
    pub fn parse(name: &str) -> Option<StrategyKind> {
        StrategyKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Constructs the strategy, seeded where the strategy is stochastic
    /// (`exhaustive` ignores the seed).
    #[must_use]
    pub fn build(self, seed: u64) -> Box<dyn SearchStrategy> {
        match self {
            StrategyKind::Exhaustive => Box::new(Exhaustive::new()),
            StrategyKind::Random => Box::new(Random::new(seed)),
            StrategyKind::HillClimb => Box::new(HillClimb::new(seed)),
            StrategyKind::Evolutionary => Box::new(Evolutionary::new(seed)),
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_bench::report::JobMetrics;

    fn test_metrics(latency: f64) -> JobMetrics {
        JobMetrics {
            level: "cg".to_owned(),
            latency_cycles: latency,
            steady_state_interval: latency,
            peak_power: 10.0,
            peak_active_crossbars: 64,
            energy_total: 100.0,
            energy_crossbar: 80.0,
            energy_adc: 5.0,
            energy_dac: 5.0,
            energy_movement: 5.0,
            energy_alu: 5.0,
            segments: 1,
            reprogram_cycles: 0.0,
            stages: 3,
            mvm_ops: 1000,
            crossbars_allocated: 128,
            utilization: 0.5,
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(SplitMix64::new(1).below(0), 0);
    }

    #[test]
    fn strategy_kind_names_round_trip() {
        for kind in StrategyKind::ALL {
            assert_eq!(StrategyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build(0).name(), kind.name());
        }
        assert_eq!(StrategyKind::parse("bogus"), None);
    }

    #[test]
    fn exhaustive_enumerates_in_lexicographic_order_without_repeats() {
        let space = DesignSpace::default_space();
        let mut strategy = Exhaustive::new();
        let history = History::new();
        let first = strategy.next_batch(&space, &history, 1000);
        assert_eq!(first.len(), ENUM_BATCH);
        assert_eq!(first[0], space.point(&space.coords_at(0)));
        assert_eq!(first[1], space.point(&space.coords_at(1)));
        let second = strategy.next_batch(&space, &history, 1000);
        assert_eq!(second[0], space.point(&space.coords_at(ENUM_BATCH as u64)));
        // Exhausts exactly at the space size.
        let mut tiny = DesignSpace::default_space();
        tiny.xb_rows = vec![64];
        tiny.xb_cols = vec![64];
        tiny.xb_per_core = vec![4];
        tiny.cores = vec![192];
        tiny.cell_bits = vec![2];
        tiny.adc_bits = vec![6, 8];
        tiny.modes = vec![cim_bench::ScheduleMode::Auto];
        let mut strategy = Exhaustive::new();
        let batch = strategy.next_batch(&tiny, &history, 1000);
        assert_eq!(batch.len(), 2);
        assert!(strategy.next_batch(&tiny, &history, 1000).is_empty());
    }

    #[test]
    fn random_respects_remaining_and_seed() {
        let space = DesignSpace::default_space();
        let history = History::new();
        let batch_a = Random::new(9).next_batch(&space, &history, 5);
        let batch_b = Random::new(9).next_batch(&space, &history, 5);
        assert_eq!(batch_a.len(), 5);
        assert_eq!(batch_a, batch_b, "same seed, same proposals");
        let other = Random::new(10).next_batch(&space, &history, 5);
        assert_ne!(batch_a, other, "different seed, different proposals");
    }

    #[test]
    fn hill_climb_starts_at_the_base_and_proposes_neighbors() {
        let space = DesignSpace::default_space();
        let mut strategy = HillClimb::new(0);
        let mut history = History::new();
        let first = strategy.next_batch(&space, &history, 1000);
        assert_eq!(first, vec![space.point(&space.start_coords())]);
        // Pretend the start evaluated: the next batch is its
        // neighborhood, one ±1 step per axis.
        history.record_success(DseCandidate {
            point: first[0].clone(),
            metrics: test_metrics(1000.0),
            traffic: None,
            objectives: vec![1000.0],
            score: 1000.0,
            eval_ms: 0.0,
        });
        let neighborhood = strategy.next_batch(&space, &history, 1000);
        assert!(!neighborhood.is_empty());
        for p in &neighborhood {
            assert_ne!(*p, first[0]);
            // Exactly one axis differs from the start.
            let s = &first[0];
            let diffs = [
                p.xb_rows != s.xb_rows,
                p.xb_cols != s.xb_cols,
                p.xb_per_core != s.xb_per_core,
                p.cores != s.cores,
                p.cell_bits != s.cell_bits,
                p.adc_bits != s.adc_bits,
                p.mode != s.mode,
            ];
            assert_eq!(diffs.iter().filter(|d| **d).count(), 1, "{}", p.key());
        }
    }

    #[test]
    fn evolutionary_generations_have_fixed_size_and_seeded_determinism() {
        let space = DesignSpace::default_space();
        let history = History::new();
        let gen_a = Evolutionary::new(3).next_batch(&space, &history, 1000);
        let gen_b = Evolutionary::new(3).next_batch(&space, &history, 1000);
        assert_eq!(gen_a.len(), POPULATION);
        assert_eq!(gen_a, gen_b);
        // A next generation still has POPULATION members and carries the
        // elites (here: everything scores INFINITY, so the elites are
        // the two key-smallest members).
        let mut strategy = Evolutionary::new(3);
        let g0 = strategy.next_batch(&space, &history, 1000);
        let g1 = strategy.next_batch(&space, &history, 1000);
        assert_eq!(g1.len(), POPULATION);
        let mut keys: Vec<String> = g0.iter().map(DesignPoint::key).collect();
        keys.sort();
        assert!(g1.iter().any(|p| p.key() == keys[0]), "elite carried");
    }
}
