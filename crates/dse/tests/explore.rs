//! Integration tests of the exploration engine: cache reuse (cold
//! nonzero hit rate from shared pipeline prefixes, warm disk reruns),
//! determinism across cache states, and the acceptance-level hill-climb
//! run (≥ 200 candidates, non-empty front, reproducible across thread
//! counts, warm hit rate > 0).

use cim_bench::ScheduleMode;
use cim_compiler::{CompileCache, DiskCache, MemoryCache};
use cim_dse::{DesignSpace, DseReport, Explorer, Metric, Objective, StrategyKind};
use cim_graph::zoo;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cim_dse_{tag}_{}", std::process::id()))
}

fn run(
    kind: StrategyKind,
    seed: u64,
    budget: usize,
    threads: usize,
    cache: Option<Arc<dyn CompileCache>>,
) -> DseReport {
    let space = DesignSpace::default_space();
    let objective = Objective::parse("latency,energy").unwrap();
    let mut strategy = kind.build(seed);
    let mut explorer = Explorer::new().with_threads(threads);
    if let Some(cache) = cache {
        explorer = explorer.with_cache(cache);
    }
    explorer
        .explore(
            &zoo::lenet5(),
            &space,
            strategy.as_mut(),
            &objective,
            seed,
            budget,
        )
        .unwrap()
}

/// The ISSUE acceptance bar: a seeded hill-climb over ≥ 200 candidates
/// completes with a non-empty Pareto front, is bit-reproducible across
/// thread counts, and reports a nonzero warm-cache hit rate on rerun.
#[test]
fn seeded_hill_climb_over_200_candidates_meets_the_acceptance_bar() {
    let dir = tmp_dir("accept");
    let _ = std::fs::remove_dir_all(&dir);

    let cold_cache: Arc<dyn CompileCache> = Arc::new(DiskCache::open(&dir).unwrap());
    let cold = run(StrategyKind::HillClimb, 42, 200, 4, Some(cold_cache));
    assert_eq!(cold.proposed, 200);
    assert!(!cold.front.is_empty(), "non-empty Pareto front");
    assert!(!cold.candidates.is_empty());

    // Bit-reproducible across thread counts (uncached vs cached too).
    let sequential = run(StrategyKind::HillClimb, 42, 200, 1, None);
    assert_eq!(
        cold.comparable().to_json(),
        sequential.comparable().to_json(),
        "jobs=4 disk-cached vs jobs=1 uncached must match bit-for-bit"
    );

    // Warm rerun over the same disk cache: nonzero hit rate.
    let warm_cache: Arc<dyn CompileCache> = Arc::new(DiskCache::open(&dir).unwrap());
    let warm = run(StrategyKind::HillClimb, 42, 200, 4, Some(warm_cache));
    let stats = warm.cache_stats.expect("cache attached");
    assert!(stats.hits > 0, "warm rerun must hit: {}", stats.render());
    assert!(
        stats.hit_rate() > 0.0,
        "warm hit rate must be nonzero: {}",
        stats.render()
    );
    assert_eq!(stats.misses, 0, "warm rerun must be all hits");
    assert_eq!(cold.comparable().to_json(), warm.comparable().to_json());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cold_memoized_run_already_hits_on_shared_prefixes() {
    // Points differing only in scheduling depth share (graph, arch)
    // pipeline prefixes, and local searches revisit points — so even a
    // cold in-memory run reports hits.
    let cache = Arc::new(MemoryCache::new());
    let report = run(StrategyKind::HillClimb, 7, 120, 2, Some(cache));
    let stats = report.cache_stats.expect("cache attached");
    assert!(
        stats.hits > 0,
        "cold run shares prefixes: {}",
        stats.render()
    );
    assert!(stats.stores > 0);
}

#[test]
fn cache_state_never_changes_results() {
    let uncached = run(StrategyKind::Evolutionary, 9, 64, 2, None);
    assert!(uncached.cache_stats.is_none());
    let memoized = run(
        StrategyKind::Evolutionary,
        9,
        64,
        2,
        Some(Arc::new(MemoryCache::new())),
    );
    assert!(memoized.cache_stats.is_some());
    assert_eq!(
        uncached.comparable().to_json(),
        memoized.comparable().to_json()
    );
}

#[test]
fn every_strategy_finds_the_exhaustive_optimum_on_a_tiny_space() {
    // On a fully-enumerable space with budget ≥ size, exhaustive search
    // is ground truth; seeded random with the same budget must match it
    // (it may revisit, so give it slack), and the front must agree on
    // the single-objective optimum.
    let space = DesignSpace {
        base: "isaac-wlm".to_owned(),
        xb_rows: vec![64, 128],
        xb_cols: vec![128],
        xb_per_core: vec![8, 16],
        cores: vec![384],
        cell_bits: vec![2],
        adc_bits: vec![8],
        modes: vec![ScheduleMode::Auto],
    };
    let objective = Objective::single(Metric::Latency);
    let graph = zoo::mlp();
    let mut exhaustive = StrategyKind::Exhaustive.build(0);
    let truth = Explorer::new()
        .with_threads(2)
        .explore(&graph, &space, exhaustive.as_mut(), &objective, 0, 100)
        .unwrap();
    assert_eq!(truth.candidates.len(), 4, "4-point space fully enumerated");
    assert_eq!(truth.proposed, 4, "exhaustive stops at the space size");
    let best = truth.best().unwrap().score;

    let mut hill = StrategyKind::HillClimb.build(1);
    let climbed = Explorer::new()
        .with_threads(2)
        .explore(&graph, &space, hill.as_mut(), &objective, 1, 100)
        .unwrap();
    assert_eq!(
        climbed.best().unwrap().score,
        best,
        "hill climb must find the optimum of a 4-point space within budget"
    );
}

#[test]
fn failures_are_recorded_not_fatal() {
    // A workload with no CIM operators cannot map onto any candidate:
    // every evaluation fails, yet the exploration itself completes and
    // records the errors instead of aborting.
    let mut graph = cim_graph::Graph::new("no_cim_ops");
    let x = graph
        .add(
            "x",
            cim_graph::OpKind::Input {
                shape: cim_graph::Shape::chw(3, 8, 8),
            },
            [],
        )
        .unwrap();
    graph.add("relu", cim_graph::OpKind::Relu, [x]).unwrap();

    let space = DesignSpace {
        base: "isaac-wlm".to_owned(),
        xb_rows: vec![64, 128],
        xb_cols: vec![128],
        xb_per_core: vec![8],
        cores: vec![384],
        cell_bits: vec![2],
        adc_bits: vec![8],
        modes: vec![ScheduleMode::Auto],
    };
    let objective = Objective::single(Metric::Latency);
    let mut strategy = StrategyKind::Exhaustive.build(0);
    let report = Explorer::new()
        .explore(&graph, &space, strategy.as_mut(), &objective, 0, 10)
        .unwrap();
    assert_eq!(report.proposed, 2);
    assert!(report.candidates.is_empty());
    assert_eq!(report.failures.len(), 2, "every point fails, none aborts");
    assert!(!report.failures[0].error.is_empty());
    assert!(report.front.is_empty(), "no candidates, no front");
    assert_eq!(report.trace.last().unwrap().best_score, None);
}

#[test]
fn report_survives_a_json_round_trip_with_front_intact() {
    let report = run(StrategyKind::Random, 13, 48, 2, None);
    let back = DseReport::from_json(&report.to_json()).unwrap();
    assert_eq!(back, report);
    assert_eq!(
        back.front_candidates().len(),
        report.front.len(),
        "front indices resolve after the round trip"
    );
}
