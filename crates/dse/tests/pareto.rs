//! Property tests of Pareto-front extraction — on raw objective vectors
//! and on real exploration runs — plus the headline determinism
//! property: identical `(strategy, seed, budget)` inputs yield
//! byte-identical `comparable()` reports at `jobs = 1` and `jobs = 4`.

use cim_bench::ScheduleMode;
use cim_dse::{dominates, pareto_front, DesignSpace, Explorer, Objective, StrategyKind};
use cim_graph::zoo;
use proptest::prelude::*;

proptest! {
    /// Exact-front invariants on arbitrary vector sets: no front member
    /// is dominated by *any* vector, and every non-member is dominated
    /// by someone.
    #[test]
    fn front_members_are_undominated_and_nonmembers_dominated(
        vectors in proptest::collection::vec(
            proptest::collection::vec(0u32..6, 3), 1..40,
        )
    ) {
        let vectors: Vec<Vec<f64>> =
            vectors.into_iter().map(|v| v.into_iter().map(f64::from).collect()).collect();
        let front = pareto_front(&vectors);
        prop_assert!(!front.is_empty(), "a non-empty set has a non-empty front");
        for &i in &front {
            for other in &vectors {
                prop_assert!(
                    !dominates(other, &vectors[i]),
                    "front member {i} is dominated"
                );
            }
        }
        for i in 0..vectors.len() {
            if !front.contains(&i) {
                prop_assert!(
                    vectors.iter().any(|other| dominates(other, &vectors[i])),
                    "non-member {i} is undominated"
                );
            }
        }
    }
}

/// A small space (36 points) so property-style exploration runs stay
/// fast while still exercising multi-axis mutation.
fn small_space() -> DesignSpace {
    DesignSpace {
        base: "isaac-wlm".to_owned(),
        xb_rows: vec![64, 128, 256],
        xb_cols: vec![128],
        xb_per_core: vec![8, 16],
        cores: vec![384],
        cell_bits: vec![2],
        adc_bits: vec![6, 8],
        modes: vec![ScheduleMode::Auto, ScheduleMode::CgMvmVvm, ScheduleMode::Cg],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On real exploration runs: no candidate on the returned front is
    /// dominated by any evaluated candidate, for every strategy and
    /// arbitrary seeds/budgets.
    #[test]
    fn no_front_point_is_dominated_by_any_evaluated_candidate(
        strategy_index in 0usize..4,
        seed in 0u64..1000,
        budget in 1usize..40,
    ) {
        let kind = StrategyKind::ALL[strategy_index];
        let space = small_space();
        let objective = Objective::parse("latency,energy").unwrap();
        let mut strategy = kind.build(seed);
        let report = Explorer::new()
            .with_threads(2)
            .explore(&zoo::lenet5(), &space, strategy.as_mut(), &objective, seed, budget)
            .unwrap();
        prop_assert!(report.proposed <= budget);
        if !report.candidates.is_empty() {
            prop_assert!(!report.front.is_empty());
        }
        for &i in &report.front {
            for c in &report.candidates {
                prop_assert!(
                    !dominates(&c.objectives, &report.candidates[i].objectives),
                    "front candidate {} is dominated by {}",
                    report.candidates[i].point.key(),
                    c.point.key()
                );
            }
        }
    }

    /// Identical `(strategy, seed, budget)` runs are byte-identical in
    /// their comparison section across worker counts.
    #[test]
    fn identical_runs_are_byte_identical_at_jobs_1_vs_4(
        strategy_index in 0usize..4,
        seed in 0u64..1000,
        budget in 1usize..30,
    ) {
        let kind = StrategyKind::ALL[strategy_index];
        let space = small_space();
        let objective = Objective::parse("latency,energy").unwrap();
        let run = |threads: usize| {
            let mut strategy = kind.build(seed);
            Explorer::new()
                .with_threads(threads)
                .explore(&zoo::lenet5(), &space, strategy.as_mut(), &objective, seed, budget)
                .unwrap()
        };
        let sequential = run(1);
        let parallel = run(4);
        prop_assert_eq!(
            sequential.comparable().to_json(),
            parallel.comparable().to_json(),
            "jobs=1 vs jobs=4 reports diverge for {} seed {} budget {}",
            kind.name(), seed, budget
        );
    }
}
