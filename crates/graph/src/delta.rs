//! Typed graph edits — the input to incremental recompilation.
//!
//! A [`GraphDelta`] is an ordered list of [`GraphEdit`]s addressed by
//! node *name* (never [`NodeId`](crate::NodeId) — ids are dense indices
//! that shift when nodes are inserted or removed, names survive the
//! rebuild). Applying a delta never mutates the base graph; it produces
//! a fresh, fully-consistent [`Graph`] or an error naming the offending
//! node or edge.
//!
//! # The delta contract
//!
//! Mirroring the pass-pipeline purity contract in `cim_compiler::pass`,
//! deltas obey three invariants:
//!
//! 1. **Purity** — [`GraphDelta::apply`] is a pure function of
//!    `(base, delta)`. The base graph is untouched; the result is a new
//!    graph rebuilt node by node, so every [`Graph`] invariant (dense
//!    topological ids, eager shape inference, interning) holds in the
//!    output exactly as if it had been built from scratch.
//! 2. **Atomicity** — either every edit applies and the rebuilt graph
//!    passes shape inference end to end, or the whole application fails
//!    with a [`DeltaError`] that names the offending node/edge. There is
//!    no partially-edited graph.
//! 3. **Order sensitivity** — edits apply in sequence and later edits
//!    observe earlier ones: an [`InsertNode`](GraphEdit::InsertNode) may
//!    be retargeted by a following
//!    [`RetargetEdge`](GraphEdit::RetargetEdge), and a name freed by
//!    [`RemoveNode`](GraphEdit::RemoveNode) may be reused.
//!
//! Because node *values* (weights) are not part of this structural IR,
//! [`ReplaceNodeWeights`](GraphEdit::ReplaceNodeWeights) is validated
//! (the node must exist and own stationary weights) but changes no
//! shapes — compilers consuming deltas can use it to keep all model
//! mutations flowing through one typed entry point.
//!
//! ```
//! use cim_graph::{zoo, GraphDelta, GraphEdit, OpKind};
//!
//! let base = zoo::mlp();
//! let delta = GraphDelta::new().with(GraphEdit::RetuneOpParams {
//!     node: "fc1".into(),
//!     op: OpKind::linear(512),
//! });
//! let edited = delta.apply(&base).unwrap();
//! assert_eq!(base.len(), edited.len());
//! assert_ne!(base, edited);
//! ```

use crate::{Graph, NodeId, OpKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// One name-addressed edit of a computation graph.
///
/// Serialized form is externally tagged with `snake_case` variant names,
/// e.g. `{"retune_op_params":{"node":"l0.fc1","op":{"Linear":
/// {"out_features":2048}}}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum GraphEdit {
    /// Declare that the stationary weight values of `node` changed.
    ///
    /// Weight *values* are not stored in the structural IR, so this edit
    /// changes no shapes; it exists so that editors route every model
    /// mutation through the delta API. The node must own stationary
    /// weights ([`OpKind::has_static_weights`]).
    ReplaceNodeWeights {
        /// Name of the edited node.
        node: String,
    },
    /// Replace the operator attributes of `node` with `op`.
    ///
    /// The new operator must be the same kind (same
    /// [`OpKind::mnemonic`]) — retuning changes parameters such as
    /// `out_features` or stride, not the operator identity.
    RetuneOpParams {
        /// Name of the edited node.
        node: String,
        /// Replacement operator attributes.
        op: OpKind,
    },
    /// Insert a new node named `name` computing `op` over `inputs`.
    ///
    /// The node is placed immediately before `before` in topological
    /// order, or appended when `before` is `None`. Every input must
    /// already exist earlier than the insertion point.
    InsertNode {
        /// Name of the new node (must be unused).
        name: String,
        /// Operator of the new node.
        op: OpKind,
        /// Names of its data inputs.
        inputs: Vec<String>,
        /// Name of the node to insert before (append when absent).
        #[serde(default)]
        before: Option<String>,
    },
    /// Remove `node`. Fails with [`DeltaError::NodeInUse`] while any
    /// other node still consumes its output.
    RemoveNode {
        /// Name of the removed node.
        node: String,
    },
    /// Rewire input number `input_index` of `node` to `new_input`.
    ///
    /// The new producer must precede `node` in topological order
    /// (acyclicity is preserved by construction).
    RetargetEdge {
        /// Name of the consuming node.
        node: String,
        /// Which of its inputs to rewire (0-based).
        input_index: usize,
        /// Name of the new producer.
        new_input: String,
    },
}

/// An ordered batch of [`GraphEdit`]s — the unit accepted by
/// `Session::recompile` in `cim-compiler`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GraphDelta {
    /// The edits, applied in order.
    pub edits: Vec<GraphEdit>,
}

/// Error applying a [`GraphDelta`]; every variant names the offending
/// node or edge.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// An edit referenced a node name absent from the (edited) graph.
    UnknownNode {
        /// The missing name.
        node: String,
    },
    /// An [`InsertNode`](GraphEdit::InsertNode) would duplicate a name,
    /// or the base graph itself carries duplicate names (name-addressed
    /// editing requires unique names).
    DuplicateName {
        /// The colliding name.
        name: String,
    },
    /// A [`RemoveNode`](GraphEdit::RemoveNode) target still has a
    /// consumer.
    NodeInUse {
        /// The node slated for removal.
        node: String,
        /// The consumer that still reads it.
        consumer: String,
        /// Which input slot of the consumer reads it (0-based).
        input_index: usize,
    },
    /// A [`RetuneOpParams`](GraphEdit::RetuneOpParams) tried to change
    /// the operator kind, not just its attributes.
    KindMismatch {
        /// The edited node.
        node: String,
        /// Mnemonic of the existing operator.
        expected: &'static str,
        /// Mnemonic of the offered replacement.
        got: &'static str,
    },
    /// A [`ReplaceNodeWeights`](GraphEdit::ReplaceNodeWeights) target
    /// has no stationary weights.
    NoStaticWeights {
        /// The edited node.
        node: String,
        /// Mnemonic of its operator.
        op: &'static str,
    },
    /// A [`RetargetEdge`](GraphEdit::RetargetEdge) input index is out of
    /// range for the node's arity.
    InvalidInputIndex {
        /// The consuming node.
        node: String,
        /// The offending index.
        index: usize,
        /// The node's actual input count.
        arity: usize,
    },
    /// An edge would point forward (or at the node itself), breaking
    /// topological order / acyclicity.
    ForwardEdge {
        /// The consuming node.
        node: String,
        /// The producer that does not precede it.
        input: String,
    },
    /// Rebuilding the edited graph failed shape inference or arity
    /// checking at `node` (wraps the underlying
    /// [`GraphError`](crate::GraphError) message).
    Rebuild {
        /// The node whose re-addition failed.
        node: String,
        /// The underlying graph error.
        message: String,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownNode { node } => write!(f, "unknown node `{node}`"),
            DeltaError::DuplicateName { name } => write!(f, "duplicate node name `{name}`"),
            DeltaError::NodeInUse {
                node,
                consumer,
                input_index,
            } => write!(
                f,
                "cannot remove `{node}`: still consumed by `{consumer}` (input {input_index})"
            ),
            DeltaError::KindMismatch {
                node,
                expected,
                got,
            } => write!(
                f,
                "cannot retune `{node}`: operator kind is `{expected}`, replacement is `{got}`"
            ),
            DeltaError::NoStaticWeights { node, op } => write!(
                f,
                "cannot replace weights of `{node}`: operator `{op}` has no stationary weights"
            ),
            DeltaError::InvalidInputIndex { node, index, arity } => write!(
                f,
                "input index {index} out of range for `{node}` ({arity} inputs)"
            ),
            DeltaError::ForwardEdge { node, input } => write!(
                f,
                "edge `{input}` -> `{node}` would not be topological (producer must precede consumer)"
            ),
            DeltaError::Rebuild { node, message } => {
                write!(f, "rebuild failed at node `{node}`: {message}")
            }
        }
    }
}

impl Error for DeltaError {}

/// One node of the editable flat representation: the resolved contents
/// of a graph node with inputs re-expressed by producer *name*.
#[derive(Debug, Clone)]
struct Spec {
    name: String,
    op: OpKind,
    inputs: Vec<String>,
}

impl GraphDelta {
    /// An empty delta.
    #[must_use]
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Builder-style append.
    #[must_use]
    pub fn with(mut self, edit: GraphEdit) -> Self {
        self.edits.push(edit);
        self
    }

    /// Appends an edit.
    pub fn push(&mut self, edit: GraphEdit) {
        self.edits.push(edit);
    }

    /// Number of edits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// Whether the delta contains no edits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Applies the delta to `base`, returning the edited graph.
    ///
    /// The base graph is not modified. The result is rebuilt through
    /// [`Graph::add`] node by node, so shape inference re-runs across
    /// the whole edited graph and all IR invariants hold. Deltas whose
    /// edits change no topology (only
    /// [`ReplaceNodeWeights`](GraphEdit::ReplaceNodeWeights) /
    /// [`RetuneOpParams`](GraphEdit::RetuneOpParams)) take an
    /// allocation-light fast path — same checks, same errors, same
    /// result — which keeps delta application off the incremental
    /// recompile profile.
    ///
    /// # Errors
    /// Returns the first [`DeltaError`] encountered, naming the
    /// offending node or edge (contract invariant 2: no partial edits).
    pub fn apply(&self, base: &Graph) -> Result<Graph, DeltaError> {
        if let Some(graph) = self.apply_params_only(base)? {
            return Ok(graph);
        }
        let mut specs = flatten(base)?;
        for edit in &self.edits {
            apply_edit(&mut specs, edit)?;
        }
        rebuild(base.name(), &specs)
    }

    /// Fast path for parameter-only deltas: no topology change means the
    /// node set, names and edge pool carry over verbatim, so instead of
    /// the flatten → edit → rebuild round-trip the retuned operators are
    /// swapped on a clone of the arena and shapes re-inferred downstream
    /// of the first edit ([`Graph::retuned_many`]). Returns `Ok(None)`
    /// when any edit is topological and the general path must run.
    ///
    /// Check order mirrors the general path exactly: the base graph's
    /// name-ambiguity guard, then per-edit validation in sequence, then
    /// one end-to-end shape-inference sweep (the general path's
    /// `rebuild`), so every error surfaces in the same order with the
    /// same payload.
    fn apply_params_only(&self, base: &Graph) -> Result<Option<Graph>, DeltaError> {
        if self.edits.iter().any(|edit| {
            !matches!(
                edit,
                GraphEdit::ReplaceNodeWeights { .. } | GraphEdit::RetuneOpParams { .. }
            )
        }) {
            return Ok(None);
        }
        // Name addressing requires unique names, exactly as `flatten`.
        let mut ids: HashMap<&str, NodeId> = HashMap::with_capacity(base.len());
        for node in base.nodes() {
            if ids.insert(node.name(), node.id()).is_some() {
                return Err(DeltaError::DuplicateName {
                    name: node.name().to_string(),
                });
            }
        }
        let lookup = |name: &str| -> Result<NodeId, DeltaError> {
            ids.get(name)
                .copied()
                .ok_or_else(|| DeltaError::UnknownNode {
                    node: name.to_string(),
                })
        };
        let mut retunes: Vec<(NodeId, OpKind)> = Vec::with_capacity(self.edits.len());
        for edit in &self.edits {
            match edit {
                GraphEdit::ReplaceNodeWeights { node } => {
                    let op = base.node(lookup(node)?).op();
                    if !op.has_static_weights() {
                        return Err(DeltaError::NoStaticWeights {
                            node: node.clone(),
                            op: op.mnemonic(),
                        });
                    }
                }
                GraphEdit::RetuneOpParams { node, op } => {
                    let id = lookup(node)?;
                    let existing = base.node(id).op();
                    if existing.mnemonic() != op.mnemonic() {
                        return Err(DeltaError::KindMismatch {
                            node: node.clone(),
                            expected: existing.mnemonic(),
                            got: op.mnemonic(),
                        });
                    }
                    retunes.push((id, op.clone()));
                }
                _ => unreachable!("topological edits screened out above"),
            }
        }
        base.retuned_many(&retunes)
            .map(Some)
            .map_err(|(at, err)| DeltaError::Rebuild {
                node: base.node(at).name().to_string(),
                message: err.to_string(),
            })
    }

    /// Validates the delta against `base` without keeping the result.
    ///
    /// Exactly [`GraphDelta::apply`] minus the returned graph — the full
    /// rebuild (including shape inference) runs, so a delta that
    /// validates cleanly is guaranteed to apply cleanly.
    ///
    /// # Errors
    /// Same as [`GraphDelta::apply`].
    pub fn validate(&self, base: &Graph) -> Result<(), DeltaError> {
        self.apply(base).map(|_| ())
    }
}

/// Resolves a graph into the name-addressed flat form, rejecting
/// duplicate names (which would make name addressing ambiguous).
fn flatten(graph: &Graph) -> Result<Vec<Spec>, DeltaError> {
    let mut seen: HashMap<&str, ()> = HashMap::with_capacity(graph.len());
    let mut specs = Vec::with_capacity(graph.len());
    for node in graph.nodes() {
        if seen.insert(node.name(), ()).is_some() {
            return Err(DeltaError::DuplicateName {
                name: node.name().to_string(),
            });
        }
        specs.push(Spec {
            name: node.name().to_string(),
            op: node.op().clone(),
            inputs: node
                .inputs()
                .iter()
                .map(|&id| graph.node(id).name().to_string())
                .collect(),
        });
    }
    Ok(specs)
}

fn find(specs: &[Spec], name: &str) -> Result<usize, DeltaError> {
    specs
        .iter()
        .position(|s| s.name == name)
        .ok_or_else(|| DeltaError::UnknownNode {
            node: name.to_string(),
        })
}

fn apply_edit(specs: &mut Vec<Spec>, edit: &GraphEdit) -> Result<(), DeltaError> {
    match edit {
        GraphEdit::ReplaceNodeWeights { node } => {
            let idx = find(specs, node)?;
            if !specs[idx].op.has_static_weights() {
                return Err(DeltaError::NoStaticWeights {
                    node: node.clone(),
                    op: specs[idx].op.mnemonic(),
                });
            }
            Ok(())
        }
        GraphEdit::RetuneOpParams { node, op } => {
            let idx = find(specs, node)?;
            if specs[idx].op.mnemonic() != op.mnemonic() {
                return Err(DeltaError::KindMismatch {
                    node: node.clone(),
                    expected: specs[idx].op.mnemonic(),
                    got: op.mnemonic(),
                });
            }
            specs[idx].op = op.clone();
            Ok(())
        }
        GraphEdit::InsertNode {
            name,
            op,
            inputs,
            before,
        } => {
            if specs.iter().any(|s| s.name == *name) {
                return Err(DeltaError::DuplicateName { name: name.clone() });
            }
            let pos = match before {
                Some(b) => find(specs, b)?,
                None => specs.len(),
            };
            for input in inputs {
                let j = find(specs, input)?;
                if j >= pos {
                    return Err(DeltaError::ForwardEdge {
                        node: name.clone(),
                        input: input.clone(),
                    });
                }
            }
            specs.insert(
                pos,
                Spec {
                    name: name.clone(),
                    op: op.clone(),
                    inputs: inputs.clone(),
                },
            );
            Ok(())
        }
        GraphEdit::RemoveNode { node } => {
            let idx = find(specs, node)?;
            for spec in specs.iter() {
                if spec.name == *node {
                    continue;
                }
                if let Some(i) = spec.inputs.iter().position(|input| input == node) {
                    return Err(DeltaError::NodeInUse {
                        node: node.clone(),
                        consumer: spec.name.clone(),
                        input_index: i,
                    });
                }
            }
            specs.remove(idx);
            Ok(())
        }
        GraphEdit::RetargetEdge {
            node,
            input_index,
            new_input,
        } => {
            let idx = find(specs, node)?;
            let arity = specs[idx].inputs.len();
            if *input_index >= arity {
                return Err(DeltaError::InvalidInputIndex {
                    node: node.clone(),
                    index: *input_index,
                    arity,
                });
            }
            let j = find(specs, new_input)?;
            if j >= idx {
                return Err(DeltaError::ForwardEdge {
                    node: node.clone(),
                    input: new_input.clone(),
                });
            }
            specs[idx].inputs[*input_index] = new_input.clone();
            Ok(())
        }
    }
}

/// Rebuilds a graph from the edited flat form via [`Graph::add`], so
/// shape inference and every arena invariant re-run from scratch.
fn rebuild(name: &str, specs: &[Spec]) -> Result<Graph, DeltaError> {
    let mut graph = Graph::new(name);
    let mut ids: HashMap<&str, NodeId> = HashMap::with_capacity(specs.len());
    for spec in specs {
        let inputs = spec
            .inputs
            .iter()
            .map(|input| {
                ids.get(input.as_str())
                    .copied()
                    .ok_or_else(|| DeltaError::UnknownNode {
                        node: input.clone(),
                    })
            })
            .collect::<Result<Vec<NodeId>, DeltaError>>()?;
        let id = graph
            .add(&spec.name, spec.op.clone(), inputs)
            .map_err(|err| DeltaError::Rebuild {
                node: spec.name.clone(),
                message: err.to_string(),
            })?;
        ids.insert(spec.name.as_str(), id);
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{zoo, Shape};

    fn retune(node: &str, op: OpKind) -> GraphDelta {
        GraphDelta::new().with(GraphEdit::RetuneOpParams {
            node: node.into(),
            op,
        })
    }

    #[test]
    fn retune_matches_hand_built_graph() {
        let base = zoo::mlp();
        let edited = retune("fc1", OpKind::linear(512)).apply(&base).unwrap();
        // Same structure as building the mutated model from scratch.
        let mut expect = Graph::new(base.name());
        let mut prev = None;
        for node in base.nodes() {
            let op = if node.name() == "fc1" {
                OpKind::linear(512)
            } else {
                node.op().clone()
            };
            let inputs: Vec<NodeId> = node.inputs().iter().map(|_| prev.unwrap()).collect();
            prev = Some(expect.add(node.name(), op, inputs).unwrap());
        }
        assert_eq!(edited, expect);
        // Purity: the base is untouched.
        assert_eq!(base, zoo::mlp());
    }

    #[test]
    fn retune_rejects_kind_change() {
        let err = retune("fc1", OpKind::Relu).apply(&zoo::mlp()).unwrap_err();
        assert_eq!(
            err,
            DeltaError::KindMismatch {
                node: "fc1".into(),
                expected: "linear",
                got: "relu",
            }
        );
    }

    #[test]
    fn unknown_node_is_named() {
        let err = retune("nope", OpKind::linear(8))
            .apply(&zoo::mlp())
            .unwrap_err();
        assert_eq!(err.to_string(), "unknown node `nope`");
    }

    #[test]
    fn replace_weights_is_structurally_inert() {
        let base = zoo::mlp();
        let delta = GraphDelta::new().with(GraphEdit::ReplaceNodeWeights { node: "fc1".into() });
        assert_eq!(delta.apply(&base).unwrap(), base);
        let err = GraphDelta::new()
            .with(GraphEdit::ReplaceNodeWeights {
                node: "input".into(),
            })
            .apply(&base)
            .unwrap_err();
        assert!(matches!(err, DeltaError::NoStaticWeights { .. }));
    }

    #[test]
    fn insert_and_remove_round_trip() {
        let base = zoo::mlp();
        // Splice a relu in front of fc2, rewire fc2 through it, then undo.
        let spliced = GraphDelta::new()
            .with(GraphEdit::InsertNode {
                name: "extra".into(),
                op: OpKind::Relu,
                inputs: vec!["fc1.relu".into()],
                before: Some("fc2".into()),
            })
            .with(GraphEdit::RetargetEdge {
                node: "fc2".into(),
                input_index: 0,
                new_input: "extra".into(),
            })
            .apply(&base)
            .unwrap();
        assert_eq!(spliced.len(), base.len() + 1);
        let undone = GraphDelta::new()
            .with(GraphEdit::RetargetEdge {
                node: "fc2".into(),
                input_index: 0,
                new_input: "fc1.relu".into(),
            })
            .with(GraphEdit::RemoveNode {
                node: "extra".into(),
            })
            .apply(&spliced)
            .unwrap();
        assert_eq!(undone, base);
    }

    #[test]
    fn remove_in_use_names_consumer_and_edge() {
        let err = GraphDelta::new()
            .with(GraphEdit::RemoveNode {
                node: "fc1.relu".into(),
            })
            .apply(&zoo::mlp())
            .unwrap_err();
        assert_eq!(
            err,
            DeltaError::NodeInUse {
                node: "fc1.relu".into(),
                consumer: "fc2".into(),
                input_index: 0,
            }
        );
    }

    #[test]
    fn retarget_checks_index_and_direction() {
        let base = zoo::mlp();
        let err = GraphDelta::new()
            .with(GraphEdit::RetargetEdge {
                node: "fc1".into(),
                input_index: 3,
                new_input: "input".into(),
            })
            .apply(&base)
            .unwrap_err();
        assert!(matches!(
            err,
            DeltaError::InvalidInputIndex { arity: 1, .. }
        ));
        let err = GraphDelta::new()
            .with(GraphEdit::RetargetEdge {
                node: "fc1".into(),
                input_index: 0,
                new_input: "fc2".into(),
            })
            .apply(&base)
            .unwrap_err();
        assert!(matches!(err, DeltaError::ForwardEdge { .. }));
    }

    #[test]
    fn rebuild_errors_carry_the_node_name() {
        // Retuning the input to an incompatible shape breaks inference
        // downstream at the first conv.
        let err = GraphDelta::new()
            .with(GraphEdit::RetuneOpParams {
                node: "input".into(),
                op: OpKind::Input {
                    shape: Shape::vec(8),
                },
            })
            .apply(&zoo::vgg7())
            .unwrap_err();
        match err {
            DeltaError::Rebuild { node, .. } => assert_eq!(node, "b1.0.conv"),
            other => panic!("expected rebuild error, got {other:?}"),
        }
    }

    #[test]
    fn validate_equals_apply() {
        let base = zoo::mlp();
        let good = retune("fc1", OpKind::linear(512));
        assert!(good.validate(&base).is_ok());
        let bad = retune("fc1", OpKind::Relu);
        assert_eq!(
            bad.validate(&base).unwrap_err(),
            bad.apply(&base).unwrap_err()
        );
    }

    #[test]
    fn serde_round_trip_snake_case() {
        let delta = GraphDelta::new()
            .with(GraphEdit::RetuneOpParams {
                node: "l0.fc1".into(),
                op: OpKind::linear(2048),
            })
            .with(GraphEdit::InsertNode {
                name: "x".into(),
                op: OpKind::Relu,
                inputs: vec!["l0.fc1".into()],
                before: None,
            });
        let json = serde_json::to_string(&delta).unwrap();
        assert!(json.contains("retune_op_params"), "{json}");
        let back: GraphDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, delta);
    }

    #[test]
    fn missing_before_defaults_to_append() {
        let json = r#"{"edits":[{"insert_node":{"name":"t","op":"Relu","inputs":["fc2"]}}]}"#;
        let delta: GraphDelta = serde_json::from_str(json).unwrap();
        let edited = delta.apply(&zoo::mlp()).unwrap();
        assert_eq!(edited.len(), zoo::mlp().len() + 1);
    }
}
