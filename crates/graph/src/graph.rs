//! The computation-graph IR.

use crate::{OpKind, Shape};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifier of a node inside one [`Graph`].
///
/// Ids are dense indices assigned in insertion order, which is also a
/// topological order (a node's inputs must already exist when it is added).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a node id from a value [`NodeId::index`] returned —
    /// deserialization support for artifacts (schedules, cache entries)
    /// that reference graph nodes by index. The caller is responsible
    /// for pairing the id with the graph it came from; ids are not
    /// validated against any particular graph here.
    ///
    /// # Panics
    /// Panics when `index` exceeds the dense-id range (`u32`).
    #[must_use]
    pub fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index fits the dense-id range"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Error produced by graph construction or analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A referenced input node does not exist in the graph.
    UnknownNode {
        /// The offending id.
        id: u32,
    },
    /// An operator received the wrong number of inputs.
    ArityMismatch {
        /// Operator mnemonic.
        op: &'static str,
        /// Expected input count.
        expected: usize,
        /// Actual input count.
        got: usize,
    },
    /// Input shapes are incompatible with the operator.
    ShapeMismatch {
        /// Operator mnemonic.
        op: &'static str,
        /// Description of the mismatch.
        message: String,
    },
    /// The graph (or a serialized document) is structurally invalid.
    Malformed {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode { id } => write!(f, "unknown node id %{id}"),
            GraphError::ArityMismatch { op, expected, got } => {
                write!(f, "operator `{op}` expects {expected} inputs, got {got}")
            }
            GraphError::ShapeMismatch { op, message } => {
                write!(f, "shape mismatch in `{op}`: {message}")
            }
            GraphError::Malformed { message } => write!(f, "malformed graph: {message}"),
        }
    }
}

impl Error for GraphError {}

/// One operator instance in a [`Graph`].
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    id: NodeId,
    name: String,
    op: OpKind,
    inputs: Vec<NodeId>,
    out_shape: Shape,
}

impl Node {
    /// The node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's user-facing name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator.
    #[must_use]
    pub fn op(&self) -> &OpKind {
        &self.op
    }

    /// Ids of the data inputs.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The inferred output shape.
    #[must_use]
    pub fn out_shape(&self) -> &Shape {
        &self.out_shape
    }
}

/// A DNN computation graph: nodes are operators, edges are data
/// dependencies (paper §3.3.1).
///
/// The graph maintains two invariants enforced at [`Graph::add`] time:
/// every edge points to an existing node (hence the graph is acyclic), and
/// every node's output shape has been successfully inferred from its
/// inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Graph {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// The model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a node and infers its output shape.
    ///
    /// # Errors
    /// Returns [`GraphError`] if an input id is unknown or shape inference
    /// fails.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        op: OpKind,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> crate::Result<NodeId> {
        let inputs: Vec<NodeId> = inputs.into_iter().collect();
        for input in &inputs {
            if input.index() >= self.nodes.len() {
                return Err(GraphError::UnknownNode { id: input.0 });
            }
        }
        let shapes: Vec<&Shape> = inputs
            .iter()
            .map(|id| self.nodes[id.index()].out_shape())
            .collect();
        let out_shape = op.infer(&shapes)?;
        let id = NodeId(u32::try_from(self.nodes.len()).expect("graph node count fits u32"));
        self.nodes.push(Node {
            id,
            name: name.into(),
            op,
            inputs,
            out_shape,
        });
        Ok(id)
    }

    /// The node with id `id`.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this graph; ids are only minted by
    /// [`Graph::add`], so this indicates cross-graph id confusion.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes in insertion (= topological) order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids in topological order (insertion order, by construction).
    #[must_use]
    pub fn topo_order(&self) -> Vec<NodeId> {
        self.nodes.iter().map(Node::id).collect()
    }

    /// Map from node to the nodes that consume its output.
    #[must_use]
    pub fn successors(&self) -> HashMap<NodeId, Vec<NodeId>> {
        let mut out: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for node in &self.nodes {
            for input in node.inputs() {
                out.entry(*input).or_default().push(node.id());
            }
        }
        out
    }

    /// Nodes whose output nobody consumes (the graph outputs).
    #[must_use]
    pub fn outputs(&self) -> Vec<NodeId> {
        let succ = self.successors();
        self.nodes
            .iter()
            .map(Node::id)
            .filter(|id| !succ.contains_key(id))
            .collect()
    }

    /// Nodes executing in CIM arrays, in topological order.
    #[must_use]
    pub fn cim_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.op().is_cim_supported())
            .map(Node::id)
            .collect()
    }

    /// The stationary weight-matrix dimensions `(rows, cols)` of a CIM
    /// node: `rows` is the reduction extent bound to crossbar rows (XBR),
    /// `cols` the output extent bound to crossbar columns (XBC)
    /// (Figure 7's dimension binding).
    ///
    /// Returns `None` for digital operators.
    #[must_use]
    pub fn weight_matrix(&self, id: NodeId) -> Option<(usize, usize)> {
        let node = self.node(id);
        match node.op() {
            OpKind::Conv2d {
                out_channels,
                kernel,
                ..
            } => {
                let (in_c, _, _) = self.input_shape(node, 0).as_chw()?;
                Some((in_c * kernel * kernel, *out_channels))
            }
            OpKind::Linear { out_features } => {
                Some((self.input_shape(node, 0).last(), *out_features))
            }
            OpKind::MatMul => {
                let (k, n) = self.input_shape(node, 1).as_tokens()?;
                Some((k, n))
            }
            _ => None,
        }
    }

    /// The number of matrix-vector multiplications a CIM node unrolls into
    /// (paper §3.3.3: a convolution becomes one MVM per sliding-window
    /// position; a linear/matmul becomes one MVM per input row).
    ///
    /// Returns 0 for digital operators.
    #[must_use]
    pub fn mvm_count(&self, id: NodeId) -> u64 {
        let node = self.node(id);
        match node.op() {
            OpKind::Conv2d { .. } => {
                let (_, oh, ow) = node.out_shape().as_chw().expect("conv output is rank 3");
                (oh * ow) as u64
            }
            OpKind::Linear { .. } => {
                let dims = node.out_shape().dims();
                dims[..dims.len() - 1]
                    .iter()
                    .map(|&d| d as u64)
                    .product::<u64>()
                    .max(1)
            }
            OpKind::MatMul => {
                let (m, _) = node
                    .out_shape()
                    .as_tokens()
                    .expect("matmul output is rank 2");
                m as u64
            }
            _ => 0,
        }
    }

    /// Multiply-accumulate count of a node (digital ops report their
    /// element-operation count instead).
    #[must_use]
    pub fn macs(&self, id: NodeId) -> u64 {
        let node = self.node(id);
        match node.op() {
            OpKind::Conv2d { .. } | OpKind::Linear { .. } | OpKind::MatMul => {
                let (rows, cols) = self.weight_matrix(id).expect("CIM op has a weight matrix");
                self.mvm_count(id) * rows as u64 * cols as u64
            }
            OpKind::Attention { .. } => {
                let (t, d) = node
                    .out_shape()
                    .as_tokens()
                    .expect("attention output is rank 2");
                2 * (t as u64) * (t as u64) * (d as u64)
            }
            _ => node.out_shape().elements(),
        }
    }

    /// Total weight parameters held in CIM arrays across the graph.
    #[must_use]
    pub fn total_weights(&self) -> u64 {
        self.cim_nodes()
            .iter()
            .filter_map(|&id| self.weight_matrix(id))
            .map(|(r, c)| r as u64 * c as u64)
            .sum()
    }

    /// Total MACs across the graph.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.nodes.iter().map(|n| self.macs(n.id())).sum()
    }

    fn input_shape(&self, node: &Node, idx: usize) -> &Shape {
        self.node(node.inputs()[idx]).out_shape()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new("tiny");
        let x = g
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::chw(3, 32, 32),
                },
                [],
            )
            .unwrap();
        let c = g.add("conv1", OpKind::conv2d(32, 3, 1, 1), [x]).unwrap();
        let r = g.add("relu1", OpKind::Relu, [c]).unwrap();
        (g, x, c, r)
    }

    #[test]
    fn add_infers_shapes() {
        let (g, _, c, r) = tiny();
        assert_eq!(g.node(c).out_shape(), &Shape::chw(32, 32, 32));
        assert_eq!(g.node(r).out_shape(), &Shape::chw(32, 32, 32));
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn add_rejects_unknown_input() {
        let mut g = Graph::new("bad");
        let err = g.add("r", OpKind::Relu, [NodeId(7)]).unwrap_err();
        assert!(matches!(err, GraphError::UnknownNode { id: 7 }));
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let mut g = Graph::new("bad");
        let x = g
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::vec(8),
                },
                [],
            )
            .unwrap();
        let err = g.add("c", OpKind::conv2d(4, 3, 1, 1), [x]).unwrap_err();
        assert!(matches!(err, GraphError::ShapeMismatch { .. }));
    }

    #[test]
    fn topo_and_outputs() {
        let (g, x, c, r) = tiny();
        assert_eq!(g.topo_order(), vec![x, c, r]);
        assert_eq!(g.outputs(), vec![r]);
        let succ = g.successors();
        assert_eq!(succ[&x], vec![c]);
        assert_eq!(succ[&c], vec![r]);
        assert!(!succ.contains_key(&r));
    }

    #[test]
    fn weight_matrix_dimension_binding() {
        let (g, _, c, _) = tiny();
        // conv 3x3 over 3 channels -> 27 rows; 32 output channels -> 32 cols.
        assert_eq!(g.weight_matrix(c), Some((27, 32)));
        let mut g2 = Graph::new("lin");
        let x = g2
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::tokens(197, 768),
                },
                [],
            )
            .unwrap();
        let l = g2.add("fc", OpKind::linear(3072), [x]).unwrap();
        assert_eq!(g2.weight_matrix(l), Some((768, 3072)));
        assert_eq!(g2.weight_matrix(x), None);
    }

    #[test]
    fn mvm_count_matches_sliding_windows() {
        let (g, _, c, r) = tiny();
        // 32x32 output positions (Figure 16: 1024 MVMs for this conv).
        assert_eq!(g.mvm_count(c), 1024);
        assert_eq!(g.mvm_count(r), 0);
    }

    #[test]
    fn macs_and_totals() {
        let (g, _, c, _) = tiny();
        assert_eq!(g.macs(c), 1024 * 27 * 32);
        assert_eq!(g.total_weights(), 27 * 32);
        assert!(g.total_macs() > g.macs(c)); // relu elements counted too
        assert_eq!(g.cim_nodes(), vec![c]);
    }

    #[test]
    fn matmul_weight_comes_from_rhs() {
        let mut g = Graph::new("attn");
        let q = g
            .add(
                "q",
                OpKind::Input {
                    shape: Shape::tokens(197, 64),
                },
                [],
            )
            .unwrap();
        let k = g
            .add(
                "k",
                OpKind::Input {
                    shape: Shape::tokens(64, 197),
                },
                [],
            )
            .unwrap();
        let s = g.add("scores", OpKind::MatMul, [q, k]).unwrap();
        assert_eq!(g.weight_matrix(s), Some((64, 197)));
        assert_eq!(g.mvm_count(s), 197);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "%3");
    }
}
