//! The computation-graph IR.
//!
//! # Storage model: typed arenas + interning
//!
//! A [`Graph`] does not store one heap object per node. Instead it is a
//! set of typed arenas indexed by dense ids:
//!
//! * **nodes** — a flat `Vec` of fixed-size records (name, operator id,
//!   shape id, edge-slice offsets), indexed by [`NodeId`];
//! * **shapes** — an interned arena of unique [`Shape`]s, indexed by
//!   [`ShapeId`]. The zoo's repeated layers (e.g. the 49 identical
//!   `[tokens, dim]` activations of a ViT) collapse to one entry;
//! * **ops** — an interned arena of unique [`OpKind`] attribute sets,
//!   indexed by [`OpId`]. Identical operators (every `Relu`, every
//!   `conv3x3/1 p1 -> 512`, …) share one record;
//! * **edges** — one shared CSR-style pool: each node's inputs are a
//!   contiguous slice of the pool, so [`Node::inputs`] is a slice borrow
//!   and traversal allocates nothing. Successor adjacency is the same
//!   CSR shape, materialized once by [`Graph::successors`].
//!
//! # Invariants and index stability
//!
//! * Ids are **dense and append-only**: [`Graph::add`] mints `NodeId`s
//!   `0, 1, 2, …` in insertion order and nothing is ever removed or
//!   reordered, so insertion order *is* a topological order and a
//!   `NodeId` (or an index derived from [`NodeId::index`]) stays valid
//!   for the lifetime of the graph. Serialized artifacts (schedules,
//!   cache entries) may therefore reference nodes by index.
//! * **Interning is an encoding, not a semantic**: two nodes sharing a
//!   `ShapeId`/`OpId` is exactly equivalent to two nodes owning equal
//!   values. Equality ([`PartialEq`]) and the JSON exchange format are
//!   defined on the *resolved* values, so graphs built through different
//!   construction orders compare equal whenever their per-node contents
//!   match, and the wire format is byte-identical to the pre-arena
//!   representation.
//! * Intern ids are **deterministic**: they are assigned in first-use
//!   order, so the same build sequence always produces the same ids —
//!   replaying a serialized graph through [`Graph::add`] reproduces the
//!   arena layout exactly.
//! * Every edge points to an existing (hence earlier) node, and every
//!   node's output shape has been inferred successfully at `add` time;
//!   a `Graph` value is always consistent.
//!
//! [`Node`] is a cheap `Copy` *view* (a `(&Graph, NodeId)` pair), not a
//! stored object; [`Graph::node`] and iteration via [`Graph::nodes`] hand
//! out views that resolve arena indices on access.

use crate::{OpKind, Shape};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifier of a node inside one [`Graph`].
///
/// Ids are dense indices assigned in insertion order, which is also a
/// topological order (a node's inputs must already exist when it is added).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a node id from a value [`NodeId::index`] returned —
    /// deserialization support for artifacts (schedules, cache entries)
    /// that reference graph nodes by index. The caller is responsible
    /// for pairing the id with the graph it came from; ids are not
    /// validated against any particular graph here.
    ///
    /// # Panics
    /// Panics when `index` exceeds the dense-id range (`u32`).
    #[must_use]
    pub fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index fits the dense-id range"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Identifier of an interned [`Shape`] inside one [`Graph`]'s shape arena.
///
/// Equal shapes within a graph always share the same `ShapeId`, so id
/// equality is shape equality (within that graph). Ids are assigned in
/// first-use order and are stable for the lifetime of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeId(pub(crate) u32);

impl ShapeId {
    /// The dense index of this shape in the graph's shape arena.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an interned [`OpKind`] inside one [`Graph`]'s op arena.
///
/// Equal operator attribute sets within a graph always share the same
/// `OpId`, so id equality is operator equality (within that graph). Ids
/// are assigned in first-use order and are stable for the lifetime of
/// the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// The dense index of this operator in the graph's op arena.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Error produced by graph construction or analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A referenced input node does not exist in the graph.
    UnknownNode {
        /// The offending id.
        id: u32,
    },
    /// An operator received the wrong number of inputs.
    ArityMismatch {
        /// Operator mnemonic.
        op: &'static str,
        /// Expected input count.
        expected: usize,
        /// Actual input count.
        got: usize,
    },
    /// Input shapes are incompatible with the operator.
    ShapeMismatch {
        /// Operator mnemonic.
        op: &'static str,
        /// Description of the mismatch.
        message: String,
    },
    /// The graph (or a serialized document) is structurally invalid.
    Malformed {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode { id } => write!(f, "unknown node id %{id}"),
            GraphError::ArityMismatch { op, expected, got } => {
                write!(f, "operator `{op}` expects {expected} inputs, got {got}")
            }
            GraphError::ShapeMismatch { op, message } => {
                write!(f, "shape mismatch in `{op}`: {message}")
            }
            GraphError::Malformed { message } => write!(f, "malformed graph: {message}"),
        }
    }
}

impl Error for GraphError {}

/// Fixed-size arena record backing one node. All variable-size payload
/// lives in the graph-level arenas (`shapes`, `ops`, `in_pool`).
#[derive(Debug, Clone, PartialEq)]
struct NodeRec {
    name: String,
    op: OpId,
    out_shape: ShapeId,
    /// Offset of this node's input slice in `Graph::in_pool`.
    in_start: u32,
    /// Length of this node's input slice.
    in_len: u32,
}

/// A borrowed view of one operator instance in a [`Graph`].
///
/// `Node` is a `Copy` handle (graph reference + [`NodeId`]); accessors
/// resolve the graph's arenas on demand. It is obtained from
/// [`Graph::node`] or by iterating [`Graph::nodes`].
#[derive(Clone, Copy)]
pub struct Node<'g> {
    graph: &'g Graph,
    id: NodeId,
}

impl<'g> Node<'g> {
    /// The node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    fn rec(&self) -> &'g NodeRec {
        &self.graph.nodes[self.id.index()]
    }

    /// The node's user-facing name.
    #[must_use]
    pub fn name(&self) -> &'g str {
        &self.rec().name
    }

    /// The operator (resolved from the graph's interned op arena).
    #[must_use]
    pub fn op(&self) -> &'g OpKind {
        &self.graph.ops[self.rec().op.index()]
    }

    /// The interned id of the operator.
    #[must_use]
    pub fn op_id(&self) -> OpId {
        self.rec().op
    }

    /// Ids of the data inputs — a slice of the graph's shared edge pool.
    #[must_use]
    pub fn inputs(&self) -> &'g [NodeId] {
        let rec = self.rec();
        let start = rec.in_start as usize;
        &self.graph.in_pool[start..start + rec.in_len as usize]
    }

    /// The inferred output shape (resolved from the shape arena).
    #[must_use]
    pub fn out_shape(&self) -> &'g Shape {
        &self.graph.shapes[self.rec().out_shape.index()]
    }

    /// The interned id of the output shape.
    #[must_use]
    pub fn shape_id(&self) -> ShapeId {
        self.rec().out_shape
    }
}

impl fmt::Debug for Node<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("name", &self.name())
            .field("op", self.op())
            .field("inputs", &self.inputs())
            .field("out_shape", self.out_shape())
            .finish()
    }
}

impl PartialEq for Node<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.name() == other.name()
            && self.op() == other.op()
            && self.inputs() == other.inputs()
            && self.out_shape() == other.out_shape()
    }
}

/// Iterator over all nodes of a graph in insertion (= topological) order.
///
/// Yields [`Node`] views; created by [`Graph::nodes`].
#[derive(Clone)]
pub struct Nodes<'g> {
    graph: &'g Graph,
    range: std::ops::Range<u32>,
}

impl<'g> Iterator for Nodes<'g> {
    type Item = Node<'g>;

    fn next(&mut self) -> Option<Node<'g>> {
        self.range.next().map(|i| Node {
            graph: self.graph,
            id: NodeId(i),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl DoubleEndedIterator for Nodes<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        self.range.next_back().map(|i| Node {
            graph: self.graph,
            id: NodeId(i),
        })
    }
}

impl ExactSizeIterator for Nodes<'_> {}

/// Successor adjacency in CSR form: one shared pool of consumer ids plus
/// per-node offsets. Built once by [`Graph::successors`]; lookups via
/// [`Adjacency::of`] are slice borrows and allocate nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adjacency {
    /// `index[i]..index[i+1]` bounds node `i`'s slice of `pool`.
    index: Vec<u32>,
    pool: Vec<NodeId>,
}

impl Adjacency {
    /// The nodes consuming `id`'s output, in consumer-id order.
    ///
    /// # Panics
    /// Panics if `id` does not belong to the graph this adjacency was
    /// built from.
    #[must_use]
    pub fn of(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.pool[self.index[i] as usize..self.index[i + 1] as usize]
    }

    /// Whether `id` has at least one consumer.
    #[must_use]
    pub fn has_successors(&self, id: NodeId) -> bool {
        !self.of(id).is_empty()
    }
}

/// A DNN computation graph: nodes are operators, edges are data
/// dependencies (paper §3.3.1).
///
/// Storage is arena-based with interned shapes and operators — the
/// `graph` module documentation states the invariants. The graph maintains
/// two of them at [`Graph::add`] time: every edge points to an existing
/// node (hence the graph is acyclic), and every node's output shape has
/// been successfully inferred from its inputs.
#[derive(Debug, Clone)]
pub struct Graph {
    name: String,
    nodes: Vec<NodeRec>,
    /// Interned shape arena, indexed by [`ShapeId`].
    shapes: Vec<Shape>,
    shape_index: HashMap<Shape, ShapeId>,
    /// Interned operator arena, indexed by [`OpId`].
    ops: Vec<OpKind>,
    op_index: HashMap<OpKind, OpId>,
    /// Shared CSR edge pool; each node's inputs are one contiguous slice.
    in_pool: Vec<NodeId>,
}

impl PartialEq for Graph {
    /// Structural equality on resolved values: same name and, per node,
    /// same name/operator/inputs/output shape. Arena layout (intern id
    /// assignment) does not participate, so equality is independent of
    /// construction history.
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.nodes.len() == other.nodes.len()
            && self.nodes().zip(other.nodes()).all(|(a, b)| a == b)
    }
}

impl Graph {
    /// Creates an empty graph named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Graph {
            name: name.into(),
            nodes: Vec::new(),
            shapes: Vec::new(),
            shape_index: HashMap::new(),
            ops: Vec::new(),
            op_index: HashMap::new(),
            in_pool: Vec::new(),
        }
    }

    /// The model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    fn intern_shape(&mut self, shape: Shape) -> ShapeId {
        if let Some(&id) = self.shape_index.get(&shape) {
            return id;
        }
        let id = ShapeId(u32::try_from(self.shapes.len()).expect("shape arena fits u32"));
        self.shapes.push(shape.clone());
        self.shape_index.insert(shape, id);
        id
    }

    fn intern_op(&mut self, op: OpKind) -> OpId {
        if let Some(&id) = self.op_index.get(&op) {
            return id;
        }
        let id = OpId(u32::try_from(self.ops.len()).expect("op arena fits u32"));
        self.ops.push(op.clone());
        self.op_index.insert(op, id);
        id
    }

    /// Adds a node and infers its output shape.
    ///
    /// # Errors
    /// Returns [`GraphError`] if an input id is unknown or shape inference
    /// fails.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        op: OpKind,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> crate::Result<NodeId> {
        let in_start = self.in_pool.len();
        for input in inputs {
            if input.index() >= self.nodes.len() {
                self.in_pool.truncate(in_start);
                return Err(GraphError::UnknownNode { id: input.0 });
            }
            self.in_pool.push(input);
        }
        let shapes: Vec<&Shape> = self.in_pool[in_start..]
            .iter()
            .map(|id| &self.shapes[self.nodes[id.index()].out_shape.index()])
            .collect();
        let out_shape = match op.infer(&shapes) {
            Ok(shape) => shape,
            Err(err) => {
                self.in_pool.truncate(in_start);
                return Err(err);
            }
        };
        let in_len = u32::try_from(self.in_pool.len() - in_start).expect("input count fits u32");
        let id = NodeId(u32::try_from(self.nodes.len()).expect("graph node count fits u32"));
        let out_shape = self.intern_shape(out_shape);
        let op = self.intern_op(op);
        self.nodes.push(NodeRec {
            name: name.into(),
            op,
            out_shape,
            in_start: u32::try_from(in_start).expect("edge pool fits u32"),
            in_len,
        });
        Ok(id)
    }

    /// Parameter-only graph surgery behind
    /// [`GraphDelta`](crate::GraphDelta): clones the arena, swaps the
    /// retuned operators in place, and re-infers every output shape from
    /// the first edited node onward (insertion order is topological, so
    /// one forward sweep reaches every affected node). No topology
    /// changes means names, ids and the edge pool are reusable as-is —
    /// this skips the flatten/rebuild round-trip on the recompile hot
    /// path.
    ///
    /// On failure returns the id of the node whose shape inference
    /// rejected its (possibly retuned) inputs, so the caller can name it.
    pub(crate) fn retuned_many(
        &self,
        retunes: &[(NodeId, OpKind)],
    ) -> Result<Graph, (NodeId, GraphError)> {
        let mut g = self.clone();
        let mut first = g.nodes.len();
        for (id, op) in retunes {
            let op = g.intern_op(op.clone());
            g.nodes[id.index()].op = op;
            first = first.min(id.index());
        }
        for i in first..g.nodes.len() {
            let out = {
                let rec = &g.nodes[i];
                let start = rec.in_start as usize;
                let in_shapes: Vec<&Shape> = g.in_pool[start..start + rec.in_len as usize]
                    .iter()
                    .map(|id| &g.shapes[g.nodes[id.index()].out_shape.index()])
                    .collect();
                g.ops[rec.op.index()]
                    .infer(&in_shapes)
                    .map_err(|e| (NodeId::from_index(i), e))?
            };
            let out = g.intern_shape(out);
            g.nodes[i].out_shape = out;
        }
        Ok(g)
    }

    /// A view of the node with id `id`.
    ///
    /// # Panics
    /// Panics (on field access) if `id` does not belong to this graph; ids
    /// are only minted by [`Graph::add`], so this indicates cross-graph id
    /// confusion.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Node<'_> {
        assert!(
            id.index() < self.nodes.len(),
            "node id {id} out of range for graph `{}` ({} nodes)",
            self.name,
            self.nodes.len()
        );
        Node { graph: self, id }
    }

    /// Iterates all nodes in insertion (= topological) order.
    #[must_use]
    pub fn nodes(&self) -> Nodes<'_> {
        Nodes {
            graph: self,
            range: 0..u32::try_from(self.nodes.len()).expect("graph node count fits u32"),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of *unique* shapes in the interned shape arena.
    #[must_use]
    pub fn shape_count(&self) -> usize {
        self.shapes.len()
    }

    /// Number of *unique* operator attribute sets in the interned op arena.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// The shape stored under `id` in the shape arena.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this graph's arena.
    #[must_use]
    pub fn shape(&self, id: ShapeId) -> &Shape {
        &self.shapes[id.index()]
    }

    /// Ids in topological order (insertion order, by construction).
    #[must_use]
    pub fn topo_order(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).map(NodeId::from_index).collect()
    }

    /// Successor adjacency (node → consumers of its output) in CSR form.
    ///
    /// Building it is two passes over the edge pool and two allocations;
    /// lookups afterwards allocate nothing. Consumer lists come out in
    /// consumer-id order.
    #[must_use]
    pub fn successors(&self) -> Adjacency {
        let n = self.nodes.len();
        let mut index = vec![0u32; n + 1];
        for &input in &self.in_pool {
            index[input.index() + 1] += 1;
        }
        for i in 0..n {
            index[i + 1] += index[i];
        }
        let mut cursor: Vec<u32> = index[..n].to_vec();
        let mut pool = vec![NodeId(0); self.in_pool.len()];
        for (i, rec) in self.nodes.iter().enumerate() {
            // Consumers land in id order because nodes are scanned in id
            // order; a multi-edge (same producer twice) contributes one
            // entry per edge, like the pre-CSR map did.
            let consumer = NodeId::from_index(i);
            let start = rec.in_start as usize;
            for &input in &self.in_pool[start..start + rec.in_len as usize] {
                let slot = &mut cursor[input.index()];
                pool[*slot as usize] = consumer;
                *slot += 1;
            }
        }
        Adjacency { index, pool }
    }

    /// Nodes whose output nobody consumes (the graph outputs).
    #[must_use]
    pub fn outputs(&self) -> Vec<NodeId> {
        let mut consumed = vec![false; self.nodes.len()];
        for &input in &self.in_pool {
            consumed[input.index()] = true;
        }
        consumed
            .iter()
            .enumerate()
            .filter(|(_, &c)| !c)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Nodes executing in CIM arrays, in topological order.
    #[must_use]
    pub fn cim_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, rec)| self.ops[rec.op.index()].is_cim_supported())
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// The stationary weight-matrix dimensions `(rows, cols)` of a CIM
    /// node: `rows` is the reduction extent bound to crossbar rows (XBR),
    /// `cols` the output extent bound to crossbar columns (XBC)
    /// (Figure 7's dimension binding).
    ///
    /// Returns `None` for digital operators.
    #[must_use]
    pub fn weight_matrix(&self, id: NodeId) -> Option<(usize, usize)> {
        let node = self.node(id);
        match node.op() {
            OpKind::Conv2d {
                out_channels,
                kernel,
                ..
            } => {
                let (in_c, _, _) = self.input_shape(id, 0).as_chw()?;
                Some((in_c * kernel * kernel, *out_channels))
            }
            OpKind::Linear { out_features } => {
                Some((self.input_shape(id, 0).last(), *out_features))
            }
            OpKind::MatMul => {
                let (k, n) = self.input_shape(id, 1).as_tokens()?;
                Some((k, n))
            }
            _ => None,
        }
    }

    /// The number of matrix-vector multiplications a CIM node unrolls into
    /// (paper §3.3.3: a convolution becomes one MVM per sliding-window
    /// position; a linear/matmul becomes one MVM per input row).
    ///
    /// Returns 0 for digital operators.
    #[must_use]
    pub fn mvm_count(&self, id: NodeId) -> u64 {
        let node = self.node(id);
        match node.op() {
            OpKind::Conv2d { .. } => {
                let (_, oh, ow) = node.out_shape().as_chw().expect("conv output is rank 3");
                (oh * ow) as u64
            }
            OpKind::Linear { .. } => {
                let dims = node.out_shape().dims();
                dims[..dims.len() - 1]
                    .iter()
                    .map(|&d| d as u64)
                    .product::<u64>()
                    .max(1)
            }
            OpKind::MatMul => {
                let (m, _) = node
                    .out_shape()
                    .as_tokens()
                    .expect("matmul output is rank 2");
                m as u64
            }
            _ => 0,
        }
    }

    /// Multiply-accumulate count of a node (digital ops report their
    /// element-operation count instead).
    #[must_use]
    pub fn macs(&self, id: NodeId) -> u64 {
        let node = self.node(id);
        match node.op() {
            OpKind::Conv2d { .. } | OpKind::Linear { .. } | OpKind::MatMul => {
                let (rows, cols) = self.weight_matrix(id).expect("CIM op has a weight matrix");
                self.mvm_count(id) * rows as u64 * cols as u64
            }
            OpKind::Attention { .. } => {
                let (t, d) = node
                    .out_shape()
                    .as_tokens()
                    .expect("attention output is rank 2");
                2 * (t as u64) * (t as u64) * (d as u64)
            }
            _ => node.out_shape().elements(),
        }
    }

    /// Total weight parameters held in CIM arrays across the graph.
    #[must_use]
    pub fn total_weights(&self) -> u64 {
        self.cim_nodes()
            .iter()
            .filter_map(|&id| self.weight_matrix(id))
            .map(|(r, c)| r as u64 * c as u64)
            .sum()
    }

    /// Total MACs across the graph.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        (0..self.nodes.len())
            .map(|i| self.macs(NodeId::from_index(i)))
            .sum()
    }

    fn input_shape(&self, id: NodeId, idx: usize) -> &Shape {
        self.node(self.node(id).inputs()[idx]).out_shape()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new("tiny");
        let x = g
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::chw(3, 32, 32),
                },
                [],
            )
            .unwrap();
        let c = g.add("conv1", OpKind::conv2d(32, 3, 1, 1), [x]).unwrap();
        let r = g.add("relu1", OpKind::Relu, [c]).unwrap();
        (g, x, c, r)
    }

    #[test]
    fn add_infers_shapes() {
        let (g, _, c, r) = tiny();
        assert_eq!(g.node(c).out_shape(), &Shape::chw(32, 32, 32));
        assert_eq!(g.node(r).out_shape(), &Shape::chw(32, 32, 32));
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn add_rejects_unknown_input() {
        let mut g = Graph::new("bad");
        let err = g.add("r", OpKind::Relu, [NodeId(7)]).unwrap_err();
        assert!(matches!(err, GraphError::UnknownNode { id: 7 }));
        // A failed add leaves no garbage in the edge pool.
        assert!(g.in_pool.is_empty());
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let mut g = Graph::new("bad");
        let x = g
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::vec(8),
                },
                [],
            )
            .unwrap();
        let err = g.add("c", OpKind::conv2d(4, 3, 1, 1), [x]).unwrap_err();
        assert!(matches!(err, GraphError::ShapeMismatch { .. }));
        assert!(g.in_pool.is_empty());
    }

    #[test]
    fn topo_and_outputs() {
        let (g, x, c, r) = tiny();
        assert_eq!(g.topo_order(), vec![x, c, r]);
        assert_eq!(g.outputs(), vec![r]);
        let succ = g.successors();
        assert_eq!(succ.of(x), &[c]);
        assert_eq!(succ.of(c), &[r]);
        assert!(succ.of(r).is_empty());
        assert!(succ.has_successors(x));
        assert!(!succ.has_successors(r));
    }

    #[test]
    fn successors_handle_fanout_in_consumer_order() {
        let mut g = Graph::new("fanout");
        let x = g
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::chw(8, 8, 8),
                },
                [],
            )
            .unwrap();
        let a = g.add("a", OpKind::Relu, [x]).unwrap();
        let b = g.add("b", OpKind::BatchNorm, [x]).unwrap();
        let s = g.add("s", OpKind::Add, [a, b]).unwrap();
        let succ = g.successors();
        assert_eq!(succ.of(x), &[a, b]);
        assert_eq!(succ.of(a), &[s]);
        assert_eq!(succ.of(b), &[s]);
        assert_eq!(g.outputs(), vec![s]);
    }

    #[test]
    fn interning_dedups_shapes_and_ops() {
        let mut g = Graph::new("intern");
        let x = g
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::chw(8, 8, 8),
                },
                [],
            )
            .unwrap();
        let mut h = x;
        for i in 0..10 {
            h = g.add(format!("r{i}"), OpKind::Relu, [h]).unwrap();
        }
        // 11 nodes, but only one shape ([8,8,8]) and two unique ops.
        assert_eq!(g.len(), 11);
        assert_eq!(g.shape_count(), 1);
        assert_eq!(g.op_count(), 2);
        // Shared ids, equal resolved values.
        let first = g.node(NodeId(1));
        let last = g.node(h);
        assert_eq!(first.shape_id(), last.shape_id());
        assert_eq!(first.op_id(), last.op_id());
        assert_eq!(g.shape(first.shape_id()), &Shape::chw(8, 8, 8));
        assert_eq!(first.op(), &OpKind::Relu);
    }

    #[test]
    fn equality_is_structural() {
        let (a, ..) = tiny();
        let (b, ..) = tiny();
        assert_eq!(a, b);
        let mut c = Graph::new("tiny");
        let x = c
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::chw(3, 32, 32),
                },
                [],
            )
            .unwrap();
        let cv = c.add("conv1", OpKind::conv2d(32, 3, 1, 1), [x]).unwrap();
        let _ = c.add("relu_other", OpKind::Relu, [cv]).unwrap();
        assert_ne!(a, c); // differing node name
    }

    #[test]
    fn weight_matrix_dimension_binding() {
        let (g, _, c, _) = tiny();
        // conv 3x3 over 3 channels -> 27 rows; 32 output channels -> 32 cols.
        assert_eq!(g.weight_matrix(c), Some((27, 32)));
        let mut g2 = Graph::new("lin");
        let x = g2
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::tokens(197, 768),
                },
                [],
            )
            .unwrap();
        let l = g2.add("fc", OpKind::linear(3072), [x]).unwrap();
        assert_eq!(g2.weight_matrix(l), Some((768, 3072)));
        assert_eq!(g2.weight_matrix(x), None);
    }

    #[test]
    fn mvm_count_matches_sliding_windows() {
        let (g, _, c, r) = tiny();
        // 32x32 output positions (Figure 16: 1024 MVMs for this conv).
        assert_eq!(g.mvm_count(c), 1024);
        assert_eq!(g.mvm_count(r), 0);
    }

    #[test]
    fn macs_and_totals() {
        let (g, _, c, _) = tiny();
        assert_eq!(g.macs(c), 1024 * 27 * 32);
        assert_eq!(g.total_weights(), 27 * 32);
        assert!(g.total_macs() > g.macs(c)); // relu elements counted too
        assert_eq!(g.cim_nodes(), vec![c]);
    }

    #[test]
    fn matmul_weight_comes_from_rhs() {
        let mut g = Graph::new("attn");
        let q = g
            .add(
                "q",
                OpKind::Input {
                    shape: Shape::tokens(197, 64),
                },
                [],
            )
            .unwrap();
        let k = g
            .add(
                "k",
                OpKind::Input {
                    shape: Shape::tokens(64, 197),
                },
                [],
            )
            .unwrap();
        let s = g.add("scores", OpKind::MatMul, [q, k]).unwrap();
        assert_eq!(g.weight_matrix(s), Some((64, 197)));
        assert_eq!(g.mvm_count(s), 197);
        let _ = q;
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "%3");
    }
}
