//! # cim-graph — DNN computation-graph IR and model zoo
//!
//! CIM-MLC consumes DNN models as computation graphs in which nodes are
//! operators and edges are data dependencies (paper §3.3.1, where the
//! input format is ONNX). This crate provides:
//!
//! * a typed operator set ([`OpKind`]) covering the paper's benchmark
//!   networks (VGG, ResNet, ViT) plus common auxiliaries;
//! * an always-consistent graph IR ([`Graph`]) with eager shape inference —
//!   a node cannot be added with mismatched input shapes;
//! * a JSON exchange format (the ONNX substitute; see DESIGN.md) via
//!   serde;
//! * a [`zoo`] of builders reproducing the evaluation workloads with their
//!   exact layer shapes.
//!
//! ```
//! use cim_graph::{Graph, OpKind, Shape};
//!
//! # fn main() -> Result<(), cim_graph::GraphError> {
//! let mut g = Graph::new("tiny");
//! let x = g.add("x", OpKind::Input { shape: Shape::chw(3, 32, 32) }, [])?;
//! let c = g.add("conv", OpKind::conv2d(32, 3, 1, 1), [x])?;
//! let r = g.add("relu", OpKind::Relu, [c])?;
//! assert_eq!(g.node(r).out_shape(), &Shape::chw(32, 32, 32));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delta;
mod graph;
mod op;
mod serde_io;
mod shape;
pub mod zoo;

pub use delta::{DeltaError, GraphDelta, GraphEdit};
pub use graph::{Adjacency, Graph, GraphError, Node, NodeId, Nodes, OpId, ShapeId};
pub use op::{OpKind, PoolKind};
pub use serde_io::{from_json, to_json};
pub use shape::Shape;

// Graphs are compiled concurrently by the `cim-bench` sweep pool's
// worker threads; pin thread-safety down at compile time.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Graph>();
    assert_send_sync::<GraphError>();
    assert_send_sync::<GraphDelta>();
    assert_send_sync::<DeltaError>();
};

/// Convenient result alias for fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
