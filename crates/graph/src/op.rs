//! The operator set.

use crate::{GraphError, Shape};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Pooling flavor for [`OpKind::Pool2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// A DNN operator.
///
/// The set covers the paper's benchmark networks — the VGG series, the
/// ResNet series and ViT (§4.1) — plus the auxiliaries they need. Three
/// operators execute *in* the CIM arrays (they have stationary weight
/// matrices): [`Conv2d`](OpKind::Conv2d), [`Linear`](OpKind::Linear) and
/// [`MatMul`](OpKind::MatMul). Everything else is digital and runs on the
/// chip/core ALUs (`DCOM` meta-operators after compilation).
///
/// Use the convenience constructors ([`OpKind::conv2d`],
/// [`OpKind::linear`], …) for the common attribute patterns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OpKind {
    /// Graph input carrying its tensor shape.
    Input {
        /// Shape of the fed tensor.
        shape: Shape,
    },
    /// 2-D convolution over a `[C, H, W]` input (square kernel).
    Conv2d {
        /// Number of output channels.
        out_channels: usize,
        /// Kernel side length.
        kernel: usize,
        /// Stride (both axes).
        stride: usize,
        /// Zero padding (both axes).
        padding: usize,
    },
    /// Fully-connected layer over the last axis.
    Linear {
        /// Number of output features.
        out_features: usize,
    },
    /// Dynamic matrix multiply `[m, k] × [k, n] → [m, n]` (attention
    /// score/value products). The second operand plays the "weight" role
    /// when mapped onto crossbars, but must be rewritten per inference.
    MatMul,
    /// Rectified linear unit (element-wise).
    Relu,
    /// Gaussian-error linear unit (element-wise).
    Gelu,
    /// Softmax over the last axis.
    Softmax,
    /// 2-D pooling (square window).
    Pool2d {
        /// Max or average pooling.
        kind: PoolKind,
        /// Window side length.
        kernel: usize,
        /// Stride (both axes).
        stride: usize,
        /// Zero padding (both axes).
        padding: usize,
    },
    /// Reinterprets the input with a new shape of equal element count
    /// (e.g. `[768, 14, 14] → [196, 768]` after a ViT patch embedding).
    Reshape {
        /// Target shape.
        shape: Shape,
    },
    /// Global average pooling `[C, H, W] → [C]`.
    GlobalAvgPool,
    /// Element-wise addition of two same-shape tensors (residual links).
    Add,
    /// Concatenation along `axis`.
    Concat {
        /// Concatenation axis.
        axis: usize,
    },
    /// Flattens to a rank-1 vector.
    Flatten,
    /// Batch normalization (inference-mode affine transform).
    BatchNorm,
    /// Layer normalization over the last axis.
    LayerNorm,
    /// Multi-head self-attention core `softmax(QKᵀ/√d)·V` over three
    /// `[tokens, dim]` operands (Q, K, V), treated as one fused digital
    /// operator. The *projections around it* (Q/K/V and output Linear
    /// layers) are separate CIM-mapped nodes; the core's operands are both
    /// activations, so it cannot hold stationary crossbar weights.
    Attention {
        /// Number of attention heads (must divide `dim`).
        heads: usize,
    },
}

impl OpKind {
    /// Convolution with square kernel/stride/padding.
    #[must_use]
    pub fn conv2d(out_channels: usize, kernel: usize, stride: usize, padding: usize) -> Self {
        OpKind::Conv2d {
            out_channels,
            kernel,
            stride,
            padding,
        }
    }

    /// Fully-connected layer.
    #[must_use]
    pub fn linear(out_features: usize) -> Self {
        OpKind::Linear { out_features }
    }

    /// Max pooling with square window and no padding.
    #[must_use]
    pub fn max_pool(kernel: usize, stride: usize) -> Self {
        OpKind::Pool2d {
            kind: PoolKind::Max,
            kernel,
            stride,
            padding: 0,
        }
    }

    /// Max pooling with square window and zero padding (ResNet stems).
    #[must_use]
    pub fn max_pool_padded(kernel: usize, stride: usize, padding: usize) -> Self {
        OpKind::Pool2d {
            kind: PoolKind::Max,
            kernel,
            stride,
            padding,
        }
    }

    /// Average pooling with square window and no padding.
    #[must_use]
    pub fn avg_pool(kernel: usize, stride: usize) -> Self {
        OpKind::Pool2d {
            kind: PoolKind::Avg,
            kernel,
            stride,
            padding: 0,
        }
    }

    /// Number of data inputs the operator expects, or `None` for variadic
    /// ([`Concat`](OpKind::Concat)).
    #[must_use]
    pub fn arity(&self) -> Option<usize> {
        match self {
            OpKind::Input { .. } => Some(0),
            OpKind::Add | OpKind::MatMul => Some(2),
            OpKind::Attention { .. } => Some(3),
            OpKind::Concat { .. } => None,
            _ => Some(1),
        }
    }

    /// Whether the operator executes inside CIM arrays (owns a stationary
    /// weight matrix that is programmed into crossbars).
    #[must_use]
    pub fn is_cim_supported(&self) -> bool {
        matches!(
            self,
            OpKind::Conv2d { .. } | OpKind::Linear { .. } | OpKind::MatMul
        )
    }

    /// Whether the operator's crossbar contents are true constants.
    ///
    /// [`MatMul`](OpKind::MatMul) maps to crossbars but both operands are
    /// activations, so its "weights" must be rewritten every inference —
    /// prohibitive on write-expensive devices (paper §2.1).
    #[must_use]
    pub fn has_static_weights(&self) -> bool {
        matches!(self, OpKind::Conv2d { .. } | OpKind::Linear { .. })
    }

    /// Short mnemonic used in generated code and schedule dumps.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::Input { .. } => "input",
            OpKind::Conv2d { .. } => "conv",
            OpKind::Linear { .. } => "linear",
            OpKind::MatMul => "matmul",
            OpKind::Relu => "relu",
            OpKind::Gelu => "gelu",
            OpKind::Softmax => "softmax",
            OpKind::Pool2d {
                kind: PoolKind::Max,
                ..
            } => "maxpool",
            OpKind::Pool2d {
                kind: PoolKind::Avg,
                ..
            } => "avgpool",
            OpKind::GlobalAvgPool => "gap",
            OpKind::Add => "add",
            OpKind::Concat { .. } => "concat",
            OpKind::Flatten => "flatten",
            OpKind::Reshape { .. } => "reshape",
            OpKind::BatchNorm => "bn",
            OpKind::LayerNorm => "ln",
            OpKind::Attention { .. } => "attention",
        }
    }

    /// Infers the output shape from the input shapes.
    ///
    /// # Errors
    /// Returns [`GraphError::ShapeMismatch`] when the inputs are
    /// incompatible with the operator (wrong rank, mismatched extents,
    /// kernel larger than the padded input, …) and
    /// [`GraphError::ArityMismatch`] when the number of inputs is wrong.
    pub fn infer(&self, inputs: &[&Shape]) -> Result<Shape, GraphError> {
        if let Some(n) = self.arity() {
            if inputs.len() != n {
                return Err(GraphError::ArityMismatch {
                    op: self.mnemonic(),
                    expected: n,
                    got: inputs.len(),
                });
            }
        } else if inputs.is_empty() {
            return Err(GraphError::ArityMismatch {
                op: self.mnemonic(),
                expected: 1,
                got: 0,
            });
        }
        let mismatch = |message: String| GraphError::ShapeMismatch {
            op: self.mnemonic(),
            message,
        };
        match self {
            OpKind::Input { shape } => Ok(shape.clone()),
            OpKind::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
            } => {
                let (_, h, w) = inputs[0]
                    .as_chw()
                    .ok_or_else(|| mismatch(format!("expects [C,H,W], got {}", inputs[0])))?;
                let oh = conv_out(h, *kernel, *stride, *padding)
                    .ok_or_else(|| mismatch(format!("kernel {kernel} too large for H={h}")))?;
                let ow = conv_out(w, *kernel, *stride, *padding)
                    .ok_or_else(|| mismatch(format!("kernel {kernel} too large for W={w}")))?;
                Ok(Shape::chw(*out_channels, oh, ow))
            }
            OpKind::Linear { out_features } => {
                let mut dims: Vec<usize> = inputs[0].dims().to_vec();
                *dims.last_mut().expect("shapes are non-empty") = *out_features;
                Ok(Shape::new(dims))
            }
            OpKind::MatMul => {
                let (m, k1) = inputs[0]
                    .as_tokens()
                    .ok_or_else(|| mismatch(format!("lhs must be rank-2, got {}", inputs[0])))?;
                let (k2, n) = inputs[1]
                    .as_tokens()
                    .ok_or_else(|| mismatch(format!("rhs must be rank-2, got {}", inputs[1])))?;
                if k1 != k2 {
                    return Err(mismatch(format!("inner dimensions disagree: {k1} vs {k2}")));
                }
                Ok(Shape::tokens(m, n))
            }
            OpKind::Relu
            | OpKind::Gelu
            | OpKind::Softmax
            | OpKind::BatchNorm
            | OpKind::LayerNorm => Ok(inputs[0].clone()),
            OpKind::Pool2d {
                kernel,
                stride,
                padding,
                ..
            } => {
                let (c, h, w) = inputs[0]
                    .as_chw()
                    .ok_or_else(|| mismatch(format!("expects [C,H,W], got {}", inputs[0])))?;
                let oh = conv_out(h, *kernel, *stride, *padding)
                    .ok_or_else(|| mismatch(format!("window {kernel} too large for H={h}")))?;
                let ow = conv_out(w, *kernel, *stride, *padding)
                    .ok_or_else(|| mismatch(format!("window {kernel} too large for W={w}")))?;
                Ok(Shape::chw(c, oh, ow))
            }
            OpKind::Reshape { shape } => {
                if shape.elements() != inputs[0].elements() {
                    return Err(mismatch(format!(
                        "cannot reshape {} ({} elements) to {} ({} elements)",
                        inputs[0],
                        inputs[0].elements(),
                        shape,
                        shape.elements()
                    )));
                }
                Ok(shape.clone())
            }
            OpKind::GlobalAvgPool => {
                let (c, _, _) = inputs[0]
                    .as_chw()
                    .ok_or_else(|| mismatch(format!("expects [C,H,W], got {}", inputs[0])))?;
                Ok(Shape::vec(c))
            }
            OpKind::Add => {
                if inputs[0] != inputs[1] {
                    return Err(mismatch(format!(
                        "operand shapes differ: {} vs {}",
                        inputs[0], inputs[1]
                    )));
                }
                Ok(inputs[0].clone())
            }
            OpKind::Concat { axis } => {
                let first = inputs[0];
                if *axis >= first.rank() {
                    return Err(mismatch(format!(
                        "axis {axis} out of range for rank {}",
                        first.rank()
                    )));
                }
                let mut dims = first.dims().to_vec();
                for other in &inputs[1..] {
                    if other.rank() != first.rank() {
                        return Err(mismatch("rank mismatch among concat inputs".into()));
                    }
                    for (d, (a, b)) in first.dims().iter().zip(other.dims()).enumerate() {
                        if d != *axis && a != b {
                            return Err(mismatch(format!(
                                "non-concat axis {d} differs: {a} vs {b}"
                            )));
                        }
                    }
                    dims[*axis] += other.dims()[*axis];
                }
                Ok(Shape::new(dims))
            }
            OpKind::Flatten => Ok(Shape::vec(inputs[0].elements() as usize)),
            OpKind::Attention { heads } => {
                let (_, d) = inputs[0]
                    .as_tokens()
                    .ok_or_else(|| mismatch(format!("expects [tokens, dim], got {}", inputs[0])))?;
                if inputs[1] != inputs[0] || inputs[2] != inputs[0] {
                    return Err(mismatch(format!(
                        "Q/K/V shapes must match: {} vs {} vs {}",
                        inputs[0], inputs[1], inputs[2]
                    )));
                }
                if *heads == 0 || d % heads != 0 {
                    return Err(mismatch(format!("heads {heads} must divide dim {d}")));
                }
                Ok(inputs[0].clone())
            }
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
            } => write!(
                f,
                "conv{kernel}x{kernel}/{stride} p{padding} -> {out_channels}"
            ),
            OpKind::Linear { out_features } => write!(f, "linear -> {out_features}"),
            OpKind::Pool2d {
                kind,
                kernel,
                stride,
                padding,
            } => {
                let k = match kind {
                    PoolKind::Max => "max",
                    PoolKind::Avg => "avg",
                };
                write!(f, "{k}pool{kernel}/{stride} p{padding}")
            }
            OpKind::Reshape { shape } => write!(f, "reshape{shape}"),
            OpKind::Concat { axis } => write!(f, "concat(axis={axis})"),
            OpKind::Attention { heads } => write!(f, "attention(h={heads})"),
            OpKind::Input { shape } => write!(f, "input{shape}"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

/// Output extent of a convolution/pool along one axis, or `None` if the
/// (padded) input is smaller than the kernel.
fn conv_out(input: usize, kernel: usize, stride: usize, padding: usize) -> Option<usize> {
    let padded = input + 2 * padding;
    if kernel == 0 || stride == 0 || padded < kernel {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infer1(op: &OpKind, s: &Shape) -> Result<Shape, GraphError> {
        op.infer(&[s])
    }

    #[test]
    fn conv_shape_inference() {
        let s = Shape::chw(3, 32, 32);
        let out = infer1(&OpKind::conv2d(32, 3, 1, 1), &s).unwrap();
        assert_eq!(out, Shape::chw(32, 32, 32));
        let strided = infer1(&OpKind::conv2d(64, 3, 2, 1), &s).unwrap();
        assert_eq!(strided, Shape::chw(64, 16, 16));
        let seven = infer1(&OpKind::conv2d(64, 7, 2, 3), &Shape::chw(3, 224, 224)).unwrap();
        assert_eq!(seven, Shape::chw(64, 112, 112));
    }

    #[test]
    fn conv_rejects_bad_input() {
        assert!(infer1(&OpKind::conv2d(8, 3, 1, 0), &Shape::vec(10)).is_err());
        assert!(infer1(&OpKind::conv2d(8, 9, 1, 0), &Shape::chw(1, 4, 4)).is_err());
    }

    #[test]
    fn linear_rewrites_last_axis() {
        assert_eq!(
            infer1(&OpKind::linear(10), &Shape::vec(512)).unwrap(),
            Shape::vec(10)
        );
        assert_eq!(
            infer1(&OpKind::linear(3072), &Shape::tokens(197, 768)).unwrap(),
            Shape::tokens(197, 3072)
        );
    }

    #[test]
    fn matmul_checks_inner_dim() {
        let a = Shape::tokens(197, 64);
        let b = Shape::tokens(64, 197);
        assert_eq!(
            OpKind::MatMul.infer(&[&a, &b]).unwrap(),
            Shape::tokens(197, 197)
        );
        assert!(OpKind::MatMul.infer(&[&a, &a]).is_err());
        assert!(OpKind::MatMul.infer(&[&a]).is_err());
    }

    #[test]
    fn pooling_shapes() {
        let s = Shape::chw(64, 32, 32);
        assert_eq!(
            infer1(&OpKind::max_pool(2, 2), &s).unwrap(),
            Shape::chw(64, 16, 16)
        );
        assert_eq!(infer1(&OpKind::GlobalAvgPool, &s).unwrap(), Shape::vec(64));
    }

    #[test]
    fn add_requires_same_shape() {
        let a = Shape::chw(64, 8, 8);
        let b = Shape::chw(64, 8, 8);
        assert_eq!(OpKind::Add.infer(&[&a, &b]).unwrap(), a);
        let c = Shape::chw(32, 8, 8);
        assert!(OpKind::Add.infer(&[&a, &c]).is_err());
    }

    #[test]
    fn concat_sums_axis() {
        let a = Shape::chw(32, 8, 8);
        let b = Shape::chw(64, 8, 8);
        let op = OpKind::Concat { axis: 0 };
        assert_eq!(op.infer(&[&a, &b]).unwrap(), Shape::chw(96, 8, 8));
        let bad = Shape::chw(64, 4, 8);
        assert!(op.infer(&[&a, &bad]).is_err());
        assert!(OpKind::Concat { axis: 9 }.infer(&[&a, &b]).is_err());
        assert!(op.infer(&[]).is_err());
    }

    #[test]
    fn flatten_and_elementwise() {
        let s = Shape::chw(512, 7, 7);
        assert_eq!(infer1(&OpKind::Flatten, &s).unwrap(), Shape::vec(512 * 49));
        assert_eq!(infer1(&OpKind::Relu, &s).unwrap(), s);
        assert_eq!(infer1(&OpKind::BatchNorm, &s).unwrap(), s);
    }

    #[test]
    fn attention_validates_heads_and_operands() {
        let s = Shape::tokens(197, 768);
        assert_eq!(
            OpKind::Attention { heads: 12 }
                .infer(&[&s, &s, &s])
                .unwrap(),
            s
        );
        assert!(OpKind::Attention { heads: 7 }.infer(&[&s, &s, &s]).is_err());
        assert!(OpKind::Attention { heads: 0 }.infer(&[&s, &s, &s]).is_err());
        // Q/K/V must agree.
        let other = Shape::tokens(197, 384);
        assert!(OpKind::Attention { heads: 12 }
            .infer(&[&s, &other, &s])
            .is_err());
        // arity is 3
        assert!(OpKind::Attention { heads: 12 }.infer(&[&s]).is_err());
        let v = Shape::vec(768);
        assert!(OpKind::Attention { heads: 12 }
            .infer(&[&v, &v, &v])
            .is_err());
    }

    #[test]
    fn reshape_checks_element_count() {
        let s = Shape::chw(768, 14, 14);
        let target = Shape::tokens(196, 768);
        let op = OpKind::Reshape {
            shape: target.clone(),
        };
        assert_eq!(op.infer(&[&s]).unwrap(), target);
        let bad = OpKind::Reshape {
            shape: Shape::vec(5),
        };
        assert!(bad.infer(&[&s]).is_err());
    }

    #[test]
    fn padded_pooling() {
        // ResNet stem: 112x112 -> maxpool3/2 p1 -> 56x56
        let s = Shape::chw(64, 112, 112);
        assert_eq!(
            OpKind::max_pool_padded(3, 2, 1).infer(&[&s]).unwrap(),
            Shape::chw(64, 56, 56)
        );
    }

    #[test]
    fn cim_support_classification() {
        assert!(OpKind::conv2d(8, 3, 1, 1).is_cim_supported());
        assert!(OpKind::linear(8).is_cim_supported());
        assert!(OpKind::MatMul.is_cim_supported());
        assert!(!OpKind::Relu.is_cim_supported());
        assert!(!(OpKind::Attention { heads: 8 }).is_cim_supported());
        assert!(OpKind::linear(8).has_static_weights());
        assert!(!OpKind::MatMul.has_static_weights());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            OpKind::conv2d(32, 3, 1, 1).to_string(),
            "conv3x3/1 p1 -> 32"
        );
        assert_eq!(OpKind::linear(10).to_string(), "linear -> 10");
        assert_eq!(OpKind::max_pool(2, 2).to_string(), "maxpool2/2 p0");
    }

    #[test]
    fn serde_round_trip() {
        let ops = vec![
            OpKind::conv2d(64, 3, 1, 1),
            OpKind::MatMul,
            OpKind::Attention { heads: 12 },
            OpKind::Concat { axis: 1 },
        ];
        let j = serde_json::to_string(&ops).unwrap();
        let back: Vec<OpKind> = serde_json::from_str(&j).unwrap();
        assert_eq!(back, ops);
    }
}
