//! JSON exchange format — the ONNX substitute.
//!
//! The paper ingests ONNX protobufs; this reproduction uses an equivalent
//! JSON document (see DESIGN.md §2, "Substitutions"). The document carries
//! exactly what the compiler consumes — node names, operators with
//! attributes, and the dependency edges — and deserialization rebuilds the
//! graph through [`Graph::add`] so every invariant (valid edges, inferable
//! shapes) is re-checked on load.

use crate::{Graph, GraphError, NodeId, OpKind};
use serde::{Deserialize, Serialize};

/// Serialized form of one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeDoc {
    name: String,
    op: OpKind,
    inputs: Vec<u32>,
}

/// Serialized form of a graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GraphDoc {
    name: String,
    nodes: Vec<NodeDoc>,
}

/// Serializes a graph to the JSON exchange format.
///
/// ```
/// use cim_graph::{zoo, to_json, from_json};
///
/// let g = zoo::lenet5();
/// let round_tripped = from_json(&to_json(&g)).unwrap();
/// assert_eq!(round_tripped, g);
/// ```
#[must_use]
pub fn to_json(graph: &Graph) -> String {
    let doc = GraphDoc {
        name: graph.name().to_owned(),
        nodes: graph
            .nodes()
            .map(|n| NodeDoc {
                name: n.name().to_owned(),
                op: n.op().clone(),
                inputs: n.inputs().iter().map(|id| id.0).collect(),
            })
            .collect(),
    };
    serde_json::to_string_pretty(&doc).expect("graph documents always serialize")
}

/// Parses a graph from the JSON exchange format, re-validating every node.
///
/// # Errors
/// Returns [`GraphError::Malformed`] when the document is not valid JSON,
/// and the underlying construction error when an edge or shape is invalid
/// (e.g. a node referencing a later node, which would be a cycle).
pub fn from_json(json: &str) -> crate::Result<Graph> {
    let doc: GraphDoc = serde_json::from_str(json).map_err(|e| GraphError::Malformed {
        message: format!("JSON parse error: {e}"),
    })?;
    let mut graph = Graph::new(doc.name);
    for node in doc.nodes {
        graph.add(node.name, node.op, node.inputs.into_iter().map(NodeId))?;
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn round_trip_preserves_graph() {
        let mut g = Graph::new("rt");
        let x = g
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::chw(3, 8, 8),
                },
                [],
            )
            .unwrap();
        let c = g.add("c", OpKind::conv2d(4, 3, 1, 1), [x]).unwrap();
        let _ = g.add("r", OpKind::Relu, [c]).unwrap();
        let back = from_json(&to_json(&g)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn parse_error_is_reported() {
        let err = from_json("{not json").unwrap_err();
        assert!(matches!(err, GraphError::Malformed { .. }));
    }

    #[test]
    fn forward_reference_is_rejected() {
        // Node 0 references node 1: impossible via the builder, so the
        // document is rejected on load.
        let json = r#"{
            "name": "evil",
            "nodes": [
                { "name": "r", "op": "Relu", "inputs": [1] },
                { "name": "x", "op": { "Input": { "shape": [4] } }, "inputs": [] }
            ]
        }"#;
        let err = from_json(json).unwrap_err();
        assert!(matches!(err, GraphError::UnknownNode { id: 1 }));
    }

    #[test]
    fn zoo_models_round_trip() {
        for g in [crate::zoo::vgg7(), crate::zoo::resnet18()] {
            let back = from_json(&to_json(&g)).unwrap();
            assert_eq!(back, g);
        }
    }
}
