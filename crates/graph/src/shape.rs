//! Tensor shapes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A tensor shape: the per-sample extent of a value flowing along a graph
/// edge. Batch dimensions are excluded — the paper's scheduling problem is
/// single-image inference (§4.2 "the internal computation pipeline of a
/// single input image").
///
/// Common layouts:
/// * feature maps: `[C, H, W]` (see [`Shape::chw`]);
/// * token matrices: `[tokens, dim]` (see [`Shape::tokens`]);
/// * flat vectors: `[features]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from explicit dimensions.
    ///
    /// # Panics
    /// Panics if any dimension is zero; zero-extent tensors are never
    /// meaningful in this IR.
    #[must_use]
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        let dims = dims.into();
        assert!(
            !dims.is_empty() && dims.iter().all(|&d| d > 0),
            "shape dimensions must be non-empty and non-zero, got {dims:?}"
        );
        Shape(dims)
    }

    /// `[channels, height, width]` feature-map shape.
    #[must_use]
    pub fn chw(c: usize, h: usize, w: usize) -> Self {
        Shape::new([c, h, w])
    }

    /// `[tokens, dim]` token-matrix shape (transformers).
    #[must_use]
    pub fn tokens(t: usize, d: usize) -> Self {
        Shape::new([t, d])
    }

    /// `[features]` flat vector shape.
    #[must_use]
    pub fn vec(n: usize) -> Self {
        Shape::new([n])
    }

    /// The dimensions as a slice.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    #[must_use]
    pub fn elements(&self) -> u64 {
        self.0.iter().map(|&d| d as u64).product()
    }

    /// The last dimension (the "feature" axis for linear layers).
    #[must_use]
    pub fn last(&self) -> usize {
        *self.0.last().expect("shapes are non-empty")
    }

    /// Interprets the shape as `[C, H, W]`.
    ///
    /// Returns `None` for non-rank-3 shapes.
    #[must_use]
    pub fn as_chw(&self) -> Option<(usize, usize, usize)> {
        match *self.0.as_slice() {
            [c, h, w] => Some((c, h, w)),
            _ => None,
        }
    }

    /// Interprets the shape as `[tokens, dim]`.
    ///
    /// Returns `None` for non-rank-2 shapes.
    #[must_use]
    pub fn as_tokens(&self) -> Option<(usize, usize)> {
        match *self.0.as_slice() {
            [t, d] => Some((t, d)),
            _ => None,
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Shape> for Vec<usize> {
    fn from(s: Shape) -> Vec<usize> {
        s.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let s = Shape::chw(3, 32, 32);
        assert_eq!(s.dims(), &[3, 32, 32]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.elements(), 3 * 32 * 32);
        assert_eq!(s.as_chw(), Some((3, 32, 32)));
        assert_eq!(s.as_tokens(), None);
        assert_eq!(Shape::tokens(197, 768).as_tokens(), Some((197, 768)));
        assert_eq!(Shape::vec(10).last(), 10);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Shape::new([1, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_shape_panics() {
        let _ = Shape::new(Vec::new());
    }

    #[test]
    fn display_is_bracketed() {
        assert_eq!(Shape::chw(3, 224, 224).to_string(), "[3, 224, 224]");
        assert_eq!(Shape::vec(1000).to_string(), "[1000]");
    }

    #[test]
    fn serde_round_trip() {
        let s = Shape::tokens(197, 768);
        let j = serde_json::to_string(&s).unwrap();
        let back: Shape = serde_json::from_str(&j).unwrap();
        assert_eq!(back, s);
    }
}
