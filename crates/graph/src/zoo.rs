//! Model zoo: the paper's benchmark networks with their exact layer shapes.
//!
//! The evaluation (§4.1) uses "multiple classic network models, including
//! the VGG series, ResNet series, visual transformer (ViT), etc.", with
//! 8-bit weights and activations on ImageNet-scale inputs. Each builder
//! here reproduces the standard architecture:
//!
//! * [`vgg7`] — the compact VGG used for the Jain et al. comparison
//!   (Figure 20c), on 32×32 inputs;
//! * [`vgg11`] / [`vgg16`] — ImageNet VGG configurations A and D;
//! * [`resnet18`] / [`resnet34`] / [`resnet50`] / [`resnet101`] — the
//!   ResNet series of Figure 21;
//! * [`vit_base`] — ViT-Base/16, the sensitivity-study workload of
//!   Figure 22;
//! * [`lenet5`] / [`mlp`] — small models for tests and quickstarts.

use crate::{Graph, NodeId, OpKind, Shape};

/// Pushes `conv → batchnorm → relu` and returns the relu's id.
fn conv_bn_relu(
    g: &mut Graph,
    prefix: &str,
    input: NodeId,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> NodeId {
    let c = g
        .add(
            format!("{prefix}.conv"),
            OpKind::conv2d(out_channels, kernel, stride, padding),
            [input],
        )
        .expect("zoo models are well-formed");
    let b = g
        .add(format!("{prefix}.bn"), OpKind::BatchNorm, [c])
        .expect("zoo models are well-formed");
    g.add(format!("{prefix}.relu"), OpKind::Relu, [b])
        .expect("zoo models are well-formed")
}

fn add(g: &mut Graph, name: &str, op: OpKind, inputs: impl IntoIterator<Item = NodeId>) -> NodeId {
    g.add(name, op, inputs).expect("zoo models are well-formed")
}

/// LeNet-5 on 32×32 grayscale inputs (tests and quickstart examples).
#[must_use]
pub fn lenet5() -> Graph {
    let mut g = Graph::new("lenet5");
    let x = add(
        &mut g,
        "input",
        OpKind::Input {
            shape: Shape::chw(1, 32, 32),
        },
        [],
    );
    let c1 = conv_bn_relu(&mut g, "c1", x, 6, 5, 1, 0);
    let p1 = add(&mut g, "p1", OpKind::avg_pool(2, 2), [c1]);
    let c2 = conv_bn_relu(&mut g, "c2", p1, 16, 5, 1, 0);
    let p2 = add(&mut g, "p2", OpKind::avg_pool(2, 2), [c2]);
    let f = add(&mut g, "flatten", OpKind::Flatten, [p2]);
    let f1 = add(&mut g, "fc1", OpKind::linear(120), [f]);
    let r1 = add(&mut g, "fc1.relu", OpKind::Relu, [f1]);
    let f2 = add(&mut g, "fc2", OpKind::linear(84), [r1]);
    let r2 = add(&mut g, "fc2.relu", OpKind::Relu, [f2]);
    let _ = add(&mut g, "fc3", OpKind::linear(10), [r2]);
    g
}

/// Three-layer MLP on flat 784-dim inputs.
#[must_use]
pub fn mlp() -> Graph {
    let mut g = Graph::new("mlp");
    let x = add(
        &mut g,
        "input",
        OpKind::Input {
            shape: Shape::vec(784),
        },
        [],
    );
    let f1 = add(&mut g, "fc1", OpKind::linear(256), [x]);
    let r1 = add(&mut g, "fc1.relu", OpKind::Relu, [f1]);
    let f2 = add(&mut g, "fc2", OpKind::linear(128), [r1]);
    let r2 = add(&mut g, "fc2.relu", OpKind::Relu, [f2]);
    let _ = add(&mut g, "fc3", OpKind::linear(10), [r2]);
    g
}

/// VGG7 (the 6-conv + 2-FC compact VGG common in CIM papers) on 32×32
/// RGB inputs — the Figure 20c workload.
#[must_use]
pub fn vgg7() -> Graph {
    let mut g = Graph::new("vgg7");
    let x = add(
        &mut g,
        "input",
        OpKind::Input {
            shape: Shape::chw(3, 32, 32),
        },
        [],
    );
    let mut h = x;
    let mut idx = 0;
    for (blocks, channels) in [(2usize, 128usize), (2, 256), (2, 512)] {
        for b in 0..blocks {
            idx += 1;
            h = conv_bn_relu(&mut g, &format!("b{idx}.{b}"), h, channels, 3, 1, 1);
        }
        h = add(&mut g, &format!("pool{idx}"), OpKind::max_pool(2, 2), [h]);
    }
    let f = add(&mut g, "flatten", OpKind::Flatten, [h]);
    let f1 = add(&mut g, "fc1", OpKind::linear(1024), [f]);
    let r1 = add(&mut g, "fc1.relu", OpKind::Relu, [f1]);
    let _ = add(&mut g, "fc2", OpKind::linear(10), [r1]);
    g
}

/// Builds an ImageNet VGG from a configuration string of channel counts and
/// `M` (maxpool) markers.
fn vgg_imagenet(name: &str, cfg: &[Option<usize>]) -> Graph {
    let mut g = Graph::new(name);
    let x = add(
        &mut g,
        "input",
        OpKind::Input {
            shape: Shape::chw(3, 224, 224),
        },
        [],
    );
    let mut h = x;
    let mut conv_idx = 0;
    let mut pool_idx = 0;
    for entry in cfg {
        match entry {
            Some(channels) => {
                conv_idx += 1;
                h = conv_bn_relu(&mut g, &format!("conv{conv_idx}"), h, *channels, 3, 1, 1);
            }
            None => {
                pool_idx += 1;
                h = add(
                    &mut g,
                    &format!("pool{pool_idx}"),
                    OpKind::max_pool(2, 2),
                    [h],
                );
            }
        }
    }
    let f = add(&mut g, "flatten", OpKind::Flatten, [h]);
    let f1 = add(&mut g, "fc1", OpKind::linear(4096), [f]);
    let r1 = add(&mut g, "fc1.relu", OpKind::Relu, [f1]);
    let f2 = add(&mut g, "fc2", OpKind::linear(4096), [r1]);
    let r2 = add(&mut g, "fc2.relu", OpKind::Relu, [f2]);
    let _ = add(&mut g, "fc3", OpKind::linear(1000), [r2]);
    g
}

/// VGG11 (configuration A) on 224×224 ImageNet inputs.
#[must_use]
pub fn vgg11() -> Graph {
    const M: Option<usize> = None;
    vgg_imagenet(
        "vgg11",
        &[
            Some(64),
            M,
            Some(128),
            M,
            Some(256),
            Some(256),
            M,
            Some(512),
            Some(512),
            M,
            Some(512),
            Some(512),
            M,
        ],
    )
}

/// VGG13 (configuration B) on 224×224 ImageNet inputs.
#[must_use]
pub fn vgg13() -> Graph {
    const M: Option<usize> = None;
    vgg_imagenet(
        "vgg13",
        &[
            Some(64),
            Some(64),
            M,
            Some(128),
            Some(128),
            M,
            Some(256),
            Some(256),
            M,
            Some(512),
            Some(512),
            M,
            Some(512),
            Some(512),
            M,
        ],
    )
}

/// VGG16 (configuration D) on 224×224 ImageNet inputs — the Figure 20b/20d
/// workload.
#[must_use]
pub fn vgg16() -> Graph {
    const M: Option<usize> = None;
    vgg_imagenet(
        "vgg16",
        &[
            Some(64),
            Some(64),
            M,
            Some(128),
            Some(128),
            M,
            Some(256),
            Some(256),
            Some(256),
            M,
            Some(512),
            Some(512),
            Some(512),
            M,
            Some(512),
            Some(512),
            Some(512),
            M,
        ],
    )
}

/// VGG19 (configuration E) on 224×224 ImageNet inputs.
#[must_use]
pub fn vgg19() -> Graph {
    const M: Option<usize> = None;
    vgg_imagenet(
        "vgg19",
        &[
            Some(64),
            Some(64),
            M,
            Some(128),
            Some(128),
            M,
            Some(256),
            Some(256),
            Some(256),
            Some(256),
            M,
            Some(512),
            Some(512),
            Some(512),
            Some(512),
            M,
            Some(512),
            Some(512),
            Some(512),
            Some(512),
            M,
        ],
    )
}

/// A basic residual block (two 3×3 convs), optionally downsampling.
fn basic_block(
    g: &mut Graph,
    prefix: &str,
    input: NodeId,
    channels: usize,
    stride: usize,
) -> NodeId {
    let main1 = conv_bn_relu(g, &format!("{prefix}.a"), input, channels, 3, stride, 1);
    let c2 = add(
        g,
        &format!("{prefix}.b.conv"),
        OpKind::conv2d(channels, 3, 1, 1),
        [main1],
    );
    let b2 = add(g, &format!("{prefix}.b.bn"), OpKind::BatchNorm, [c2]);
    let shortcut = if stride != 1 || channels_of(g, input) != channels {
        let sc = add(
            g,
            &format!("{prefix}.down.conv"),
            OpKind::conv2d(channels, 1, stride, 0),
            [input],
        );
        add(g, &format!("{prefix}.down.bn"), OpKind::BatchNorm, [sc])
    } else {
        input
    };
    let sum = add(g, &format!("{prefix}.add"), OpKind::Add, [b2, shortcut]);
    add(g, &format!("{prefix}.relu"), OpKind::Relu, [sum])
}

/// A bottleneck residual block (1×1 → 3×3 → 1×1, expansion 4).
fn bottleneck_block(
    g: &mut Graph,
    prefix: &str,
    input: NodeId,
    channels: usize,
    stride: usize,
) -> NodeId {
    let expanded = channels * 4;
    let c1 = conv_bn_relu(g, &format!("{prefix}.a"), input, channels, 1, 1, 0);
    let c2 = conv_bn_relu(g, &format!("{prefix}.b"), c1, channels, 3, stride, 1);
    let c3 = add(
        g,
        &format!("{prefix}.c.conv"),
        OpKind::conv2d(expanded, 1, 1, 0),
        [c2],
    );
    let b3 = add(g, &format!("{prefix}.c.bn"), OpKind::BatchNorm, [c3]);
    let shortcut = if stride != 1 || channels_of(g, input) != expanded {
        let sc = add(
            g,
            &format!("{prefix}.down.conv"),
            OpKind::conv2d(expanded, 1, stride, 0),
            [input],
        );
        add(g, &format!("{prefix}.down.bn"), OpKind::BatchNorm, [sc])
    } else {
        input
    };
    let sum = add(g, &format!("{prefix}.add"), OpKind::Add, [b3, shortcut]);
    add(g, &format!("{prefix}.relu"), OpKind::Relu, [sum])
}

fn channels_of(g: &Graph, id: NodeId) -> usize {
    g.node(id)
        .out_shape()
        .as_chw()
        .map(|(c, _, _)| c)
        .unwrap_or(0)
}

/// Builds a ResNet with the given per-stage block counts.
fn resnet(name: &str, blocks: [usize; 4], bottleneck: bool) -> Graph {
    let mut g = Graph::new(name);
    let x = add(
        &mut g,
        "input",
        OpKind::Input {
            shape: Shape::chw(3, 224, 224),
        },
        [],
    );
    let stem = conv_bn_relu(&mut g, "stem", x, 64, 7, 2, 3);
    let mut h = add(
        &mut g,
        "stem.pool",
        OpKind::max_pool_padded(3, 2, 1),
        [stem],
    );
    let stage_channels = [64usize, 128, 256, 512];
    for (stage, (&count, &channels)) in blocks.iter().zip(&stage_channels).enumerate() {
        for block in 0..count {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let prefix = format!("s{}.{}", stage + 1, block);
            h = if bottleneck {
                bottleneck_block(&mut g, &prefix, h, channels, stride)
            } else {
                basic_block(&mut g, &prefix, h, channels, stride)
            };
        }
    }
    let gap = add(&mut g, "gap", OpKind::GlobalAvgPool, [h]);
    let _ = add(&mut g, "fc", OpKind::linear(1000), [gap]);
    g
}

/// ResNet-18 on 224×224 ImageNet inputs.
#[must_use]
pub fn resnet18() -> Graph {
    resnet("resnet18", [2, 2, 2, 2], false)
}

/// ResNet-34 on 224×224 ImageNet inputs.
#[must_use]
pub fn resnet34() -> Graph {
    resnet("resnet34", [3, 4, 6, 3], false)
}

/// ResNet-50 on 224×224 ImageNet inputs.
#[must_use]
pub fn resnet50() -> Graph {
    resnet("resnet50", [3, 4, 6, 3], true)
}

/// ResNet-101 on 224×224 ImageNet inputs.
#[must_use]
pub fn resnet101() -> Graph {
    resnet("resnet101", [3, 4, 23, 3], true)
}

/// ResNet-152 on 224×224 ImageNet inputs.
#[must_use]
pub fn resnet152() -> Graph {
    resnet("resnet152", [3, 8, 36, 3], true)
}

/// ViT-Base/16 on 224×224 inputs: 196 patch tokens, 12 encoder layers,
/// dim 768, 12 heads, MLP dim 3072 — the Figure 22 sensitivity workload
/// ("ViT comprises numerous matrices with a row size of 768", §4.4.2).
#[must_use]
pub fn vit_base() -> Graph {
    vit("vit_base_16", 12, 768, 12, 3072)
}

/// ViT-Small/16 on 224×224 inputs (12 layers, dim 384, 6 heads).
#[must_use]
pub fn vit_small() -> Graph {
    vit("vit_small_16", 12, 384, 6, 1536)
}

/// ViT-Large/16 on 224×224 inputs (24 layers, dim 1024, 16 heads).
#[must_use]
pub fn vit_large() -> Graph {
    vit("vit_large_16", 24, 1024, 16, 4096)
}

/// A parameterized vision transformer (patch 16, 224×224 input).
#[must_use]
pub fn vit(name: &str, layers: usize, dim: usize, heads: usize, mlp_dim: usize) -> Graph {
    let mut g = Graph::new(name);
    let tokens = (224 / 16) * (224 / 16);
    let x = add(
        &mut g,
        "input",
        OpKind::Input {
            shape: Shape::chw(3, 224, 224),
        },
        [],
    );
    let patch = add(&mut g, "patch_embed", OpKind::conv2d(dim, 16, 16, 0), [x]);
    let mut h = add(
        &mut g,
        "to_tokens",
        OpKind::Reshape {
            shape: Shape::tokens(tokens, dim),
        },
        [patch],
    );
    for layer in 0..layers {
        let p = format!("l{layer}");
        let ln1 = add(&mut g, &format!("{p}.ln1"), OpKind::LayerNorm, [h]);
        let q = add(&mut g, &format!("{p}.q"), OpKind::linear(dim), [ln1]);
        let k = add(&mut g, &format!("{p}.k"), OpKind::linear(dim), [ln1]);
        let v = add(&mut g, &format!("{p}.v"), OpKind::linear(dim), [ln1]);
        let core = add(
            &mut g,
            &format!("{p}.attn"),
            OpKind::Attention { heads },
            [q, k, v],
        );
        let proj = add(&mut g, &format!("{p}.proj"), OpKind::linear(dim), [core]);
        let res1 = add(&mut g, &format!("{p}.add1"), OpKind::Add, [h, proj]);
        let ln2 = add(&mut g, &format!("{p}.ln2"), OpKind::LayerNorm, [res1]);
        let fc1 = add(&mut g, &format!("{p}.fc1"), OpKind::linear(mlp_dim), [ln2]);
        let act = add(&mut g, &format!("{p}.gelu"), OpKind::Gelu, [fc1]);
        let fc2 = add(&mut g, &format!("{p}.fc2"), OpKind::linear(dim), [act]);
        h = add(&mut g, &format!("{p}.add2"), OpKind::Add, [res1, fc2]);
    }
    let ln = add(&mut g, "head.ln", OpKind::LayerNorm, [h]);
    let _ = add(&mut g, "head.fc", OpKind::linear(1000), [ln]);
    g
}

/// Canonical zoo model names, in [`all`] order. These are the keys
/// [`by_name`] accepts and the vocabulary sweep specifications
/// (`cim-bench`) and the `cimc` CLI validate against.
pub const NAMES: [&str; 15] = [
    "lenet5",
    "mlp",
    "vgg7",
    "vgg11",
    "vgg13",
    "vgg16",
    "vgg19",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet101",
    "resnet152",
    "vit_small",
    "vit_base",
    "vit_large",
];

/// Builds the zoo model named `name` (one of [`NAMES`]; `"vit"` is an
/// alias for `vit_base`). Returns `None` for unknown names.
#[must_use]
pub fn by_name(name: &str) -> Option<Graph> {
    match name {
        "lenet5" => Some(lenet5()),
        "mlp" => Some(mlp()),
        "vgg7" => Some(vgg7()),
        "vgg11" => Some(vgg11()),
        "vgg13" => Some(vgg13()),
        "vgg16" => Some(vgg16()),
        "vgg19" => Some(vgg19()),
        "resnet18" => Some(resnet18()),
        "resnet34" => Some(resnet34()),
        "resnet50" => Some(resnet50()),
        "resnet101" => Some(resnet101()),
        "resnet152" => Some(resnet152()),
        "vit_small" => Some(vit_small()),
        "vit" | "vit_base" => Some(vit_base()),
        "vit_large" => Some(vit_large()),
        _ => None,
    }
}

/// Every zoo model, for exhaustive iteration in tests and benches.
#[must_use]
pub fn all() -> Vec<Graph> {
    vec![
        lenet5(),
        mlp(),
        vgg7(),
        vgg11(),
        vgg13(),
        vgg16(),
        vgg19(),
        resnet18(),
        resnet34(),
        resnet50(),
        resnet101(),
        resnet152(),
        vit_small(),
        vit_base(),
        vit_large(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_enumerate_all_in_order() {
        let all = all();
        assert_eq!(NAMES.len(), all.len());
        for (name, g) in NAMES.iter().zip(&all) {
            // ViT graph names carry the patch-size suffix (`vit_base_16`);
            // the lookup key is always a prefix of the graph name.
            assert!(g.name().starts_with(name), "{} vs {name}", g.name());
            let by = by_name(name).unwrap_or_else(|| panic!("by_name({name})"));
            assert_eq!(by.name(), g.name());
            assert_eq!(by.len(), g.len());
        }
        assert_eq!(by_name("vit").unwrap().name(), "vit_base_16");
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn lenet_output_is_ten_way() {
        let g = lenet5();
        let out = g.outputs();
        assert_eq!(out.len(), 1);
        assert_eq!(g.node(out[0]).out_shape(), &Shape::vec(10));
    }

    #[test]
    fn vgg16_has_thirteen_convs_and_three_fcs() {
        let g = vgg16();
        let convs = g
            .nodes()
            .filter(|n| matches!(n.op(), OpKind::Conv2d { .. }))
            .count();
        let fcs = g
            .nodes()
            .filter(|n| matches!(n.op(), OpKind::Linear { .. }))
            .count();
        assert_eq!(convs, 13);
        assert_eq!(fcs, 3);
        // Feature extractor ends at [512, 7, 7].
        let flatten = g
            .nodes()
            .find(|n| matches!(n.op(), OpKind::Flatten))
            .unwrap();
        let before = g.node(flatten.inputs()[0]);
        assert_eq!(before.out_shape(), &Shape::chw(512, 7, 7));
        // ~138M parameters for VGG16.
        let params = g.total_weights();
        assert!((130_000_000..150_000_000).contains(&params), "{params}");
    }

    #[test]
    fn vgg7_is_cifar_scale() {
        let g = vgg7();
        let convs = g
            .nodes()
            .filter(|n| matches!(n.op(), OpKind::Conv2d { .. }))
            .count();
        assert_eq!(convs, 6);
        assert_eq!(g.node(g.outputs()[0]).out_shape(), &Shape::vec(10));
    }

    #[test]
    fn resnet18_block_and_param_count() {
        let g = resnet18();
        let convs = g
            .nodes()
            .filter(|n| matches!(n.op(), OpKind::Conv2d { .. }))
            .count();
        // 1 stem + 16 block convs + 3 downsample 1x1 convs
        assert_eq!(convs, 20);
        let params = g.total_weights();
        // ~11.7M params
        assert!((10_000_000..13_000_000).contains(&params), "{params}");
    }

    #[test]
    fn resnet50_is_bottlenecked() {
        let g = resnet50();
        let params = g.total_weights();
        // ~25.6M params
        assert!((23_000_000..28_000_000).contains(&params), "{params}");
        // final stage output must be [2048, 7, 7]
        let gap = g
            .nodes()
            .find(|n| matches!(n.op(), OpKind::GlobalAvgPool))
            .unwrap();
        let before = g.node(gap.inputs()[0]);
        assert_eq!(before.out_shape(), &Shape::chw(2048, 7, 7));
    }

    #[test]
    fn resnet_depth_ordering() {
        let macs: Vec<u64> = [resnet18(), resnet34(), resnet50(), resnet101(), resnet152()]
            .iter()
            .map(Graph::total_macs)
            .collect();
        assert!(macs.windows(2).all(|w| w[0] < w[1]), "{macs:?}");
    }

    #[test]
    fn vgg_family_param_ordering() {
        let params: Vec<u64> = [vgg11(), vgg13(), vgg16(), vgg19()]
            .iter()
            .map(Graph::total_weights)
            .collect();
        assert!(params.windows(2).all(|w| w[0] < w[1]), "{params:?}");
        // VGG19 has 16 convs + 3 FCs.
        let convs = vgg19()
            .nodes()
            .filter(|n| matches!(n.op(), OpKind::Conv2d { .. }))
            .count();
        assert_eq!(convs, 16);
    }

    #[test]
    fn vit_family_scaling() {
        let small = vit_small().total_weights();
        let base = vit_base().total_weights();
        let large = vit_large().total_weights();
        assert!(small < base && base < large);
        // ViT-Small ~22M, ViT-Large ~300M.
        assert!((18_000_000..26_000_000).contains(&small), "{small}");
        assert!((280_000_000..320_000_000).contains(&large), "{large}");
    }

    #[test]
    fn resnet152_param_count() {
        let params = resnet152().total_weights();
        // ~60M params
        assert!((55_000_000..65_000_000).contains(&params), "{params}");
    }

    #[test]
    fn vit_base_matrices() {
        let g = vit_base();
        // 12 layers x 5 linears (q,k,v,proj,fc1,fc2 = 6) ... count them:
        let linears = g
            .nodes()
            .filter(|n| matches!(n.op(), OpKind::Linear { .. }))
            .count();
        assert_eq!(linears, 12 * 6 + 1);
        // ~86M params
        let params = g.total_weights();
        assert!((80_000_000..92_000_000).contains(&params), "{params}");
        // Most CIM matrices have 768 rows (§4.4.2).
        let with_768_rows = g
            .cim_nodes()
            .iter()
            .filter(|&&id| g.weight_matrix(id).map(|(r, _)| r == 768).unwrap_or(false))
            .count();
        assert!(with_768_rows >= 12 * 4, "{with_768_rows}");
    }

    #[test]
    fn all_models_have_single_output_and_positive_macs() {
        for g in all() {
            assert_eq!(g.outputs().len(), 1, "{} has multiple outputs", g.name());
            assert!(g.total_macs() > 0, "{} has zero MACs", g.name());
            assert!(!g.cim_nodes().is_empty(), "{} has no CIM ops", g.name());
        }
    }
}
