//! Property tests on the graph IR: randomly composed valid networks
//! always shape-infer, keep topological invariants, survive JSON
//! round-trips, and report consistent analysis numbers.

use cim_graph::{from_json, to_json, Graph, OpKind, Shape};
use proptest::prelude::*;

/// A random chain of layer choices applied to a random CHW input.
#[derive(Debug, Clone)]
enum Layer {
    Conv {
        channels: usize,
        kernel: usize,
        padded: bool,
    },
    Relu,
    Bn,
    Pool,
    AddSkip,
}

fn layers() -> impl Strategy<Value = Vec<Layer>> {
    proptest::collection::vec(
        prop_oneof![
            (1usize..8, prop_oneof![Just(1usize), Just(3)], any::<bool>()).prop_map(
                |(channels, kernel, padded)| Layer::Conv {
                    channels,
                    kernel,
                    padded
                }
            ),
            Just(Layer::Relu),
            Just(Layer::Bn),
            Just(Layer::Pool),
            Just(Layer::AddSkip),
        ],
        1..8,
    )
}

fn build(in_c: usize, hw: usize, layers: &[Layer]) -> Graph {
    let mut g = Graph::new("prop");
    let mut h = g
        .add(
            "x",
            OpKind::Input {
                shape: Shape::chw(in_c, hw, hw),
            },
            [],
        )
        .unwrap();
    for (i, layer) in layers.iter().enumerate() {
        let (_, cur_h, _) = g.node(h).out_shape().as_chw().unwrap();
        match layer {
            Layer::Conv {
                channels,
                kernel,
                padded,
            } => {
                let padding = usize::from(*padded);
                if cur_h + 2 * padding < *kernel {
                    continue;
                }
                h = g
                    .add(
                        format!("c{i}"),
                        OpKind::conv2d(*channels, *kernel, 1, padding),
                        [h],
                    )
                    .unwrap();
            }
            Layer::Relu => h = g.add(format!("r{i}"), OpKind::Relu, [h]).unwrap(),
            Layer::Bn => h = g.add(format!("b{i}"), OpKind::BatchNorm, [h]).unwrap(),
            Layer::Pool => {
                if cur_h >= 2 {
                    h = g.add(format!("p{i}"), OpKind::max_pool(2, 2), [h]).unwrap();
                }
            }
            Layer::AddSkip => {
                // Same-shape residual: relu branch added back.
                let r = g.add(format!("s{i}"), OpKind::Relu, [h]).unwrap();
                h = g.add(format!("a{i}"), OpKind::Add, [h, r]).unwrap();
            }
        }
    }
    let f = g.add("flat", OpKind::Flatten, [h]).unwrap();
    let _ = g.add("fc", OpKind::linear(10), [f]).unwrap();
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_networks_build_and_analyze(
        in_c in 1usize..4,
        hw in 4usize..12,
        spec in layers(),
    ) {
        let g = build(in_c, hw, &spec);
        // Topological invariant: every edge points backwards.
        for node in g.nodes() {
            for &input in node.inputs() {
                prop_assert!(input < node.id());
            }
        }
        // Exactly one output (the classifier head).
        prop_assert_eq!(g.outputs().len(), 1);
        // Analysis consistency.
        prop_assert!(g.total_macs() > 0);
        prop_assert!(g.total_weights() > 0);
        for id in g.cim_nodes() {
            let (rows, cols) = g.weight_matrix(id).unwrap();
            prop_assert!(rows > 0 && cols > 0);
            prop_assert!(g.mvm_count(id) > 0);
            prop_assert_eq!(
                g.macs(id),
                g.mvm_count(id) * rows as u64 * cols as u64
            );
        }
    }

    #[test]
    fn json_round_trip_is_identity(
        in_c in 1usize..4,
        hw in 4usize..12,
        spec in layers(),
    ) {
        let g = build(in_c, hw, &spec);
        let back = from_json(&to_json(&g)).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn shape_inference_is_deterministic(
        in_c in 1usize..4,
        hw in 4usize..12,
        spec in layers(),
    ) {
        let a = build(in_c, hw, &spec);
        let b = build(in_c, hw, &spec);
        prop_assert_eq!(a, b);
    }
}
