//! Meta-operator flows: statements plus weight declarations.

use crate::MetaOp;
use std::fmt;

/// Identifier of a weight matrix declared by a [`MopFlow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatId(pub u32);

impl fmt::Display for MatId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}", self.0)
    }
}

/// Declaration of a weight matrix referenced by CIM write operations.
///
/// Flows carry only the *shape* and a provenance name; the actual values
/// are synthesized deterministically by the functional simulator (see
/// DESIGN.md, "Substitutions").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatDecl {
    /// The id CIM operations use to reference this matrix.
    pub id: MatId,
    /// Row count (reduction dimension).
    pub rows: u32,
    /// Column count (output dimension).
    pub cols: u32,
    /// Provenance, e.g. the graph node name the matrix belongs to.
    pub name: String,
}

/// One statement of a flow: a single meta-operator or a `parallel { … }`
/// block whose members execute concurrently (Figure 10's
/// `parallel "{" <operators>* "}"`).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A single meta-operator.
    Op(MetaOp),
    /// Concurrent execution of all contained operators.
    Parallel(Vec<MetaOp>),
}

impl Stmt {
    /// The operators in this statement, in order.
    #[must_use]
    pub fn ops(&self) -> &[MetaOp] {
        match self {
            Stmt::Op(op) => std::slice::from_ref(op),
            Stmt::Parallel(ops) => ops,
        }
    }

    /// Number of operators executing concurrently (1 for a plain op).
    #[must_use]
    pub fn width(&self) -> usize {
        self.ops().len()
    }
}

/// A complete meta-operator flow: the compiled form of a DNN (segment) for
/// one CIM accelerator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MopFlow {
    name: String,
    mats: Vec<MatDecl>,
    stmts: Vec<Stmt>,
}

impl MopFlow {
    /// Creates an empty flow named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        MopFlow {
            name: name.into(),
            mats: Vec::new(),
            stmts: Vec::new(),
        }
    }

    /// The flow's name (usually `model@arch`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a weight matrix and returns its id.
    pub fn declare_mat(&mut self, rows: u32, cols: u32, name: impl Into<String>) -> MatId {
        let id = MatId(u32::try_from(self.mats.len()).expect("matrix count fits u32"));
        self.mats.push(MatDecl {
            id,
            rows,
            cols,
            name: name.into(),
        });
        id
    }

    /// Appends a single meta-operator.
    pub fn push(&mut self, op: MetaOp) {
        self.stmts.push(Stmt::Op(op));
    }

    /// Appends a parallel block. Blocks of width 1 degrade to plain ops;
    /// empty blocks are dropped.
    pub fn push_parallel(&mut self, ops: Vec<MetaOp>) {
        match ops.len() {
            0 => {}
            1 => self
                .stmts
                .push(Stmt::Op(ops.into_iter().next().expect("len checked"))),
            _ => self.stmts.push(Stmt::Parallel(ops)),
        }
    }

    /// Appends all statements of another flow (segment concatenation).
    pub fn extend_from(&mut self, other: MopFlow) {
        // Matrices must be re-declared by the caller; flows being merged
        // are expected to share a declaration table. Guard against misuse.
        debug_assert!(
            other.mats.is_empty() || other.mats == self.mats,
            "merging flows with divergent weight tables"
        );
        self.stmts.extend(other.stmts);
    }

    /// The declared weight matrices.
    #[must_use]
    pub fn mats(&self) -> &[MatDecl] {
        &self.mats
    }

    /// Looks up a matrix declaration.
    #[must_use]
    pub fn mat(&self, id: MatId) -> Option<&MatDecl> {
        self.mats.get(id.0 as usize)
    }

    /// The statements in execution order.
    #[must_use]
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Total number of meta-operators across all statements.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.stmts.iter().map(Stmt::width).sum()
    }

    /// Iterates over every meta-operator, flattening parallel blocks.
    pub fn iter_ops(&self) -> impl Iterator<Item = &MetaOp> {
        self.stmts.iter().flat_map(|s| s.ops().iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufRef, DcomFunc};

    fn relu(off: u64) -> MetaOp {
        MetaOp::Dcom {
            func: DcomFunc::Relu,
            srcs: vec![BufRef::l0(off)],
            dst: BufRef::l0(off + 100),
            len: 10,
        }
    }

    #[test]
    fn declare_and_lookup() {
        let mut flow = MopFlow::new("t");
        let a = flow.declare_mat(27, 32, "conv1");
        let b = flow.declare_mat(32, 10, "fc");
        assert_ne!(a, b);
        assert_eq!(flow.mat(a).unwrap().rows, 27);
        assert_eq!(flow.mat(b).unwrap().name, "fc");
        assert_eq!(flow.mat(MatId(99)), None);
        assert_eq!(a.to_string(), "W0");
    }

    #[test]
    fn parallel_width_normalization() {
        let mut flow = MopFlow::new("t");
        flow.push_parallel(vec![]);
        assert_eq!(flow.stmts().len(), 0);
        flow.push_parallel(vec![relu(0)]);
        assert!(matches!(flow.stmts()[0], Stmt::Op(_)));
        flow.push_parallel(vec![relu(0), relu(1)]);
        assert!(matches!(&flow.stmts()[1], Stmt::Parallel(v) if v.len() == 2));
        assert_eq!(flow.op_count(), 3);
        assert_eq!(flow.iter_ops().count(), 3);
    }

    #[test]
    fn stmt_accessors() {
        let s = Stmt::Parallel(vec![relu(0), relu(1), relu(2)]);
        assert_eq!(s.width(), 3);
        assert_eq!(s.ops().len(), 3);
        let single = Stmt::Op(relu(9));
        assert_eq!(single.width(), 1);
    }
}
