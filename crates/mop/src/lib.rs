//! # cim-mop — the CIM meta-operator ISA
//!
//! CIM-MLC's code generation target is a *meta-operator flow* (paper §3.3,
//! Figures 10–15): a sequence of hardware-activation primitives, digital
//! compute operations and data movements, with an explicit `parallel { … }`
//! grouping construct. Three CIM meta-operator sets exist, one per
//! computing mode:
//!
//! * **MOP_CM** — [`MetaOp::ReadCore`] (`cim.readcore`): run a whole DNN
//!   operator on a core (Figure 11);
//! * **MOP_XBM** — [`MetaOp::ReadXb`] / [`MetaOp::WriteXb`]
//!   (`cim.readxb` / `cim.writexb`): activate whole crossbars for one MVM
//!   (Figure 13);
//! * **MOP_WLM** — [`MetaOp::ReadRow`] / [`MetaOp::WriteRow`]
//!   (`cim.readrow` / `cim.writerow`): activate wordline groups
//!   (Figure 15);
//!
//! plus **DCOM** ([`MetaOp::Dcom`]: relu/add/pool/…) and **DMOV**
//! ([`MetaOp::Mov`]). Compared to the paper's simplified BNF, every
//! operator here carries explicit operand addresses ([`BufRef`]) and weight
//! references ([`MatId`]) so flows are executable by the functional
//! simulator, not merely printable.
//!
//! A [`MopFlow`] owns the statements together with the weight-matrix
//! declarations they reference, can be pretty-printed in the paper's
//! syntax, and can be validated against a [`cim_arch::CimArchitecture`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
mod ops;
mod print;
mod stats;
mod validate;

pub use flow::{MatDecl, MatId, MopFlow, Stmt};
pub use ops::{BufRef, BufSpace, CoreOp, DcomFunc, MetaOp, XbAddr};
pub use stats::FlowStats;
pub use validate::ValidateError;
