//! Meta-operator definitions.

use crate::MatId;
use std::fmt;

/// An address space in the on-chip buffer hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufSpace {
    /// The chip-level global buffer (shared by all cores).
    L0,
    /// The local buffer of one core.
    L1(u32),
}

impl fmt::Display for BufSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufSpace::L0 => write!(f, "L0"),
            BufSpace::L1(core) => write!(f, "L1[{core}]"),
        }
    }
}

/// A buffer location: an element offset inside one buffer space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufRef {
    /// Which buffer.
    pub space: BufSpace,
    /// Element offset within the buffer.
    pub offset: u64,
}

impl BufRef {
    /// A location in the global buffer.
    #[must_use]
    pub fn l0(offset: u64) -> Self {
        BufRef {
            space: BufSpace::L0,
            offset,
        }
    }

    /// A location in core `core`'s local buffer.
    #[must_use]
    pub fn l1(core: u32, offset: u64) -> Self {
        BufRef {
            space: BufSpace::L1(core),
            offset,
        }
    }

    /// This location shifted forward by `delta` elements.
    #[must_use]
    pub fn at(self, delta: u64) -> Self {
        BufRef {
            space: self.space,
            offset: self.offset + delta,
        }
    }
}

impl fmt::Display for BufRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.space, self.offset)
    }
}

/// Physical crossbar address: core index and crossbar index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XbAddr {
    /// Core index within the chip.
    pub core: u32,
    /// Crossbar index within the core.
    pub xb: u32,
}

impl XbAddr {
    /// Creates a crossbar address.
    #[must_use]
    pub fn new(core: u32, xb: u32) -> Self {
        XbAddr { core, xb }
    }
}

impl fmt::Display for XbAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xb({},{})", self.core, self.xb)
    }
}

/// The operator a `cim.readcore` executes (MOP_CM carries the whole DNN
/// operator description — Figure 11's `type` + `params`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreOp {
    /// Convolution over a `[in_c, in_h, in_w]` input.
    Conv {
        /// Input channels.
        in_c: u32,
        /// Input height.
        in_h: u32,
        /// Input width.
        in_w: u32,
        /// Output channels.
        out_c: u32,
        /// Square kernel size.
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Zero padding.
        padding: u32,
    },
    /// Fully-connected layer applied to `batch` rows.
    Linear {
        /// Input features.
        in_f: u32,
        /// Output features.
        out_f: u32,
        /// Number of independent rows pushed through the layer.
        batch: u32,
    },
    /// Dense matrix product `[m, k] × [k, n]`.
    MatMul {
        /// Left rows.
        m: u32,
        /// Inner dimension.
        k: u32,
        /// Right columns.
        n: u32,
    },
}

impl CoreOp {
    /// Mnemonic matching the paper's `type` field.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CoreOp::Conv { .. } => "conv",
            CoreOp::Linear { .. } => "linear",
            CoreOp::MatMul { .. } => "matmul",
        }
    }

    /// Number of input elements the operator consumes.
    #[must_use]
    pub fn input_len(&self) -> u64 {
        match self {
            CoreOp::Conv {
                in_c, in_h, in_w, ..
            } => u64::from(*in_c) * u64::from(*in_h) * u64::from(*in_w),
            CoreOp::Linear { in_f, batch, .. } => u64::from(*in_f) * u64::from(*batch),
            CoreOp::MatMul { m, k, .. } => u64::from(*m) * u64::from(*k),
        }
    }

    /// Number of output elements the operator produces.
    #[must_use]
    pub fn output_len(&self) -> u64 {
        match self {
            CoreOp::Conv {
                in_h,
                in_w,
                out_c,
                kernel,
                stride,
                padding,
                ..
            } => {
                let oh = (in_h + 2 * padding - kernel) / stride + 1;
                let ow = (in_w + 2 * padding - kernel) / stride + 1;
                u64::from(*out_c) * u64::from(oh) * u64::from(ow)
            }
            CoreOp::Linear { out_f, batch, .. } => u64::from(*out_f) * u64::from(*batch),
            CoreOp::MatMul { m, n, .. } => u64::from(*m) * u64::from(*n),
        }
    }
}

impl fmt::Display for CoreOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreOp::Conv {
                in_c,
                in_h,
                in_w,
                out_c,
                kernel,
                stride,
                padding,
            } => write!(
                f,
                "conv(in=[{in_c},{in_h},{in_w}], k={kernel}, s={stride}, p={padding}, out_c={out_c})"
            ),
            CoreOp::Linear { in_f, out_f, batch } => {
                write!(f, "linear(in={in_f}, out={out_f}, batch={batch})")
            }
            CoreOp::MatMul { m, k, n } => write!(f, "matmul({m}x{k} * {k}x{n})"),
        }
    }
}

/// Digital-compute functions (the DCOM meta-operator family, Figure 10).
///
/// Users of the real stack "have the flexibility to extend meta-operators,
/// aligning them with the hardware-supported functions" (§3.3.2); this enum
/// covers everything the benchmark networks need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DcomFunc {
    /// Fills the destination with zeros (staging-buffer preparation for
    /// padded gathers). Takes no sources.
    Zero,
    /// Element-wise ReLU.
    Relu,
    /// Element-wise GELU.
    Gelu,
    /// Row-wise softmax over `groups` rows of `len/groups` elements.
    Softmax {
        /// Number of independent softmax rows.
        groups: u32,
    },
    /// Element-wise addition of two operands.
    AddEw,
    /// Shift-and-accumulate merge of bit-sliced partial sums.
    ShiftAcc,
    /// Inference-mode batch normalization (affine, folded scale = 1).
    BatchNorm,
    /// Row-wise layer normalization over `groups` rows.
    LayerNorm {
        /// Number of independent rows.
        groups: u32,
    },
    /// 2-D max pooling over a `[c, h, w]` operand.
    MaxPool {
        /// Channels.
        c: u32,
        /// Input height.
        h: u32,
        /// Input width.
        w: u32,
        /// Window size.
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Zero padding.
        padding: u32,
    },
    /// 2-D average pooling over a `[c, h, w]` operand.
    AvgPool {
        /// Channels.
        c: u32,
        /// Input height.
        h: u32,
        /// Input width.
        w: u32,
        /// Window size.
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Zero padding.
        padding: u32,
    },
    /// Global average pooling over a `[c, h, w]` operand.
    GlobalAvgPool {
        /// Channels.
        c: u32,
        /// Input height.
        h: u32,
        /// Input width.
        w: u32,
    },
    /// Fused multi-head attention core over `[tokens, dim]` Q/K/V.
    Attention {
        /// Head count.
        heads: u32,
        /// Token count.
        tokens: u32,
        /// Embedding dimension.
        dim: u32,
    },
}

impl DcomFunc {
    /// Mnemonic used by the pretty printer (lower-case, paper style).
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            DcomFunc::Zero => "zero",
            DcomFunc::Relu => "relu",
            DcomFunc::Gelu => "gelu",
            DcomFunc::Softmax { .. } => "softmax",
            DcomFunc::AddEw => "add",
            DcomFunc::ShiftAcc => "shiftacc",
            DcomFunc::BatchNorm => "bn",
            DcomFunc::LayerNorm { .. } => "ln",
            DcomFunc::MaxPool { .. } => "maxpool",
            DcomFunc::AvgPool { .. } => "avgpool",
            DcomFunc::GlobalAvgPool { .. } => "gap",
            DcomFunc::Attention { .. } => "attention",
        }
    }

    /// Number of source operands the function consumes.
    #[must_use]
    pub fn arity(&self) -> usize {
        match self {
            DcomFunc::Zero => 0,
            DcomFunc::AddEw => 2,
            DcomFunc::Attention { .. } => 3,
            _ => 1,
        }
    }
}

/// One meta-operator (Figure 10's `<operators>` production).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MetaOp {
    /// MOP_CM `cim.readcore(type, params, coreaddr, src, dst)`: data from
    /// `src` is pushed through operator `op` (whose weights are `weights`)
    /// on core `core`; the result lands at `dst` (Figure 11).
    ReadCore {
        /// The DNN operator to execute.
        op: CoreOp,
        /// Weight matrix programmed on the core.
        weights: MatId,
        /// Executing core.
        core: u32,
        /// Input location.
        src: BufRef,
        /// Output location.
        dst: BufRef,
    },
    /// MOP_XBM `cim.writexb(xbaddr, mat)`: program a rectangular slice of
    /// weight matrix `weights` into crossbar `xb` (Figure 13).
    WriteXb {
        /// Target crossbar.
        xb: XbAddr,
        /// Source weight matrix.
        weights: MatId,
        /// First source row.
        src_row: u32,
        /// First source column.
        src_col: u32,
        /// First destination wordline.
        dst_row: u32,
        /// First destination (logical) column.
        dst_col: u32,
        /// Rows programmed.
        rows: u32,
        /// Logical columns programmed.
        cols: u32,
    },
    /// MOP_XBM `cim.readxb(xbaddr, len)`: activate crossbar `xb`, multiply
    /// the input vector at `src` with the programmed region and deposit
    /// (or accumulate) the result at `dst` (Figure 13).
    ReadXb {
        /// Activated crossbar.
        xb: XbAddr,
        /// First engaged wordline.
        row_start: u32,
        /// Number of engaged wordlines.
        rows: u32,
        /// First engaged logical column.
        col_start: u32,
        /// Number of engaged logical columns.
        cols: u32,
        /// Input vector location (length `rows`).
        src: BufRef,
        /// Output location (length `cols`).
        dst: BufRef,
        /// When true, add into `dst` (partial-sum accumulation across the
        /// vertical crossbars of one VXB).
        accumulate: bool,
    },
    /// MOP_WLM `cim.writerow(rowaddr, value)`: program part of one
    /// wordline (Figure 15).
    WriteRow {
        /// Target crossbar.
        xb: XbAddr,
        /// Target wordline.
        row: u32,
        /// Source weight matrix.
        weights: MatId,
        /// Source row in the weight matrix.
        src_row: u32,
        /// First source column.
        src_col: u32,
        /// First destination (logical) column.
        dst_col: u32,
        /// Logical columns programmed.
        cols: u32,
    },
    /// MOP_WLM `cim.readrow(rowaddr, len)`: activate `rows` wordlines
    /// starting at `row_start` (at most `parallel_row` of them) and
    /// multiply with the input at `src` (Figure 15).
    ReadRow {
        /// Activated crossbar.
        xb: XbAddr,
        /// First engaged wordline.
        row_start: u32,
        /// Number of engaged wordlines (≤ `parallel_row`).
        rows: u32,
        /// First engaged logical column.
        col_start: u32,
        /// Number of engaged logical columns.
        cols: u32,
        /// Input vector location (length `rows`).
        src: BufRef,
        /// Output location (length `cols`).
        dst: BufRef,
        /// When true, add into `dst`.
        accumulate: bool,
    },
    /// DCOM: a digital-compute operation on the chip/core ALUs
    /// (Figure 10's `<DCOM>`).
    Dcom {
        /// The function.
        func: DcomFunc,
        /// Source operands (length = `func.arity()`).
        srcs: Vec<BufRef>,
        /// Output location.
        dst: BufRef,
        /// Elements produced.
        len: u64,
    },
    /// DMOV `mov(src, dst, len)`: move `len` elements (Figure 10's
    /// `<DMOV>`).
    Mov {
        /// Source location.
        src: BufRef,
        /// Destination location.
        dst: BufRef,
        /// Elements moved.
        len: u64,
    },
}

impl MetaOp {
    /// Whether this is a CIM activation (as opposed to DCOM/DMOV).
    #[must_use]
    pub fn is_cim(&self) -> bool {
        matches!(
            self,
            MetaOp::ReadCore { .. }
                | MetaOp::WriteXb { .. }
                | MetaOp::ReadXb { .. }
                | MetaOp::WriteRow { .. }
                | MetaOp::ReadRow { .. }
        )
    }

    /// Whether this programs weights (a write-type CIM operation).
    #[must_use]
    pub fn is_cim_write(&self) -> bool {
        matches!(self, MetaOp::WriteXb { .. } | MetaOp::WriteRow { .. })
    }

    /// The crossbar this operator touches, if it addresses one directly.
    #[must_use]
    pub fn xb_addr(&self) -> Option<XbAddr> {
        match self {
            MetaOp::WriteXb { xb, .. }
            | MetaOp::ReadXb { xb, .. }
            | MetaOp::WriteRow { xb, .. }
            | MetaOp::ReadRow { xb, .. } => Some(*xb),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buf_ref_helpers() {
        let r = BufRef::l1(3, 100);
        assert_eq!(r.space, BufSpace::L1(3));
        assert_eq!(r.at(28).offset, 128);
        assert_eq!(r.to_string(), "L1[3]+100");
        assert_eq!(BufRef::l0(0).to_string(), "L0+0");
    }

    #[test]
    fn core_op_lengths() {
        let conv = CoreOp::Conv {
            in_c: 3,
            in_h: 32,
            in_w: 32,
            out_c: 32,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        assert_eq!(conv.input_len(), 3 * 32 * 32);
        assert_eq!(conv.output_len(), 32 * 32 * 32);
        let lin = CoreOp::Linear {
            in_f: 768,
            out_f: 3072,
            batch: 197,
        };
        assert_eq!(lin.input_len(), 768 * 197);
        assert_eq!(lin.output_len(), 3072 * 197);
        let mm = CoreOp::MatMul { m: 4, k: 8, n: 2 };
        assert_eq!(mm.input_len(), 32);
        assert_eq!(mm.output_len(), 8);
    }

    #[test]
    fn dcom_arity() {
        assert_eq!(DcomFunc::Relu.arity(), 1);
        assert_eq!(DcomFunc::AddEw.arity(), 2);
        assert_eq!(
            DcomFunc::Attention {
                heads: 12,
                tokens: 196,
                dim: 768
            }
            .arity(),
            3
        );
    }

    #[test]
    fn classification() {
        let read = MetaOp::ReadXb {
            xb: XbAddr::new(0, 1),
            row_start: 0,
            rows: 8,
            col_start: 0,
            cols: 4,
            src: BufRef::l1(0, 0),
            dst: BufRef::l1(0, 64),
            accumulate: false,
        };
        assert!(read.is_cim());
        assert!(!read.is_cim_write());
        assert_eq!(read.xb_addr(), Some(XbAddr::new(0, 1)));
        let mov = MetaOp::Mov {
            src: BufRef::l0(0),
            dst: BufRef::l1(0, 0),
            len: 9,
        };
        assert!(!mov.is_cim());
        assert_eq!(mov.xb_addr(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(XbAddr::new(2, 5).to_string(), "xb(2,5)");
        let lin = CoreOp::Linear {
            in_f: 8,
            out_f: 4,
            batch: 1,
        };
        assert!(lin.to_string().contains("linear"));
    }
}
