//! Pretty printing in the paper's generated-code syntax (Figure 16).

use crate::{MetaOp, MopFlow, Stmt};
use std::fmt;

impl fmt::Display for MetaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaOp::ReadCore {
                op,
                weights,
                core,
                src,
                dst,
            } => write!(
                f,
                "cim.readcore({}, params={op}, weights={weights}, coreaddr={core}, src={src}, dst={dst})",
                op.mnemonic()
            ),
            MetaOp::WriteXb {
                xb,
                weights,
                src_row,
                src_col,
                dst_row,
                dst_col,
                rows,
                cols,
            } => write!(
                f,
                "cim.writexb({xb}, mat={weights}[{src_row}:{}, {src_col}:{}] -> [{dst_row}:{}, {dst_col}:{}])",
                src_row + rows,
                src_col + cols,
                dst_row + rows,
                dst_col + cols
            ),
            MetaOp::ReadXb {
                xb,
                row_start,
                rows,
                col_start,
                cols,
                src,
                dst,
                accumulate,
            } => write!(
                f,
                "cim.readxb({xb}, rows={row_start}:{}, cols={col_start}:{}, src={src}, dst={dst}{})",
                row_start + rows,
                col_start + cols,
                if *accumulate { ", acc" } else { "" }
            ),
            MetaOp::WriteRow {
                xb,
                row,
                weights,
                src_row,
                src_col,
                dst_col,
                cols,
            } => write!(
                f,
                "cim.writerow({xb}_row{row}, value={weights}[{src_row}, {src_col}:{}] -> cols {dst_col}:{})",
                src_col + cols,
                dst_col + cols
            ),
            MetaOp::ReadRow {
                xb,
                row_start,
                rows,
                col_start,
                cols,
                src,
                dst,
                accumulate,
            } => write!(
                f,
                "cim.readrow({xb}_row{row_start}, len={rows}, cols={col_start}:{}, src={src}, dst={dst}{})",
                col_start + cols,
                if *accumulate { ", acc" } else { "" }
            ),
            MetaOp::Dcom { func, srcs, dst, len } => {
                write!(f, "{}(", func.mnemonic())?;
                for (i, s) in srcs.iter().enumerate() {
                    let tag = if srcs.len() > 1 {
                        format!("src{}", i + 1)
                    } else {
                        "src".to_owned()
                    };
                    write!(f, "{tag}={s}, ")?;
                }
                write!(f, "dst={dst}, len={len})")
            }
            MetaOp::Mov { src, dst, len } => write!(f, "mov(src={src}, dst={dst}, len={len})"),
        }
    }
}

/// Statements render `parallel { … }` blocks with the paper's brace syntax
/// and two-space indentation.
impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Op(op) => write!(f, "{op}"),
            Stmt::Parallel(ops) => {
                writeln!(f, "parallel {{")?;
                for op in ops {
                    writeln!(f, "  {op}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl fmt::Display for MopFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// meta-operator flow: {}", self.name())?;
        if !self.mats().is_empty() {
            writeln!(f, "// weights:")?;
            for m in self.mats() {
                writeln!(f, "//   {} = {}[{} x {}]", m.id, m.name, m.rows, m.cols)?;
            }
        }
        for stmt in self.stmts() {
            writeln!(f, "{stmt}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{BufRef, CoreOp, DcomFunc, MetaOp, MopFlow, XbAddr};

    #[test]
    fn readcore_prints_paper_style() {
        let op = MetaOp::ReadCore {
            op: CoreOp::Conv {
                in_c: 3,
                in_h: 32,
                in_w: 32,
                out_c: 32,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            weights: crate::MatId(0),
            core: 1,
            src: BufRef::l0(1440),
            dst: BufRef::l0(19456),
        };
        let s = op.to_string();
        assert!(s.starts_with("cim.readcore(conv"));
        assert!(s.contains("coreaddr=1"));
        assert!(s.contains("src=L0+1440"));
        assert!(s.contains("dst=L0+19456"));
    }

    #[test]
    fn parallel_block_prints_braces() {
        let mut flow = MopFlow::new("p");
        let mov = |o| MetaOp::Mov {
            src: BufRef::l0(o),
            dst: BufRef::l1(0, o),
            len: 4,
        };
        flow.push_parallel(vec![mov(0), mov(4)]);
        let s = flow.to_string();
        assert!(s.contains("parallel {"));
        assert!(s.contains("  mov(src=L0+0"));
        assert!(s.contains('}'));
    }

    #[test]
    fn dcom_add_prints_two_sources() {
        let op = MetaOp::Dcom {
            func: DcomFunc::AddEw,
            srcs: vec![BufRef::l0(0), BufRef::l0(64)],
            dst: BufRef::l0(128),
            len: 64,
        };
        let s = op.to_string();
        assert!(s.starts_with("add("));
        assert!(s.contains("src1=L0+0"));
        assert!(s.contains("src2=L0+64"));
    }

    #[test]
    fn row_ops_print_rowaddr() {
        let op = MetaOp::ReadRow {
            xb: XbAddr::new(0, 1),
            row_start: 16,
            rows: 16,
            col_start: 0,
            cols: 32,
            src: BufRef::l1(0, 0),
            dst: BufRef::l1(0, 99),
            accumulate: true,
        };
        let s = op.to_string();
        assert!(s.contains("cim.readrow(xb(0,1)_row16, len=16"));
        assert!(s.contains("acc"));
    }

    #[test]
    fn flow_header_lists_weights() {
        let mut flow = MopFlow::new("hdr");
        flow.declare_mat(27, 32, "conv1");
        let s = flow.to_string();
        assert!(s.contains("// meta-operator flow: hdr"));
        assert!(s.contains("W0 = conv1[27 x 32]"));
    }
}
