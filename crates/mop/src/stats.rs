//! Flow statistics.

use crate::{MetaOp, MopFlow, Stmt};

/// Aggregate statistics of a meta-operator flow, used by tests, schedule
/// dumps and the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowStats {
    /// `cim.readcore` count.
    pub read_core: usize,
    /// `cim.readxb` count.
    pub read_xb: usize,
    /// `cim.writexb` count.
    pub write_xb: usize,
    /// `cim.readrow` count.
    pub read_row: usize,
    /// `cim.writerow` count.
    pub write_row: usize,
    /// DCOM count.
    pub dcom: usize,
    /// DMOV count.
    pub mov: usize,
    /// Total elements moved by DMOV operations.
    pub moved_elements: u64,
    /// Number of `parallel { … }` blocks.
    pub parallel_blocks: usize,
    /// Maximum width of any parallel block (peak instruction-level
    /// concurrency — a proxy for peak simultaneous activation).
    pub max_parallel_width: usize,
}

impl FlowStats {
    /// Computes statistics for a flow.
    #[must_use]
    pub fn of(flow: &MopFlow) -> Self {
        let mut stats = FlowStats::default();
        for stmt in flow.stmts() {
            if let Stmt::Parallel(ops) = stmt {
                stats.parallel_blocks += 1;
                stats.max_parallel_width = stats.max_parallel_width.max(ops.len());
            } else {
                stats.max_parallel_width = stats.max_parallel_width.max(1);
            }
            for op in stmt.ops() {
                match op {
                    MetaOp::ReadCore { .. } => stats.read_core += 1,
                    MetaOp::ReadXb { .. } => stats.read_xb += 1,
                    MetaOp::WriteXb { .. } => stats.write_xb += 1,
                    MetaOp::ReadRow { .. } => stats.read_row += 1,
                    MetaOp::WriteRow { .. } => stats.write_row += 1,
                    MetaOp::Dcom { .. } => stats.dcom += 1,
                    MetaOp::Mov { len, .. } => {
                        stats.mov += 1;
                        stats.moved_elements += len;
                    }
                }
            }
        }
        stats
    }

    /// Total CIM activations (reads at any granularity).
    #[must_use]
    pub fn cim_reads(&self) -> usize {
        self.read_core + self.read_xb + self.read_row
    }

    /// Total CIM programming operations.
    #[must_use]
    pub fn cim_writes(&self) -> usize {
        self.write_xb + self.write_row
    }

    /// Total meta-operators.
    #[must_use]
    pub fn total(&self) -> usize {
        self.cim_reads() + self.cim_writes() + self.dcom + self.mov
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufRef, DcomFunc, XbAddr};

    #[test]
    fn counts_every_category() {
        let mut flow = MopFlow::new("s");
        let w = flow.declare_mat(8, 8, "w");
        flow.push(MetaOp::WriteXb {
            xb: XbAddr::new(0, 0),
            weights: w,
            src_row: 0,
            src_col: 0,
            dst_row: 0,
            dst_col: 0,
            rows: 8,
            cols: 8,
        });
        flow.push(MetaOp::Mov {
            src: BufRef::l0(0),
            dst: BufRef::l1(0, 0),
            len: 8,
        });
        flow.push_parallel(vec![
            MetaOp::ReadXb {
                xb: XbAddr::new(0, 0),
                row_start: 0,
                rows: 8,
                col_start: 0,
                cols: 8,
                src: BufRef::l1(0, 0),
                dst: BufRef::l1(0, 8),
                accumulate: false,
            },
            MetaOp::ReadXb {
                xb: XbAddr::new(0, 1),
                row_start: 0,
                rows: 8,
                col_start: 0,
                cols: 8,
                src: BufRef::l1(0, 0),
                dst: BufRef::l1(0, 16),
                accumulate: false,
            },
        ]);
        flow.push(MetaOp::Dcom {
            func: DcomFunc::Relu,
            srcs: vec![BufRef::l1(0, 8)],
            dst: BufRef::l1(0, 24),
            len: 8,
        });
        let s = FlowStats::of(&flow);
        assert_eq!(s.write_xb, 1);
        assert_eq!(s.read_xb, 2);
        assert_eq!(s.mov, 1);
        assert_eq!(s.moved_elements, 8);
        assert_eq!(s.dcom, 1);
        assert_eq!(s.parallel_blocks, 1);
        assert_eq!(s.max_parallel_width, 2);
        assert_eq!(s.cim_reads(), 2);
        assert_eq!(s.cim_writes(), 1);
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn empty_flow_is_zero() {
        let s = FlowStats::of(&MopFlow::new("e"));
        assert_eq!(s.total(), 0);
        assert_eq!(s.max_parallel_width, 0);
    }
}
