//! Flow validation against a concrete architecture.

use crate::{MatId, MetaOp, MopFlow, XbAddr};
use cim_arch::{CimArchitecture, ComputingMode};
use std::error::Error;
use std::fmt;

/// Error produced when a flow references hardware or weights that do not
/// exist, or uses meta-operators finer than the target's computing mode
/// allows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A core index is out of range.
    BadCore {
        /// The offending index.
        core: u32,
        /// Available cores.
        core_count: u32,
    },
    /// A crossbar address is out of range.
    BadXb {
        /// The offending address.
        xb: XbAddr,
        /// Crossbars per core.
        xb_count: u32,
    },
    /// A wordline/column region exceeds the crossbar shape.
    BadRegion {
        /// The offending address.
        xb: XbAddr,
        /// Description of the violation.
        message: String,
    },
    /// A weight matrix id is not declared by the flow.
    UnknownMat {
        /// The dangling id.
        mat: MatId,
    },
    /// A weight-matrix slice exceeds the declaration.
    BadMatSlice {
        /// The referenced matrix.
        mat: MatId,
        /// Description of the violation.
        message: String,
    },
    /// A row activation engages more wordlines than `parallel_row`.
    TooManyRows {
        /// The offending address.
        xb: XbAddr,
        /// Rows requested.
        rows: u32,
        /// Hardware limit.
        parallel_row: u32,
    },
    /// The meta-operator requires a finer computing mode than the target
    /// exposes (e.g. `cim.readrow` on an XBM machine).
    ModeViolation {
        /// The required minimum mode.
        required: ComputingMode,
        /// What the target exposes.
        exposed: ComputingMode,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadCore { core, core_count } => {
                write!(f, "core {core} out of range (chip has {core_count} cores)")
            }
            ValidateError::BadXb { xb, xb_count } => {
                write!(f, "{xb} out of range (cores have {xb_count} crossbars)")
            }
            ValidateError::BadRegion { xb, message } => {
                write!(f, "bad region on {xb}: {message}")
            }
            ValidateError::UnknownMat { mat } => write!(f, "undeclared weight matrix {mat}"),
            ValidateError::BadMatSlice { mat, message } => {
                write!(f, "bad slice of {mat}: {message}")
            }
            ValidateError::TooManyRows {
                xb,
                rows,
                parallel_row,
            } => write!(
                f,
                "{xb}: {rows} rows activated at once but parallel_row is {parallel_row}"
            ),
            ValidateError::ModeViolation { required, exposed } => write!(
                f,
                "meta-operator requires mode {required} but the target exposes {exposed}"
            ),
        }
    }
}

impl Error for ValidateError {}

impl MopFlow {
    /// Validates every meta-operator against the target architecture:
    /// addresses in range, regions within crossbar shapes, weight slices
    /// within declarations, row activations within `parallel_row`, and the
    /// operator granularity allowed by the computing mode.
    ///
    /// # Errors
    /// Returns the first [`ValidateError`] encountered, in flow order.
    pub fn validate(&self, arch: &CimArchitecture) -> Result<(), ValidateError> {
        let core_count = arch.chip().core_count();
        let xb_count = arch.core().xb_count();
        let shape = arch.crossbar().shape();
        let parallel_row = arch.crossbar().parallel_row();
        let mode = arch.mode();

        let check_core = |core: u32| {
            if core >= core_count {
                Err(ValidateError::BadCore { core, core_count })
            } else {
                Ok(())
            }
        };
        let check_xb = |xb: XbAddr| {
            check_core(xb.core)?;
            if xb.xb >= xb_count {
                Err(ValidateError::BadXb { xb, xb_count })
            } else {
                Ok(())
            }
        };
        let check_region = |xb: XbAddr, row0: u32, rows: u32, col0: u32, cols: u32| {
            if row0 + rows > shape.rows {
                return Err(ValidateError::BadRegion {
                    xb,
                    message: format!(
                        "rows {row0}..{} exceed crossbar height {}",
                        row0 + rows,
                        shape.rows
                    ),
                });
            }
            if col0 + cols > shape.cols {
                return Err(ValidateError::BadRegion {
                    xb,
                    message: format!(
                        "cols {col0}..{} exceed crossbar width {}",
                        col0 + cols,
                        shape.cols
                    ),
                });
            }
            Ok(())
        };
        let check_mat = |mat: MatId, row0: u32, rows: u32, col0: u32, cols: u32| {
            let decl = self.mat(mat).ok_or(ValidateError::UnknownMat { mat })?;
            if row0 + rows > decl.rows || col0 + cols > decl.cols {
                return Err(ValidateError::BadMatSlice {
                    mat,
                    message: format!(
                        "slice [{row0}:{}, {col0}:{}] exceeds declaration [{} x {}]",
                        row0 + rows,
                        col0 + cols,
                        decl.rows,
                        decl.cols
                    ),
                });
            }
            Ok(())
        };
        let check_mode = |required: ComputingMode| {
            if mode.supports(required) {
                Ok(())
            } else {
                Err(ValidateError::ModeViolation {
                    required,
                    exposed: mode,
                })
            }
        };

        for op in self.iter_ops() {
            match op {
                MetaOp::ReadCore { core, weights, .. } => {
                    check_mode(ComputingMode::Cm)?;
                    check_core(*core)?;
                    check_mat(*weights, 0, 0, 0, 0)?;
                }
                MetaOp::WriteXb {
                    xb,
                    weights,
                    src_row,
                    src_col,
                    dst_row,
                    dst_col,
                    rows,
                    cols,
                } => {
                    check_mode(ComputingMode::Xbm)?;
                    check_xb(*xb)?;
                    check_region(*xb, *dst_row, *rows, *dst_col, *cols)?;
                    check_mat(*weights, *src_row, *rows, *src_col, *cols)?;
                }
                MetaOp::ReadXb {
                    xb,
                    row_start,
                    rows,
                    col_start,
                    cols,
                    ..
                } => {
                    check_mode(ComputingMode::Xbm)?;
                    check_xb(*xb)?;
                    check_region(*xb, *row_start, *rows, *col_start, *cols)?;
                }
                MetaOp::WriteRow {
                    xb,
                    row,
                    weights,
                    src_row,
                    src_col,
                    dst_col,
                    cols,
                } => {
                    check_mode(ComputingMode::Wlm)?;
                    check_xb(*xb)?;
                    check_region(*xb, *row, 1, *dst_col, *cols)?;
                    check_mat(*weights, *src_row, 1, *src_col, *cols)?;
                }
                MetaOp::ReadRow {
                    xb,
                    row_start,
                    rows,
                    col_start,
                    cols,
                    ..
                } => {
                    check_mode(ComputingMode::Wlm)?;
                    check_xb(*xb)?;
                    check_region(*xb, *row_start, *rows, *col_start, *cols)?;
                    if *rows > parallel_row {
                        return Err(ValidateError::TooManyRows {
                            xb: *xb,
                            rows: *rows,
                            parallel_row,
                        });
                    }
                }
                MetaOp::Dcom { .. } | MetaOp::Mov { .. } => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufRef, MopFlow};
    use cim_arch::presets;

    fn read_xb(core: u32, xb: u32, rows: u32) -> MetaOp {
        MetaOp::ReadXb {
            xb: XbAddr::new(core, xb),
            row_start: 0,
            rows,
            col_start: 0,
            cols: 4,
            src: BufRef::l1(core, 0),
            dst: BufRef::l1(core, 64),
            accumulate: false,
        }
    }

    #[test]
    fn valid_flow_passes() {
        let arch = presets::isaac_baseline();
        let mut flow = MopFlow::new("ok");
        let w = flow.declare_mat(128, 16, "w");
        flow.push(MetaOp::WriteXb {
            xb: XbAddr::new(0, 0),
            weights: w,
            src_row: 0,
            src_col: 0,
            dst_row: 0,
            dst_col: 0,
            rows: 128,
            cols: 16,
        });
        flow.push(read_xb(0, 0, 128));
        assert_eq!(flow.validate(&arch), Ok(()));
    }

    #[test]
    fn bad_core_rejected() {
        let arch = presets::table2_example(); // 2 cores
        let mut flow = MopFlow::new("bad");
        flow.push(read_xb(2, 0, 8));
        assert!(matches!(
            flow.validate(&arch),
            Err(ValidateError::BadCore { core: 2, .. })
        ));
    }

    #[test]
    fn bad_xb_rejected() {
        let arch = presets::table2_example(); // 2 xbs per core
        let mut flow = MopFlow::new("bad");
        flow.push(read_xb(0, 5, 8));
        assert!(matches!(
            flow.validate(&arch),
            Err(ValidateError::BadXb { .. })
        ));
    }

    #[test]
    fn region_overflow_rejected() {
        let arch = presets::table2_example(); // 32x128 crossbars
        let mut flow = MopFlow::new("bad");
        flow.push(read_xb(0, 0, 64)); // 64 > 32 rows
        assert!(matches!(
            flow.validate(&arch),
            Err(ValidateError::BadRegion { .. })
        ));
    }

    #[test]
    fn undeclared_matrix_rejected() {
        let arch = presets::isaac_baseline();
        let mut flow = MopFlow::new("bad");
        flow.push(MetaOp::WriteXb {
            xb: XbAddr::new(0, 0),
            weights: MatId(3),
            src_row: 0,
            src_col: 0,
            dst_row: 0,
            dst_col: 0,
            rows: 1,
            cols: 1,
        });
        assert!(matches!(
            flow.validate(&arch),
            Err(ValidateError::UnknownMat { .. })
        ));
    }

    #[test]
    fn mat_slice_overflow_rejected() {
        let arch = presets::isaac_baseline();
        let mut flow = MopFlow::new("bad");
        let w = flow.declare_mat(8, 8, "w");
        flow.push(MetaOp::WriteXb {
            xb: XbAddr::new(0, 0),
            weights: w,
            src_row: 4,
            src_col: 0,
            dst_row: 0,
            dst_col: 0,
            rows: 8, // 4 + 8 > 8 declared rows
            cols: 8,
        });
        assert!(matches!(
            flow.validate(&arch),
            Err(ValidateError::BadMatSlice { .. })
        ));
    }

    #[test]
    fn parallel_row_limit_enforced() {
        let arch = presets::jain_sram(); // parallel_row = 32
        let mut flow = MopFlow::new("bad");
        flow.push(MetaOp::ReadRow {
            xb: XbAddr::new(0, 0),
            row_start: 0,
            rows: 64,
            col_start: 0,
            cols: 4,
            src: BufRef::l1(0, 0),
            dst: BufRef::l1(0, 64),
            accumulate: false,
        });
        assert!(matches!(
            flow.validate(&arch),
            Err(ValidateError::TooManyRows {
                rows: 64,
                parallel_row: 32,
                ..
            })
        ));
    }

    #[test]
    fn mode_violation_rejected() {
        // readrow on an XBM-only machine
        let arch = presets::isaac_baseline(); // XBM
        let mut flow = MopFlow::new("bad");
        flow.push(MetaOp::ReadRow {
            xb: XbAddr::new(0, 0),
            row_start: 0,
            rows: 8,
            col_start: 0,
            cols: 4,
            src: BufRef::l1(0, 0),
            dst: BufRef::l1(0, 64),
            accumulate: false,
        });
        let err = flow.validate(&arch).unwrap_err();
        assert!(matches!(err, ValidateError::ModeViolation { .. }));
        assert!(err.to_string().contains("WLM"));
        // but fine on the WLM variant
        let wlm = presets::isaac_baseline_wlm();
        let mut ok = MopFlow::new("ok");
        ok.push(MetaOp::ReadRow {
            xb: XbAddr::new(0, 0),
            row_start: 0,
            rows: 8,
            col_start: 0,
            cols: 4,
            src: BufRef::l1(0, 0),
            dst: BufRef::l1(0, 64),
            accumulate: false,
        });
        assert_eq!(ok.validate(&wlm), Ok(()));
    }
}
