//! Property tests on the meta-operator ISA: generated-within-bounds flows
//! always validate, the printer never panics and always names the
//! operator, and statistics are self-consistent.

use cim_arch::presets;
use cim_mop::{BufRef, DcomFunc, FlowStats, MetaOp, MopFlow, Stmt, XbAddr};
use proptest::prelude::*;

/// A strategy producing meta-operators that are in-bounds for the ISAAC
/// baseline (768 cores × 16 crossbars × 128×128, parallel_row 8).
fn in_bounds_op(mat_rows: u32, mat_cols: u32) -> impl Strategy<Value = MetaOp> {
    let xb = (0u32..768, 0u32..16).prop_map(|(c, x)| XbAddr::new(c, x));
    prop_oneof![
        // mov
        (0u64..4096, 0u64..4096, 1u64..64).prop_map(|(s, d, len)| MetaOp::Mov {
            src: BufRef::l0(s),
            dst: BufRef::l0(d),
            len,
        }),
        // dcom relu
        (0u64..4096, 0u64..4096, 1u64..64).prop_map(|(s, d, len)| MetaOp::Dcom {
            func: DcomFunc::Relu,
            srcs: vec![BufRef::l0(s)],
            dst: BufRef::l0(d),
            len,
        }),
        // readxb within the crossbar and within the declared matrix
        (xb.clone(), 1u32..64, 1u32..32).prop_map(|(xb, rows, cols)| MetaOp::ReadXb {
            xb,
            row_start: 0,
            rows: rows.min(128),
            col_start: 0,
            cols: cols.min(128),
            src: BufRef::l1(xb.core, 0),
            dst: BufRef::l1(xb.core, 256),
            accumulate: false,
        }),
        // writexb of a slice of the declared matrix
        (xb, 1u32..16, 1u32..16).prop_map(move |(xb, rows, cols)| MetaOp::WriteXb {
            xb,
            weights: cim_mop::MatId(0),
            src_row: 0,
            src_col: 0,
            dst_row: 0,
            dst_col: 0,
            rows: rows.min(mat_rows),
            cols: cols.min(mat_cols),
        }),
    ]
}

fn flows() -> impl Strategy<Value = MopFlow> {
    proptest::collection::vec(in_bounds_op(64, 64), 0..24).prop_map(|ops| {
        let mut flow = MopFlow::new("prop");
        let _ = flow.declare_mat(64, 64, "w");
        for op in ops {
            flow.push(op);
        }
        flow
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn in_bounds_flows_validate_on_the_baseline(flow in flows()) {
        let arch = presets::isaac_baseline();
        prop_assert!(flow.validate(&arch).is_ok());
    }

    #[test]
    fn printer_output_names_every_operator(flow in flows()) {
        let text = flow.to_string();
        for op in flow.iter_ops() {
            let marker = match op {
                MetaOp::Mov { .. } => "mov(",
                MetaOp::Dcom { func, .. } => func.mnemonic(),
                MetaOp::ReadXb { .. } => "cim.readxb",
                MetaOp::WriteXb { .. } => "cim.writexb",
                MetaOp::ReadCore { .. } => "cim.readcore",
                MetaOp::ReadRow { .. } => "cim.readrow",
                MetaOp::WriteRow { .. } => "cim.writerow",
                _ => continue,
            };
            prop_assert!(text.contains(marker), "missing {marker} in output");
        }
    }

    #[test]
    fn stats_total_matches_op_count(flow in flows()) {
        let stats = FlowStats::of(&flow);
        prop_assert_eq!(stats.total(), flow.op_count());
        prop_assert_eq!(flow.iter_ops().count(), flow.op_count());
        // Moved elements equal the sum of mov lengths.
        let movs: u64 = flow
            .iter_ops()
            .filter_map(|op| match op {
                MetaOp::Mov { len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        prop_assert_eq!(stats.moved_elements, movs);
    }

    #[test]
    fn parallel_grouping_preserves_ops(ops in proptest::collection::vec(in_bounds_op(64, 64), 2..10)) {
        let mut grouped = MopFlow::new("g");
        let _ = grouped.declare_mat(64, 64, "w");
        grouped.push_parallel(ops.clone());
        let mut flat = MopFlow::new("f");
        let _ = flat.declare_mat(64, 64, "w");
        for op in ops {
            flat.push(op);
        }
        prop_assert_eq!(grouped.op_count(), flat.op_count());
        // A width-n block is a single statement.
        prop_assert_eq!(grouped.stmts().len(), 1);
        prop_assert!(matches!(grouped.stmts()[0], Stmt::Parallel(_)));
    }
}
