//! Monotonic time shared by every subsystem.
//!
//! Before `cim-obs`, each crate kept its own `std::time::Instant`
//! pattern (`started.elapsed().as_secs_f64() * 1e3`) — the compiler's
//! [`PassTimeline`](../../cim_compiler/struct.PassTimeline.html), the
//! loadtest client, the traffic engine. [`TraceClock`] replaces them
//! with one process-wide monotonic epoch so every timestamp in a trace,
//! a metrics histogram, or a report column is on the same axis and can
//! be correlated across threads and subsystems.

use std::sync::OnceLock;
use std::time::Instant;

/// A monotonic clock anchored at a fixed epoch.
///
/// Timestamps are microseconds since the epoch (`u64`), the native unit
/// of Chrome trace events. [`TraceClock::global`] returns the shared
/// process clock — the one every span and stopwatch in the stack uses —
/// so timestamps from different crates and threads are directly
/// comparable.
#[derive(Debug)]
pub struct TraceClock {
    epoch: Instant,
}

impl TraceClock {
    /// A fresh clock anchored at "now". Prefer [`TraceClock::global`]
    /// unless a test needs an isolated epoch.
    #[must_use]
    pub fn new() -> TraceClock {
        TraceClock {
            epoch: Instant::now(),
        }
    }

    /// The process-wide clock, anchored the first time anything asks
    /// for it.
    #[must_use]
    pub fn global() -> &'static TraceClock {
        static GLOBAL: OnceLock<TraceClock> = OnceLock::new();
        GLOBAL.get_or_init(TraceClock::new)
    }

    /// Microseconds elapsed since this clock's epoch.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// A stopwatch started now, measuring against this clock.
    #[must_use]
    pub fn stopwatch(&self) -> Stopwatch<'_> {
        Stopwatch {
            clock: self,
            start_us: self.now_us(),
        }
    }
}

impl Default for TraceClock {
    fn default() -> Self {
        TraceClock::new()
    }
}

/// An elapsed-time reading against a [`TraceClock`].
///
/// The drop-in replacement for the `let started = Instant::now(); …
/// started.elapsed().as_secs_f64() * 1e3` pattern:
///
/// ```
/// let started = cim_obs::stopwatch();
/// // … work …
/// let wall_ms = started.elapsed_ms();
/// assert!(wall_ms >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch<'a> {
    clock: &'a TraceClock,
    start_us: u64,
}

impl Stopwatch<'_> {
    /// The start timestamp, in microseconds since the clock's epoch —
    /// pair with a later [`TraceClock::now_us`] reading to emit a
    /// cross-thread [`complete_span`](crate::complete_span).
    #[must_use]
    pub fn start_us(&self) -> u64 {
        self.start_us
    }

    /// Microseconds elapsed since the stopwatch started.
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        self.clock.now_us().saturating_sub(self.start_us)
    }

    /// Milliseconds elapsed since the stopwatch started.
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_us() as f64 / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let clock = TraceClock::new();
        let a = clock.now_us();
        let b = clock.now_us();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_measures_forward() {
        let sw = TraceClock::global().stopwatch();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(sw.elapsed_us() >= 1_000);
        assert!(sw.elapsed_ms() >= 1.0);
        assert!(sw.start_us() <= TraceClock::global().now_us());
    }

    #[test]
    fn global_clock_is_one_instance() {
        let a = TraceClock::global().now_us();
        let b = TraceClock::global().now_us();
        // Two reads off the same epoch are close together; two separate
        // epochs would both read near zero.
        assert!(b >= a);
    }
}
