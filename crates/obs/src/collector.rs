//! The process-wide event collector.
//!
//! Every thread that emits a span gets its own buffer (registered here
//! on first use), so the hot path locks an uncontended per-thread mutex
//! rather than a global one. [`Collector::drain`] takes every buffer's
//! events — per-thread order preserved, buffers ordered by thread id —
//! into a [`Trace`] for the exporters.
//!
//! # Disabled cost
//!
//! The enabled flag is a single `AtomicBool` read with
//! [`Ordering::Relaxed`] — the only work tracing does when off.

use crate::span::TraceEvent;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Upper bound on buffered events per thread; beyond it new events are
/// counted as dropped instead of buffered, so a run that never drains
/// cannot grow without limit.
const PER_THREAD_CAP: usize = 1 << 20;

struct ThreadBuffer {
    tid: u64,
    name: String,
    events: Mutex<Vec<TraceEvent>>,
}

/// The global span collector: an on/off gate plus the registry of
/// per-thread event buffers. Obtain it via [`collector`].
pub struct Collector {
    enabled: AtomicBool,
    threads: Mutex<Vec<Arc<ThreadBuffer>>>,
    next_tid: AtomicU64,
    dropped: AtomicU64,
}

/// The process-wide [`Collector`].
#[must_use]
pub fn collector() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(|| Collector {
        enabled: AtomicBool::new(false),
        threads: Mutex::new(Vec::new()),
        next_tid: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
    })
}

impl Collector {
    /// Starts recording spans.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops recording spans (already-buffered events stay until
    /// [`Collector::drain`]).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether spans are being recorded — the one relaxed atomic load
    /// on every disabled-path call.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Takes every buffered event into a [`Trace`], leaving the buffers
    /// empty (thread registrations persist, so long-lived workers keep
    /// their ids across drains).
    ///
    /// # Panics
    /// Panics if an emitting thread panicked while holding its buffer
    /// lock (events are pushed outside any panicking region in this
    /// crate, so that indicates a bug here).
    #[must_use]
    pub fn drain(&self) -> Trace {
        let mut buffers: Vec<Arc<ThreadBuffer>> = self
            .threads
            .lock()
            .expect("collector thread registry poisoned")
            .clone();
        buffers.sort_by_key(|b| b.tid);
        let mut events = Vec::new();
        let mut threads = Vec::new();
        for buffer in buffers {
            let mut taken = std::mem::take(
                &mut *buffer
                    .events
                    .lock()
                    .expect("collector thread buffer poisoned"),
            );
            threads.push((buffer.tid, buffer.name.clone()));
            events.append(&mut taken);
        }
        Trace {
            events,
            threads,
            dropped: self.dropped.swap(0, Ordering::Relaxed),
        }
    }

    fn buffer_for_current_thread(&self) -> Arc<ThreadBuffer> {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{tid}"), str::to_owned);
        let buffer = Arc::new(ThreadBuffer {
            tid,
            name,
            events: Mutex::new(Vec::new()),
        });
        self.threads
            .lock()
            .expect("collector thread registry poisoned")
            .push(Arc::clone(&buffer));
        buffer
    }
}

thread_local! {
    static BUFFER: RefCell<Option<Arc<ThreadBuffer>>> = const { RefCell::new(None) };
}

/// Appends `event` to the current thread's buffer (registering the
/// thread on first use) and stamps its `tid`.
pub(crate) fn push(mut event: TraceEvent) {
    BUFFER.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buffer = slot.get_or_insert_with(|| collector().buffer_for_current_thread());
        event.tid = buffer.tid;
        let mut events = buffer
            .events
            .lock()
            .expect("collector thread buffer poisoned");
        if events.len() >= PER_THREAD_CAP {
            collector().dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            events.push(event);
        }
    });
}

/// A drained batch of events, ready for an exporter.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All events: grouped by thread id, per-thread emission order
    /// preserved (timestamps within a thread are non-decreasing).
    pub events: Vec<TraceEvent>,
    /// `(tid, thread name)` for every thread that ever emitted, sorted
    /// by tid.
    pub threads: Vec<(u64, String)>,
    /// Events discarded because a thread exceeded its buffer cap.
    pub dropped: u64,
}

impl Trace {
    /// Events of phase [`Phase::Complete`](crate::Phase::Complete) plus
    /// matched begin/end pairs — the span count an exporter will emit.
    #[must_use]
    pub fn span_count(&self) -> usize {
        use crate::span::Phase;
        self.events
            .iter()
            .filter(|e| matches!(e.phase, Phase::End | Phase::Complete))
            .count()
    }
}
