//! Exporters: Chrome trace-event JSON and a human profile tree.
//!
//! [`chrome_trace_json`] renders a drained [`Trace`] in the Chrome
//! trace-event format — open the file in [Perfetto](https://ui.perfetto.dev)
//! or `chrome://tracing` to get a per-thread flame view of the run.
//! [`validate_chrome_trace`] re-parses an exported file and checks the
//! schema (the CLI self-checks every `--trace-out` file with it before
//! writing). [`profile_tree`] renders the same spans as a merged call
//! tree with inclusive/exclusive wall time. [`metrics_text`] renders a
//! [`MetricsSnapshot`] as grep-friendly lines.

use crate::collector::Trace;
use crate::metrics::MetricsSnapshot;
use crate::span::{ArgValue, Phase, TraceEvent};
use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The `pid` stamped on every exported event (one process).
const PID: u64 = 1;

fn arg_value(v: &ArgValue) -> Value {
    match v {
        ArgValue::Bool(b) => Value::Bool(*b),
        ArgValue::U64(n) => Value::U64(*n),
        ArgValue::I64(n) => Value::I64(*n),
        ArgValue::F64(n) => Value::F64(*n),
        ArgValue::Str(s) => Value::Str(s.clone()),
    }
}

fn complete_event(
    name: &str,
    cat: &'static str,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
    args: &[(&'static str, ArgValue)],
) -> Value {
    let mut entries = vec![
        ("name".to_owned(), Value::Str(name.to_owned())),
        ("cat".to_owned(), Value::Str(cat.to_owned())),
        ("ph".to_owned(), Value::Str("X".to_owned())),
        ("ts".to_owned(), Value::U64(ts_us)),
        ("dur".to_owned(), Value::U64(dur_us)),
        ("pid".to_owned(), Value::U64(PID)),
        ("tid".to_owned(), Value::U64(tid)),
    ];
    if !args.is_empty() {
        entries.push((
            "args".to_owned(),
            Value::Map(
                args.iter()
                    .map(|(k, v)| ((*k).to_owned(), arg_value(v)))
                    .collect(),
            ),
        ));
    }
    Value::Map(entries)
}

fn metadata_event(name: &str, tid: u64, value: &str) -> Value {
    Value::Map(vec![
        ("name".to_owned(), Value::Str(name.to_owned())),
        ("ph".to_owned(), Value::Str("M".to_owned())),
        ("pid".to_owned(), Value::U64(PID)),
        ("tid".to_owned(), Value::U64(tid)),
        (
            "args".to_owned(),
            Value::Map(vec![("name".to_owned(), Value::Str(value.to_owned()))]),
        ),
    ])
}

/// A resolved span: its begin event, its duration, and the attributes
/// collected by the time it closed.
type MatchedSpan = (TraceEvent, u64, Vec<(&'static str, ArgValue)>);

/// Matched spans of one trace: `(begin event index, end event)` pairs
/// resolved per thread, plus `Complete` events passed through.
fn matched_spans(trace: &Trace) -> Vec<MatchedSpan> {
    // Per-tid stack of open Begin events; an End closes the top.
    let mut stacks: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
    let mut spans = Vec::new();
    for event in &trace.events {
        match event.phase {
            Phase::Begin => stacks.entry(event.tid).or_default().push(event.clone()),
            Phase::End => {
                // An End without a Begin means the buffer was drained
                // mid-span; drop it rather than fabricate a start time.
                if let Some(begin) = stacks.entry(event.tid).or_default().pop() {
                    let dur = event.ts_us.saturating_sub(begin.ts_us);
                    spans.push((begin, dur, event.args.clone()));
                }
            }
            Phase::Complete => {
                spans.push((event.clone(), event.dur_us, event.args.clone()));
            }
        }
    }
    spans
}

/// Renders a drained [`Trace`] as Chrome trace-event JSON.
///
/// Begin/end pairs become complete (`"ph": "X"`) events; process and
/// thread names are attached as metadata (`"ph": "M"`) events. The
/// output loads directly in Perfetto or `chrome://tracing`.
#[must_use]
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut events = vec![metadata_event("process_name", 0, "cimc")];
    for (tid, name) in &trace.threads {
        events.push(metadata_event("thread_name", *tid, name));
    }
    for (begin, dur_us, args) in matched_spans(trace) {
        events.push(complete_event(
            &begin.name,
            begin.cat,
            begin.ts_us,
            dur_us,
            begin.tid,
            &args,
        ));
    }
    let doc = Value::Map(vec![
        ("traceEvents".to_owned(), Value::Seq(events)),
        ("displayTimeUnit".to_owned(), Value::Str("ms".to_owned())),
    ]);
    serde_json::to_string(&doc).expect("the vendored serializer is infallible")
}

/// What [`validate_chrome_trace`] found in a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// Complete (`"ph": "X"`) span events.
    pub complete: usize,
    /// Metadata (`"ph": "M"`) events.
    pub metadata: usize,
    /// Complete-span count per category, sorted by category.
    pub by_cat: Vec<(String, usize)>,
}

impl ChromeTraceSummary {
    /// Complete spans recorded under `cat`.
    #[must_use]
    pub fn spans_in(&self, cat: &str) -> usize {
        self.by_cat
            .iter()
            .find(|(c, _)| c == cat)
            .map_or(0, |(_, n)| *n)
    }
}

fn field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    Value::lookup(entries, key)
}

fn require_u64(entries: &[(String, Value)], key: &str, i: usize) -> Result<u64, String> {
    match field(entries, key) {
        Some(Value::U64(n)) => Ok(*n),
        Some(other) => Err(format!(
            "traceEvents[{i}].{key} must be an unsigned integer, got {other:?}"
        )),
        None => Err(format!("traceEvents[{i}] is missing `{key}`")),
    }
}

fn require_str(entries: &[(String, Value)], key: &str, i: usize) -> Result<String, String> {
    match field(entries, key) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(other) => Err(format!(
            "traceEvents[{i}].{key} must be a string, got {other:?}"
        )),
        None => Err(format!("traceEvents[{i}] is missing `{key}`")),
    }
}

/// Parses `json` and checks the Chrome trace-event schema: a top-level
/// object with a `traceEvents` array whose entries carry a known `ph`,
/// a string `name`, integer `pid`/`tid`, and (for span phases) integer
/// `ts`/`dur` timestamps.
///
/// # Errors
/// Returns a message naming the first offending event when the
/// document does not conform.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceSummary, String> {
    let doc: Value = serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let Some(top) = doc.as_map() else {
        return Err("top level must be an object".to_owned());
    };
    let Some(Value::Seq(events)) = field(top, "traceEvents") else {
        return Err("top level must contain a `traceEvents` array".to_owned());
    };
    let mut summary = ChromeTraceSummary {
        events: events.len(),
        complete: 0,
        metadata: 0,
        by_cat: Vec::new(),
    };
    let mut by_cat: BTreeMap<String, usize> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let Some(entries) = event.as_map() else {
            return Err(format!("traceEvents[{i}] must be an object"));
        };
        let ph = require_str(entries, "ph", i)?;
        require_str(entries, "name", i)?;
        require_u64(entries, "pid", i)?;
        require_u64(entries, "tid", i)?;
        match ph.as_str() {
            "X" => {
                require_u64(entries, "ts", i)?;
                require_u64(entries, "dur", i)?;
                summary.complete += 1;
                let cat = require_str(entries, "cat", i)?;
                *by_cat.entry(cat).or_insert(0) += 1;
            }
            "B" | "E" | "i" | "C" => {
                require_u64(entries, "ts", i)?;
            }
            "M" => summary.metadata += 1,
            other => {
                return Err(format!(
                    "traceEvents[{i}].ph `{other}` is not a known phase"
                ))
            }
        }
    }
    summary.by_cat = by_cat.into_iter().collect();
    Ok(summary)
}

#[derive(Default)]
struct ProfileNode {
    count: u64,
    incl_us: u64,
    children: BTreeMap<String, ProfileNode>,
}

impl ProfileNode {
    fn child_incl_us(&self) -> u64 {
        self.children.values().map(|c| c.incl_us).sum()
    }
}

/// Renders a drained [`Trace`] as a merged call tree with
/// inclusive/exclusive wall time per node.
///
/// Spans with the same `cat:name` path are merged across threads
/// (counts add); children are ordered by inclusive time, descending,
/// then name. Exclusive time is inclusive minus the children's
/// inclusive total.
#[must_use]
pub fn profile_tree(trace: &Trace) -> String {
    // Rebuild each thread's stack to attribute spans to their parents,
    // merging identical paths across threads.
    let mut root = ProfileNode::default();
    let mut stacks: BTreeMap<u64, Vec<(String, u64)>> = BTreeMap::new();
    let mut total_spans = 0u64;
    for event in &trace.events {
        let label = if event.cat.is_empty() {
            event.name.clone()
        } else {
            format!("{}:{}", event.cat, event.name)
        };
        match event.phase {
            Phase::Begin => stacks
                .entry(event.tid)
                .or_default()
                .push((label, event.ts_us)),
            Phase::End => {
                let stack = stacks.entry(event.tid).or_default();
                // An End with no Begin means the buffer was drained
                // mid-span; there is no start to attribute.
                let Some((_, begin_ts)) = stack.last().cloned() else {
                    continue;
                };
                let mut node = &mut root;
                for (seg, _) in stack.iter() {
                    node = node.children.entry(seg.clone()).or_default();
                }
                node.count += 1;
                node.incl_us += event.ts_us.saturating_sub(begin_ts);
                total_spans += 1;
                stack.pop();
            }
            Phase::Complete => {
                let stack = stacks.entry(event.tid).or_default();
                let mut node = &mut root;
                for (seg, _) in stack.iter() {
                    node = node.children.entry(seg.clone()).or_default();
                }
                let node = node.children.entry(label).or_default();
                node.count += 1;
                node.incl_us += event.dur_us;
                total_spans += 1;
            }
        }
    }
    let mut out = format!(
        "profile: {} span(s) across {} thread(s)\n",
        total_spans,
        trace.threads.len().max(1)
    );
    if trace.dropped > 0 {
        let _ = writeln!(out, "  (buffer cap dropped {} event(s))", trace.dropped);
    }
    render_children(&root, 1, &mut out);
    out
}

fn render_children(node: &ProfileNode, depth: usize, out: &mut String) {
    let mut children: Vec<(&String, &ProfileNode)> = node.children.iter().collect();
    children.sort_by(|a, b| b.1.incl_us.cmp(&a.1.incl_us).then_with(|| a.0.cmp(b.0)));
    for (name, child) in children {
        let excl_us = child.incl_us.saturating_sub(child.child_incl_us());
        let _ = writeln!(
            out,
            "{:indent$}{name:<w$} ×{:<6} {:>9.3}ms incl {:>9.3}ms excl",
            "",
            child.count,
            child.incl_us as f64 / 1e3,
            excl_us as f64 / 1e3,
            indent = depth * 2,
            w = 28usize.saturating_sub(depth * 2) + 2,
        );
        render_children(child, depth + 1, out);
    }
}

/// Renders a [`MetricsSnapshot`] as grep-friendly text, one instrument
/// per line:
///
/// ```text
/// server metrics (schema 1, enabled)
///   counter requests_total 200
///   gauge queue_depth 0
///   histogram pool.queue_wait_us count=200 sum_us=8123 min=2 max=912
/// ```
#[must_use]
pub fn metrics_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = format!(
        "server metrics (schema {}, {})\n",
        snapshot.schema_version,
        if snapshot.enabled {
            "enabled"
        } else {
            "disabled"
        }
    );
    for c in &snapshot.counters {
        let _ = writeln!(out, "  counter {} {}", c.name, c.value);
    }
    for g in &snapshot.gauges {
        let _ = writeln!(out, "  gauge {} {}", g.name, g.value);
    }
    for h in &snapshot.histograms {
        let _ = writeln!(
            out,
            "  histogram {} count={} sum_us={} min={} max={}",
            h.name, h.count, h.sum, h.min, h.max
        );
    }
    out
}
