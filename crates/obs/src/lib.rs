//! `cim-obs` — unified tracing, metrics, and profiling for the CIM-MLC
//! stack.
//!
//! One observability layer shared by the staged compiler, the serve
//! loop, the benchmark harness, the traffic simulator, and the DSE
//! engine:
//!
//! * **Spans** — [`span`] opens an RAII [`SpanGuard`] that records a
//!   begin/end event pair into a per-thread buffer; [`complete_span`]
//!   records a pre-measured interval (e.g. a queue wait stamped across
//!   threads). Buffers drain into the global [`Collector`].
//! * **Clock** — [`TraceClock`] is the single monotonic epoch every
//!   timestamp in the process shares; [`stopwatch`] replaces the
//!   ad-hoc `Instant`-based timing the subsystems used to duplicate.
//! * **Metrics** — [`metrics`] returns the global [`MetricsRegistry`]
//!   of counters, gauges, and log-linear histograms, snapshotted into
//!   a schema-versioned serde [`MetricsSnapshot`] (scraped over the
//!   wire by `Request::Metrics`); its
//!   [`comparable()`](MetricsSnapshot::comparable) view keeps counts
//!   only.
//! * **Exporters** — [`chrome_trace_json`] (loads in Perfetto /
//!   `chrome://tracing`), [`profile_tree`] (inclusive/exclusive wall
//!   time), [`metrics_text`] (grep-friendly lines), and
//!   [`validate_chrome_trace`] (schema self-check).
//!
//! # The disabled-cost contract
//!
//! Tracing and metrics are **off by default** and every recording
//! entry point ([`span`], [`complete_span`], the gated
//! [`MetricsRegistry`] methods) first performs exactly **one relaxed
//! atomic load** and returns if its gate is off — no allocation, no
//! clock read, no lock. Instrumented hot paths therefore cost one
//! predicted branch when observability is not in use; the `compile-perf`
//! CI budgets are enforced with the collector *enabled* as well, so the
//! enabled path stays cheap enough for production serving too.
//!
//! The other hard invariant: observability never changes results. The
//! `comparable()` views of every report (compile doc, bench, traffic,
//! DSE) are byte-identical with tracing on vs. off — pinned by
//! proptests in the facade crate and the `obs-smoke` CI job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod collector;
mod export;
mod metrics;
mod span;

pub use clock::{Stopwatch, TraceClock};
pub use collector::{collector, Collector, Trace};
pub use export::{
    chrome_trace_json, metrics_text, profile_tree, validate_chrome_trace, ChromeTraceSummary,
};
pub use metrics::{
    bucket_floor, bucket_index, metrics, BucketSnapshot, ComparableMetrics, Counter,
    CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, METRICS_SCHEMA_VERSION,
};
pub use span::{complete_span, keys, span, ArgValue, Key, Phase, SpanGuard, TraceEvent};

/// Enables span recording *and* gated metrics recording — the whole
/// layer on, as `cimc --trace-out/--profile` and `CIM_OBS=1` do.
pub fn enable() {
    collector().enable();
    metrics().enable();
}

/// Disables span and gated metrics recording (buffered events and
/// accumulated metric values are kept).
pub fn disable() {
    collector().disable();
    metrics().disable();
}

/// Whether span recording is on (one relaxed atomic load).
#[must_use]
pub fn enabled() -> bool {
    collector().is_enabled()
}

/// Drains every thread's buffered events; see [`Collector::drain`].
#[must_use]
pub fn drain() -> Trace {
    collector().drain()
}

/// A stopwatch on the global [`TraceClock`] — the shared replacement
/// for the per-crate `Instant::now()` timing patterns.
#[must_use]
pub fn stopwatch() -> Stopwatch<'static> {
    TraceClock::global().stopwatch()
}

/// Adds `n` to the global counter `name`; a no-op (one relaxed load)
/// unless metrics are enabled.
pub fn count(name: &'static str, n: u64) {
    metrics().count(name, n);
}

/// Sets the global gauge `name`; a no-op (one relaxed load) unless
/// metrics are enabled.
pub fn gauge_set(name: &'static str, v: i64) {
    metrics().gauge_set(name, v);
}

/// Records `us` into the global histogram `name`; a no-op (one relaxed
/// load) unless metrics are enabled.
pub fn observe_us(name: &'static str, us: u64) {
    metrics().observe_us(name, us);
}
