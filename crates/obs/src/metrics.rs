//! Counters, gauges, and log-linear histograms.
//!
//! The [`MetricsRegistry`] is a named family of cheap atomic
//! instruments. Recording through the gated convenience methods
//! ([`MetricsRegistry::count`], [`MetricsRegistry::gauge_set`],
//! [`MetricsRegistry::observe_us`]) costs one relaxed atomic load when
//! metrics are disabled — the same contract as spans. Hot paths that
//! record unconditionally can hold a [`Counter`]/[`Gauge`]/[`Histogram`]
//! handle instead and skip the name lookup.
//!
//! [`MetricsRegistry::snapshot`] produces a schema-versioned, serde
//! [`MetricsSnapshot`] sorted by instrument name;
//! [`MetricsSnapshot::comparable`] strips it down to counters only —
//! the deterministic, timing-free view byte-compared in CI.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Version stamped on every [`MetricsSnapshot`]. Bump on any
/// field/semantic change.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Sub-buckets per power of two in a [`Histogram`] (log-linear layout).
const GRANULARITY_BITS: u32 = 3;
const SUB_BUCKETS: usize = 1 << GRANULARITY_BITS;
/// Octaves above the linear range needed to cover all of `u64`.
const OCTAVES: usize = 64 - GRANULARITY_BITS as usize;
const BUCKETS: usize = SUB_BUCKETS * (OCTAVES + 1);

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value handle.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free log-linear histogram of `u64` samples (e.g.
/// microseconds): exact below 8, then 8 linear
/// sub-buckets per power of two — ≤ 12.5% relative bucket width at any
/// magnitude, 496 buckets covering all of `u64`.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate quantile (`0.0..=1.0`): the floor of the bucket
    /// containing the `q`-th sample. Zero when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            name: name.to_owned(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let count = b.load(Ordering::Relaxed);
                    (count > 0).then_some(BucketSnapshot {
                        floor: bucket_floor(i),
                        count,
                    })
                })
                .collect(),
        }
    }
}

/// The log-linear bucket index for `v`: monotone in `v`.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - GRANULARITY_BITS + 1) as usize;
    let minor = ((v >> (msb - GRANULARITY_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    octave * SUB_BUCKETS + minor
}

/// The smallest value that lands in bucket `index` (inverse of
/// [`bucket_index`] on bucket boundaries).
#[must_use]
pub fn bucket_floor(index: usize) -> u64 {
    let octave = index / SUB_BUCKETS;
    let minor = (index % SUB_BUCKETS) as u64;
    if octave == 0 {
        minor
    } else {
        let msb = GRANULARITY_BITS + octave as u32 - 1;
        (1u64 << msb) | (minor << (msb - GRANULARITY_BITS))
    }
}

/// A named family of counters, gauges, and histograms.
///
/// Obtain the process-wide registry via [`metrics`]. Instruments are
/// created on first use and live for the registry's lifetime;
/// [`MetricsRegistry::reset`] zeroes them all (a serving process does
/// this when `--metrics` starts a fresh scrape window).
pub struct MetricsRegistry {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<&'static str, Counter>>,
    gauges: Mutex<BTreeMap<&'static str, Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

/// The process-wide [`MetricsRegistry`].
#[must_use]
pub fn metrics() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

impl MetricsRegistry {
    /// A fresh, disabled registry. Prefer [`metrics`] outside tests.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            enabled: AtomicBool::new(false),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Starts recording through the gated convenience methods.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops recording through the gated convenience methods.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether the gated convenience methods record.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The counter named `name`, created at zero on first use.
    ///
    /// # Panics
    /// Panics if a previous user panicked while holding the registry
    /// lock.
    #[must_use]
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counters
            .lock()
            .expect("metrics registry poisoned")
            .entry(name)
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge named `name`, created at zero on first use.
    ///
    /// # Panics
    /// Panics if a previous user panicked while holding the registry
    /// lock.
    #[must_use]
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauges
            .lock()
            .expect("metrics registry poisoned")
            .entry(name)
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// The histogram named `name`, created empty on first use.
    ///
    /// # Panics
    /// Panics if a previous user panicked while holding the registry
    /// lock.
    #[must_use]
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .expect("metrics registry poisoned")
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Adds `n` to counter `name` — after one relaxed atomic load; a
    /// no-op when disabled.
    pub fn count(&self, name: &'static str, n: u64) {
        if self.is_enabled() {
            self.counter(name).add(n);
        }
    }

    /// Sets gauge `name` to `v`; a no-op when disabled.
    pub fn gauge_set(&self, name: &'static str, v: i64) {
        if self.is_enabled() {
            self.gauge(name).set(v);
        }
    }

    /// Records `us` into histogram `name`; a no-op when disabled.
    pub fn observe_us(&self, name: &'static str, us: u64) {
        if self.is_enabled() {
            self.histogram(name).record(us);
        }
    }

    /// Zeroes every counter and gauge and empties every histogram
    /// (instrument names persist).
    ///
    /// # Panics
    /// Panics if a previous user panicked while holding the registry
    /// lock.
    pub fn reset(&self) {
        for counter in self.counters.lock().expect("poisoned").values() {
            counter.0.store(0, Ordering::Relaxed);
        }
        for gauge in self.gauges.lock().expect("poisoned").values() {
            gauge.0.store(0, Ordering::Relaxed);
        }
        let mut histograms = self.histograms.lock().expect("poisoned");
        for slot in histograms.values_mut() {
            *slot = Arc::new(Histogram::new());
        }
    }

    /// A schema-versioned snapshot of every instrument, sorted by name.
    ///
    /// # Panics
    /// Panics if a previous user panicked while holding the registry
    /// lock.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            schema_version: METRICS_SCHEMA_VERSION,
            enabled: self.is_enabled(),
            counters: self
                .counters
                .lock()
                .expect("poisoned")
                .iter()
                .map(|(name, c)| CounterSnapshot {
                    name: (*name).to_owned(),
                    value: c.get(),
                })
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("poisoned")
                .iter()
                .map(|(name, g)| GaugeSnapshot {
                    name: (*name).to_owned(),
                    value: g.get(),
                })
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("poisoned")
                .iter()
                .map(|(name, h)| h.snapshot(name))
                .collect(),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Instrument name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Instrument name.
    pub name: String,
    /// Value at snapshot time.
    pub value: i64,
}

/// One non-empty histogram bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketSnapshot {
    /// Smallest sample value that lands in this bucket.
    pub floor: u64,
    /// Samples in the bucket.
    pub count: u64,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Non-empty buckets, ascending by floor.
    pub buckets: Vec<BucketSnapshot>,
}

/// A point-in-time, schema-versioned view of a [`MetricsRegistry`] —
/// what `Request::Metrics` returns over the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// [`METRICS_SCHEMA_VERSION`] at serialization time.
    pub schema_version: u32,
    /// Whether the registry's gated recording was on.
    pub enabled: bool,
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// The deterministic subset of a [`MetricsSnapshot`]: counters only.
///
/// Gauges (instantaneous readings) and histograms (timing
/// distributions) vary run to run; counts of *events* do not, so this
/// is the view CI byte-compares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparableMetrics {
    /// [`METRICS_SCHEMA_VERSION`] of the source snapshot.
    pub schema_version: u32,
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
}

impl MetricsSnapshot {
    /// Strips everything timing-dependent, keeping counts only.
    #[must_use]
    pub fn comparable(&self) -> ComparableMetrics {
        ComparableMetrics {
            schema_version: self.schema_version,
            counters: self.counters.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_floor_is_consistent() {
        for v in (1..4096u64).chain((3..63).map(|i| (1u64 << i) + i)) {
            assert!(bucket_index(v) >= bucket_index(v - 1), "v={v}");
            assert!(bucket_floor(bucket_index(v)) <= v, "v={v}");
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
        assert_eq!(bucket_floor(bucket_index(8)), 8);
        assert_eq!(bucket_floor(bucket_index(0)), 0);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        assert!((400..=600).contains(&p50), "p50={p50}");
        assert!(h.quantile(1.0) >= 900);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn registry_gates_and_snapshots() {
        let reg = MetricsRegistry::new();
        reg.count("requests_total", 5); // gated off: dropped
        assert!(reg.snapshot().counters.is_empty());
        reg.enable();
        reg.count("requests_total", 2);
        reg.count("requests_total", 3);
        reg.gauge_set("queue_depth", 7);
        reg.observe_us("wait_us", 1500);
        let snap = reg.snapshot();
        assert_eq!(snap.schema_version, METRICS_SCHEMA_VERSION);
        assert_eq!(snap.counters[0].name, "requests_total");
        assert_eq!(snap.counters[0].value, 5);
        assert_eq!(snap.gauges[0].value, 7);
        assert_eq!(snap.histograms[0].count, 1);
        assert_eq!(snap.histograms[0].min, 1500);
        let cmp = snap.comparable();
        assert_eq!(cmp.counters, snap.counters);
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].value, 0);
        assert_eq!(snap.histograms[0].count, 0);
        assert_eq!(snap.histograms[0].min, 0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = MetricsRegistry::new();
        reg.enable();
        reg.count("a", 1);
        reg.observe_us("h", 42);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
    }
}
