//! RAII trace spans with typed argument keys.
//!
//! A [`SpanGuard`] (from [`span`]) pushes a [`Phase::Begin`] event into
//! the current thread's buffer when created and the matching
//! [`Phase::End`] when dropped. Guards are `!Send`, so begin/end pairs
//! always land on one thread and nest like the call stack — the
//! well-formedness the profile exporter and the span proptests rely on.
//!
//! # Disabled cost
//!
//! When the [`Collector`](crate::Collector) is disabled (the default),
//! [`span`] performs exactly one relaxed atomic load and returns an
//! inert guard: no allocation, no clock read, no buffer touch.
//! [`SpanGuard::set`] on an inert guard is a no-op. Keep dynamic names
//! out of the call (use a static name plus [`SpanGuard::set`]) and the
//! disabled cost stays at that single load.

use crate::collector::{collector, push};
use crate::TraceClock;
use std::marker::PhantomData;

/// One trace event in a thread's buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Begin, end, or a pre-measured complete span.
    pub phase: Phase,
    /// The span's name (duplicated on begin and end).
    pub name: String,
    /// Subsystem category: `"pass"`, `"region"`, `"pool"`, `"serve"`, ….
    pub cat: &'static str,
    /// Microseconds since the global [`TraceClock`] epoch. For
    /// [`Phase::Complete`] this is the span's *start*.
    pub ts_us: u64,
    /// Duration, used by [`Phase::Complete`] only (0 otherwise).
    pub dur_us: u64,
    /// The emitting thread's collector-assigned id.
    pub tid: u64,
    /// Typed arguments; attached to the end event of a guard-scoped
    /// span (they are usually only known at the end).
    pub args: Vec<(&'static str, ArgValue)>,
}

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A guard-scoped span opened.
    Begin,
    /// The most recent open span on this thread closed.
    End,
    /// A span measured externally (e.g. a queue wait whose start was
    /// stamped on another thread) emitted in one piece.
    Complete,
}

/// A typed argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Booleans.
    Bool(bool),
    /// Unsigned integers.
    U64(u64),
    /// Signed integers.
    I64(i64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> ArgValue {
        ArgValue::Bool(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> ArgValue {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::F64(v)
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// A typed span-argument key: the name is fixed, the value type is
/// carried in the type parameter, so `span.set(keys::INDEX, "oops")`
/// fails to compile instead of producing a mistyped trace.
#[derive(Debug)]
pub struct Key<T> {
    name: &'static str,
    _ty: PhantomData<fn(T)>,
}

impl<T> Key<T> {
    /// Declares a key. Prefer the shared vocabulary in [`keys`].
    #[must_use]
    pub const fn new(name: &'static str) -> Key<T> {
        Key {
            name,
            _ty: PhantomData,
        }
    }

    /// The key's wire name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T> Clone for Key<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Key<T> {}

/// The shared argument-key vocabulary, so the same concept has the same
/// name in every subsystem's spans.
pub mod keys {
    use super::Key;

    /// Pass/compile cache outcome: `hit`, `miss`, `miss+store`, `off`.
    pub const CACHE: Key<String> = Key::new("cache");
    /// Model name.
    pub const MODEL: Key<String> = Key::new("model");
    /// Architecture name.
    pub const ARCH: Key<String> = Key::new("arch");
    /// Request or span kind.
    pub const KIND: Key<String> = Key::new("kind");
    /// A zero-based item index (pool job, region id, …).
    pub const INDEX: Key<u64> = Key::new("index");
    /// Region-memo hits inside the span.
    pub const REGION_HITS: Key<u64> = Key::new("region_hits");
    /// Region-memo misses inside the span.
    pub const REGION_MISSES: Key<u64> = Key::new("region_misses");
    /// A queue depth observed inside the span.
    pub const DEPTH: Key<u64> = Key::new("depth");
    /// Whether the span's work succeeded.
    pub const OK: Key<bool> = Key::new("ok");
}

struct ActiveSpan {
    name: String,
    cat: &'static str,
    args: Vec<(&'static str, ArgValue)>,
    // Guards must close on the thread that opened them (that is what
    // keeps per-thread buffers balanced and properly nested).
    _not_send: PhantomData<*const ()>,
}

/// An RAII span handle; see [`span`]. Dropping it closes the span.
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// Attaches a typed argument, recorded on the span's end event.
    /// No-op (no allocation) on a disabled-collector guard.
    pub fn set<T: Into<ArgValue>, V: Into<T>>(&mut self, key: Key<T>, value: V) {
        if let Some(active) = &mut self.0 {
            active.args.push((key.name, value.into().into()));
        }
    }

    /// Whether this guard is actually recording (collector enabled at
    /// creation time).
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            // Emitted even if tracing was disabled mid-span, so every
            // thread's buffer stays balanced.
            push(TraceEvent {
                phase: Phase::End,
                name: active.name,
                cat: active.cat,
                ts_us: TraceClock::global().now_us(),
                dur_us: 0,
                tid: 0, // stamped by push()
                args: active.args,
            });
        }
    }
}

/// Opens a span scoped to the returned guard's lifetime.
///
/// `cat` groups spans by subsystem (`"pass"`, `"serve"`, …); `name` is
/// the span label. When the collector is disabled this costs one
/// relaxed atomic load — pass a *static* `name` and attach dynamic
/// detail via [`SpanGuard::set`] so the disabled path never allocates.
#[must_use]
pub fn span(cat: &'static str, name: &str) -> SpanGuard {
    if !collector().is_enabled() {
        return SpanGuard(None);
    }
    push(TraceEvent {
        phase: Phase::Begin,
        name: name.to_owned(),
        cat,
        ts_us: TraceClock::global().now_us(),
        dur_us: 0,
        tid: 0, // stamped by push()
        args: Vec::new(),
    });
    SpanGuard(Some(ActiveSpan {
        name: name.to_owned(),
        cat,
        args: Vec::new(),
        _not_send: PhantomData,
    }))
}

/// Records a span measured externally — e.g. a queue wait whose start
/// was stamped by the submitting thread — in one piece on the current
/// thread. `start_us`/`end_us` are global [`TraceClock`] timestamps.
/// One relaxed atomic load when the collector is disabled.
pub fn complete_span(
    cat: &'static str,
    name: &str,
    start_us: u64,
    end_us: u64,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !collector().is_enabled() {
        return;
    }
    push(TraceEvent {
        phase: Phase::Complete,
        name: name.to_owned(),
        cat,
        ts_us: start_us,
        dur_us: end_us.saturating_sub(start_us),
        tid: 0, // stamped by push()
        args,
    });
}
