//! Property tests for the spans core and the exporters:
//!
//! * span well-formedness — every thread's buffer is balanced (each
//!   end closes the most recent begin, nothing left open) and child
//!   spans nest strictly within their parents' time ranges, for
//!   arbitrary span trees executed on several threads at once;
//! * the Chrome exporter always emits schema-valid JSON whose complete
//!   span count equals the trace's matched-pair count;
//! * the disabled path records nothing.
//!
//! The collector is process-global, so every test takes `GUARD` and
//! starts from a flushed buffer.

use cim_obs::{keys, Phase, Trace, TraceEvent};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

/// Runs `f` with the collector enabled and exclusive, returning what it
/// buffered.
fn record<F: FnOnce()>(f: F) -> Trace {
    let _guard = GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = cim_obs::drain(); // flush any prior test's leftovers
    cim_obs::enable();
    f();
    cim_obs::disable();
    cim_obs::drain()
}

/// Interprets `codes` as a span tree: each code opens one span named
/// `s{code % 5}` with `code % 3` child subtrees consumed recursively.
fn emit_tree(codes: &mut std::slice::Iter<'_, u8>) {
    if let Some(&code) = codes.next() {
        let name = format!("s{}", code % 5);
        let mut span = cim_obs::span("test", &name);
        span.set(keys::INDEX, u64::from(code));
        for _ in 0..code % 3 {
            emit_tree(codes);
        }
    }
}

/// Consumes the whole script as a forest of span trees, so every code
/// opens exactly one span.
fn emit_forest(script: &[u8]) {
    let mut codes = script.iter();
    while codes.len() > 0 {
        emit_tree(&mut codes);
    }
}

/// Checks stack discipline per thread and returns the matched
/// `(begin, end)` pairs.
fn check_well_formed(trace: &Trace) -> Vec<(TraceEvent, TraceEvent)> {
    let mut stacks: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
    let mut pairs = Vec::new();
    for event in &trace.events {
        match event.phase {
            Phase::Begin => stacks.entry(event.tid).or_default().push(event.clone()),
            Phase::End => {
                let begin = stacks
                    .entry(event.tid)
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("end without begin on tid {}", event.tid));
                assert_eq!(begin.name, event.name, "end closes a different span");
                assert_eq!(begin.cat, event.cat);
                assert!(begin.ts_us <= event.ts_us, "span ends before it begins");
                pairs.push((begin, event.clone()));
            }
            Phase::Complete => {}
        }
    }
    for (tid, stack) in stacks {
        assert!(
            stack.is_empty(),
            "tid {tid} left {} span(s) open",
            stack.len()
        );
    }
    pairs
}

proptest! {
    /// Balanced begin/end per thread and parent⊇child nesting, for
    /// arbitrary span trees run concurrently on up to 4 threads.
    #[test]
    fn spans_are_balanced_and_nested(
        scripts in proptest::collection::vec(
            proptest::collection::vec(0u8..255, 0..24),
            1..4,
        ),
    ) {
        let trace = record(|| {
            std::thread::scope(|scope| {
                for script in &scripts {
                    scope.spawn(move || emit_forest(script));
                }
            });
        });
        let pairs = check_well_formed(&trace);
        // Total spans = total codes consumed (each code opens one span).
        let expected: usize = scripts.iter().map(Vec::len).sum();
        prop_assert_eq!(pairs.len(), expected);
        // Nesting: reconstruct each thread's interval stack; every
        // child's [begin, end] lies within its parent's.
        let mut open: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
        let mut ends: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for event in &trace.events {
            match event.phase {
                Phase::Begin => open.entry(event.tid).or_default().push((event.ts_us, 0)),
                Phase::End => {
                    let stack = open.entry(event.tid).or_default();
                    let (begin_ts, _) = stack.pop().expect("balanced");
                    if let Some((parent_begin, _)) = stack.last() {
                        prop_assert!(*parent_begin <= begin_ts);
                    }
                    // Parent end (seen later) must be >= this end:
                    // timestamps are monotone per thread, checked below.
                    ends.entry(event.tid).or_default().push(event.ts_us);
                    prop_assert!(begin_ts <= event.ts_us);
                }
                Phase::Complete => {}
            }
        }
        // Per-thread emission order implies non-decreasing timestamps,
        // which together with stack discipline gives child ⊆ parent.
        let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
        for event in &trace.events {
            let last = last_ts.entry(event.tid).or_insert(0);
            prop_assert!(event.ts_us >= *last, "timestamps regressed within a thread");
            *last = event.ts_us;
        }
    }

    /// The Chrome exporter emits schema-valid JSON with one complete
    /// event per matched pair (plus metadata), for arbitrary trees.
    #[test]
    fn chrome_export_is_always_schema_valid(
        script in proptest::collection::vec(0u8..255, 0..32),
    ) {
        let trace = record(|| emit_forest(&script));
        let pairs = check_well_formed(&trace).len();
        let json = cim_obs::chrome_trace_json(&trace);
        let summary = cim_obs::validate_chrome_trace(&json)
            .expect("exporter output must validate");
        prop_assert_eq!(summary.complete, pairs);
        prop_assert_eq!(summary.spans_in("test"), pairs);
        prop_assert!(summary.metadata >= 1, "process_name metadata missing");
    }
}

#[test]
fn disabled_collector_records_nothing() {
    let _guard = GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = cim_obs::drain();
    cim_obs::disable();
    {
        let mut span = cim_obs::span("test", "ignored");
        assert!(!span.is_recording());
        span.set(keys::INDEX, 1u64);
        cim_obs::complete_span("test", "ignored", 0, 10, Vec::new());
    }
    assert!(cim_obs::drain().events.is_empty());
}

#[test]
fn complete_spans_survive_export_and_profile() {
    let trace = record(|| {
        let start = cim_obs::stopwatch();
        {
            let _outer = cim_obs::span("pass", "cg");
            let _inner = cim_obs::span("region", "stage_stats");
        }
        cim_obs::complete_span(
            "serve",
            "queue",
            start.start_us(),
            cim_obs::TraceClock::global().now_us(),
            Vec::new(),
        );
    });
    assert_eq!(trace.span_count(), 3);
    let json = cim_obs::chrome_trace_json(&trace);
    let summary = cim_obs::validate_chrome_trace(&json).expect("valid");
    assert_eq!(summary.complete, 3);
    assert_eq!(summary.spans_in("pass"), 1);
    assert_eq!(summary.spans_in("serve"), 1);
    let profile = cim_obs::profile_tree(&trace);
    assert!(profile.contains("pass:cg"), "{profile}");
    assert!(profile.contains("region:stage_stats"), "{profile}");
    assert!(profile.contains("serve:queue"), "{profile}");
    assert!(profile.contains("incl"), "{profile}");
}

#[test]
fn invalid_chrome_documents_are_rejected() {
    assert!(cim_obs::validate_chrome_trace("not json").is_err());
    assert!(cim_obs::validate_chrome_trace("[]").is_err());
    assert!(cim_obs::validate_chrome_trace("{}").is_err());
    let bad_phase = r#"{"traceEvents":[{"name":"x","ph":"Z","pid":1,"tid":0}]}"#;
    assert!(cim_obs::validate_chrome_trace(bad_phase).is_err());
    let missing_ts = r#"{"traceEvents":[{"name":"x","cat":"c","ph":"X","dur":1,"pid":1,"tid":0}]}"#;
    assert!(cim_obs::validate_chrome_trace(missing_ts).is_err());
    let ok = r#"{"traceEvents":[{"name":"x","cat":"c","ph":"X","ts":0,"dur":1,"pid":1,"tid":0}]}"#;
    let summary = cim_obs::validate_chrome_trace(ok).expect("minimal valid doc");
    assert_eq!(summary.complete, 1);
}

#[test]
fn metrics_text_is_grep_friendly() {
    let reg = cim_obs::MetricsRegistry::new();
    reg.enable();
    reg.count("requests_total", 7);
    reg.gauge_set("queue_depth", 2);
    reg.observe_us("queue_wait_us", 1200);
    let text = cim_obs::metrics_text(&reg.snapshot());
    assert!(text.contains("counter requests_total 7"), "{text}");
    assert!(text.contains("gauge queue_depth 2"), "{text}");
    assert!(text.contains("histogram queue_wait_us count=1"), "{text}");
}
