//! The functional simulator.
//!
//! A [`Machine`] holds the buffer hierarchy (global L0, per-core L1) and
//! one logical crossbar array per physical crossbar, and executes a
//! [`MopFlow`] meta-operator by meta-operator. Crossbars store *logical*
//! weights (exact integers); `cim.readxb`/`cim.readrow` perform exact
//! integer MACs over the engaged wordlines. See the crate docs for why
//! this level of abstraction is the right functional oracle.

use crate::kernels;
use crate::weights::WeightStore;
use cim_arch::CimArchitecture;
use cim_graph::Graph;
use cim_mop::{BufRef, BufSpace, CoreOp, DcomFunc, MatId, MetaOp, MopFlow, XbAddr};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced while executing a flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A CIM operation referenced a weight matrix absent from the store.
    UnknownMat {
        /// The dangling reference.
        mat: MatId,
    },
    /// A read touched crossbar cells that were never programmed.
    UnprogrammedCells {
        /// The crossbar.
        xb: XbAddr,
        /// First offending wordline.
        row: u32,
    },
    /// A DCOM operator received the wrong number of sources.
    DcomArity {
        /// The function mnemonic.
        func: &'static str,
        /// Sources supplied.
        got: usize,
        /// Sources required.
        expected: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownMat { mat } => write!(f, "weight matrix {mat} not in store"),
            SimError::UnprogrammedCells { xb, row } => {
                write!(f, "{xb} row {row} read before being programmed")
            }
            SimError::DcomArity {
                func,
                got,
                expected,
            } => {
                write!(f, "dcom `{func}` got {got} sources, expects {expected}")
            }
        }
    }
}

impl Error for SimError {}

/// One logical crossbar: `rows × cols` integer cells plus a programmed
/// mask.
#[derive(Debug, Clone)]
struct Xbar {
    cols: u32,
    cells: Vec<i64>,
    programmed: Vec<bool>,
}

impl Xbar {
    fn new(rows: u32, cols: u32) -> Self {
        let n = rows as usize * cols as usize;
        Xbar {
            cols,
            cells: vec![0; n],
            programmed: vec![false; n],
        }
    }

    fn idx(&self, row: u32, col: u32) -> usize {
        row as usize * self.cols as usize + col as usize
    }
}

/// The functional-simulation machine state.
#[derive(Debug, Clone)]
pub struct Machine {
    l0: Vec<i64>,
    l1: HashMap<u32, Vec<i64>>,
    xbs: HashMap<XbAddr, Xbar>,
    xb_rows: u32,
    xb_cols: u32,
}

impl Machine {
    /// Creates a machine for `arch` (crossbars are instantiated lazily).
    #[must_use]
    pub fn new(arch: &CimArchitecture) -> Self {
        Machine {
            l0: Vec::new(),
            l1: HashMap::new(),
            xbs: HashMap::new(),
            xb_rows: arch.crossbar().shape().rows,
            xb_cols: arch.crossbar().shape().cols,
        }
    }

    /// Loads every graph input tensor into its L0 position (using the
    /// same deterministic synthesis as the reference executor).
    pub fn load_inputs(&mut self, graph: &Graph, layout: &cim_compiler::codegen::FlowLayout) {
        for node in graph.nodes() {
            if let cim_graph::OpKind::Input { shape } = node.op() {
                let data = crate::weights::synth_input(node.name(), shape.elements());
                let off = layout.offset(node.id());
                self.write_l0(off, &data);
            }
        }
    }

    /// Writes `data` into L0 at element offset `off`.
    pub fn write_l0(&mut self, off: u64, data: &[i64]) {
        let end = off as usize + data.len();
        if self.l0.len() < end {
            self.l0.resize(end, 0);
        }
        self.l0[off as usize..end].copy_from_slice(data);
    }

    /// Reads `len` elements of L0 starting at `off` (zero-filled past the
    /// high-water mark).
    #[must_use]
    pub fn read_l0(&self, off: u64, len: usize) -> Vec<i64> {
        (0..len)
            .map(|i| self.l0.get(off as usize + i).copied().unwrap_or(0))
            .collect()
    }

    fn read_buf(&self, r: BufRef, len: usize) -> Vec<i64> {
        let buf: &[i64] = match r.space {
            BufSpace::L0 => &self.l0,
            BufSpace::L1(core) => self.l1.get(&core).map(Vec::as_slice).unwrap_or(&[]),
        };
        (0..len)
            .map(|i| buf.get(r.offset as usize + i).copied().unwrap_or(0))
            .collect()
    }

    fn write_buf(&mut self, r: BufRef, data: &[i64]) {
        let buf: &mut Vec<i64> = match r.space {
            BufSpace::L0 => &mut self.l0,
            BufSpace::L1(core) => self.l1.entry(core).or_default(),
        };
        let end = r.offset as usize + data.len();
        if buf.len() < end {
            buf.resize(end, 0);
        }
        buf[r.offset as usize..end].copy_from_slice(data);
    }

    fn accumulate_buf(&mut self, r: BufRef, data: &[i64]) {
        let buf: &mut Vec<i64> = match r.space {
            BufSpace::L0 => &mut self.l0,
            BufSpace::L1(core) => self.l1.entry(core).or_default(),
        };
        let end = r.offset as usize + data.len();
        if buf.len() < end {
            buf.resize(end, 0);
        }
        for (slot, v) in buf[r.offset as usize..end].iter_mut().zip(data) {
            *slot += v;
        }
    }

    fn xbar(&mut self, addr: XbAddr) -> &mut Xbar {
        let (rows, cols) = (self.xb_rows, self.xb_cols);
        self.xbs
            .entry(addr)
            .or_insert_with(|| Xbar::new(rows, cols))
    }

    /// Executes a flow against the weight store.
    ///
    /// # Errors
    /// Returns a [`SimError`] on dangling weight references, reads of
    /// unprogrammed cells, or malformed DCOM operands.
    pub fn execute(&mut self, flow: &MopFlow, store: &WeightStore) -> Result<(), SimError> {
        for stmt in flow.stmts() {
            // Parallel blocks execute their members in listed order; the
            // code generator guarantees that intra-block dependencies
            // (partial-sum accumulation) are ordered correctly.
            for op in stmt.ops() {
                self.step(op, store)?;
            }
        }
        Ok(())
    }

    fn step(&mut self, op: &MetaOp, store: &WeightStore) -> Result<(), SimError> {
        match op {
            MetaOp::Mov { src, dst, len } => {
                let data = self.read_buf(*src, *len as usize);
                self.write_buf(*dst, &data);
            }
            MetaOp::WriteXb {
                xb,
                weights,
                src_row,
                src_col,
                dst_row,
                dst_col,
                rows,
                cols,
            } => {
                let mat = store
                    .mat(*weights)
                    .ok_or(SimError::UnknownMat { mat: *weights })?
                    .clone();
                let arr = self.xbar(*xb);
                for i in 0..*rows {
                    for j in 0..*cols {
                        let idx = arr.idx(dst_row + i, dst_col + j);
                        arr.cells[idx] = mat.at(src_row + i, src_col + j);
                        arr.programmed[idx] = true;
                    }
                }
            }
            MetaOp::WriteRow {
                xb,
                row,
                weights,
                src_row,
                src_col,
                dst_col,
                cols,
            } => {
                let mat = store
                    .mat(*weights)
                    .ok_or(SimError::UnknownMat { mat: *weights })?
                    .clone();
                let arr = self.xbar(*xb);
                for j in 0..*cols {
                    let idx = arr.idx(*row, dst_col + j);
                    arr.cells[idx] = mat.at(*src_row, src_col + j);
                    arr.programmed[idx] = true;
                }
            }
            MetaOp::ReadXb {
                xb,
                row_start,
                rows,
                col_start,
                cols,
                src,
                dst,
                accumulate,
            }
            | MetaOp::ReadRow {
                xb,
                row_start,
                rows,
                col_start,
                cols,
                src,
                dst,
                accumulate,
            } => {
                let input = self.read_buf(*src, *rows as usize);
                let arr = self.xbar(*xb);
                let mut out = vec![0i64; *cols as usize];
                for i in 0..*rows {
                    for j in 0..*cols {
                        let idx = arr.idx(row_start + i, col_start + j);
                        if !arr.programmed[idx] {
                            return Err(SimError::UnprogrammedCells {
                                xb: *xb,
                                row: row_start + i,
                            });
                        }
                        out[j as usize] += input[i as usize] * arr.cells[idx];
                    }
                }
                if *accumulate {
                    self.accumulate_buf(*dst, &out);
                } else {
                    self.write_buf(*dst, &out);
                }
            }
            MetaOp::ReadCore {
                op,
                weights,
                core: _,
                src,
                dst,
            } => {
                let mat = store
                    .mat(*weights)
                    .ok_or(SimError::UnknownMat { mat: *weights })?
                    .clone();
                let input = self.read_buf(*src, op.input_len() as usize);
                let out = match op {
                    CoreOp::Conv {
                        in_c,
                        in_h,
                        in_w,
                        out_c,
                        kernel,
                        stride,
                        padding,
                    } => {
                        let (in_c, in_h, in_w) = (*in_c as usize, *in_h as usize, *in_w as usize);
                        let (k, s, p) = (*kernel as usize, *stride as usize, *padding as i64);
                        let oh = (in_h + 2 * p as usize - k) / s + 1;
                        let ow = (in_w + 2 * p as usize - k) / s + 1;
                        let mut out = vec![0i64; *out_c as usize * oh * ow];
                        for co in 0..*out_c as usize {
                            for oy in 0..oh {
                                for ox in 0..ow {
                                    let mut acc = 0i64;
                                    for ci in 0..in_c {
                                        for ky in 0..k {
                                            for kx in 0..k {
                                                let iy = (oy * s + ky) as i64 - p;
                                                let ix = (ox * s + kx) as i64 - p;
                                                if iy < 0
                                                    || ix < 0
                                                    || iy >= in_h as i64
                                                    || ix >= in_w as i64
                                                {
                                                    continue;
                                                }
                                                let x = input[ci * in_h * in_w
                                                    + iy as usize * in_w
                                                    + ix as usize];
                                                let r = (ci * k + ky) * k + kx;
                                                acc += x * mat.at(r as u32, co as u32);
                                            }
                                        }
                                    }
                                    out[co * oh * ow + oy * ow + ox] = acc;
                                }
                            }
                        }
                        out
                    }
                    CoreOp::Linear { in_f, out_f, batch } => {
                        let (in_f, out_f, batch) =
                            (*in_f as usize, *out_f as usize, *batch as usize);
                        let mut out = vec![0i64; batch * out_f];
                        for b in 0..batch {
                            for c in 0..out_f {
                                let mut acc = 0i64;
                                for r in 0..in_f {
                                    acc += input[b * in_f + r] * mat.at(r as u32, c as u32);
                                }
                                out[b * out_f + c] = acc;
                            }
                        }
                        out
                    }
                    CoreOp::MatMul { m, k, n } => {
                        let (m, k, n) = (*m as usize, *k as usize, *n as usize);
                        let mut out = vec![0i64; m * n];
                        for i in 0..m {
                            for j in 0..n {
                                let mut acc = 0i64;
                                for t in 0..k {
                                    acc += input[i * k + t] * mat.at(t as u32, j as u32);
                                }
                                out[i * n + j] = acc;
                            }
                        }
                        out
                    }
                };
                self.write_buf(*dst, &out);
            }
            MetaOp::Dcom {
                func,
                srcs,
                dst,
                len,
            } => {
                if srcs.len() != func.arity() {
                    return Err(SimError::DcomArity {
                        func: func.mnemonic(),
                        got: srcs.len(),
                        expected: func.arity(),
                    });
                }
                let len = *len as usize;
                match func {
                    DcomFunc::Zero => {
                        self.write_buf(*dst, &vec![0i64; len]);
                    }
                    DcomFunc::Relu => {
                        let mut d = self.read_buf(srcs[0], len);
                        kernels::relu(&mut d);
                        self.write_buf(*dst, &d);
                    }
                    DcomFunc::Gelu => {
                        let mut d = self.read_buf(srcs[0], len);
                        kernels::gelu(&mut d);
                        self.write_buf(*dst, &d);
                    }
                    DcomFunc::Softmax { groups } => {
                        let mut d = self.read_buf(srcs[0], len);
                        kernels::softmax(&mut d, *groups as usize);
                        self.write_buf(*dst, &d);
                    }
                    DcomFunc::LayerNorm { groups } => {
                        let mut d = self.read_buf(srcs[0], len);
                        kernels::layer_norm(&mut d, *groups as usize);
                        self.write_buf(*dst, &d);
                    }
                    DcomFunc::BatchNorm => {
                        let mut d = self.read_buf(srcs[0], len);
                        kernels::batch_norm(&mut d);
                        self.write_buf(*dst, &d);
                    }
                    DcomFunc::ShiftAcc => {
                        let d = self.read_buf(srcs[0], len);
                        self.accumulate_buf(*dst, &d);
                    }
                    DcomFunc::AddEw => {
                        let a = self.read_buf(srcs[0], len);
                        let b = self.read_buf(srcs[1], len);
                        let mut out = vec![0i64; len];
                        kernels::add_ew(&a, &b, &mut out);
                        self.write_buf(*dst, &out);
                    }
                    DcomFunc::MaxPool {
                        c,
                        h,
                        w,
                        kernel,
                        stride,
                        padding,
                    }
                    | DcomFunc::AvgPool {
                        c,
                        h,
                        w,
                        kernel,
                        stride,
                        padding,
                    } => {
                        let is_max = matches!(func, DcomFunc::MaxPool { .. });
                        let input =
                            self.read_buf(srcs[0], (*c as usize) * (*h as usize) * (*w as usize));
                        let out = kernels::pool2d(
                            &input,
                            *c as usize,
                            *h as usize,
                            *w as usize,
                            *kernel as usize,
                            *stride as usize,
                            *padding as usize,
                            is_max,
                        );
                        self.write_buf(*dst, &out);
                    }
                    DcomFunc::GlobalAvgPool { c, h, w } => {
                        let input =
                            self.read_buf(srcs[0], (*c as usize) * (*h as usize) * (*w as usize));
                        let out =
                            kernels::global_avg_pool(&input, *c as usize, *h as usize, *w as usize);
                        self.write_buf(*dst, &out);
                    }
                    DcomFunc::Attention { heads, tokens, dim } => {
                        let n = (*tokens as usize) * (*dim as usize);
                        let q = self.read_buf(srcs[0], n);
                        let k = self.read_buf(srcs[1], n);
                        let v = self.read_buf(srcs[2], n);
                        let out = kernels::attention(
                            &q,
                            &k,
                            &v,
                            *heads as usize,
                            *tokens as usize,
                            *dim as usize,
                        );
                        self.write_buf(*dst, &out);
                    }
                    _ => {
                        // Future DCOM extensions (the enum is
                        // non-exhaustive): treat as identity move.
                        let d = self.read_buf(srcs[0], len);
                        self.write_buf(*dst, &d);
                    }
                }
            }
            // `MetaOp` is non-exhaustive; future operators must extend the
            // simulator before flows using them can run.
            other => unimplemented!("functional simulator: unsupported meta-operator {other:?}"),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::presets;
    use cim_compiler::{codegen, Compiler};
    use cim_graph::{zoo, Graph, OpKind, Shape};

    /// End-to-end oracle: compile, generate flow, execute, compare with
    /// the reference executor on every node-level output.
    fn assert_flow_matches_reference(graph: &Graph, arch: &cim_arch::CimArchitecture) {
        let compiled = Compiler::new().compile(graph, arch).unwrap();
        let (flow, layout) = codegen::generate_flow(&compiled, graph, arch).unwrap();
        flow.validate(arch).unwrap();
        let store = WeightStore::for_flow(&flow);
        let mut machine = Machine::new(arch);
        machine.load_inputs(graph, &layout);
        machine.execute(&flow, &store).unwrap();
        let expected = reference_outputs(graph);
        for (id, want) in expected {
            let got = machine.read_l0(layout.offset(id), want.len());
            assert_eq!(
                got,
                want,
                "{}@{}: node {} diverges",
                graph.name(),
                arch.name(),
                graph.node(id).name()
            );
        }
    }

    fn reference_outputs(graph: &Graph) -> Vec<(cim_graph::NodeId, Vec<i64>)> {
        let values = crate::reference::execute(graph);
        graph
            .nodes()
            .map(|n| (n.id(), values[&n.id()].clone()))
            .collect()
    }

    fn small_conv() -> Graph {
        let mut g = Graph::new("small");
        let x = g
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::chw(2, 6, 6),
                },
                [],
            )
            .unwrap();
        let c = g.add("conv", OpKind::conv2d(4, 3, 1, 1), [x]).unwrap();
        let r = g.add("relu", OpKind::Relu, [c]).unwrap();
        let _ = g.add("pool", OpKind::max_pool(2, 2), [r]).unwrap();
        g
    }

    #[test]
    fn xbm_flow_matches_reference_small_conv() {
        assert_flow_matches_reference(&small_conv(), &presets::isaac_baseline());
    }

    #[test]
    fn wlm_flow_matches_reference_small_conv() {
        assert_flow_matches_reference(&small_conv(), &presets::table2_example());
    }

    #[test]
    fn cm_flow_matches_reference_small_conv() {
        assert_flow_matches_reference(&small_conv(), &presets::jia_isscc21());
    }

    #[test]
    fn jain_wlm_flow_matches_reference() {
        // 256-row crossbars with parallel_row 32 and no analog S&A: the
        // row-wave emission plus ALU accumulation must still be exact.
        let mut g = Graph::new("deep-rows");
        let x = g
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::vec(300),
                },
                [],
            )
            .unwrap();
        let _ = g.add("fc", OpKind::linear(20), [x]).unwrap();
        assert_flow_matches_reference(&g, &presets::jain_sram());
    }

    #[test]
    fn lenet_matches_reference_on_xbm_and_wlm() {
        let g = zoo::lenet5();
        assert_flow_matches_reference(&g, &presets::isaac_baseline());
        assert_flow_matches_reference(&g, &presets::isaac_baseline_wlm());
    }

    #[test]
    fn mlp_matches_reference_everywhere() {
        // The full MLP exceeds Jain's 8-crossbar macro (folding, which
        // code generation does not support), so the Jain case uses a
        // narrower net; `jain_wlm_flow_matches_reference` covers the
        // deep-row case separately.
        let g = zoo::mlp();
        for arch in [
            presets::jia_isscc21(),
            presets::isaac_baseline(),
            presets::isaac_baseline_wlm(),
        ] {
            assert_flow_matches_reference(&g, &arch);
        }
        let mut tiny = Graph::new("tiny-mlp");
        let x = tiny
            .add(
                "x",
                OpKind::Input {
                    shape: Shape::vec(64),
                },
                [],
            )
            .unwrap();
        let f1 = tiny.add("fc1", OpKind::linear(16), [x]).unwrap();
        let r = tiny.add("relu", OpKind::Relu, [f1]).unwrap();
        let _ = tiny.add("fc2", OpKind::linear(8), [r]).unwrap();
        assert_flow_matches_reference(&tiny, &presets::jain_sram());
    }

    #[test]
    fn unprogrammed_read_detected() {
        let arch = presets::isaac_baseline();
        let mut flow = MopFlow::new("bad");
        flow.push(MetaOp::ReadXb {
            xb: XbAddr::new(0, 0),
            row_start: 0,
            rows: 4,
            col_start: 0,
            cols: 4,
            src: BufRef::l1(0, 0),
            dst: BufRef::l1(0, 8),
            accumulate: false,
        });
        let store = WeightStore::for_flow(&flow);
        let mut m = Machine::new(&arch);
        assert!(matches!(
            m.execute(&flow, &store),
            Err(SimError::UnprogrammedCells { .. })
        ));
    }

    #[test]
    fn unknown_mat_detected() {
        let arch = presets::isaac_baseline();
        let mut flow = MopFlow::new("bad");
        // Bypass declaration by constructing the op directly.
        flow.push(MetaOp::WriteXb {
            xb: XbAddr::new(0, 0),
            weights: MatId(7),
            src_row: 0,
            src_col: 0,
            dst_row: 0,
            dst_col: 0,
            rows: 1,
            cols: 1,
        });
        let store = WeightStore::for_flow(&flow);
        let mut m = Machine::new(&arch);
        assert!(matches!(
            m.execute(&flow, &store),
            Err(SimError::UnknownMat { .. })
        ));
    }

    #[test]
    fn dcom_arity_checked() {
        let arch = presets::isaac_baseline();
        let mut flow = MopFlow::new("bad");
        flow.push(MetaOp::Dcom {
            func: DcomFunc::AddEw,
            srcs: vec![BufRef::l0(0)],
            dst: BufRef::l0(8),
            len: 4,
        });
        let store = WeightStore::for_flow(&flow);
        let mut m = Machine::new(&arch);
        assert!(matches!(
            m.execute(&flow, &store),
            Err(SimError::DcomArity { .. })
        ));
    }

    #[test]
    fn l0_roundtrip() {
        let arch = presets::isaac_baseline();
        let mut m = Machine::new(&arch);
        m.write_l0(5, &[1, 2, 3]);
        assert_eq!(m.read_l0(5, 3), vec![1, 2, 3]);
        assert_eq!(m.read_l0(100, 2), vec![0, 0]);
    }
}
