//! Shared integer semantics for digital (DCOM) operators.
//!
//! Both the [`crate::reference`] executor and the [`crate::func`]
//! functional simulator call these kernels, so flow-vs-reference
//! equivalence tests exercise the compiler's *dataflow* (mapping, partial
//! sums, remapping, buffer addressing) rather than numerical library
//! details. All kernels are deterministic; nonlinearities use IEEE-754
//! `f64` intermediates rounded back to integers.

/// Element-wise ReLU.
pub fn relu(data: &mut [i64]) {
    for x in data {
        *x = (*x).max(0);
    }
}

/// Element-wise GELU via the sigmoid approximation
/// `x · σ(1.702·x)`, rounded to the nearest integer.
pub fn gelu(data: &mut [i64]) {
    for x in data {
        let f = *x as f64;
        let s = 1.0 / (1.0 + (-1.702 * f).exp());
        *x = (f * s).round() as i64;
    }
}

/// Row-wise quantized softmax: each row of `width = len/groups` elements
/// is replaced by `round(127 · softmax((x − max)/64))`.
pub fn softmax(data: &mut [i64], groups: usize) {
    let groups = groups.max(1);
    let width = data.len() / groups;
    if width == 0 {
        return;
    }
    for row in data.chunks_mut(width) {
        let max = row.iter().copied().max().unwrap_or(0) as f64;
        let exps: Vec<f64> = row
            .iter()
            .map(|&x| ((x as f64 - max) / 64.0).exp())
            .collect();
        let sum: f64 = exps.iter().sum();
        for (x, e) in row.iter_mut().zip(&exps) {
            *x = (127.0 * e / sum).round() as i64;
        }
    }
}

/// Row-wise quantized layer normalization:
/// `round(32 · (x − mean)/std)` per row.
pub fn layer_norm(data: &mut [i64], groups: usize) {
    let groups = groups.max(1);
    let width = data.len() / groups;
    if width == 0 {
        return;
    }
    for row in data.chunks_mut(width) {
        let n = row.len() as f64;
        let mean = row.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = row.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-9);
        for x in row.iter_mut() {
            *x = (32.0 * (*x as f64 - mean) / std).round() as i64;
        }
    }
}

/// Inference-mode batch normalization with folded unit scale and zero
/// shift — the identity. Synthetic-weight evaluation never trains, so the
/// affine parameters carry no information; keeping the op explicit
/// preserves the graph/flow structure (and its ALU cost in the
/// performance model).
pub fn batch_norm(_data: &mut [i64]) {}

/// Element-wise sum of two operands into `dst`.
///
/// # Panics
/// Panics if lengths differ.
pub fn add_ew(a: &[i64], b: &[i64], dst: &mut [i64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), dst.len());
    for ((x, y), d) in a.iter().zip(b).zip(dst.iter_mut()) {
        *d = x + y;
    }
}

/// 2-D pooling over a `[c, h, w]` tensor. `max` selects max pooling;
/// average pooling divides by the window area with truncation.
#[allow(clippy::too_many_arguments)]
pub fn pool2d(
    input: &[i64],
    c: usize,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    max: bool,
) -> Vec<i64> {
    let oh = (h + 2 * padding - kernel) / stride + 1;
    let ow = (w + 2 * padding - kernel) / stride + 1;
    let mut out = vec![0i64; c * oh * ow];
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: i64 = if max { i64::MIN } else { 0 };
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        let iy = (oy * stride + ky) as i64 - padding as i64;
                        let ix = (ox * stride + kx) as i64 - padding as i64;
                        let v = if iy < 0 || ix < 0 || iy >= h as i64 || ix >= w as i64 {
                            // Max pooling pads with the identity for max;
                            // average pooling pads with zero.
                            if max {
                                i64::MIN
                            } else {
                                0
                            }
                        } else {
                            input[ch * h * w + iy as usize * w + ix as usize]
                        };
                        if max {
                            acc = acc.max(v);
                        } else if v != i64::MIN {
                            acc += v;
                        }
                    }
                }
                out[ch * oh * ow + oy * ow + ox] = if max {
                    acc
                } else {
                    acc / (kernel * kernel) as i64
                };
            }
        }
    }
    out
}

/// Global average pooling `[c, h, w] → [c]` (truncating division).
pub fn global_avg_pool(input: &[i64], c: usize, h: usize, w: usize) -> Vec<i64> {
    (0..c)
        .map(|ch| {
            let sum: i64 = input[ch * h * w..(ch + 1) * h * w].iter().sum();
            sum / (h * w) as i64
        })
        .collect()
}

/// Fused multi-head attention core over `[tokens, dim]` Q/K/V with
/// quantized f64 softmax, rounded output.
pub fn attention(
    q: &[i64],
    k: &[i64],
    v: &[i64],
    heads: usize,
    tokens: usize,
    dim: usize,
) -> Vec<i64> {
    assert_eq!(q.len(), tokens * dim);
    assert_eq!(k.len(), tokens * dim);
    assert_eq!(v.len(), tokens * dim);
    let dh = dim / heads.max(1);
    let scale = 1.0 / (dh as f64).sqrt();
    let mut out = vec![0i64; tokens * dim];
    for head in 0..heads.max(1) {
        let off = head * dh;
        for t in 0..tokens {
            // scores over all source tokens
            let mut scores = vec![0f64; tokens];
            for (s, score) in scores.iter_mut().enumerate() {
                let mut acc = 0f64;
                for d in 0..dh {
                    acc += q[t * dim + off + d] as f64 * k[s * dim + off + d] as f64;
                }
                *score = acc * scale;
            }
            let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = scores.iter().map(|&x| ((x - max) / 64.0).exp()).collect();
            let sum: f64 = exps.iter().sum();
            for d in 0..dh {
                let mut acc = 0f64;
                for (s, e) in exps.iter().enumerate() {
                    acc += e / sum * v[s * dim + off + d] as f64;
                }
                out[t * dim + off + d] = acc.round() as i64;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut d = vec![-3, 0, 5];
        relu(&mut d);
        assert_eq!(d, vec![0, 0, 5]);
    }

    #[test]
    fn gelu_limits() {
        let mut d = vec![-1000, 0, 1000];
        gelu(&mut d);
        assert_eq!(d, vec![0, 0, 1000]);
    }

    #[test]
    fn softmax_rows_sum_to_about_127() {
        let mut d = vec![0, 0, 0, 0, 100, 0, 0, 0];
        softmax(&mut d, 2);
        let s1: i64 = d[..4].iter().sum();
        assert!((120..=135).contains(&s1), "{d:?}");
        // Row 2's max element dominates.
        assert!(d[4] > d[5]);
    }

    #[test]
    fn layer_norm_centers_rows() {
        let mut d = vec![10, 20, 30, 40];
        layer_norm(&mut d, 1);
        let sum: i64 = d.iter().sum();
        assert!(sum.abs() <= 2, "{d:?}");
        assert!(d[3] > d[0]);
    }

    #[test]
    fn add_elementwise() {
        let a = vec![1, 2];
        let b = vec![10, 20];
        let mut dst = vec![0, 0];
        add_ew(&a, &b, &mut dst);
        assert_eq!(dst, vec![11, 22]);
    }

    #[test]
    fn max_pool_2x2() {
        // 1 channel, 2x2 input.
        let input = vec![1, 2, 3, 4];
        let out = pool2d(&input, 1, 2, 2, 2, 2, 0, true);
        assert_eq!(out, vec![4]);
        let avg = pool2d(&input, 1, 2, 2, 2, 2, 0, false);
        assert_eq!(avg, vec![2]); // 10/4 truncated
    }

    #[test]
    fn padded_max_pool() {
        let input = vec![5];
        let out = pool2d(&input, 1, 1, 1, 3, 2, 1, true);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn gap_truncates() {
        let input = vec![1, 2, 3, 4, 10, 10, 10, 10];
        assert_eq!(global_avg_pool(&input, 2, 2, 2), vec![2, 10]);
    }

    #[test]
    fn attention_uniform_keys_average_values() {
        // With identical K rows, softmax is uniform and the output is the
        // mean of V.
        let tokens = 3;
        let dim = 2;
        let q = vec![1; tokens * dim];
        let k = vec![1; tokens * dim];
        let v = vec![0, 0, 3, 3, 6, 6];
        let out = attention(&q, &k, &v, 1, tokens, dim);
        assert_eq!(out, vec![3, 3, 3, 3, 3, 3]);
    }
}
