//! # cim-sim — functional and performance simulation
//!
//! The paper verifies its scheduling results with a Python functional
//! simulator ("the hardware abstraction of CIM is described by a data
//! structure, and meta-operators are implemented by specific functions",
//! §4.1) cross-checked against PyTorch, plus a performance simulator
//! extended from PUMA-sim / NeuroSim / NVSim. This crate reproduces both
//! roles in Rust:
//!
//! * the [`reference`](mod@crate::reference) module — a direct integer executor for [`cim_graph::Graph`]s:
//!   the PyTorch substitute (see DESIGN.md, "Substitutions"). Weights and
//!   inputs are synthesized deterministically by [`weights`].
//! * [`func`] — the functional simulator: a [`func::Machine`] with L0/L1
//!   buffers and logical crossbar arrays that executes a
//!   [`cim_mop::MopFlow`]. A compiled flow must reproduce the reference
//!   executor's output **bit-exactly**; this verifies the compiler's
//!   mapping decisions (partial-sum splits, bit-slice packing, wordline
//!   remapping), which is precisely the role the paper's functional
//!   simulator plays.
//! * [`trace`] — the performance-trace side: phase-level latency/power
//!   series derived from a compiled schedule, feeding the figure
//!   harnesses.
//!
//! The functional simulator models crossbars at the *logical matrix*
//! level (exact integer MACs). Bit-serial DAC streaming and bit-sliced
//! cell storage are timing/energy phenomena handled by the cost model;
//! modelling them functionally would only re-derive the same integers —
//! see DESIGN.md §4.
//!
//! ```
//! use cim_arch::presets;
//! use cim_compiler::{codegen, Compiler};
//! use cim_graph::zoo;
//! use cim_sim::{func, reference, weights};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = zoo::lenet5();
//! let arch = presets::isaac_baseline();
//! let compiled = Compiler::new().compile(&graph, &arch)?;
//! let (flow, layout) = codegen::generate_flow(&compiled, &graph, &arch)?;
//!
//! let store = weights::WeightStore::for_flow(&flow);
//! let mut machine = func::Machine::new(&arch);
//! machine.load_inputs(&graph, &layout);
//! machine.execute(&flow, &store)?;
//!
//! let expected = reference::execute(&graph);
//! let out = graph.outputs()[0];
//! assert_eq!(machine.read_l0(layout.offset(out), 10), expected[&out]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod func;
pub mod kernels;
pub mod perf_flow;
pub mod reference;
pub mod service;
pub mod trace;
pub mod weights;

pub use func::{Machine, SimError};
pub use service::ServiceModel;
pub use weights::WeightStore;

// Parallel drivers (the `cim-bench` sweep pool) run one simulator per
// worker thread and move results across threads; pin thread-safety down
// at compile time.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Machine>();
    assert_send_sync::<WeightStore>();
    assert_send_sync::<SimError>();
};
