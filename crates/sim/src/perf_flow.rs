//! Flow-level performance measurement.
//!
//! The paper's performance simulator "support\[s\] the execution cycle and
//! power consumption evaluation of meta-operators flow" (§4.1). This
//! module walks a [`MopFlow`] statement by statement and charges each
//! meta-operator its cost model price: a `parallel { … }` block costs the
//! maximum of its members, sequential statements add up.
//!
//! This is the *unoptimized-execution* view of a flow (each MVM's gather,
//! activation waves and scatter serialized as emitted); the analytic
//! schedule reports of `cim-compiler` model the overlapped execution the
//! scheduler actually arranges. The flow measurement is useful as a
//! lower-bound sanity check — a schedule can never beat perfectly
//! overlapped execution of the same operator stream, and tests assert the
//! two views agree on workload ordering.

use cim_arch::{CimArchitecture, EnergyBreakdown};
use cim_mop::{BufSpace, CoreOp, MetaOp, MopFlow, Stmt};

/// Aggregate cost of executing one flow serially.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FlowCost {
    /// Compute/movement cycles (parallel blocks cost their slowest
    /// member). Crossbar programming is accounted separately in
    /// [`FlowCost::programming_cycles`] — frozen-weight deployments load
    /// weights offline, which is also how the analytic schedule treats
    /// the initial `Init:` block.
    pub cycles: f64,
    /// Cycles spent in `cim.writexb` / `cim.writerow` programming.
    pub programming_cycles: f64,
    /// Total crossbar row-group activations.
    pub activations: u64,
    /// Total elements moved by DMOV.
    pub moved_elements: u64,
    /// Total energy.
    pub energy: EnergyBreakdown,
}

fn op_cost(op: &MetaOp, arch: &CimArchitecture, act_bits: u32) -> (f64, u64, u64, EnergyBreakdown) {
    let xb = arch.crossbar();
    let cost = arch.cost();
    let slices = f64::from(xb.input_slices(act_bits));
    match op {
        MetaOp::ReadXb { rows, cols, .. } | MetaOp::ReadRow { rows, cols, .. } => {
            let groups = xb.activations_for_rows(*rows);
            let acts = u64::from(groups) * slices as u64;
            let energy = cost
                .activation_energy(xb.parallel_row().min(*rows), (*cols).max(1))
                .scale(acts as f64);
            (slices * f64::from(groups), acts, 0, energy)
        }
        MetaOp::WriteXb { rows, cols, .. } => (
            cost.write_cycles(*rows) as f64,
            0,
            0,
            cost.write_energy(*rows, *cols),
        ),
        MetaOp::WriteRow { cols, .. } => (
            cost.write_cycles(1) as f64,
            0,
            0,
            cost.write_energy(1, *cols),
        ),
        MetaOp::ReadCore { op, .. } => {
            // The core executes the operator internally: MVM count times
            // the native per-MVM cost over the reduction depth.
            let (mvms, depth) = match op {
                CoreOp::Conv {
                    in_c,
                    in_h,
                    in_w,
                    kernel,
                    stride,
                    padding,
                    ..
                } => {
                    let oh = (in_h + 2 * padding - kernel) / stride + 1;
                    let ow = (in_w + 2 * padding - kernel) / stride + 1;
                    (u64::from(oh) * u64::from(ow), in_c * kernel * kernel)
                }
                CoreOp::Linear { in_f, batch, .. } => (u64::from(*batch), *in_f),
                CoreOp::MatMul { m, k, .. } => (u64::from(*m), *k),
            };
            let vertical = depth.div_ceil(xb.shape().rows);
            let groups = xb.activations_for_rows(depth.min(xb.shape().rows));
            let serial_v = if arch.core().analog_partial_sum() {
                1
            } else {
                vertical
            };
            let acts = mvms * u64::from(groups) * slices as u64 * u64::from(vertical);
            let cycles = mvms as f64 * slices * f64::from(groups) * f64::from(serial_v);
            let energy = cost
                .activation_energy(xb.parallel_row(), xb.shape().cols)
                .scale(acts as f64);
            (cycles, acts, 0, energy)
        }
        MetaOp::Mov { src, dst, len } => {
            let bits = len * u64::from(act_bits);
            let crosses_l0 = matches!(src.space, BufSpace::L0) || matches!(dst.space, BufSpace::L0);
            let bw = if crosses_l0 {
                arch.chip().l0_bw_bits_per_cycle()
            } else {
                arch.core().l1_bw_bits_per_cycle()
            };
            let cycles = match bw {
                Some(bw) => bits as f64 / bw as f64,
                None => 0.0,
            };
            (cycles, 0, *len, cost.movement_energy(bits))
        }
        MetaOp::Dcom { len, .. } => {
            let rate = arch
                .chip()
                .alu_ops_per_cycle()
                .or(arch.core().alu_ops_per_cycle());
            let cycles = match rate {
                Some(r) => *len as f64 / r as f64,
                None => 0.0,
            };
            (cycles, 0, 0, cost.alu_energy(*len))
        }
        _ => (0.0, 0, 0, EnergyBreakdown::default()),
    }
}

/// Measures a flow's serial execution cost on `arch`.
#[must_use]
pub fn measure_flow(flow: &MopFlow, arch: &CimArchitecture, act_bits: u32) -> FlowCost {
    let mut total = FlowCost::default();
    for stmt in flow.stmts() {
        match stmt {
            Stmt::Op(op) => {
                let (cycles, acts, moved, energy) = op_cost(op, arch, act_bits);
                if op.is_cim_write() {
                    total.programming_cycles += cycles;
                } else {
                    total.cycles += cycles;
                }
                total.activations += acts;
                total.moved_elements += moved;
                total.energy = total.energy.add(&energy);
            }
            Stmt::Parallel(ops) => {
                // Concurrent execution: the block takes its slowest
                // member; energy and activations still sum.
                let mut slowest = 0.0_f64;
                let mut slowest_write = 0.0_f64;
                for op in ops {
                    let (cycles, acts, moved, energy) = op_cost(op, arch, act_bits);
                    if op.is_cim_write() {
                        slowest_write = slowest_write.max(cycles);
                    } else {
                        slowest = slowest.max(cycles);
                    }
                    total.activations += acts;
                    total.moved_elements += moved;
                    total.energy = total.energy.add(&energy);
                }
                total.cycles += slowest;
                total.programming_cycles += slowest_write;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_arch::presets;
    use cim_compiler::cg::{schedule_cg, CgOptions};
    use cim_compiler::{codegen, Compiler};
    use cim_graph::zoo;

    fn flow_for(
        graph: &cim_graph::Graph,
        arch: &CimArchitecture,
    ) -> (cim_mop::MopFlow, cim_compiler::Compiled) {
        let compiled = Compiler::new().compile(graph, arch).unwrap();
        let (flow, _) = codegen::generate_flow(&compiled, graph, arch).unwrap();
        (flow, compiled)
    }

    #[test]
    fn measured_flow_tracks_analytic_magnitude() {
        // The serial flow measurement and the analytic no-opt schedule
        // describe the same work; they must agree within a small factor
        // (the flow also serializes gathers/scatters that the schedule
        // overlaps).
        let arch = presets::isaac_baseline();
        let g = zoo::lenet5();
        let (flow, _) = flow_for(&g, &arch);
        let measured = measure_flow(&flow, &arch, 8);
        let analytic = schedule_cg(&g, &arch, CgOptions::none(), 8, 8)
            .unwrap()
            .report
            .latency_cycles;
        let ratio = measured.cycles / analytic;
        assert!(
            (0.3..30.0).contains(&ratio),
            "measured {} vs analytic {analytic} (ratio {ratio})",
            measured.cycles
        );
        assert!(measured.activations > 0);
        assert!(measured.energy.total() > 0.0);
    }

    #[test]
    fn bigger_models_measure_more_cycles() {
        let arch = presets::isaac_baseline();
        let (small_flow, _) = flow_for(&zoo::lenet5(), &arch);
        let (big_flow, _) = flow_for(&zoo::mlp(), &arch);
        let small = measure_flow(&small_flow, &arch, 8);
        let big = measure_flow(&big_flow, &arch, 8);
        // lenet has ~7x the MACs of the MLP.
        assert!(small.cycles > big.cycles);
    }

    #[test]
    fn parallel_blocks_cost_their_slowest_member() {
        use cim_mop::{BufRef, MetaOp, MopFlow, XbAddr};
        let arch = presets::isaac_baseline();
        let mk = |rows: u32| MetaOp::ReadXb {
            xb: XbAddr::new(0, 0),
            row_start: 0,
            rows,
            col_start: 0,
            cols: 4,
            src: BufRef::l1(0, 0),
            dst: BufRef::l1(0, 256),
            accumulate: false,
        };
        let mut seq = MopFlow::new("seq");
        seq.push(mk(128));
        seq.push(mk(8));
        let mut par = MopFlow::new("par");
        par.push_parallel(vec![mk(128), mk(8)]);
        let seq_cost = measure_flow(&seq, &arch, 8);
        let par_cost = measure_flow(&par, &arch, 8);
        assert!(par_cost.cycles < seq_cost.cycles);
        // 128 rows at parallel_row 8 => 16 groups x 8 slices = 128 cycles.
        assert!(
            (par_cost.cycles - 128.0).abs() < 1e-9,
            "{}",
            par_cost.cycles
        );
        // Activations (and energy) are identical either way.
        assert_eq!(par_cost.activations, seq_cost.activations);
    }

    #[test]
    fn wlm_and_xbm_flows_measure_equivalent_activations() {
        // The same model emits different meta-operators per mode but the
        // same total activation count (same work).
        let g = zoo::mlp();
        let xbm = presets::isaac_baseline();
        let wlm = presets::isaac_baseline_wlm();
        let (fx, _) = flow_for(&g, &xbm);
        let (fw, _) = flow_for(&g, &wlm);
        let cx = measure_flow(&fx, &xbm, 8);
        let cw = measure_flow(&fw, &wlm, 8);
        assert_eq!(cx.activations, cw.activations);
    }
}
